// bench_compare — CLI over obs/compare.hpp. Three modes:
//
//   bench_compare <baseline.json> <current.json>
//       [--threshold F] [--blowup F] [--min-wall-ms F] [--warn-only]
//     Diffs two BenchRecord / bench-suite files with noise-aware
//     thresholds. Exit 0 = pass, 1 = regression (or blowup in
//     warn-only mode), 2 = usage/parse error.
//
//   bench_compare --normalize <file.json>
//     Prints the canonical determinism view (timings stripped, keys
//     sorted) — the CI determinism job diffs these byte-for-byte.
//
//   bench_compare --rollup <out.json> --label L [--scale S] <record...>
//     Bundles per-bench records into one BENCH_<label>.json suite.
//
// Humans and CI consume the same artifacts: what the gate diffs is
// exactly what the perf-suite script uploads.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "opto/obs/bench_record.hpp"
#include "opto/obs/compare.hpp"
#include "opto/util/json_parse.hpp"
#include "opto/util/string_util.hpp"

namespace {

using opto::JsonValue;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <baseline.json> <current.json> [--threshold F] [--blowup F]\n"
      "          [--min-wall-ms F] [--warn-only]\n"
      "       %s --normalize <file.json>\n"
      "       %s --rollup <out.json> --label <label> [--scale F] <record...>\n",
      argv0, argv0, argv0);
  return 2;
}

std::optional<JsonValue> load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto parsed = opto::parse_json(buffer.str(), &error);
  if (!parsed)
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
  return parsed;
}

std::optional<double> parse_flag_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) return std::nullopt;
  return opto::parse_double(argv[++i]);
}

int run_normalize(const std::string& path) {
  const auto document = load_json(path);
  if (!document) return 2;
  std::cout << opto::obs::normalize_for_determinism(*document);
  return 0;
}

int run_rollup(int argc, char** argv) {
  std::string out_path;
  std::string label;
  double scale = 1.0;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--scale") {
      const auto value = parse_flag_value(argc, argv, i);
      if (!value) return usage(argv[0]);
      scale = *value;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_path.empty() || label.empty() || inputs.empty()) {
    std::fprintf(stderr, "bench_compare --rollup: need an output path, "
                         "--label, and at least one record\n");
    return 2;
  }
  std::vector<JsonValue> records;
  for (const std::string& path : inputs) {
    auto record = load_json(path);
    if (!record) return 2;
    if (record->string_at("schema") != opto::obs::kBenchRecordSchema) {
      std::fprintf(stderr, "bench_compare: '%s' is not a bench record\n",
                   path.c_str());
      return 2;
    }
    // A record with neither counters nor metrics measures nothing; a
    // bench that died before recording must fail the suite loudly, not
    // roll up as a silent success.
    const JsonValue* counters = record->find("counters");
    const JsonValue* metrics = record->find("metrics");
    const bool has_counters =
        counters != nullptr && counters->is_object() &&
        !counters->members.empty();
    const bool has_metrics = metrics != nullptr && metrics->is_object() &&
                             !metrics->members.empty();
    if (!has_counters && !has_metrics) {
      std::fprintf(stderr,
                   "bench_compare: '%s' (label '%s') has no counters or "
                   "metrics — the bench recorded nothing\n",
                   path.c_str(), record->string_at("label").c_str());
      return 1;
    }
    records.push_back(std::move(*record));
  }
  const JsonValue suite =
      opto::obs::make_suite(opto::slugify(label), scale, std::move(records));
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_compare: cannot write '%s'\n",
                 out_path.c_str());
    return 2;
  }
  opto::write_json(out, suite);
  out << '\n';
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), inputs.size());
  return 0;
}

int run_compare(int argc, char** argv) {
  opto::obs::CompareOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--warn-only") {
      options.warn_only = true;
    } else if (arg == "--threshold") {
      const auto value = parse_flag_value(argc, argv, i);
      if (!value || *value < 0.0) return usage(argv[0]);
      options.threshold = *value;
    } else if (arg == "--blowup") {
      const auto value = parse_flag_value(argc, argv, i);
      if (!value || *value <= 1.0) return usage(argv[0]);
      options.blowup = *value;
    } else if (arg == "--min-wall-ms") {
      const auto value = parse_flag_value(argc, argv, i);
      if (!value || *value < 0.0) return usage(argv[0]);
      options.min_wall_ns = *value * 1e6;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return usage(argv[0]);
  const auto baseline = load_json(files[0]);
  const auto current = load_json(files[1]);
  if (!baseline || !current) return 2;
  const auto report =
      opto::obs::compare_records(*baseline, *current, options);
  opto::obs::print_report(std::cout, report, options);
  return report.fail ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "--normalize") {
    if (argc != 3) return usage(argv[0]);
    return run_normalize(argv[2]);
  }
  if (mode == "--rollup") return run_rollup(argc, argv);
  return run_compare(argc, argv);
}
