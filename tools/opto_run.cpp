// opto_run — scenario DSL driver: text in, simulation out.
//
// Modes (mutually exclusive, first match wins):
//   --check FILE     parse + validate only; print "ok FILE" or the
//                    file:line:col diagnostic (exit 1)
//   --dump FILE      parse + validate, print the canonical JSON normal
//                    form ("opto.scenario/1") to stdout or --out
//   --run FILE       run the scenario (simulator / streaming engine /
//                    single pass per its mode), write the model-result
//                    JSON ("opto.scenario.result/1") to stdout or --out
//   --builtin NAME   run the hand-coded C++ equivalent of a committed
//                    example through the same run core (the other half
//                    of the scenario-smoke equivalence gate)
//   --list-builtins  print the builtin names, one per line
//
// FILE may be a .opto program or its canonical JSON dump — the loader
// auto-detects (first non-space byte '{' = JSON). A run also installs
// the standard BenchRecord-at-exit hook under the scenario label, so
// OPTO_RESULTS_DIR captures counters/phases exactly like the benches.
//
// Exit codes: 0 ok, 1 parse/validation/run failure, 2 usage / IO errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "opto/dsl/canonical.hpp"
#include "opto/dsl/runner.hpp"
#include "opto/dsl/validate.hpp"
#include "opto/obs/bench_record.hpp"
#include "opto/util/cli.hpp"

namespace {

bool read_file(const std::string& path, std::string& text) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  text = os.str();
  return true;
}

int write_output(const std::string& out, const std::string& text) {
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream file(out, std::ios::binary | std::ios::trunc);
  file << text;
  if (!file) {
    std::fprintf(stderr, "opto_run: cannot write %s\n", out.c_str());
    return 2;
  }
  return 0;
}

/// Loads FILE (.opto text or canonical JSON) into a validated spec.
/// Returns 0/1/2 like main; on success `spec` is filled.
int load(const std::string& path, opto::dsl::ScenarioSpec& spec) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "opto_run: cannot read %s\n", path.c_str());
    return 2;
  }
  opto::dsl::DslError error;
  if (!opto::dsl::load_scenario_text(text, path, spec, error)) {
    std::fprintf(stderr, "%s\n", error.format().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  opto::CliParser cli("opto_run",
                      "Scenario DSL driver: parse/validate .opto files, dump "
                      "their canonical JSON, or run them through the "
                      "simulator / streaming engine");
  const std::string* check =
      cli.add_string("check", "", "parse + validate FILE, report diagnostics");
  const std::string* dump =
      cli.add_string("dump", "", "print FILE's canonical JSON normal form");
  const std::string* run =
      cli.add_string("run", "", "run FILE, print the model-result JSON");
  const std::string* builtin = cli.add_string(
      "builtin", "", "run a hand-coded scenario equivalent by name");
  const bool* list_builtins =
      cli.add_flag("list-builtins", "print builtin names, one per line");
  const std::string* out =
      cli.add_string("out", "", "write the JSON output here instead of stdout");
  if (!cli.parse(argc, argv)) return 2;

  if (!check->empty()) {
    opto::dsl::ScenarioSpec spec;
    const int rc = load(*check, spec);
    if (rc == 0) std::printf("ok %s (scenario \"%s\")\n", check->c_str(),
                             spec.name.c_str());
    return rc;
  }

  if (!dump->empty()) {
    opto::dsl::ScenarioSpec spec;
    const int rc = load(*dump, spec);
    if (rc != 0) return rc;
    return write_output(*out, opto::dsl::canonical_text(spec));
  }

  if (!run->empty()) {
    opto::dsl::ScenarioSpec spec;
    const int rc = load(*run, spec);
    if (rc != 0) return rc;
    opto::obs::install_bench_record_at_exit(spec.label);
    opto::JsonValue result;
    std::string error;
    if (!opto::dsl::run_scenario(spec, result, error)) {
      std::fprintf(stderr, "opto_run: %s: %s\n", run->c_str(), error.c_str());
      return 1;
    }
    return write_output(*out, opto::dsl::result_text(result));
  }

  if (!builtin->empty()) {
    // Same label as the DSL run of the twin scenario (not a "-native"
    // variant): bench_compare pairs records by label, and the
    // scenario-smoke job diffs the two captures against each other.
    opto::obs::install_bench_record_at_exit(*builtin);
    opto::JsonValue result;
    std::string error;
    if (!opto::dsl::run_builtin(*builtin, result, error)) {
      std::fprintf(stderr, "opto_run: %s\n", error.c_str());
      return 2;
    }
    return write_output(*out, opto::dsl::result_text(result));
  }

  if (*list_builtins) {
    for (const std::string& name : opto::dsl::builtin_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }

  std::fprintf(stderr,
               "opto_run: pick a mode: --check FILE | --dump FILE | --run "
               "FILE | --builtin NAME | --list-builtins\n");
  return 2;
}
