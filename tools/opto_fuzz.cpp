// opto_fuzz — randomized differential fuzzing driver.
//
// Modes (mutually exclusive, first match wins):
//   --replay FILE      re-run one saved case, print the diff verdict
//   --replay-dir DIR   re-run every *.json case in DIR (the corpus)
//   --dump INDEX       print case INDEX of the seed's stream as canonical
//                      JSON (used by the cross-process determinism test)
//   --dsl              fuzz the scenario grammar: --cases generated
//                      programs must parse + canonical-round-trip, and
//                      the same count of mutated programs must fail with
//                      diagnostics instead of crashing
//   --distill KIND     search the stream for a case exhibiting KIND
//                      (kill | truncate | retune | fault | corrupt |
//                      components | rwa), shrink it while preserving the
//                      behavior, write it to --out — this is how corpus
//                      anchors are made
//   (default)          fuzz: generate --cases cases from --seed, diff
//                      each, shrink and save any failure to --out
//
// Exit codes: 0 all clean, 1 divergence found (or behavior not found,
// for --distill), 2 usage / file errors.
#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "opto/dsl/canonical.hpp"
#include "opto/dsl/validate.hpp"
#include "opto/testlib/differ.hpp"
#include "opto/testlib/dsl_gen.hpp"
#include "opto/testlib/fuzz_case.hpp"
#include "opto/testlib/generator.hpp"
#include "opto/testlib/shrink.hpp"
#include "opto/util/cli.hpp"

namespace {

using opto::testlib::CasePredicate;
using opto::testlib::DiffReport;
using opto::testlib::FuzzCase;
using opto::testlib::GenOptions;
using opto::testlib::ShrinkOptions;
using opto::testlib::ShrinkStats;

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << bytes;
  return static_cast<bool>(out);
}

/// Running tallies of what the generated stream actually exercised, so a
/// "clean" campaign can show it covered the interesting regimes rather
/// than silently generating trivia.
struct Coverage {
  std::uint64_t cases = 0;
  std::uint64_t with_kills = 0;
  std::uint64_t with_truncations = 0;
  std::uint64_t with_retunes = 0;
  std::uint64_t with_fault_kills = 0;
  std::uint64_t with_corruption = 0;
  std::uint64_t with_contention = 0;
  std::uint64_t priority_rule = 0;
  std::uint64_t with_conversion = 0;
  std::uint64_t with_faults = 0;
  std::uint64_t multi_wavelength = 0;
  std::uint64_t reference_checked = 0;
  /// Contention-decomposition regimes (sharded-engine coverage): cases
  /// whose collection splits into ≥ 2 components, and the extreme where
  /// every path is its own component.
  std::uint64_t multi_component = 0;
  std::uint64_t all_singleton = 0;
  /// RWA strategy-stage regimes: cases whose endpoints fed the strategy
  /// zoo at all, and cases where at least one strategy blocked a request
  /// in round 1 (the retry path of the round driver).
  std::uint64_t rwa_checked = 0;
  std::uint64_t rwa_blocking = 0;

  void add(const FuzzCase& fuzz, const DiffReport& report) {
    ++cases;
    if (const auto built = opto::testlib::build_case(fuzz)) {
      const opto::ComponentDecomposition& dec = built->collection.components();
      if (dec.count > 1) ++multi_component;
      if (dec.count > 1 && dec.count == built->collection.size())
        ++all_singleton;
    }
    if (report.metrics.killed > 0) ++with_kills;
    if (report.metrics.truncated > 0) ++with_truncations;
    if (report.metrics.retunes > 0) ++with_retunes;
    if (report.metrics.fault_kills > 0) ++with_fault_kills;
    if (report.metrics.corrupted > 0) ++with_corruption;
    if (report.metrics.contentions > 0) ++with_contention;
    if (fuzz.rule == opto::ContentionRule::Priority) ++priority_rule;
    if (fuzz.conversion != opto::ConversionMode::None) ++with_conversion;
    if (fuzz.has_faults) ++with_faults;
    if (fuzz.bandwidth > 1) ++multi_wavelength;
    if (!fuzz.has_faults || !fuzz.faults.any_fault()) ++reference_checked;
    if (report.rwa_requests > 0) ++rwa_checked;
    if (report.rwa_blocked > 0) ++rwa_blocking;
  }

  void print() const {
    std::printf(
        "coverage: %" PRIu64 " cases | kills %" PRIu64 " | truncations %"
        PRIu64 " | retunes %" PRIu64 " | fault-kills %" PRIu64
        " | corruption %" PRIu64 "\n"
        "          contention %" PRIu64 " | priority-rule %" PRIu64
        " | conversion %" PRIu64 " | fault-plans %" PRIu64
        " | multi-lambda %" PRIu64 " | vs-reference %" PRIu64 "\n"
        "          multi-component %" PRIu64 " | all-singleton %" PRIu64
        " | rwa-checked %" PRIu64 " | rwa-blocking %" PRIu64 "\n",
        cases, with_kills, with_truncations, with_retunes, with_fault_kills,
        with_corruption, with_contention, priority_rule, with_conversion,
        with_faults, multi_wavelength, reference_checked, multi_component,
        all_singleton, rwa_checked, rwa_blocking);
  }
};

/// The behavior a --distill run searches for and preserves while
/// shrinking. Every distilled anchor must also diff clean — the corpus
/// pins agreed-upon behavior, not open disagreements.
std::optional<CasePredicate> behavior_predicate(const std::string& kind) {
  if (kind == "kill")
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      return report.ok() && report.metrics.killed > 0;
    }};
  if (kind == "truncate")
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      return report.ok() && report.metrics.truncated_arrivals > 0;
    }};
  if (kind == "retune")
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      return report.ok() && report.metrics.retunes > 0;
    }};
  if (kind == "fault")
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      return report.ok() && report.metrics.fault_kills > 0;
    }};
  if (kind == "corrupt")
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      return report.ok() && report.metrics.corrupted_arrivals > 0;
    }};
  if (kind == "components")
    // A multi-component collection with real contention inside it: the
    // anchor that pins the sharded engine's scatter/merge byte-for-byte.
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      if (!report.ok() || report.metrics.contentions == 0) return false;
      const auto built = opto::testlib::build_case(fuzz);
      return built && built->collection.components().count >= 3;
    }};
  if (kind == "rwa")
    // A case where some strategy's round-1 band is too tight: blocking
    // plus a clean diff pins the round driver's retry path and the
    // strategy layer's replay/determinism invariants in the corpus.
    return CasePredicate{[](const FuzzCase& fuzz) {
      const DiffReport report = opto::testlib::diff_case(fuzz);
      return report.ok() && report.rwa_blocked > 0;
    }};
  return std::nullopt;
}

int replay_one(const std::string& path, bool strict_bytes, bool quiet) {
  const auto bytes = read_file(path);
  if (!bytes) {
    std::fprintf(stderr, "opto_fuzz: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string error;
  const auto fuzz = opto::testlib::parse_case(*bytes, &error);
  if (!fuzz) {
    std::fprintf(stderr, "opto_fuzz: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  if (strict_bytes && opto::testlib::canonical_json(*fuzz) != *bytes) {
    std::fprintf(stderr,
                 "opto_fuzz: %s is not in canonical form (re-save it with "
                 "--replay + --out, or rewrite via canonical_json)\n",
                 path.c_str());
    return 2;
  }
  const DiffReport report = opto::testlib::diff_case(*fuzz);
  if (!report.ok()) {
    std::printf("FAIL %s\n%s", path.c_str(), report.summary().c_str());
    return 1;
  }
  if (!quiet)
    std::printf("ok   %s (delivered %" PRIu64 ", killed %" PRIu64
                ", truncated arrivals %" PRIu64 ")\n",
                path.c_str(), report.metrics.delivered,
                report.metrics.killed, report.metrics.truncated_arrivals);
  return 0;
}

int replay_dir(const std::string& dir, bool strict_bytes, bool quiet) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "opto_fuzz: cannot list %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "opto_fuzz: no *.json cases in %s\n", dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  int worst = 0;
  for (const std::string& file : files)
    worst = std::max(worst, replay_one(file, strict_bytes, quiet));
  if (worst == 0 && !quiet)
    std::printf("corpus clean: %zu case(s)\n", files.size());
  return worst;
}

std::string sanitize_component(std::string text) {
  for (char& c : text)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return text;
}

/// Grammar fuzzing (--dsl): per case, one *generated* program that must
/// parse, validate, and canonical-dump to a fixed point, plus one
/// *mutated* program that must terminate in either a clean parse (then
/// also a fixed point) or a file:line:col diagnostic — never a crash,
/// hang, or leak (the sanitizer legs enforce the last part).
int dsl_fuzz(std::uint64_t seed, std::uint64_t cases, const std::string& out,
             long long progress_every, bool quiet) {
  std::uint64_t mutants_accepted = 0, mutants_rejected = 0, failures = 0;

  const auto save_repro = [&](std::uint64_t index, const std::string& text,
                              const std::string& why) {
    ++failures;
    const std::string path = out + "/dsl_repro_seed" + std::to_string(seed) +
                             "_case" + std::to_string(index) + ".opto";
    std::printf("DSL FAILURE at seed %" PRIu64 " case %" PRIu64 ": %s\n",
                seed, index, why.c_str());
    if (!write_file(path, text))
      std::fprintf(stderr, "opto_fuzz: cannot write %s\n", path.c_str());
    else
      std::printf("  program saved -> %s\n", path.c_str());
  };

  /// Dump → reload the dump as canonical JSON → dump again; both dumps
  /// must be byte-identical. Returns false (with `why`) on any step.
  const auto fixed_point = [](const opto::dsl::ScenarioSpec& spec,
                              std::string& why) {
    const std::string dump = opto::dsl::canonical_text(spec);
    opto::dsl::ScenarioSpec reloaded;
    opto::dsl::DslError error;
    if (!opto::dsl::load_scenario_text(dump, "<dump>", reloaded, error)) {
      why = "canonical dump does not reload: " + error.format();
      return false;
    }
    if (opto::dsl::canonical_text(reloaded) != dump) {
      why = "parse -> dump -> parse is not a fixed point";
      return false;
    }
    return true;
  };

  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::string program = opto::testlib::generate_program(seed, i);
    opto::dsl::ScenarioSpec spec;
    opto::dsl::DslError error;
    std::string why;
    if (!opto::dsl::load_opto_text(program, "<generated>", spec, error)) {
      save_repro(i, program, "generated program rejected: " + error.format());
    } else if (!fixed_point(spec, why)) {
      save_repro(i, program, why);
    }

    const std::string mutant = opto::testlib::mutate_program(seed, i);
    opto::dsl::ScenarioSpec mutated;
    opto::dsl::DslError mutant_error;
    if (opto::dsl::load_opto_text(mutant, "<mutated>", mutated,
                                  mutant_error)) {
      ++mutants_accepted;
      if (!fixed_point(mutated, why))
        save_repro(i, mutant, "mutated program parsed but " + why);
    } else {
      ++mutants_rejected;
      if (mutant_error.message.empty())
        save_repro(i, mutant, "rejection carried an empty diagnostic");
    }

    if (progress_every > 0 &&
        (i + 1) % static_cast<std::uint64_t>(progress_every) == 0)
      std::printf("... %" PRIu64 "/%" PRIu64 " programs, %" PRIu64
                  " failure(s)\n",
                  i + 1, cases, failures);
  }

  if (!quiet)
    std::printf("dsl coverage: %" PRIu64 " generated (all must be valid) | "
                "%" PRIu64 " mutants accepted | %" PRIu64
                " mutants rejected with diagnostics\n",
                cases, mutants_accepted, mutants_rejected);
  if (failures > 0) {
    std::printf("%" PRIu64 " DSL failure(s) found\n", failures);
    return 1;
  }
  if (!quiet)
    std::printf("dsl clean: %" PRIu64 " case(s), seed %" PRIu64 "\n", cases,
                seed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  opto::CliParser cli(
      "opto_fuzz",
      "Differential fuzzer: generated cases run through the production "
      "simulator (twice), the invariant validators, and the reference "
      "engine; disagreements are shrunk to minimal JSON reproducers");
  const std::string* seed_text =
      cli.add_string("seed", "1", "generator stream seed (decimal uint64)");
  const long long* cases = cli.add_int("cases", 1000, "cases to generate");
  const std::string* replay =
      cli.add_string("replay", "", "re-run one saved case file");
  const std::string* replay_dir_flag =
      cli.add_string("replay-dir", "", "re-run every *.json case in a dir");
  const long long* dump = cli.add_int(
      "dump", -1, "print case INDEX of the stream as canonical JSON");
  const bool* dsl = cli.add_flag(
      "dsl", "fuzz the scenario grammar instead of the simulator: generated "
             "programs must round-trip, mutated ones must fail cleanly");
  const std::string* distill = cli.add_string(
      "distill", "",
      "find + shrink a clean case showing a behavior: kill | truncate | "
      "retune | fault | corrupt | components | rwa");
  const std::string* out =
      cli.add_string("out", "fuzz-out", "directory for repro files");
  const long long* stop_after =
      cli.add_int("stop-after", 1, "stop after this many divergences");
  const long long* shrink_budget = cli.add_int(
      "shrink-budget", 4000, "max predicate evaluations while shrinking");
  const long long* progress_every = cli.add_int(
      "progress-every", 0, "print progress every N cases (0 = off)");
  const bool* strict_bytes = cli.add_flag(
      "strict-bytes", "replay: require files to be canonical bytes");
  const bool* quiet = cli.add_flag("quiet", "only print failures");
  // Generator knobs (defaults mirror GenOptions).
  const long long* max_nodes = cli.add_int("max-nodes", 20, "topology size cap");
  const long long* max_paths = cli.add_int("max-paths", 16, "path count cap");
  const long long* max_bandwidth =
      cli.add_int("max-bandwidth", 4, "wavelength count cap");
  const long long* max_length = cli.add_int("max-length", 9, "worm flit cap");
  const double* fault_prob =
      cli.add_double("fault-prob", 0.25, "P(case carries a fault plan)");
  const double* conversion_prob = cli.add_double(
      "conversion-prob", 0.45, "P(case uses converting couplers)");
  if (!cli.parse(argc, argv)) return 2;

  const auto seed = parse_u64(*seed_text);
  if (!seed) {
    std::fprintf(stderr, "opto_fuzz: --seed must be a decimal uint64\n");
    return 2;
  }
  GenOptions gen;
  gen.max_nodes = static_cast<opto::NodeId>(std::max(1LL, *max_nodes));
  gen.max_paths = static_cast<std::uint32_t>(std::max(0LL, *max_paths));
  gen.max_bandwidth =
      static_cast<std::uint16_t>(std::clamp(*max_bandwidth, 1LL, 1024LL));
  gen.max_length = static_cast<std::uint32_t>(std::max(1LL, *max_length));
  gen.fault_probability = std::clamp(*fault_prob, 0.0, 1.0);
  gen.conversion_probability = std::clamp(*conversion_prob, 0.0, 1.0);
  ShrinkOptions shrink;
  shrink.max_checks =
      static_cast<std::uint32_t>(std::clamp(*shrink_budget, 1LL, 1000000LL));

  if (!replay->empty()) return replay_one(*replay, *strict_bytes, *quiet);
  if (!replay_dir_flag->empty())
    return replay_dir(*replay_dir_flag, *strict_bytes, *quiet);

  if (*dump >= 0) {
    const FuzzCase fuzz = opto::testlib::generate_case(
        *seed, static_cast<std::uint64_t>(*dump), gen);
    std::fputs(opto::testlib::canonical_json(fuzz).c_str(), stdout);
    return 0;
  }

  std::error_code ec;
  std::filesystem::create_directories(*out, ec);  // best-effort; write checks

  if (*dsl)
    return dsl_fuzz(*seed, static_cast<std::uint64_t>(std::max(0LL, *cases)),
                    *out, *progress_every, *quiet);

  if (!distill->empty()) {
    const auto predicate = behavior_predicate(*distill);
    if (!predicate) {
      std::fprintf(stderr,
                   "opto_fuzz: unknown --distill behavior '%s' (want kill | "
                   "truncate | retune | fault | corrupt | components | "
                   "rwa)\n",
                   distill->c_str());
      return 2;
    }
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(*cases); ++i) {
      FuzzCase fuzz = opto::testlib::generate_case(*seed, i, gen);
      if (!(*predicate)(fuzz)) continue;
      ShrinkStats stats;
      const FuzzCase small = opto::testlib::shrink_case(
          std::move(fuzz), *predicate, shrink, &stats);
      const std::string path = *out + "/distilled_" +
                               sanitize_component(*distill) + ".json";
      if (!write_file(path, opto::testlib::canonical_json(small))) {
        std::fprintf(stderr, "opto_fuzz: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("distilled '%s' from case %" PRIu64 " -> %s "
                  "(%u checks, %u improvements)\n",
                  distill->c_str(), i, path.c_str(), stats.checks,
                  stats.improvements);
      return 0;
    }
    std::fprintf(stderr,
                 "opto_fuzz: no case in %lld tries showed '%s' — raise "
                 "--cases or loosen generator caps\n",
                 *cases, distill->c_str());
    return 1;
  }

  // Default mode: the fuzz loop.
  Coverage coverage;
  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(*cases); ++i) {
    const FuzzCase fuzz = opto::testlib::generate_case(*seed, i, gen);
    const DiffReport report = opto::testlib::diff_case(fuzz);
    coverage.add(fuzz, report);
    if (*progress_every > 0 &&
        (i + 1) % static_cast<std::uint64_t>(*progress_every) == 0)
      std::printf("... %" PRIu64 "/%lld cases, %" PRIu64 " failure(s)\n",
                  i + 1, *cases, failures);
    if (report.ok()) continue;

    ++failures;
    std::printf("DIVERGENCE at seed %" PRIu64 " case %" PRIu64 ":\n%s",
                *seed, i, report.summary().c_str());
    const CasePredicate still_failing = [](const FuzzCase& candidate) {
      return !opto::testlib::diff_case(candidate).ok();
    };
    ShrinkStats stats;
    const FuzzCase small =
        opto::testlib::shrink_case(fuzz, still_failing, shrink, &stats);
    std::ostringstream name;
    name << *out << "/repro_seed" << *seed << "_case" << i << ".json";
    if (!write_file(name.str(), opto::testlib::canonical_json(small))) {
      std::fprintf(stderr, "opto_fuzz: cannot write %s\n",
                   name.str().c_str());
      return 2;
    }
    std::printf("  shrunk (%u checks, %u improvements) -> %s\n"
                "  replay with: opto_fuzz --replay %s\n",
                stats.checks, stats.improvements, name.str().c_str(),
                name.str().c_str());
    if (failures >= static_cast<std::uint64_t>(std::max(1LL, *stop_after)))
      break;
  }

  if (!*quiet) coverage.print();
  if (failures > 0) {
    std::printf("%" PRIu64 " divergence(s) found\n", failures);
    return 1;
  }
  if (!*quiet)
    std::printf("clean: %" PRIu64 " case(s), seed %" PRIu64 "\n",
                coverage.cases, *seed);
  return 0;
}
