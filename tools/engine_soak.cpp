// engine_soak — long-running streaming-engine soak with self-checks.
//
// Drives the engine through a load sweep on a ring, many arrivals per
// point, and fails (exit 1) unless:
//   * accounting closes at every point (offered = admitted + blocked),
//   * blocking probability is monotone non-decreasing in offered load,
//   * the connection table's high-water mark stays orders of magnitude
//     below the arrival count (memory bounded by *active* connections),
//   * the process high-water RSS (VmHWM) stays under --rss-limit-mb.
//
// Nightly CI runs this at >= 100k arrivals per point; locally it scales
// to millions (the engine is O(active) in memory, so arrivals only cost
// time). Exit codes: 0 clean, 1 a check failed, 2 usage errors.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "opto/engine/engine.hpp"
#include "opto/graph/ring.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

namespace {

/// High-water resident set size in MiB from /proc/self/status, or 0 when
/// unavailable (non-Linux); 0 skips the RSS check rather than failing.
double rss_high_water_mib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    double kib = 0.0;
    fields >> kib;
    return kib / 1024.0;
  }
  return 0.0;
}

std::vector<double> parse_rates(const std::string& text) {
  std::vector<double> rates;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + item.size() || value <= 0.0) return {};
    rates.push_back(value);
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("engine_soak",
                "Streaming-engine soak: load sweep with RSS/monotonicity "
                "self-checks");
  const auto arrivals =
      cli.add_int("arrivals", 100000, "arrivals per load point");
  const auto ring_size = cli.add_int("ring", 8, "ring size (nodes)");
  const auto bandwidth = cli.add_int("bandwidth", 4, "wavelengths per fiber");
  const auto seed = cli.add_int("seed", 1, "base RNG seed");
  const auto rates = cli.add_string(
      "rates", "8,32,128", "comma-separated offered arrival rates");
  const auto rss_limit =
      cli.add_double("rss-limit-mb", 512.0, "VmHWM ceiling in MiB (0 = off)");
  if (!cli.parse(argc, argv)) return 2;

  const std::vector<double> sweep = parse_rates(*rates);
  if (sweep.empty() || *arrivals < 1 || *ring_size < 3 || *bandwidth < 1) {
    std::cerr << "engine_soak: bad --rates/--arrivals/--ring/--bandwidth\n";
    return 2;
  }

  auto ring = std::make_shared<Graph>(make_ring(static_cast<NodeId>(*ring_size)));
  Table table("engine soak: ring-" + std::to_string(*ring_size) + ", B=" +
              std::to_string(*bandwidth) + ", " + std::to_string(*arrivals) +
              " arrivals/point");
  table.set_header({"rate", "offered", "blocked", "blocking", "peak active",
                    "rounds", "req/s", "VmHWM MiB"});

  bool ok = true;
  double previous_blocking = -1.0;
  for (const double rate : sweep) {
    EngineConfig config;
    config.protocol.bandwidth = static_cast<std::uint16_t>(*bandwidth);
    config.traffic.rate = rate;
    config.round_interval = 0.02;
    config.arrivals = static_cast<std::uint64_t>(*arrivals);
    config.warmup = config.arrivals / 10;

    Engine engine(ring, config, static_cast<std::uint64_t>(*seed));
    const EngineResult result = engine.run();
    const double rss = rss_high_water_mib();

    auto row = table.row();
    row.cell(rate)
        .cell(result.offered)
        .cell(result.blocked)
        .cell(result.blocking_probability)
        .cell(result.peak_active)
        .cell(result.rounds)
        .cell(result.requests_per_s)
        .cell(rss);

    if (result.offered != result.admitted + result.blocked) {
      std::cerr << "FAIL: accounting leak at rate " << rate << ": offered "
                << result.offered << " != admitted " << result.admitted
                << " + blocked " << result.blocked << "\n";
      ok = false;
    }
    if (result.blocking_probability + 1e-9 < previous_blocking) {
      std::cerr << "FAIL: blocking not monotone in load at rate " << rate
                << " (" << result.blocking_probability << " < "
                << previous_blocking << ")\n";
      ok = false;
    }
    previous_blocking = result.blocking_probability;
    // Bounded memory: the table high-water mark must track active
    // circuits (~rate Erlangs), not the arrival count.
    if (result.peak_active * 20 > result.offered + 1000) {
      std::cerr << "FAIL: peak_active " << result.peak_active
                << " not orders of magnitude below offered "
                << result.offered << " at rate " << rate << "\n";
      ok = false;
    }
    if (*rss_limit > 0.0 && rss > *rss_limit) {
      std::cerr << "FAIL: VmHWM " << rss << " MiB exceeds limit "
                << *rss_limit << " MiB at rate " << rate << "\n";
      ok = false;
    }
  }

  table.print(std::cout);
  std::cout << (ok ? "engine soak: all checks passed\n"
                   : "engine soak: CHECKS FAILED\n");
  return ok ? 0 : 1;
}
