// E14 — dynamic-traffic blocking probability (Ramaswami–Sivarajan [34],
// from the paper's related work §1.2).
//
// Connections arrive at random and hold lightpaths; a request is blocked
// when no wavelength is available along its route. Reproduced claims:
//   * blocking grows with offered load,
//   * wavelength conversion lowers blocking (continuity constraint
//     dropped) — the dynamic-traffic counterpart of E9,
//   * the conversion gain is largest for long routes (more links must
//     agree on one wavelength).
#include <iostream>

#include "bench_common.hpp"
#include "opto/core/dynamic_traffic.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E14: dynamic RWA blocking probability ([34] setting)",
      "blocking vs load, with and without wavelength conversion");

  struct Network {
    std::string name;
    Graph graph;
  };
  const Network networks[] = {
      {"ring-16 (long routes)", make_ring(16)},
      {"torus-5x5 (short routes)", make_torus({5, 5}).graph},
  };

  for (const auto& network : networks) {
    Table table(network.name + ", B=8");
    table.set_header({"offered load", "blocking (no conv)",
                      "blocking (conv)", "conv gain", "utilization",
                      "mean route"});
    for (const double load : {8.0, 16.0, 32.0, 64.0, 128.0}) {
      DynamicTrafficConfig config;
      config.bandwidth = 8;
      config.offered_load = load;
      config.arrivals = scaled_trials(40000);
      config.warmup = config.arrivals / 8;

      config.conversion = false;
      const auto plain = simulate_dynamic_traffic(network.graph, config, 17);
      config.conversion = true;
      const auto converted =
          simulate_dynamic_traffic(network.graph, config, 17);

      // Conversion gain is a ratio: with zero converted blocking it is
      // unbounded ("inf" when plain still blocks) or undefined ("n/a"
      // when neither arm blocks) — printing 0.0 would read as a
      // conversion *loss*.
      auto row = table.row();
      row.cell(load)
          .cell(plain.blocking_probability)
          .cell(converted.blocking_probability);
      if (converted.blocking_probability > 0)
        row.cell(plain.blocking_probability / converted.blocking_probability);
      else
        row.cell(plain.blocking_probability > 0 ? "inf" : "n/a");
      row.cell(plain.utilization).cell(plain.mean_route_length);
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: blocking monotone in load; conversion gain"
               " > 1 (or inf/n-a on\nzero-blocking rows, where the ratio is"
               " unbounded or undefined) and larger on the\nring (longer"
               " routes make wavelength continuity harder to satisfy).\n";
  return 0;
}
