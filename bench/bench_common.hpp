// Shared helpers for the experiment benches.
#pragma once

#include <cstdint>

#include "opto/benchsupport/experiment.hpp"
#include "opto/core/schedule.hpp"
#include "opto/paths/path_collection.hpp"

namespace opto::bench {

inline ProblemShape shape_of(const PathCollection& collection,
                             std::uint32_t worm_length,
                             std::uint16_t bandwidth) {
  ProblemShape shape;
  shape.size = collection.size();
  shape.dilation = collection.dilation();
  shape.path_congestion = collection.path_congestion();
  shape.worm_length = worm_length;
  shape.bandwidth = bandwidth;
  return shape;
}

/// Schedule factory that ignores the collection (fixed Δ every round).
inline ScheduleFactory fixed_schedule_factory(SimTime delta) {
  return [delta](const PathCollection&) {
    return std::unique_ptr<DeltaSchedule>(new FixedSchedule(delta));
  };
}

inline ScheduleFactory no_delay_schedule_factory() {
  return [](const PathCollection&) {
    return std::unique_ptr<DeltaSchedule>(new NoDelaySchedule());
  };
}

}  // namespace opto::bench
