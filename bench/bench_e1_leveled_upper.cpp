// E1 — Main Theorem 1.1 (upper bound), leveled collections.
//
// Paper claim: on a leveled path collection, serve-first routers route all
// worms in T = O(√(log_α n) + loglog_β n) rounds and
// O(L·C̃/B + T(D + L + L·log n/B)) time, w.h.p.
//
// We route random permutations input→output on butterflies of growing
// dimension (the canonical leveled system) and report measured rounds and
// charged time next to the closed-form shapes. The expected signature:
// rounds grow extremely slowly with n and time stays within a constant
// factor of the bound.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E1: Main Thm 1.1 upper bound (leveled, serve-first)",
      "rounds ~ sqrt(log_a n) + loglog_b n; time ~ LC/B + T(D+L+Llog n/B)");

  for (const std::uint16_t bandwidth : {1, 4}) {
    for (const std::uint32_t L : {1u, 8u}) {
      Table table("butterfly permutations, B=" + std::to_string(bandwidth) +
                  ", L=" + std::to_string(L));
      table.set_header({"dim", "n", "C", "rounds mean", "rounds p95",
                        "T bound", "charged mean", "time bound",
                        "time/bound"});
      for (const std::uint32_t dim : {4u, 5u, 6u, 7u, 8u, 9u}) {
        CollectionFactory factory = [dim](std::uint64_t seed) {
          auto topo =
              std::make_shared<ButterflyTopology>(make_butterfly(dim));
          Rng rng(seed);
          const auto perm = random_permutation(topo->rows(), rng);
          std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
          for (std::uint32_t r = 0; r < topo->rows(); ++r)
            requests.emplace_back(r, perm[r]);
          return butterfly_io_collection(topo, requests);
        };
        ProtocolConfig config;
        config.bandwidth = bandwidth;
        config.worm_length = L;
        config.max_rounds = 2000;

        const std::size_t trials = scaled_trials(dim >= 8 ? 10 : 30);
        const auto aggregate = run_trials(
            factory, paper_schedule_factory(L, bandwidth), config, trials, 11);

        ProblemShape shape;
        shape.size = 1u << dim;
        shape.dilation = dim;
        shape.path_congestion =
            static_cast<std::uint32_t>(aggregate.path_congestion.mean());
        shape.worm_length = L;
        shape.bandwidth = bandwidth;

        table.row()
            .cell(dim)
            .cell(static_cast<long long>(1u << dim))
            .cell(aggregate.path_congestion.mean())
            .cell(aggregate.rounds.mean())
            .cell(aggregate.rounds.quantile(0.95))
            .cell(rounds_leveled(shape))
            .cell(aggregate.charged_time.mean())
            .cell(runtime_leveled(shape))
            .cell(aggregate.charged_time.mean() / runtime_leveled(shape));
      }
      print_experiment_table(table);
    }
  }
  std::cout << "Expected shape: 'rounds mean' nearly flat in n (double-log /"
               " sqrt-log growth);\n'time/bound' roughly constant across"
               " rows.\n";
  return 0;
}
