// E17 — streaming traffic engine: open arrivals over rolling
// Trial-and-Failure batches (DESIGN.md §8).
//
// E14 models dynamic traffic with an oracle admission check; here every
// request pays the full distributed setup instead: it joins the next
// protocol round, contends for wavelengths, retries after losses, and
// holds capacity only once its worm round-trips. Reproduced shape:
//   * measured blocking on a single link matches Erlang B (M/M/B/B) —
//     the engine's loss-call-cleared admission is calibrated against
//     closed-form teletraffic theory,
//   * blocking grows with offered load; wavelength conversion lowers it
//     (the open-workload counterpart of E9/E14),
//   * setup-latency quantiles (in rounds) grow with load as contention
//     forces retries.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/engine/engine.hpp"
#include "opto/graph/ring.hpp"
#include "opto/util/table.hpp"

namespace {

/// Erlang-B loss probability via the stable recurrence
/// E_k = rho·E_{k-1} / (k + rho·E_{k-1}).
double erlang_b(double rho, int b) {
  double e = 1.0;
  for (int k = 1; k <= b; ++k) e = rho * e / (k + rho * e);
  return e;
}

}  // namespace

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E17: streaming traffic engine (open arrivals, rolling batches)",
      "Erlang-B cross-check; blocking vs load with and without conversion");

  {
    // Two nodes, one fiber: each direction is an independent M/M/B/B
    // system at half the total arrival rate.
    auto graph = std::make_shared<Graph>(2, "single-link");
    graph->add_edge(0, 1);

    Table table("single link, Erlang-B cross-check, B=8");
    table.set_header({"offered rho", "measured", "Erlang B", "rel err"});
    for (const double rho : {2.0, 4.0, 6.0}) {
      EngineConfig config;
      config.protocol.bandwidth = 8;
      config.traffic.process = ArrivalProcess::Poisson;
      config.traffic.rate = 2.0 * rho;
      config.mean_holding_time = 1.0;
      config.round_interval = 0.01;  // decision delay << holding time
      config.arrivals = scaled_trials(200000);
      config.warmup = config.arrivals / 10;

      Engine engine(graph, config, 42);
      const auto result = engine.run();
      const double analytic = erlang_b(rho, 8);
      auto row = table.row();
      row.cell(rho)
          .cell(result.blocking_probability)
          .cell(analytic)
          .cell(std::fabs(result.blocking_probability - analytic) / analytic);
    }
    print_experiment_table(table);
  }

  {
    auto ring = std::make_shared<Graph>(make_ring(8));
    Table table("ring-8, B=4, Poisson arrivals");
    table.set_header({"rate", "blocking (no conv)", "blocking (conv)",
                      "p50 rounds", "p99 rounds", "peak active"});
    for (const double rate : {8.0, 16.0, 32.0, 64.0}) {
      EngineConfig config;
      config.protocol.bandwidth = 4;
      config.traffic.rate = rate;
      config.round_interval = 0.02;
      config.arrivals = scaled_trials(60000);
      config.warmup = config.arrivals / 10;
      // One representative operating point publishes its gauges into the
      // BenchRecord (set_metric is last-write-wins, so exactly one row
      // records).
      config.record = rate == 32.0;

      Engine plain(ring, config, 99);
      const auto base = plain.run();

      EngineConfig converting = config;
      converting.record = false;
      converting.protocol.conversion = ConversionMode::Full;
      Engine conv(ring, converting, 99);
      const auto with = conv.run();

      auto row = table.row();
      row.cell(rate)
          .cell(base.blocking_probability)
          .cell(with.blocking_probability)
          .cell(base.p50_setup_rounds)
          .cell(base.p99_setup_rounds)
          .cell(base.peak_active);
    }
    print_experiment_table(table);
  }

  std::cout << "Expected shape: single-link blocking within a few percent of"
               " Erlang B;\nblocking monotone in load; conversion lowers"
               " blocking at light-to-moderate\nload (deep saturation blocks"
               " either way); setup-round quantiles grow with\nload.\n";
  return 0;
}
