// E11 — bounded-hop routing (§4 extension; hop-congestion trade-offs of
// Kranakis et al. [22]).
//
// Electronic hop buffers every `h` links split each path into segments;
// each round routes one segment per worm. Small h: cheap, low-collision
// rounds but ⌈D/h⌉ of them per worm; large h: the plain protocol.
// Expected: a U-shaped total-time curve in h on long-path workloads —
// the optimum sits between the extremes.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/core/multi_hop.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E11: bounded-hop ablation (segments of h links)",
      "total time vs hop spacing: the [22] hop-congestion trade-off");

  const std::uint32_t L = 4;
  const std::uint16_t B = 1;

  // Long 1-D mesh: dilation is large, congestion moderate — the regime
  // where hops pay.
  const std::uint32_t side = 64;
  CollectionFactory factory = [side](std::uint64_t seed) {
    auto topo = std::make_shared<MeshTopology>(make_mesh({side}));
    Rng rng(seed);
    return mesh_random_function(topo, rng);
  };

  // Two delay regimes. With the paper's self-tuned Δ_t, plain routing is
  // already nearly collision-free, so hops only add rounds; with a
  // *constrained* delay range (a per-round latency budget far below
  // L·C̃/B) long paths thrash and segmentation pays — the trade-off of
  // [22] appears as a crossover between the two tables.
  struct Regime {
    std::string name;
    bool paper_schedule;
    SimTime fixed_delta;
  };
  for (const Regime& regime :
       {Regime{"paper schedule (unconstrained delays)", true, 0},
        Regime{"constrained delays (fixed Delta = 4L)", false, 4 * L}}) {
    Table table(regime.name);
    table.set_header({"hop spacing", "segments max", "rounds mean",
                      "charged mean", "vs plain", "failures"});
    double plain_time = 0.0;
    for (const std::uint32_t spacing : {64u, 32u, 16u, 8u, 4u, 2u}) {
      const std::size_t trials = scaled_trials(10);
      SampleSet rounds, charged;
      std::uint32_t max_segments = 0;
      std::uint32_t failures = 0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto collection = factory(1000 + trial);
        MultiHopConfig config;
        config.hop_spacing = spacing;
        config.bandwidth = B;
        config.worm_length = L;
        config.max_rounds = 20000;

        // Paper schedule sized for the *segment* problem (dilation =
        // spacing); fixed schedule models the latency budget.
        ProblemShape shape;
        shape.size = collection.size();
        shape.dilation = std::min(spacing, collection.dilation());
        shape.path_congestion = collection.path_congestion();
        shape.worm_length = L;
        shape.bandwidth = B;
        PaperSchedule paper(shape);
        FixedSchedule fixed(std::max<SimTime>(1, regime.fixed_delta));
        DeltaSchedule& schedule =
            regime.paper_schedule ? static_cast<DeltaSchedule&>(paper)
                                  : static_cast<DeltaSchedule&>(fixed);

        MultiHopTrialAndFailure protocol(collection, config, schedule);
        const auto result = protocol.run(2000 + trial);
        if (!result.success) {
          ++failures;
          continue;
        }
        rounds.add(static_cast<double>(result.rounds_used));
        charged.add(static_cast<double>(result.total_charged_time));
        max_segments = std::max(max_segments, result.max_segments);
      }
      if (spacing == 64u) plain_time = charged.count() ? charged.mean() : 0.0;
      table.row()
          .cell(spacing)
          .cell(max_segments)
          .cell(rounds.count() ? rounds.mean() : -1.0)
          .cell(charged.count() ? charged.mean() : -1.0)
          .cell(plain_time > 0 && charged.count()
                    ? charged.mean() / plain_time
                    : -1.0)
          .cell(failures);
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: with the paper schedule plain routing wins"
               " (hops only add rounds);\nunder a constrained delay budget"
               " the 'vs plain' column dips below 1 at moderate\nspacings —"
               " the [22] hop-congestion trade-off.\n";
  return 0;
}
