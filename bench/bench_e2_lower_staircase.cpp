// E2 — Main Theorems 1.1/1.3 (lower bound): Fig. 5 staircases and type-2
// bundles.
//
// Paper claim (§2.2): there is a leveled collection on which the protocol
// *needs* Ω(√(log_α n) + loglog_β n) rounds in expectation — staircases
// give the √log term (a blocking chain of length t survives t rounds with
// probability ((L−1)/(2BΔ))^Θ(t²)), bundles give the loglog term (residual
// congestion decays doubly exponentially, Lemma 2.10).
//
// Part 1 measures E[rounds] on collections of staircases as n grows: the
// growth should track √(log_α n) (we print the fit of rounds against it).
// Part 2 measures the per-round survivor counts in one fat bundle against
// Lemma 2.10's decay.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/analysis/congestion_theory.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/simulator.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E2: Main Thm 1.1/1.3 lower bound (staircases + bundles)",
      "staircase rounds ~ sqrt(log_a n); bundle decay ~ Lemma 2.10");

  const std::uint32_t L = 4;
  const SimTime delta = 2 * L;  // small fixed range keeps collisions common

  // ---- Part 1: staircases. ----
  Table staircase_table("staircase collections (Fig. 5), serve-first, B=1");
  staircase_table.set_header(
      {"n paths", "k per structure", "rounds mean", "rounds p95",
       "sqrt(log_a n)", "rounds/sqrt"});
  std::vector<double> xs, ys;
  for (const std::uint32_t total : {64u, 256u, 1024u, 4096u}) {
    const auto k = static_cast<std::uint32_t>(
        std::lround(std::sqrt(std::log2(static_cast<double>(total)))));
    const std::uint32_t structures = total / k;
    CollectionFactory factory = [structures, k](std::uint64_t) {
      return make_staircase_collection(structures, k, 3 * L + 2, L);
    };
    ProtocolConfig config;
    config.worm_length = L;
    config.max_rounds = 5000;

    const auto aggregate =
        run_trials(factory, fixed_schedule_factory(delta), config,
                   scaled_trials(total >= 4096 ? 10 : 30), 22);

    ProblemShape shape;
    shape.size = structures * k;
    shape.dilation = 3 * L + 2;
    shape.path_congestion = 2;
    shape.worm_length = L;
    shape.bandwidth = 1;
    const double predictor = lower_rounds_staircase(shape);
    xs.push_back(predictor);
    ys.push_back(aggregate.rounds.mean());
    staircase_table.row()
        .cell(static_cast<long long>(structures * k))
        .cell(k)
        .cell(aggregate.rounds.mean())
        .cell(aggregate.rounds.quantile(0.95))
        .cell(predictor)
        .cell(aggregate.rounds.mean() / predictor);
  }
  print_experiment_table(staircase_table);
  const auto fit = fit_linear(xs, ys);
  std::cout << "linear fit of rounds vs sqrt(log_a n): slope="
            << Table::format_number(fit.slope)
            << " r2=" << Table::format_number(fit.r2)
            << "  (positive slope, good fit expected)\n\n";

  // ---- Part 1b: Lemma 2.8's chain-kill probability, measured. ----
  {
    Table chain_table(
        "single staircase, one round: P[first i worms all killed]");
    chain_table.set_header(
        {"i", "delta", "measured", "Lemma 2.8 bound", "measured/bound"});
    const std::uint32_t k = 5;
    for (const SimTime chain_delta : {SimTime{4}, SimTime{8}}) {
      const auto structure = make_staircase_collection(1, k, 3 * L + 2, L);
      Simulator sim(structure, {});
      const std::size_t chain_trials = scaled_trials(4000);
      std::vector<std::size_t> all_killed(k, 0);
      Rng rng(99 + static_cast<std::uint64_t>(chain_delta));
      for (std::size_t trial = 0; trial < chain_trials; ++trial) {
        std::vector<LaunchSpec> specs(k);
        for (PathId id = 0; id < k; ++id) {
          specs[id].path = id;
          specs[id].start_time = static_cast<SimTime>(
              rng.next_below(static_cast<std::uint64_t>(chain_delta)));
          specs[id].wavelength = 0;
          specs[id].length = L;
        }
        const auto result = sim.run(specs);
        for (std::uint32_t i = 1; i < k; ++i) {
          bool prefix_killed = true;
          for (PathId id = 0; id < i; ++id)
            prefix_killed &=
                result.worms[id].status == WormStatus::Killed;
          if (prefix_killed) ++all_killed[i];
        }
      }
      for (const std::uint32_t i : {1u, 2u, 4u}) {
        const double measured = static_cast<double>(all_killed[i]) /
                                static_cast<double>(chain_trials);
        const double bound = lemma28_chain_probability(
            L, 1.0, static_cast<double>(chain_delta), i);
        chain_table.row()
            .cell(i)
            .cell(chain_delta)
            .cell(measured)
            .cell(bound)
            .cell(bound > 0 ? measured / bound : 0.0);
      }
    }
    print_experiment_table(chain_table);
    std::cout << "Expected shape: measured >= bound on every row (Lemma 2.8"
                 " is a lower bound\non the blocking-chain event).\n\n";
  }

  // ---- Part 2: bundle decay vs Lemma 2.10. ----
  const std::uint32_t width = 512;
  const auto bundle = make_bundle_collection(1, width, 8);
  ProtocolConfig config;
  config.worm_length = L;
  config.max_rounds = 500;
  config.track_congestion = true;
  ProblemShape shape = shape_of(bundle, L, 1);
  PaperSchedule schedule(shape);
  TrialAndFailure protocol(bundle, config, schedule);
  const auto result = protocol.run(5);

  Table decay_table("bundle width 512: survivors per round vs theory");
  decay_table.set_header({"round", "delta", "active", "Lemma 2.4 C_t",
                          "Lemma 2.10 floor"});
  for (const auto& report : result.rounds)
    decay_table.row()
        .cell(report.round)
        .cell(report.delta)
        .cell(report.active_before)
        .cell(lemma24_congestion(width, report.round, width))
        .cell(lemma210_residual(width, 1.0,
                                static_cast<double>(schedule.delta(1)), L,
                                report.round));
  print_experiment_table(decay_table);
  std::cout << "Expected shape: 'active' sandwiched between the Lemma 2.10\n"
               "floor (lower bound) and a Lemma-2.4-style halving from"
               " above.\n";
  return 0;
}
