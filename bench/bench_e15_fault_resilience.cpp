// E15 — fault resilience of the Trial-and-Failure protocol.
//
// The protocol is inherently retry-based: a worm eliminated at a coupler
// is simply re-launched next round. This experiment injects the physical
// faults the paper abstracts away — dark fibers (periodic link outages),
// failed couplers, stuck wavelengths, flit corruption, lossy ack channels
// (sim/faults.hpp) — and measures how gracefully the protocol degrades.
//
// Expected shape: success rate (trials finishing within max_rounds)
// decays monotonically as the link-fault rate rises, while
// rounds-to-completion and charged time grow; the fault/contention loss
// split shows the extra rounds are indeed fault-driven. The RetryPolicy
// table quantifies the charged-time cost of bounded Δ-backoff: the fault
// pattern re-keys every round (epoch = round number), so faults are
// memoryless across retries and waiting longer buys nothing here —
// backoff is insurance against *correlated* outages, priced in Δ_t.
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

namespace {

using namespace opto;

/// Leveled workload: random permutations input->output on a butterfly.
CollectionFactory butterfly_factory(std::uint32_t dim) {
  return [dim](std::uint64_t seed) {
    auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
    Rng rng(seed);
    const auto perm = random_permutation(topo->rows(), rng);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
    for (std::uint32_t r = 0; r < topo->rows(); ++r)
      requests.emplace_back(r, perm[r]);
    return butterfly_io_collection(topo, requests);
  };
}

CollectionFactory mesh_factory(std::uint32_t side) {
  return [side](std::uint64_t seed) {
    auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
    Rng rng(seed);
    return mesh_random_function(topo, rng);
  };
}

/// Rounds samples are success-only, so they can be empty when every trial
/// at a fault rate fails; quantile() requires a nonempty set.
double p95_or_zero(const SampleSet& samples) {
  return samples.count() == 0 ? 0.0 : samples.quantile(0.95);
}

/// Shared knobs: bounded rounds so heavy-fault trials *fail* instead of
/// retrying forever — the success-rate axis of the resilience curve.
ProtocolConfig base_config() {
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 16;
  return config;
}

void resilience_curve(const std::string& title,
                      const CollectionFactory& factory,
                      std::uint64_t base_seed) {
  Table table(title);
  table.set_header({"link fault rate", "success rate", "rounds mean",
                    "rounds p95", "charged mean", "fault losses",
                    "contention losses"});
  for (const double rate : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    ProtocolConfig config = base_config();
    config.faults.link_outage_rate = rate;
    config.faults.outage_period = 64;
    config.faults.outage_duration = 32;
    const auto aggregate =
        run_trials(factory, paper_schedule_factory(config.worm_length,
                                                   config.bandwidth),
                   config, scaled_trials(30), base_seed);
    table.row()
        .cell(rate)
        .cell(aggregate.success_rate())
        .cell(aggregate.rounds.mean())
        .cell(p95_or_zero(aggregate.rounds))
        .cell(aggregate.charged_time.mean())
        .cell(aggregate.fault_losses.mean())
        .cell(aggregate.contention_losses.mean());
  }
  print_experiment_table(table);
}

}  // namespace

int main() {
  using namespace opto;

  print_experiment_banner(
      "E15: fault resilience (link/coupler outages, stuck lambdas, "
      "corruption, lossy acks)",
      "success rate degrades monotonically with fault rate; retries absorb "
      "transient faults at bounded round cost");

  resilience_curve("leveled (butterfly dim 6 permutations) vs link-fault rate",
                   butterfly_factory(6), 151);
  resilience_curve("8x8 mesh random functions vs link-fault rate",
                   mesh_factory(8), 152);

  // One fault dimension at a time, at representative severities.
  struct Mix {
    const char* name;
    FaultConfig faults;
  };
  std::vector<Mix> mixes;
  mixes.push_back({"none", {}});
  {
    FaultConfig f;
    f.link_outage_rate = 0.3;
    mixes.push_back({"link outages 0.3", f});
  }
  {
    FaultConfig f;
    f.coupler_outage_rate = 0.2;
    mixes.push_back({"coupler outages 0.2", f});
  }
  {
    FaultConfig f;
    f.stuck_wavelength_rate = 0.15;
    mixes.push_back({"stuck lambdas 0.15", f});
  }
  {
    FaultConfig f;
    f.corruption_rate = 0.05;
    mixes.push_back({"corruption 0.05", f});
  }
  {
    FaultConfig f;
    f.ack_drop_rate = 0.25;
    mixes.push_back({"ack drops 0.25", f});
  }
  {
    FaultConfig f;
    f.link_outage_rate = 0.2;
    f.coupler_outage_rate = 0.1;
    f.stuck_wavelength_rate = 0.1;
    f.corruption_rate = 0.02;
    f.ack_drop_rate = 0.1;
    mixes.push_back({"all combined", f});
  }
  Table kinds("fault-kind ablation, 8x8 mesh");
  kinds.set_header({"faults", "success rate", "rounds mean", "charged mean",
                    "fault losses", "contention losses", "ack drops/trial"});
  for (const Mix& mix : mixes) {
    ProtocolConfig config = base_config();
    config.max_rounds = 32;
    config.faults = mix.faults;
    const auto aggregate =
        run_trials(mesh_factory(8), paper_schedule_factory(config.worm_length,
                                                           config.bandwidth),
                   config, scaled_trials(30), 153);
    kinds.row()
        .cell(mix.name)
        .cell(aggregate.success_rate())
        .cell(aggregate.rounds.mean())
        .cell(aggregate.charged_time.mean())
        .cell(aggregate.fault_losses.mean())
        .cell(aggregate.contention_losses.mean())
        .cell(static_cast<double>(aggregate.ack_drops) /
              static_cast<double>(aggregate.trials));
  }
  print_experiment_table(kinds);

  // RetryPolicy: does widening Δ_t after fault losses help? max_backoff=1
  // disables the policy without touching anything else.
  Table retry("RetryPolicy ablation, 8x8 mesh, link outages 0.4");
  retry.set_header({"policy", "success rate", "rounds mean", "charged mean",
                    "fault losses"});
  for (const bool backoff_on : {false, true}) {
    ProtocolConfig config = base_config();
    config.max_rounds = 32;
    config.faults.link_outage_rate = 0.4;
    config.faults.outage_period = 64;
    config.faults.outage_duration = 32;
    if (!backoff_on) config.retry.max_backoff = 1.0;
    const auto aggregate =
        run_trials(mesh_factory(8), paper_schedule_factory(config.worm_length,
                                                           config.bandwidth),
                   config, scaled_trials(30), 154);
    retry.row()
        .cell(backoff_on ? "backoff x2 capped 16" : "no backoff")
        .cell(aggregate.success_rate())
        .cell(aggregate.rounds.mean())
        .cell(aggregate.charged_time.mean())
        .cell(aggregate.fault_losses.mean());
  }
  print_experiment_table(retry);

  std::cout << "Expected shape: success rate decays monotonically with the"
               " link-fault rate while\nfault losses take over from"
               " contention losses. Faults re-key per round, so the\n"
               "Δ-backoff cannot dodge them — its table prices the charged-"
               "time premium of that\ninsurance under memoryless faults.\n";
  return 0;
}
