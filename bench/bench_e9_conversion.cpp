// E9 — the wavelength-conversion comparator ([11], §1.2/§4).
//
// The paper's motivating question: "we want to show how far one can get
// WITHOUT wavelength conversion" — Cypher et al. [11] achieve
// O((L·C·D^{1/B} + (D+L)log n)/B) WITH conversion at every router. This
// bench quantifies the gap empirically: the same trial-and-failure
// protocol with routers that can retune a blocked worm to a free
// wavelength, across B, on congested workloads.
//
// Expected shape: conversion strictly reduces rounds and kills; its edge
// grows with B (more free wavelengths to retune into) and shrinks to
// nothing at B = 1 (nowhere to go).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E9: wavelength conversion vs none (the [11] comparator)",
      "conversion-free protocol vs full per-router conversion");

  const std::uint32_t L = 8;

  struct Workload {
    std::string name;
    CollectionFactory factory;
  };
  const std::vector<Workload> workloads{
      {"bundle width 128",
       [](std::uint64_t) { return make_bundle_collection(1, 128, 10); }},
      {"mesh 10x10 random fn",
       [](std::uint64_t seed) {
         auto topo = std::make_shared<MeshTopology>(make_mesh({10, 10}));
         Rng rng(seed);
         return mesh_random_function(topo, rng);
       }},
  };

  for (const auto& workload : workloads) {
    Table table(workload.name);
    table.set_header({"B", "no-conv rounds", "conv rounds", "no-conv time",
                      "conv time", "time ratio"});
    for (const std::uint16_t B : {1, 2, 4, 8}) {
      auto measure = [&](ConversionMode mode) {
        ProtocolConfig config;
        config.bandwidth = B;
        config.worm_length = L;
        config.conversion = mode;
        config.max_rounds = 5000;
        return run_trials(workload.factory, paper_schedule_factory(L, B),
                          config, scaled_trials(12), 159);
      };
      const auto plain = measure(ConversionMode::None);
      const auto converting = measure(ConversionMode::Full);
      table.row()
          .cell(static_cast<long long>(B))
          .cell(plain.rounds.mean())
          .cell(converting.rounds.mean())
          .cell(plain.charged_time.mean())
          .cell(converting.charged_time.mean())
          .cell(plain.charged_time.mean() /
                std::max(1.0, converting.charged_time.mean()));
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: ratio = 1 at B=1 (no wavelength to retune"
               " into), growing with B;\nthe conversion-free protocol stays"
               " within a small factor — the paper's thesis that\nsimple"
               " routers get most of the way.\n";
  return 0;
}
