// E4 — Main Theorem 1.2 (lower bound): Fig. 6 triangle structures.
//
// Paper claim (§3.2): three cyclically-overlapping worms all die in a
// round with probability ≥ (⌊L/2⌋/(B(Δ+L)))²; hence over n/6 such
// structures the protocol needs Ω(log_α n) rounds in expectation.
//
// Part 1 measures the per-round deadlock probability of a single triangle
// against the closed form across L and Δ. Part 2 measures E[rounds] over
// growing triangle collections (the log_α n growth; E3 shows the same
// data against the upper bound).
#include <iostream>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/simulator.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E4: Main Thm 1.2 lower bound (Fig. 6 triangles)",
      "deadlock prob per round >= (floor(L/2)/(B(delta+L)))^2");

  // ---- Part 1: single-round deadlock probability. ----
  Table prob_table("single triangle, one round: P[all 3 eliminated]");
  prob_table.set_header(
      {"L", "delta", "measured", "paper lower bound", "measured/bound"});
  for (const std::uint32_t L : {2u, 4u, 8u}) {
    for (const SimTime delta : {SimTime{4}, SimTime{8}, SimTime{16}}) {
      const auto collection = make_triangle_collection(1, 2 * L + 2, L);
      Simulator sim(collection, {});
      const std::size_t trials = scaled_trials(4000);
      std::size_t deadlocks = 0;
      Rng rng(77 + L + static_cast<std::uint64_t>(delta));
      for (std::size_t trial = 0; trial < trials; ++trial) {
        std::vector<LaunchSpec> specs(3);
        for (PathId id = 0; id < 3; ++id) {
          specs[id].path = id;
          specs[id].start_time = static_cast<SimTime>(
              rng.next_below(static_cast<std::uint64_t>(delta)));
          specs[id].wavelength = 0;
          specs[id].length = L;
        }
        const auto result = sim.run(specs);
        deadlocks += result.metrics.killed == 3 ? 1 : 0;
      }
      const double measured =
          static_cast<double>(deadlocks) / static_cast<double>(trials);
      const double half = L / 2;
      const double bound = (half / static_cast<double>(delta + L)) *
                           (half / static_cast<double>(delta + L));
      prob_table.row()
          .cell(L)
          .cell(delta)
          .cell(measured)
          .cell(bound)
          .cell(bound > 0 ? measured / bound : 0.0);
    }
  }
  print_experiment_table(prob_table);
  std::cout << "Expected shape: measured >= bound on every row (it is a"
               " lower bound).\n\n";

  // ---- Part 2: expected rounds over triangle collections. ----
  const std::uint32_t L = 4;
  Table rounds_table("triangle collections: E[rounds] vs log_a n");
  rounds_table.set_header({"n paths", "rounds mean", "log_a n",
                           "rounds/log"});
  for (const std::uint32_t structures : {8u, 32u, 128u, 512u}) {
    CollectionFactory factory = [structures](std::uint64_t) {
      return make_triangle_collection(structures, 2 * L + 2, L);
    };
    ProtocolConfig config;
    config.worm_length = L;
    config.max_rounds = 20000;
    const auto aggregate =
        run_trials(factory, fixed_schedule_factory(2 * L), config,
                   scaled_trials(30), 44);
    ProblemShape shape;
    shape.size = structures * 3;
    shape.dilation = 2 * L + 2;
    shape.path_congestion = 2;
    shape.worm_length = L;
    shape.bandwidth = 1;
    const double log_term = lower_rounds_triangle(shape);
    rounds_table.row()
        .cell(static_cast<long long>(structures * 3))
        .cell(aggregate.rounds.mean())
        .cell(log_term)
        .cell(aggregate.rounds.mean() / log_term);
  }
  print_experiment_table(rounds_table);
  return 0;
}
