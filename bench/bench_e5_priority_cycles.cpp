// E5 — Main Theorem 1.3: priority routers on short-cut free collections.
//
// Paper claim: with priority routers the cyclic-elimination penalty of
// Main Thm 1.2 disappears — rounds drop from Θ(log_α n) back to
// O(√(log_α n) + loglog_β n), for ANY distinct-rank assignment.
//
// Head-to-head on the same triangle collections as E3/E4: serve-first vs
// priority (random ranks) vs priority (adversarial fixed ranks). The
// separation should widen as n grows.
#include <iostream>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E5: Main Thm 1.3 (priority beats serve-first on cycles)",
      "priority rounds ~ sqrt(log_a n) vs serve-first ~ log_a n");

  const std::uint32_t L = 4;
  const SimTime delta = 3 * L;

  Table table("triangle collections: rounds by contention rule");
  table.set_header({"n paths", "serve-first", "priority random",
                    "priority adversarial", "sf/prio ratio", "log_a n",
                    "sqrt(log_a n)"});
  for (const std::uint32_t structures : {16u, 64u, 256u, 1024u}) {
    CollectionFactory factory = [structures](std::uint64_t) {
      return make_triangle_collection(structures, 2 * L + 2, L);
    };
    const std::size_t trials =
        scaled_trials(structures >= 1024 ? 10 : 30);

    auto measure = [&](ContentionRule rule, PriorityStrategy strategy) {
      ProtocolConfig config;
      config.rule = rule;
      config.priorities = strategy;
      config.worm_length = L;
      config.max_rounds = 20000;
      return run_trials(factory, fixed_schedule_factory(delta), config,
                        trials, 55);
    };
    const auto serve_first =
        measure(ContentionRule::ServeFirst, PriorityStrategy::RandomPermutation);
    const auto priority_random =
        measure(ContentionRule::Priority, PriorityStrategy::RandomPermutation);
    const auto priority_adv =
        measure(ContentionRule::Priority, PriorityStrategy::AdversarialByPath);

    ProblemShape shape;
    shape.size = structures * 3;
    shape.dilation = 2 * L + 2;
    shape.path_congestion = 2;
    shape.worm_length = L;
    shape.bandwidth = 1;

    table.row()
        .cell(static_cast<long long>(structures * 3))
        .cell(serve_first.rounds.mean())
        .cell(priority_random.rounds.mean())
        .cell(priority_adv.rounds.mean())
        .cell(serve_first.rounds.mean() /
              std::max(1.0, priority_random.rounds.mean()))
        .cell(lower_rounds_triangle(shape))
        .cell(lower_rounds_staircase(shape));
  }
  print_experiment_table(table);
  std::cout << "Expected shape: the sf/prio ratio grows with n (log vs"
               " sqrt-log separation),\nand the adversarial ranks do not"
               " break the priority upper bound (Thm 1.3 holds for any"
               " distinct ranks).\n";
  return 0;
}
