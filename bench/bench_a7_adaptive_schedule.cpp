// A7 — congestion-oblivious adaptation.
//
// The paper's Δ_t schedule is built from C̃ (§2.1) — but an online source
// does not know the global path congestion. This ablation measures what
// that knowledge is worth: the paper schedule with the true C̃, the paper
// schedule fed a badly wrong C̃ (too small by 64x and too large by 64x),
// and the AdaptiveSchedule that learns the range from per-round success
// rates alone (multiplicative increase/decrease).
//
// Expected: misestimating C̃ low costs many rounds; misestimating high
// wastes charged time; the oblivious adaptive schedule lands within a
// small factor of the informed optimum on both metrics.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A7: adaptive (congestion-oblivious) delay schedule",
      "paper schedule with true / wrong C vs multiplicative adaptation");

  const std::uint32_t L = 8;
  const std::uint32_t width = 256;   // the true C̃ is width-1
  const auto collection = make_bundle_collection(1, width, 10);
  ProblemShape truth;
  truth.size = width;
  truth.dilation = 10;
  truth.path_congestion = width - 1;
  truth.worm_length = L;
  truth.bandwidth = 1;

  struct Variant {
    std::string name;
    std::function<std::unique_ptr<DeltaSchedule>()> make;
  };
  const std::vector<Variant> variants{
      {"paper, true C",
       [&] { return std::make_unique<PaperSchedule>(truth); }},
      {"paper, C/64 (underestimate)",
       [&] {
         auto shape = truth;
         shape.path_congestion = std::max(1u, truth.path_congestion / 64);
         return std::make_unique<PaperSchedule>(shape);
       }},
      {"paper, C*64 (overestimate)",
       [&] {
         auto shape = truth;
         shape.path_congestion = truth.path_congestion * 64;
         return std::make_unique<PaperSchedule>(shape);
       }},
      {"adaptive, oblivious start=D+L",
       [&] {
         return std::make_unique<AdaptiveSchedule>(
             static_cast<SimTime>(truth.dilation + L));
       }},
  };

  Table table("bundle width 256, serve-first, B=1, L=8");
  table.set_header({"schedule", "rounds mean", "charged mean",
                    "final delta", "failures"});
  for (const auto& variant : variants) {
    const std::size_t trials = scaled_trials(15);
    SampleSet rounds, charged, final_delta;
    std::uint32_t failures = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const auto schedule = variant.make();
      ProtocolConfig config;
      config.worm_length = L;
      config.max_rounds = 5000;
      TrialAndFailure protocol(collection, config, *schedule);
      const auto result = protocol.run(700 + trial);
      if (!result.success) {
        ++failures;
        continue;
      }
      rounds.add(static_cast<double>(result.rounds_used));
      charged.add(static_cast<double>(result.total_charged_time));
      final_delta.add(static_cast<double>(result.rounds.back().delta));
    }
    table.row()
        .cell(variant.name)
        .cell(rounds.count() ? rounds.mean() : -1.0)
        .cell(charged.count() ? charged.mean() : -1.0)
        .cell(final_delta.count() ? final_delta.mean() : -1.0)
        .cell(failures);
  }
  print_experiment_table(table);
  std::cout << "Expected shape: underestimating C costs rounds,"
               " overestimating costs charged time;\nthe oblivious adaptive"
               " schedule tracks the informed one within a small factor\n"
               "(its final delta converges near the paper's L*C/B range).\n";
  return 0;
}
