// E12 — sparse wavelength converters (§4: "cases in which only a few
// routers can convert wavelengths", Lee & Li [23]).
//
// Converter density sweep on a congested mesh q-function under a
// constrained delay range (so collisions are frequent and every retune
// opportunity counts). Finding: the benefit is CONVEX in density, not
// concave — a retune only saves a worm when the specific coupler where
// its collision happens has a converter, and a worm must survive every
// collision on its path, so low densities buy almost nothing. Sparse
// deployment needs converter *placement* at hot spots, not random
// sprinkling ([23]'s placement question).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E12: sparse converter density sweep ([23] setting)",
      "rounds vs fraction of converting routers");

  const std::uint32_t L = 8;
  const std::uint16_t B = 4;
  const std::uint32_t side = 8;
  const std::uint32_t q = 4;
  const NodeId node_count = side * side;

  // q-function on a mesh: every node sources q worms — heavy congestion.
  CollectionFactory factory = [side, q](std::uint64_t seed) {
    auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
    Rng rng(seed);
    const auto requests =
        random_q_function_requests(topo->graph.node_count(), q, rng);
    return mesh_collection(topo, requests);
  };

  Table table("8x8 mesh 4-function, serve-first, B=4, L=8, fixed Delta=4L");
  table.set_header({"converter fraction", "rounds mean", "rounds p95",
                    "charged mean", "gap closed vs full"});
  struct Row {
    double fraction;
    TrialAggregate aggregate;
  };
  std::vector<Row> rows;
  for (const double fraction : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 20000;
    if (fraction >= 1.0) {
      config.conversion = ConversionMode::Full;
    } else if (fraction > 0.0) {
      config.conversion = ConversionMode::Sparse;
      config.converters.assign(node_count, 0);
      Rng rng(777);
      auto nodes = rng.permutation(node_count);
      const auto take = static_cast<std::size_t>(fraction * node_count);
      for (std::size_t i = 0; i < take; ++i) config.converters[nodes[i]] = 1;
    }
    const auto aggregate =
        run_trials(factory, fixed_schedule_factory(4 * L), config,
                   scaled_trials(15), 183);
    rows.push_back({fraction, aggregate});
  }
  const double none_rounds = rows.front().aggregate.rounds.mean();
  const double full_rounds = rows.back().aggregate.rounds.mean();
  for (const Row& row : rows) {
    const double gap = none_rounds - full_rounds;
    const double closed =
        gap > 0 ? (none_rounds - row.aggregate.rounds.mean()) / gap : 0.0;
    table.row()
        .cell(row.fraction)
        .cell(row.aggregate.rounds.mean())
        .cell(row.aggregate.rounds.quantile(0.95))
        .cell(row.aggregate.charged_time.mean())
        .cell(closed);
  }
  print_experiment_table(table);
  std::cout << "Expected shape: 'gap closed' is convex in the fraction —"
               " randomly-placed sparse\nconverters buy almost nothing"
               " until density is high, because a retune only helps\nat"
               " the exact coupler where a collision occurs. Placement, not"
               " count, is what\nmatters for sparse conversion ([23]).\n";
  return 0;
}
