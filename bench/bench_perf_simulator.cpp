// Engine micro-benchmarks (google-benchmark): simulator throughput,
// collection-metric computation, and structure construction.
#include <benchmark/benchmark.h>

#include <memory>

#include "opto/obs/bench_record.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/simulator.hpp"

namespace {

using namespace opto;

void BM_SimulatorMeshPass(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
  Rng rng(1);
  const auto collection = mesh_random_function(topo, rng);

  SimConfig config;
  config.bandwidth = 2;
  Simulator sim(collection, config);

  std::vector<LaunchSpec> specs(collection.size());
  Rng launch_rng(2);
  for (PathId id = 0; id < collection.size(); ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(launch_rng.next_below(32));
    specs[id].wavelength =
        static_cast<Wavelength>(launch_rng.next_below(2));
    specs[id].length = 8;
    specs[id].priority = id;
  }
  // Reuse one PassResult across iterations: this is the steady-state mode
  // the protocol drivers run in (zero allocation per pass).
  PassResult result;
  std::uint64_t worm_steps = 0;
  for (auto _ : state) {
    sim.run(specs, result);
    worm_steps += result.metrics.worm_steps;
    benchmark::DoNotOptimize(result.metrics.delivered);
  }
  state.counters["worm_steps/s"] = benchmark::Counter(
      static_cast<double>(worm_steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorMeshPass)->Arg(8)->Arg(16)->Arg(32);

/// High-contention pass: a saturated mesh under the priority rule, long
/// worms, wide startup window — many truncations, long drains, and a
/// registry that stays hot. This is the acceptance workload for registry
/// and pass-state optimizations; probes/hits expose registry behavior.
void BM_SimulatorStressPass(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
  Rng rng(7);
  const auto collection = mesh_random_function(topo, rng);

  SimConfig config;
  config.bandwidth = 2;
  config.rule = ContentionRule::Priority;
  Simulator sim(collection, config);

  std::vector<LaunchSpec> specs(collection.size());
  Rng launch_rng(8);
  for (PathId id = 0; id < collection.size(); ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(launch_rng.next_below(16));
    specs[id].wavelength =
        static_cast<Wavelength>(launch_rng.next_below(2));
    specs[id].length = 24;
    specs[id].priority = id;  // pairwise distinct, as the rule requires
  }
  PassResult result;
  std::uint64_t worm_steps = 0;
  for (auto _ : state) {
    sim.run(specs, result);
    worm_steps += result.metrics.worm_steps;
    benchmark::DoNotOptimize(result.metrics.truncated);
  }
  state.counters["worm_steps/s"] = benchmark::Counter(
      static_cast<double>(worm_steps), benchmark::Counter::kIsRate);
  state.counters["registry_probes"] =
      static_cast<double>(result.metrics.registry_probes);
  state.counters["registry_hits"] =
      static_cast<double>(result.metrics.registry_hits);
}
BENCHMARK(BM_SimulatorStressPass)->Arg(16)->Arg(32);

void BM_SimulatorBundleContention(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const auto collection = make_bundle_collection(1, width, 16);
  Simulator sim(collection, {});
  std::vector<LaunchSpec> specs(width);
  Rng rng(3);
  for (PathId id = 0; id < width; ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(rng.next_below(64));
    specs[id].wavelength = 0;
    specs[id].length = 8;
    specs[id].priority = id;
  }
  PassResult result;
  for (auto _ : state) {
    sim.run(specs, result);
    benchmark::DoNotOptimize(result.metrics.killed);
  }
}
BENCHMARK(BM_SimulatorBundleContention)->Arg(64)->Arg(512)->Arg(4096);

/// Shared setup for the multi-component scenarios: `structures`
/// edge-disjoint staircases (one contention component each) under the
/// priority rule, long worms, dense launches. This is the acceptance
/// workload for the sharded pass mode — the same collection and specs are
/// measured with sharding forced Off (sequential baseline) and On.
struct MultiComponentWorkload {
  PathCollection collection;
  std::vector<LaunchSpec> specs;

  explicit MultiComponentWorkload(std::uint32_t structures)
      : collection(make_staircase_collection(structures, 8, 24, 9)) {
    specs.resize(collection.size());
    Rng rng(5);
    for (PathId id = 0; id < collection.size(); ++id) {
      specs[id].path = id;
      specs[id].start_time = static_cast<SimTime>(rng.next_below(8));
      specs[id].wavelength = static_cast<Wavelength>(rng.next_below(2));
      specs[id].length = 9;
      specs[id].priority = id;
    }
  }
};

void run_multi_component(benchmark::State& state, PassSharding sharding) {
  const auto structures = static_cast<std::uint32_t>(state.range(0));
  MultiComponentWorkload workload(structures);
  SimConfig config;
  config.bandwidth = 2;
  config.rule = ContentionRule::Priority;
  config.sharding = sharding;
  Simulator sim(workload.collection, config);
  PassResult result;
  std::uint64_t worm_steps = 0;
  for (auto _ : state) {
    sim.run(workload.specs, result);
    worm_steps += result.metrics.worm_steps;
    benchmark::DoNotOptimize(result.metrics.delivered);
  }
  state.counters["worm_steps/s"] = benchmark::Counter(
      static_cast<double>(worm_steps), benchmark::Counter::kIsRate);
  state.counters["components"] =
      static_cast<double>(workload.collection.components().count);
}

// Both variants measure wall time (UseRealTime): the sharded pass does
// its work on pool threads, so main-thread CPU time would flatter it.
void BM_SimulatorMultiComponentSequential(benchmark::State& state) {
  run_multi_component(state, PassSharding::Off);
}
BENCHMARK(BM_SimulatorMultiComponentSequential)
    ->Arg(8)->Arg(64)->UseRealTime();

/// Sharded counterpart; thread count comes from OPTO_THREADS (the pool is
/// ThreadPool::global()), so the perf suite's environment governs the
/// parallelism actually measured.
void BM_SimulatorMultiComponentSharded(benchmark::State& state) {
  run_multi_component(state, PassSharding::On);
}
BENCHMARK(BM_SimulatorMultiComponentSharded)->Arg(8)->Arg(64)->UseRealTime();

void BM_PathCongestionMetric(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
  Rng rng(4);
  const auto collection = butterfly_random_q_function(topo, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collection.path_congestion());
  }
  state.counters["paths"] = static_cast<double>(collection.size());
}
BENCHMARK(BM_PathCongestionMetric)->Arg(5)->Arg(7)->Arg(9);

void BM_StaircaseConstruction(benchmark::State& state) {
  const auto structures = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto collection = make_staircase_collection(structures, 6, 16, 4);
    benchmark::DoNotOptimize(collection.size());
  }
}
BENCHMARK(BM_StaircaseConstruction)->Arg(16)->Arg(256);

void BM_MeshWorkloadBuild(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
    Rng rng(seed++);
    const auto collection = mesh_random_function(topo, rng);
    benchmark::DoNotOptimize(collection.size());
  }
}
BENCHMARK(BM_MeshWorkloadBuild)->Arg(16)->Arg(64);

}  // namespace

// Custom main (instead of benchmark::benchmark_main) so the obs
// counters accumulated across all benchmark iterations land in a
// BenchRecord alongside the experiment benches' records.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  opto::obs::write_bench_record_file("perf-simulator");
  return 0;
}
