// Engine micro-benchmarks (google-benchmark): simulator throughput,
// collection-metric computation, and structure construction.
#include <benchmark/benchmark.h>

#include <memory>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/simulator.hpp"

namespace {

using namespace opto;

void BM_SimulatorMeshPass(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
  Rng rng(1);
  const auto collection = mesh_random_function(topo, rng);

  SimConfig config;
  config.bandwidth = 2;
  Simulator sim(collection, config);

  std::vector<LaunchSpec> specs(collection.size());
  Rng launch_rng(2);
  for (PathId id = 0; id < collection.size(); ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(launch_rng.next_below(32));
    specs[id].wavelength =
        static_cast<Wavelength>(launch_rng.next_below(2));
    specs[id].length = 8;
    specs[id].priority = id;
  }
  std::uint64_t worm_steps = 0;
  for (auto _ : state) {
    const auto result = sim.run(specs);
    worm_steps += result.metrics.worm_steps;
    benchmark::DoNotOptimize(result.metrics.delivered);
  }
  state.counters["worm_steps/s"] = benchmark::Counter(
      static_cast<double>(worm_steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorMeshPass)->Arg(8)->Arg(16)->Arg(32);

void BM_SimulatorBundleContention(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(state.range(0));
  const auto collection = make_bundle_collection(1, width, 16);
  Simulator sim(collection, {});
  std::vector<LaunchSpec> specs(width);
  Rng rng(3);
  for (PathId id = 0; id < width; ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(rng.next_below(64));
    specs[id].wavelength = 0;
    specs[id].length = 8;
    specs[id].priority = id;
  }
  for (auto _ : state) {
    const auto result = sim.run(specs);
    benchmark::DoNotOptimize(result.metrics.killed);
  }
}
BENCHMARK(BM_SimulatorBundleContention)->Arg(64)->Arg(512)->Arg(4096);

void BM_PathCongestionMetric(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
  Rng rng(4);
  const auto collection = butterfly_random_q_function(topo, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collection.path_congestion());
  }
  state.counters["paths"] = static_cast<double>(collection.size());
}
BENCHMARK(BM_PathCongestionMetric)->Arg(5)->Arg(7)->Arg(9);

void BM_StaircaseConstruction(benchmark::State& state) {
  const auto structures = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto collection = make_staircase_collection(structures, 6, 16, 4);
    benchmark::DoNotOptimize(collection.size());
  }
}
BENCHMARK(BM_StaircaseConstruction)->Arg(16)->Arg(256);

void BM_MeshWorkloadBuild(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
    Rng rng(seed++);
    const auto collection = mesh_random_function(topo, rng);
    benchmark::DoNotOptimize(collection.size());
  }
}
BENCHMARK(BM_MeshWorkloadBuild)->Arg(16)->Arg(64);

}  // namespace
