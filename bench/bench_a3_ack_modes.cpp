// A3 — ablation: idealized vs simulated acknowledgements.
//
// The paper analyzes one forward pass per round and covers acks by
// doubling C̃ (§2 preliminaries: B extra wavelengths reserved for acks).
// This ablation runs both models: AckMode::Ideal (the paper's accounting)
// and AckMode::Simulated (1-flit acks on the reverse paths in their own
// band, lost acks force duplicate retransmissions).
// Expected: simulated acks cost a few extra rounds + duplicates, but the
// asymptotic behaviour (rounds vs n) is unchanged — validating the
// paper's simplification.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A3: acknowledgement model ablation",
      "ideal (paper's one-pass simplification) vs simulated reverse-path acks");

  const std::uint32_t L = 4;
  const std::uint16_t B = 2;

  Table table("mesh random functions: ack model comparison");
  table.set_header({"side", "mode", "rounds mean", "charged mean",
                    "duplicates/trial", "failures"});
  for (const std::uint32_t side : {6u, 10u, 14u}) {
    CollectionFactory factory = [side](std::uint64_t seed) {
      auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
      Rng rng(seed);
      return mesh_random_function(topo, rng);
    };
    for (const AckMode mode : {AckMode::Ideal, AckMode::Simulated}) {
      ProtocolConfig config;
      config.bandwidth = B;
      config.worm_length = L;
      config.ack_mode = mode;
      config.max_rounds = 3000;
      const std::size_t trials = scaled_trials(12);
      const auto aggregate = run_trials(factory, paper_schedule_factory(L, B),
                                        config, trials, 123);
      table.row()
          .cell(side)
          .cell(to_string(mode))
          .cell(aggregate.rounds.mean())
          .cell(aggregate.charged_time.mean())
          .cell(static_cast<double>(aggregate.duplicates) /
                static_cast<double>(trials))
          .cell(static_cast<long long>(aggregate.failures));
    }
  }
  print_experiment_table(table);
  std::cout << "Expected shape: simulated acks add a small constant round"
               " overhead and some\nduplicates; growth in n matches the"
               " ideal model (the paper's 2C accounting).\n";
  return 0;
}
