// A1 — ablation: startup-delay schedules.
//
// The paper's protocol draws delays from a geometrically shrinking range
// Δ_t (§2.1). This ablation compares that schedule against fixed ranges
// and against launching immediately, on a congested mesh workload.
// Expected: no-delay thrashes (many rounds), a big fixed range wastes
// time per round, and the paper schedule sits at the sweet spot.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A1: delay-schedule ablation",
      "paper geometric Delta_t vs fixed vs none, same workload");

  const std::uint32_t L = 8;
  const std::uint16_t B = 1;
  CollectionFactory factory = [](std::uint64_t seed) {
    auto topo = std::make_shared<MeshTopology>(make_mesh({8, 8}));
    Rng rng(seed);
    return mesh_random_function(topo, rng);
  };

  struct Variant {
    std::string name;
    ScheduleFactory schedule;
  };
  const std::vector<Variant> variants{
      {"paper (c=4)", paper_schedule_factory(L, B)},
      {"paper (c=1)",
       paper_schedule_factory(L, B, PaperSchedule::Constants{1.0, 1.0})},
      {"paper (c=16)",
       paper_schedule_factory(L, B, PaperSchedule::Constants{16.0, 4.0})},
      {"fixed D+L", fixed_schedule_factory(14 + L)},
      {"fixed 8(D+L)", fixed_schedule_factory(8 * (14 + L))},
      {"no delay", no_delay_schedule_factory()},
  };

  Table table("8x8 mesh random function, serve-first, B=1, L=8");
  table.set_header({"schedule", "rounds mean", "rounds p95", "charged mean",
                    "failures"});
  for (const auto& variant : variants) {
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 3000;
    const auto aggregate = run_trials(factory, variant.schedule, config,
                                      scaled_trials(15), 99);
    table.row()
        .cell(variant.name)
        .cell(aggregate.rounds.count() ? aggregate.rounds.mean() : -1.0)
        .cell(aggregate.rounds.count() ? aggregate.rounds.quantile(0.95)
                                       : -1.0)
        .cell(aggregate.charged_time.count() ? aggregate.charged_time.mean()
                                             : -1.0)
        .cell(static_cast<long long>(aggregate.failures));
  }
  print_experiment_table(table);
  std::cout << "Expected shape: 'no delay' needs many more rounds; very"
               " large fixed ranges\npay in charged time; the paper schedule"
               " balances both.\n";
  return 0;
}
