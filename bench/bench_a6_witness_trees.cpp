// A6 — empirical witness trees (§2.1's proof machinery, measured).
//
// The delay-tree argument bounds Pr[some worm is active after t rounds]
// by counting active embeddings into W(t). Here we reconstruct the real
// witness trees of thrashing protocol runs and report the quantities the
// counting argument is about: how many distinct worms k a depth-t tree
// uses, how the level sizes m_i grow, and the theory-side log₂ P(t,k) the
// formulas assign to trees of that shape. The paper's intuition made
// visible: deep trees require either many distinct worms (each costing a
// C̃/Δ factor) or long thin chains (each level costing a collision
// probability), so deep trees are doubly unlikely.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/util/assert.hpp"
#include "opto/analysis/witness_builder.hpp"
#include "opto/analysis/witness_tree.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A6: empirical witness trees on thrashing workloads",
      "distinct worms k and level growth vs depth; theory log2 P(t,k)");

  const std::uint32_t L = 4;
  const std::uint32_t width = 24;
  // Moderate range: worms fail a few rounds, then drain, so the tree
  // population decays visibly with depth.
  const SimTime delta = 128;

  const auto collection = make_bundle_collection(1, width, 10);
  ProtocolConfig config;
  config.worm_length = L;
  config.max_rounds = 200;
  config.keep_round_outcomes = true;
  FixedSchedule schedule(delta);

  ProblemShape shape;
  shape.size = width;
  shape.dilation = 10;
  shape.path_congestion = width - 1;
  shape.worm_length = L;
  shape.bandwidth = 1;
  // The counting formulas carry the proof's large constants (16, 6e·t),
  // so they are only non-vacuous at the paper's own Δ choice; evaluate
  // the theory column there (Δ₁ = 32·L·C̃/B) rather than at the small
  // range we run the protocol with.
  WitnessTreeParams params;
  params.shape = shape;
  const SimTime paper_delta1 =
      32 * static_cast<SimTime>(L) * shape.path_congestion;
  params.delta = [paper_delta1](std::uint32_t) { return paper_delta1; };

  Table table("witness trees of worms surviving >= t rounds (bundle 24)");
  table.set_header({"depth t", "trees", "k mean", "k max", "m_t mean",
                    "theory log2 P at paper Delta1"});

  const std::size_t trials = scaled_trials(40);
  for (const std::uint32_t depth : {1u, 2u, 3u, 4u, 5u, 7u, 9u}) {
    SampleSet distinct, final_level;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      TrialAndFailure protocol(collection, config, schedule);
      const auto result = protocol.run(5000 + trial);
      for (PathId id = 0; id < width; ++id) {
        const std::uint32_t done = result.completion_round[id];
        const std::uint32_t lasted =
            done == 0 ? result.rounds_used : done - 1;
        if (lasted < depth) continue;
        const auto tree = build_witness_tree(result, id, depth);
        OPTO_ASSERT(is_valid_witness_tree(tree));
        distinct.add(static_cast<double>(tree.total_distinct_worms()));
        final_level.add(static_cast<double>(tree.level_sizes().back()));
      }
    }
    // Theory column: at observed k when trees exist, else at the k a
    // depth-t tree would need (capped doubling).
    const auto k_theory = static_cast<std::uint32_t>(
        distinct.count() > 0 ? std::max(1.0, distinct.mean() + 0.5)
                             : std::min<double>(width, std::exp2(depth)));
    table.row()
        .cell(depth)
        .cell(distinct.count())
        .cell(distinct.count() ? Table::format_number(distinct.mean()) : "-")
        .cell(distinct.count() ? Table::format_number(distinct.max()) : "-")
        .cell(distinct.count() ? Table::format_number(final_level.mean())
                               : "-")
        .cell(log2_embedding_bound_leveled(params, depth, k_theory));
  }
  print_experiment_table(table);

  ProblemShape big = shape;
  std::cout << "paper round budget T for this shape (gamma=1): "
            << Table::format_number(paper_round_budget(big))
            << "  (k0 = " << Table::format_number(paper_k0(big)) << ")\n";
  std::cout << "Expected shape: the number of deep trees collapses with t"
               " while k grows slowly,\nand the theory column plunges —"
               " exactly why only O(sqrt(log) + loglog) rounds\nsurvive the"
               " union bound.\n";
  return 0;
}
