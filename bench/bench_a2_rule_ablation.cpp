// A2 — ablation: serve-first vs priority across L and B.
//
// The paper's separation (Thm 1.2 vs 1.3) is about *cyclic* collections.
// This ablation sweeps worm length and bandwidth on bundles and triangle
// collections. Two distinct effects appear: on triangles, priority breaks
// blocking cycles (the theorem's mechanism, ratio up to ~1.3 at B=1); on
// dense bundles with tight delays and B=1, priority acts as a *progress
// guarantee* — serve-first + kill-all dead-heats can eliminate every
// contender of a link, while priority always forwards one (ratios up to
// ~7x at L=2). Extra wavelengths shrink both effects.
#include <iostream>

#include "bench_common.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A2: contention-rule ablation over (L, B)",
      "priority helps on cyclic collections, is ~neutral on bundles");

  struct Family {
    std::string name;
    std::function<CollectionFactory(std::uint32_t)> make;  // by L
  };
  const std::vector<Family> families{
      {"bundles 8x32",
       [](std::uint32_t) -> CollectionFactory {
         return
             [](std::uint64_t) { return make_bundle_collection(8, 32, 10); };
       }},
      {"triangles x64",
       [](std::uint32_t L) -> CollectionFactory {
         return [L](std::uint64_t) {
           return make_triangle_collection(64, 2 * L + 2, L);
         };
       }},
  };

  for (const auto& family : families) {
    Table table(family.name + ": rounds, serve-first vs priority");
    table.set_header({"L", "B", "serve-first", "priority", "sf/prio"});
    for (const std::uint32_t L : {2u, 4u, 8u, 16u}) {
      for (const std::uint16_t B : {1, 2, 4}) {
        auto measure = [&](ContentionRule rule) {
          ProtocolConfig config;
          config.rule = rule;
          config.bandwidth = B;
          config.worm_length = L;
          config.max_rounds = 20000;
          return run_trials(family.make(L),
                            fixed_schedule_factory(3 * L), config,
                            scaled_trials(15), 111);
        };
        const auto sf = measure(ContentionRule::ServeFirst);
        const auto prio = measure(ContentionRule::Priority);
        table.row()
            .cell(L)
            .cell(static_cast<long long>(B))
            .cell(sf.rounds.mean())
            .cell(prio.rounds.mean())
            .cell(sf.rounds.mean() / std::max(1.0, prio.rounds.mean()));
      }
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: on triangles sf/prio in [1, 1.35], largest"
               " at B=1 (cycle breaking);\non bundles ~1 at moderate"
               " L but very large at (L=2, B=1), where kill-all\ndead-heats"
               " stall serve-first and priority guarantees per-link"
               " progress.\n";
  return 0;
}
