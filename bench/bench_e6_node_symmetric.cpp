// E6 — Theorem 1.5: node-symmetric networks, random functions, priority
// routers.
//
// Paper claim: on any bounded-degree node-symmetric network of size n and
// diameter D, a random function routes in
// O(L·D²/B + (√(log_D n) + loglog n)(D + L)) time w.h.p. using a
// short-cut free path system of optimal dilation.
//
// We use tori, wrap-around butterflies, and hypercubes with canonical BFS
// shortest paths and report measured C̃ (the theorem predicts Θ(D²+log n))
// and charged time against the bound.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/expander.hpp"
#include "opto/graph/graph_algo.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E6: Thm 1.5 (node-symmetric networks, priority routers)",
      "time ~ L D^2/B + (sqrt(log_D n)+loglog n)(D+L); C ~ D^2 + log n");

  const std::uint32_t L = 4;
  const std::uint16_t B = 2;

  struct Network {
    std::string name;
    std::shared_ptr<const Graph> graph;
  };
  std::vector<Network> networks;
  for (const std::uint32_t side : {4u, 6u, 8u}) {
    auto topo = std::make_shared<MeshTopology>(make_torus({side, side}));
    networks.push_back(
        {topo->graph.name(), std::shared_ptr<const Graph>(topo, &topo->graph)});
  }
  for (const std::uint32_t dim : {4u, 6u})
    networks.push_back(
        {"hypercube-" + std::to_string(dim),
         std::make_shared<Graph>(make_hypercube(dim))});
  {
    auto topo =
        std::make_shared<ButterflyTopology>(make_wrap_butterfly(4));
    networks.push_back(
        {topo->graph.name(), std::shared_ptr<const Graph>(topo, &topo->graph)});
  }
  networks.push_back({"circulant-64",
                      std::make_shared<Graph>(make_circulant(64, {1, 8}))});
  networks.push_back(
      {"margulis-8", std::make_shared<Graph>(make_margulis_expander(8))});

  Table table("random functions on node-symmetric networks (priority, B=2)");
  table.set_header({"network", "n", "D", "measured C", "D^2+log n",
                    "rounds mean", "charged mean", "Thm 1.5 bound",
                    "time/bound"});
  for (const auto& network : networks) {
    const std::uint32_t n = network.graph->node_count();
    const std::uint32_t D = diameter(*network.graph);
    CollectionFactory factory = [graph = network.graph](std::uint64_t seed) {
      Rng rng(seed);
      return bfs_random_function(graph, rng);
    };
    ProtocolConfig config;
    config.rule = ContentionRule::Priority;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 2000;
    const auto aggregate = run_trials(
        factory, paper_schedule_factory(L, B), config, scaled_trials(20), 66);
    const double bound = runtime_node_symmetric(n, D, L, B);
    table.row()
        .cell(network.name)
        .cell(static_cast<long long>(n))
        .cell(D)
        .cell(aggregate.path_congestion.mean())
        .cell(static_cast<double>(D) * D +
              std::log2(static_cast<double>(n)))
        .cell(aggregate.rounds.mean())
        .cell(aggregate.charged_time.mean())
        .cell(bound)
        .cell(aggregate.charged_time.mean() / bound);
  }
  print_experiment_table(table);
  std::cout << "Expected shape: measured C within a small factor of"
               " D^2+log n, and time/bound\nroughly flat across networks"
               " (the Thm 1.5 regime).\n";
  return 0;
}
