// A4 — bandwidth scaling: the L·C̃/B congestion term.
//
// All main theorems lead with L·C̃/B: when congestion dominates, total
// time should scale like 1/B, i.e. charged_time × B should stay ~flat.
// Workload: fat bundles (pure congestion) and a mesh (mixed), across
// B = 1..16.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A4: bandwidth scaling of the L*C/B term",
      "charged_time * B ~ flat when congestion dominates");

  const std::uint32_t L = 8;

  struct Workload {
    std::string name;
    CollectionFactory factory;
  };
  const std::vector<Workload> workloads{
      {"bundle width 512",
       [](std::uint64_t) { return make_bundle_collection(1, 512, 8); }},
      {"mesh 10x10 random fn",
       [](std::uint64_t seed) {
         auto topo = std::make_shared<MeshTopology>(make_mesh({10, 10}));
         Rng rng(seed);
         return mesh_random_function(topo, rng);
       }},
      {"mesh 10x10 hotspot 50%",
       [](std::uint64_t seed) {
         auto topo = std::make_shared<MeshTopology>(make_mesh({10, 10}));
         Rng rng(seed);
         return mesh_collection(
             topo, hotspot_requests(topo->graph.node_count(),
                                    /*hotspot=*/55, 0.5, rng));
       }},
  };

  for (const auto& workload : workloads) {
    Table table(workload.name);
    table.set_header(
        {"B", "rounds mean", "charged mean", "charged*B", "vs B=1"});
    double base = 0.0;
    for (const std::uint16_t B : {1, 2, 4, 8, 16}) {
      ProtocolConfig config;
      config.bandwidth = B;
      config.worm_length = L;
      config.max_rounds = 3000;
      const auto aggregate =
          run_trials(workload.factory, paper_schedule_factory(L, B), config,
                     scaled_trials(10), 135);
      const double scaled = aggregate.charged_time.mean() * B;
      if (B == 1) base = scaled;
      table.row()
          .cell(static_cast<long long>(B))
          .cell(aggregate.rounds.mean())
          .cell(aggregate.charged_time.mean())
          .cell(scaled)
          .cell(scaled / base);
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: on the bundle, charged*B is near-flat"
               " (congestion term rules);\non the mesh it drifts up with B"
               " as the (D+L) round term starts to dominate.\n";
  return 0;
}
