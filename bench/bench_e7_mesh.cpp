// E7 — Theorem 1.6: d-dimensional meshes, random functions, serve-first.
//
// Paper claims:
//  * time O(L·d·n/B + (√d + loglog n)(d·n + L + L·d·log n/B)) w.h.p.;
//  * the round count is O(√d + loglog n) — in particular O(loglog n)
//    rounds for fixed d, an exponential improvement over the O(log n)
//    rounds of the prior art [11] (their priority-based bound).
//
// Part 1 sweeps side length at fixed d (rounds should stay ~flat — the
// loglog signature). Part 2 sweeps d at similar network sizes.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

namespace {

opto::CollectionFactory mesh_factory(std::vector<std::uint32_t> sides) {
  return [sides](std::uint64_t seed) {
    auto topo = std::make_shared<opto::MeshTopology>(opto::make_mesh(sides));
    opto::Rng rng(seed);
    return opto::mesh_random_function(topo, rng);
  };
}

}  // namespace

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E7: Thm 1.6 (d-dim meshes, serve-first)",
      "rounds ~ sqrt(d) + loglog n (flat in side length); time ~ Ldn/B + ...");

  const std::uint32_t L = 4;
  const std::uint16_t B = 2;

  Table side_table("2-D mesh, growing side: rounds should stay ~flat");
  side_table.set_header({"side", "n nodes", "measured C", "rounds mean",
                         "rounds p95", "charged mean", "Thm 1.6 bound",
                         "time/bound"});
  for (const std::uint32_t side : {4u, 6u, 8u, 12u, 16u}) {
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 2000;
    const auto aggregate =
        run_trials(mesh_factory({side, side}), paper_schedule_factory(L, B),
                   config, scaled_trials(side >= 12 ? 10 : 20), 77);
    const double bound = runtime_mesh(side, 2, L, B);
    side_table.row()
        .cell(side)
        .cell(static_cast<long long>(side) * side)
        .cell(aggregate.path_congestion.mean())
        .cell(aggregate.rounds.mean())
        .cell(aggregate.rounds.quantile(0.95))
        .cell(aggregate.charged_time.mean())
        .cell(bound)
        .cell(aggregate.charged_time.mean() / bound);
  }
  print_experiment_table(side_table);

  Table dim_table("meshes of different dimension at similar sizes");
  dim_table.set_header({"dims", "sides", "n nodes", "measured C",
                        "rounds mean", "charged mean", "Thm 1.6 bound"});
  struct Case {
    std::vector<std::uint32_t> sides;
  };
  for (const auto& c :
       {Case{{256}}, Case{{16, 16}}, Case{{8, 8, 4}}, Case{{4, 4, 4, 4}}}) {
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 2000;
    const auto aggregate =
        run_trials(mesh_factory(c.sides), paper_schedule_factory(L, B),
                   config, scaled_trials(10), 78);
    std::uint64_t nodes = 1;
    std::string sides_text;
    for (const std::uint32_t s : c.sides) {
      nodes *= s;
      if (!sides_text.empty()) sides_text += "x";
      sides_text += std::to_string(s);
    }
    dim_table.row()
        .cell(static_cast<long long>(c.sides.size()))
        .cell(sides_text)
        .cell(static_cast<long long>(nodes))
        .cell(aggregate.path_congestion.mean())
        .cell(aggregate.rounds.mean())
        .cell(aggregate.charged_time.mean())
        .cell(runtime_mesh(c.sides.front(),
                           static_cast<std::uint32_t>(c.sides.size()), L, B));
  }
  print_experiment_table(dim_table);
  std::cout << "Expected shape: 'rounds mean' in the first table grows"
               " sublogarithmically\n(loglog n regime: exponentially better"
               " than the O(log n) of [11]);\nhigher-dimensional meshes trade"
               " diameter against congestion in the second table.\n";
  return 0;
}
