// A5 — ablation: serve-first simultaneous-arrival policy.
//
// The paper's serve-first rule does not pin down what happens when two
// worms hit a free coupler in the same flit step. We model two physical
// readings: kill-all (the photonic signals corrupt each other) and
// first-wins (the coupler control latches one input port). On dense
// same-source bundles the difference is qualitative, not cosmetic:
// kill-all lets simultaneous arrivals wipe each other out wholesale (no
// one makes progress on that link that round), while first-wins always
// forwards someone — orders of magnitude fewer rounds. On sparse
// workloads (butterfly permutations) dead-heats are rare and the gap is
// a few percent.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A5: serve-first tie-policy ablation",
      "kill-all vs first-wins at simultaneous arrivals");

  const std::uint32_t L = 4;

  struct Workload {
    std::string name;
    CollectionFactory factory;
    ScheduleFactory schedule;
    std::uint16_t bandwidth;
  };
  const std::vector<Workload> workloads{
      {"bundle 4x64, tight delays",
       [](std::uint64_t) { return make_bundle_collection(4, 64, 8); },
       fixed_schedule_factory(2 * L), 1},
      {"butterfly dim 6 permutation",
       [](std::uint64_t seed) {
         auto topo = std::make_shared<ButterflyTopology>(make_butterfly(6));
         Rng rng(seed);
         const auto perm = random_permutation(topo->rows(), rng);
         std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
         for (std::uint32_t r = 0; r < topo->rows(); ++r)
           requests.emplace_back(r, perm[r]);
         return butterfly_io_collection(topo, requests);
       },
       paper_schedule_factory(L, 2), 2},
  };

  for (const auto& workload : workloads) {
    Table table(workload.name);
    table.set_header({"tie policy", "rounds mean", "rounds p95",
                      "charged mean"});
    for (const TiePolicy tie : {TiePolicy::KillAll, TiePolicy::FirstWins}) {
      ProtocolConfig config;
      config.tie = tie;
      config.bandwidth = workload.bandwidth;
      config.worm_length = L;
      config.max_rounds = 20000;
      const auto aggregate = run_trials(workload.factory, workload.schedule,
                                        config, scaled_trials(15), 147);
      table.row()
          .cell(to_string(tie))
          .cell(aggregate.rounds.mean())
          .cell(aggregate.rounds.quantile(0.95))
          .cell(aggregate.charged_time.mean());
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: first-wins <= kill-all everywhere; a"
               " many-fold gap on the dense\nbundle (kill-all wipes out"
               " whole dead-heats), a few percent on the butterfly.\n";
  return 0;
}
