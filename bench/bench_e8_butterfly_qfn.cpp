// E8 — Theorem 1.7: butterflies routing random q-functions input→output.
//
// Paper claim: on the log n-dimensional butterfly's leveled path system,
// a random q-function routes in
// O(L·q·log n/B + √(log n / log(q log n))·(L + log n + L·log n/B)) w.h.p.
// — i.e. linear growth in q once the congestion term dominates, with the
// round term *shrinking* as q grows (more congestion makes α larger).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E8: Thm 1.7 (butterfly q-functions, serve-first)",
      "time ~ L q log n / B + sqrt(log n/log(q log n)) (L + log n + ...)");

  const std::uint32_t L = 4;
  const std::uint16_t B = 2;

  for (const std::uint32_t dim : {5u, 7u}) {
    Table table("butterfly dim=" + std::to_string(dim) +
                " (n=" + std::to_string(1u << dim) + " rows)");
    table.set_header({"q", "paths", "measured C", "rounds mean",
                      "charged mean", "Thm 1.7 bound", "time/bound",
                      "time/q"});
    for (const std::uint32_t q : {1u, 2u, 4u, 8u}) {
      CollectionFactory factory = [dim, q](std::uint64_t seed) {
        auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
        Rng rng(seed);
        return butterfly_random_q_function(topo, q, rng);
      };
      ProtocolConfig config;
      config.bandwidth = B;
      config.worm_length = L;
      config.max_rounds = 2000;
      const auto aggregate =
          run_trials(factory, paper_schedule_factory(L, B), config,
                     scaled_trials(dim >= 7 ? 10 : 20), 88);
      const double bound = runtime_butterfly(1u << dim, q, L, B);
      table.row()
          .cell(q)
          .cell(static_cast<long long>(q) * (1u << dim))
          .cell(aggregate.path_congestion.mean())
          .cell(aggregate.rounds.mean())
          .cell(aggregate.charged_time.mean())
          .cell(bound)
          .cell(aggregate.charged_time.mean() / bound)
          .cell(aggregate.charged_time.mean() / q);
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: charged time grows with q but sublinearly at"
               " small q\n(round term shrinks); time/bound stays within a"
               " modest constant band.\n";
  return 0;
}
