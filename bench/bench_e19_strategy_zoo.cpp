// E19 — strategy zoo: pluggable static RWA strategies vs the online
// Trial-and-Failure protocol, head-to-head on data-center topologies.
//
// Contestants, per topology (radix-4 fat tree, BCube(4,2)):
//   greedy static — Welsh-Powell coloring + batch shipping (E10's
//                   baseline, global knowledge, no retries)
//   trial & failure — the paper's online randomized protocol
//   first_fit / least_used / random_fit over k-shortest-path candidates,
//   multipath splitting, and Valiant oblivious routing — the rwa/
//   strategy layer, driven round-by-round like Trial-and-Failure.
//
// All rows share per-trial instance seeds (run_strategy_trials derives
// them exactly like run_trials), so trial t of every contestant routes
// the same permutation. Expected shape: strategies with candidate
// diversity (least_used, multipath) block less than first_fit at equal
// B; Valiant trades longer routes for load spreading; Trial-and-Failure
// needs no global view but pays rounds for it.
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "opto/core/static_wdm.hpp"
#include "opto/graph/bcube.hpp"
#include "opto/graph/fattree.hpp"
#include "opto/obs/obs.hpp"
#include "opto/paths/bfs_shortest.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rwa/schedule.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E19: strategy zoo vs trial-and-failure",
      "static RWA strategies (KSP + FF/LU/RF, multipath, Valiant) vs the "
      "online protocol on fat-tree and BCube");

  const std::uint16_t B = 2;
  const std::uint32_t L = 4;
  const std::uint32_t kCandidates = 3;
  const std::uint64_t kSeed = 191;
  const std::size_t trials = scaled_trials(30);

  struct Arena {
    std::string name;
    std::string slug;
    std::shared_ptr<const Graph> graph;
  };
  const std::vector<Arena> arenas{
      {"fat tree radix 4", "fattree4",
       std::make_shared<Graph>(std::move(make_fat_tree(4).graph))},
      {"BCube(4, 2)", "bcube42",
       std::make_shared<Graph>(std::move(make_bcube(4, 2).graph))},
  };

  for (const Arena& arena : arenas) {
    const auto graph = arena.graph;
    const std::uint32_t n = graph->node_count();

    // Shared per-trial instance: a random node permutation (the same
    // Rng draw the DSL bfs/permutation factory makes).
    const rwa::InstanceFactory instances = [graph, n](std::uint64_t seed) {
      Rng rng(seed);
      const auto perm = random_permutation(n, rng);
      std::vector<rwa::RwaRequest> requests;
      requests.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i)
        requests.push_back(rwa::RwaRequest{i, perm[i]});
      return std::make_pair(graph, std::move(requests));
    };
    const CollectionFactory paths_factory = [graph](std::uint64_t seed) {
      Rng rng(seed);
      return bfs_random_permutation(graph, rng);
    };

    Table table(arena.name + " — permutation, B=" + std::to_string(B) +
                ", L=" + std::to_string(L));
    table.set_header({"contestant", "success", "blocking", "rounds",
                      "makespan", "colors"});
    const auto metric = [&](const char* contestant, const char* field,
                            double value) {
      obs::set_metric(arena.slug + std::string(".") + contestant + "." + field,
                      value);
    };

    // Greedy static coloring on the fixed representative instance
    // (deterministic given the collection, E10's convention).
    const auto collection = paths_factory(4242);
    const auto wdm = run_static_wdm(collection, B, L);
    table.row()
        .cell("greedy static")
        .cell(wdm.success ? 1.0 : 0.0)
        .cell(0.0)
        .cell(static_cast<long long>(wdm.batches))
        .cell(static_cast<long long>(wdm.total_time))
        .cell(static_cast<long long>(wdm.colors));
    metric("greedy_static", "rounds", wdm.batches);
    metric("greedy_static", "makespan", static_cast<double>(wdm.total_time));

    // Trial-and-Failure over the same instances (BFS routes, paper Δ).
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 2000;
    const auto taf = run_trials(paths_factory, paper_schedule_factory(L, B),
                                config, trials, kSeed);
    table.row()
        .cell("trial & failure")
        .cell(taf.success_rate())
        .cell(0.0)
        .cell(taf.rounds.mean())
        .cell(taf.actual_time.mean())
        .cell(static_cast<long long>(B));
    metric("trial_and_failure", "rounds", taf.rounds.mean());
    metric("trial_and_failure", "makespan", taf.actual_time.mean());

    // The zoo.
    rwa::StrategyScheduleConfig zoo;
    zoo.rwa.bandwidth = B;
    zoo.rwa.candidates = kCandidates;
    zoo.rwa.split_ways = 2;
    zoo.worm_length = L;
    zoo.max_rounds = 64;
    for (const rwa::StrategyKind kind : rwa::all_strategy_kinds()) {
      const auto agg =
          rwa::run_strategy_trials(instances, kind, zoo, trials, kSeed);
      table.row()
          .cell(rwa::to_string(kind))
          .cell(agg.success_rate())
          .cell(agg.blocking.mean())
          .cell(agg.rounds.mean())
          .cell(agg.makespan.mean())
          .cell(agg.colors.mean());
      metric(rwa::to_string(kind), "blocking", agg.blocking.mean());
      metric(rwa::to_string(kind), "rounds", agg.rounds.mean());
      metric(rwa::to_string(kind), "makespan", agg.makespan.mean());
    }
    print_experiment_table(table);
  }

  std::cout << "Expected shape: candidate diversity (least_used, multipath)"
               " blocks less than\nfirst_fit at equal B; Valiant spreads load"
               " at the cost of longer routes;\ntrial-and-failure pays rounds"
               " for needing zero global knowledge.\n";
  return 0;
}
