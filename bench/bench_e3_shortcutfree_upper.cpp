// E3 — Main Theorem 1.2 (upper bound): short-cut free collections with
// blocking cycles under serve-first routers.
//
// Paper claim: rounds grow as O(log_α n + loglog_β n) — a full log_α n,
// not the √(log_α n) of the leveled case, because cyclically blocking
// worms can eliminate each other and no one makes progress.
//
// Workload: mixes of Fig. 6 triangles (the cyclic part) and bundles (the
// congestion part) in one collection. We also print the leveled-shape
// predictor to show the measured rounds track the log (not sqrt-log)
// curve as n grows.
#include <iostream>

#include "bench_common.hpp"
#include "opto/analysis/bounds.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E3: Main Thm 1.2 upper bound (short-cut free, serve-first)",
      "rounds ~ log_a n + loglog_b n on cyclic collections");

  const std::uint32_t L = 4;
  const SimTime delta = 3 * L;  // fixed small range: the log regime

  Table table("triangle+bundle collections, serve-first, B=1");
  table.set_header({"n paths", "rounds mean", "rounds p95", "log_a n",
                    "sqrt(log_a n)", "rounds/log"});
  std::vector<double> xs, ys;
  for (const std::uint32_t structures : {16u, 64u, 256u, 1024u}) {
    CollectionFactory factory = [structures](std::uint64_t) {
      StructureBuilder builder;
      for (std::uint32_t s = 0; s < structures; ++s)
        builder.add_triangle(2 * L + 2, L);
      return std::move(builder).build();
    };
    ProtocolConfig config;
    config.worm_length = L;
    config.max_rounds = 20000;

    const auto aggregate =
        run_trials(factory, fixed_schedule_factory(delta), config,
                   scaled_trials(structures >= 1024 ? 10 : 30), 33);

    ProblemShape shape;
    shape.size = structures * 3;
    shape.dilation = 2 * L + 2;
    shape.path_congestion = 2;
    shape.worm_length = L;
    shape.bandwidth = 1;
    const double log_term = lower_rounds_triangle(shape);
    xs.push_back(log_term);
    ys.push_back(aggregate.rounds.mean());
    table.row()
        .cell(static_cast<long long>(structures * 3))
        .cell(aggregate.rounds.mean())
        .cell(aggregate.rounds.quantile(0.95))
        .cell(log_term)
        .cell(lower_rounds_staircase(shape))
        .cell(aggregate.rounds.mean() / log_term);
  }
  print_experiment_table(table);
  const auto fit = fit_linear(xs, ys);
  std::cout << "linear fit of rounds vs log_a n: slope="
            << Table::format_number(fit.slope)
            << " r2=" << Table::format_number(fit.r2)
            << "\nExpected shape: rounds/log roughly constant (the log_a n"
               " regime of Thm 1.2);\ncompare with E5, where priority routers"
               " collapse this to the sqrt curve.\n";
  return 0;
}
