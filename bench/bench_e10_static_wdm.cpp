// E10 — baseline: static wavelength assignment (single-hop RWA, §1.2).
//
// RWA colors all paths up front (global knowledge, no retries) and ships
// ⌈colors/B⌉ collision-free batches; trial-and-failure knows nothing
// globally and retries. Expected crossover: RWA wins when C̃ is small or
// B large (few batches); the online protocol closes in — and avoids the
// global-coordination requirement entirely — as congestion and network
// size grow.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/core/static_wdm.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E10: trial-and-failure vs static RWA baseline",
      "online randomized protocol vs offline coloring batches");

  const std::uint32_t L = 4;

  struct Workload {
    std::string name;
    CollectionFactory factory;
  };
  const std::vector<Workload> workloads{
      {"mesh 8x8 random fn",
       [](std::uint64_t seed) {
         auto topo = std::make_shared<MeshTopology>(make_mesh({8, 8}));
         Rng rng(seed);
         return mesh_random_function(topo, rng);
       }},
      {"butterfly dim 6, q=4",
       [](std::uint64_t seed) {
         auto topo = std::make_shared<ButterflyTopology>(make_butterfly(6));
         Rng rng(seed);
         return butterfly_random_q_function(topo, 4, rng);
       }},
  };

  for (const auto& workload : workloads) {
    Table table(workload.name);
    table.set_header({"B", "TaF rounds", "TaF time", "RWA colors",
                      "RWA batches", "RWA time", "TaF/RWA time"});
    for (const std::uint16_t B : {1, 2, 4, 8}) {
      ProtocolConfig config;
      config.bandwidth = B;
      config.worm_length = L;
      config.max_rounds = 5000;
      const auto online = run_trials(workload.factory,
                                     paper_schedule_factory(L, B), config,
                                     scaled_trials(10), 171);

      // RWA on a fixed representative instance (the baseline is
      // deterministic given the collection).
      const auto collection = workload.factory(4242);
      const auto rwa = run_static_wdm(collection, B, L);
      table.row()
          .cell(static_cast<long long>(B))
          .cell(online.rounds.mean())
          .cell(online.charged_time.mean())
          .cell(rwa.colors)
          .cell(rwa.batches)
          .cell(static_cast<long long>(rwa.total_time))
          .cell(online.charged_time.mean() /
                static_cast<double>(std::max<SimTime>(1, rwa.total_time)));
    }
    print_experiment_table(table);
  }
  std::cout << "Expected shape: RWA's time ~ batches*(D+L) and shrinks 1/B;"
               " the online protocol\npays a constant-factor premium for"
               " needing zero global knowledge.\n";
  return 0;
}
