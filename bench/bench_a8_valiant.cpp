// A8 — path selection ablation: when does randomized (Valiant) path
// selection pay?
//
// The protocol's framework takes the path selection as given (§1.1);
// this ablation probes how much that choice matters.
//
// Finding 1 (mesh): under dimension-order routing, ANY permutation keeps
// C̃ at Θ(side) — each column hosts exactly `side` x-phases, each row
// `side` y-phases — so Valiant's random intermediate is pure overhead
// there (~2× dilation, ~3× C̃ from the extra phase overlap). Measured on
// the transpose permutation below.
//
// Finding 2 (butterfly): the unique-path system DOES have adversarial
// permutations — bit-reversal drives C̃ to Θ(√n), versus Θ(log n) for a
// random permutation. This is the classic case where oblivious
// deterministic routing loses and randomization (over destinations or
// intermediates) is the fix; the protocol's congestion term L·C̃/B pays
// the difference directly.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/paths/valiant.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "A8: path selection — oblivious vs randomized (Valiant)",
      "meshes tolerate any permutation under XY; butterflies do not");

  const std::uint32_t L = 8;
  const std::uint16_t B = 2;

  Table mesh_table("mesh transpose: dimension-order vs Valiant");
  mesh_table.set_header({"side", "selector", "C mean", "dilation",
                         "rounds mean", "charged mean"});
  for (const std::uint32_t side : {6u, 10u, 14u}) {
    for (const bool use_valiant : {false, true}) {
      CollectionFactory factory = [side, use_valiant](std::uint64_t seed) {
        auto topo = std::make_shared<MeshTopology>(make_mesh({side, side}));
        std::shared_ptr<const Graph> graph(topo, &topo->graph);
        PathCollection collection(graph);
        Rng rng(seed);
        for (std::uint32_t i = 0; i < side; ++i)
          for (std::uint32_t j = 0; j < side; ++j) {
            const std::uint32_t src_coords[] = {i, j};
            const std::uint32_t dst_coords[] = {j, i};
            const NodeId src = topo->node_at(src_coords);
            const NodeId dst = topo->node_at(dst_coords);
            collection.add(use_valiant
                               ? valiant_mesh_path(*topo, src, dst, rng)
                               : dimension_order_path(*topo, src, dst));
          }
        return collection;
      };
      ProtocolConfig config;
      config.bandwidth = B;
      config.worm_length = L;
      config.max_rounds = 5000;
      const auto aggregate = run_trials(
          factory, paper_schedule_factory(L, B), config, scaled_trials(12),
          195);
      mesh_table.row()
          .cell(side)
          .cell(use_valiant ? "valiant" : "dimension-order")
          .cell(aggregate.path_congestion.mean())
          .cell(aggregate.dilation.mean())
          .cell(aggregate.rounds.mean())
          .cell(aggregate.charged_time.mean());
    }
  }
  print_experiment_table(mesh_table);

  Table bfly_table(
      "butterfly unique paths: bit-reversal vs random permutation");
  bfly_table.set_header({"dim", "rows", "C bit-reversal", "C random mean",
                         "charged bit-rev", "charged random"});
  for (const std::uint32_t dim : {4u, 6u, 8u, 10u}) {
    const auto reverse_bits = [dim](std::uint32_t value) {
      std::uint32_t out = 0;
      for (std::uint32_t bit = 0; bit < dim; ++bit)
        out |= ((value >> bit) & 1u) << (dim - 1 - bit);
      return out;
    };
    CollectionFactory bitrev_factory = [dim,
                                        reverse_bits](std::uint64_t) {
      auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
      std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
      for (std::uint32_t r = 0; r < topo->rows(); ++r)
        requests.emplace_back(r, reverse_bits(r));
      return butterfly_io_collection(topo, requests);
    };
    CollectionFactory random_factory = [dim](std::uint64_t seed) {
      auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
      Rng rng(seed);
      const auto perm = random_permutation(topo->rows(), rng);
      std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
      for (std::uint32_t r = 0; r < topo->rows(); ++r)
        requests.emplace_back(r, perm[r]);
      return butterfly_io_collection(topo, requests);
    };
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 5000;
    const auto bitrev = run_trials(bitrev_factory,
                                   paper_schedule_factory(L, B), config,
                                   scaled_trials(10), 196);
    const auto random = run_trials(random_factory,
                                   paper_schedule_factory(L, B), config,
                                   scaled_trials(10), 197);
    bfly_table.row()
        .cell(dim)
        .cell(static_cast<long long>(1u << dim))
        .cell(bitrev.path_congestion.mean())
        .cell(random.path_congestion.mean())
        .cell(bitrev.charged_time.mean())
        .cell(random.charged_time.mean());
  }
  print_experiment_table(bfly_table);
  std::cout << "Expected shape: on the mesh, dimension-order beats Valiant"
               " on every metric —\nXY keeps C ~ side for ANY permutation,"
               " so randomization is pure overhead.\nOn the butterfly,"
               " bit-reversal's C grows like sqrt(n) vs ~log n random —\n"
               "the adversarial gap that motivates randomized path"
               " selection.\n";
  return 0;
}
