// E13 — hop-congestion trade-off for chain lightpath layouts
// (Kranakis–Krizanc–Pelc [22]; Gerstel–Zaks [13,14] layouts).
//
// Sweeping the layout base b on a physical chain traces the trade-off:
//   wavelengths needed ≈ log_b n   (one tunnel per level per link)
//   worst-case hops    ≈ 2(b−1)·log_b n.
// The second table routes an actual random-function workload over each
// layout with the multi-hop trial-and-failure driver, so the trade-off
// shows up in protocol time, not just in static counts.
#include <iostream>

#include "bench_common.hpp"
#include "opto/core/multi_hop.hpp"
#include "opto/paths/lightpath_layout.hpp"
#include "opto/paths/tree_layout.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

int main() {
  using namespace opto;
  using namespace opto::bench;

  print_experiment_banner(
      "E13: chain lightpath layouts — hops vs wavelengths ([22])",
      "base sweep: wavelengths ~ log_b n, hops ~ 2(b-1)log_b n");

  const std::uint32_t n = 257;  // chain nodes (256 links)

  Table structure("static layout structure, chain of 257 nodes");
  structure.set_header({"base", "levels", "wavelengths/fiber", "max hops",
                        "mean hops", "hops*wavelengths"});
  for (const std::uint32_t base : {2u, 4u, 8u, 16u, 64u, 256u}) {
    const auto layout = make_chain_layout(n, base);
    const auto wavelengths = layout_wavelength_congestion(layout);
    const auto max_hops = layout_max_hops(layout);
    structure.row()
        .cell(base)
        .cell(layout.levels)
        .cell(wavelengths)
        .cell(max_hops)
        .cell(layout_mean_hops(layout))
        .cell(static_cast<long long>(max_hops) * wavelengths);
  }
  print_experiment_table(structure);

  // The same trade-off on the other members of the layout family:
  // the 2-D mesh (dimension-order over row/column ladders) and trees
  // (heavy-path decomposition + ladders per heavy path).
  {
    Table family(
        "rings, meshes, trees (the full Gerstel-Zaks family): base sweep");
    family.set_header({"topology", "base", "wavelengths/fiber", "max hops"});
    for (const std::uint32_t base : {2u, 4u, 16u}) {
      const auto ring = make_ring_layout(256, base);
      family.row()
          .cell("ring 256")
          .cell(base)
          .cell(ring_layout_wavelength_congestion(ring))
          .cell(ring_layout_max_hops(ring));
    }
    for (const std::uint32_t base : {2u, 4u, 16u}) {
      const auto mesh = make_mesh_layout(17, base);
      family.row()
          .cell("mesh 17x17")
          .cell(base)
          .cell(mesh_layout_wavelength_congestion(mesh))
          .cell(mesh_layout_max_hops(mesh));
    }
    Rng tree_rng(11);
    const auto parents = random_tree_parents(257, tree_rng);
    for (const std::uint32_t base : {2u, 4u, 16u}) {
      const auto tree = make_tree_layout(parents, base);
      family.row()
          .cell("random tree 257")
          .cell(base)
          .cell(tree_layout_wavelength_congestion(tree))
          .cell(tree_layout_max_hops(tree));
    }
    print_experiment_table(family);
  }

  // Dynamic: route a random function over the layout, one lightpath per
  // round per worm.
  const std::uint32_t L = 4;
  Table dynamic("random function routed over the layout (B=4, L=4)");
  dynamic.set_header({"base", "rounds mean", "charged mean", "failures"});
  for (const std::uint32_t base : {2u, 4u, 16u, 256u}) {
    const std::size_t trials = scaled_trials(10);
    SampleSet rounds, charged;
    std::uint32_t failures = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const auto layout = make_chain_layout(n, base);
      Rng rng(300 + trial);
      const auto f = random_function(n, rng);
      std::vector<std::vector<Path>> worm_segments(n);
      for (NodeId i = 0; i < n; ++i) {
        auto segments = layout_route(layout, i, f[i]);
        if (segments.empty())  // self-request: a zero-length segment
          segments.push_back(
              Path::from_nodes(*layout.graph, std::vector<NodeId>{i}));
        worm_segments[i] = std::move(segments);
      }
      MultiHopConfig config;
      config.bandwidth = 4;
      config.worm_length = L;
      config.max_rounds = 20000;
      FixedSchedule schedule(8 * L);
      MultiHopTrialAndFailure protocol(layout.graph,
                                       std::move(worm_segments), config,
                                       schedule);
      const auto result = protocol.run(400 + trial);
      if (!result.success) {
        ++failures;
        continue;
      }
      rounds.add(static_cast<double>(result.rounds_used));
      charged.add(static_cast<double>(result.total_charged_time));
    }
    dynamic.row()
        .cell(base)
        .cell(rounds.count() ? rounds.mean() : -1.0)
        .cell(charged.count() ? charged.mean() : -1.0)
        .cell(failures);
  }
  print_experiment_table(dynamic);
  std::cout << "Expected shape: in the static table, wavelengths fall and"
               " hops rise with the base\n(the product column stays within"
               " a small band — the [22] trade-off). In the\ndynamic table"
               " intermediate bases win: base 2 needs many rounds (many"
               " hops),\nbase 256 serializes on one long tunnel.\n";
  return 0;
}
