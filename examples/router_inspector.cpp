// Router taxonomy demo (§1.2, Figures 1-3): why the trial-and-failure
// protocol needs generalized (wavelength-selective) switches, shown on a
// 2×2 router.
//
//   ./router_inspector [--bandwidth 4]
#include <cstdio>

#include "opto/optical/router.hpp"
#include "opto/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("router_inspector", "2x2 router configuration checker");
  const auto* bandwidth = cli.add_int("bandwidth", 4, "wavelengths per fiber");
  if (!cli.parse(argc, argv)) return 1;
  const auto B = static_cast<std::uint32_t>(*bandwidth);

  // Scenario: two worms arrive on input 0 using different wavelengths and
  // want different outputs — the routing situation the protocol creates
  // whenever two paths overlap on one fiber and separate at the next
  // router.
  const std::vector<RouterDemand> split{
      {0, 0, 0},  // λ0 from input 0 continues straight
      {0, 1, 1},  // λ1 from input 0 turns
  };
  for (const SwitchType type :
       {SwitchType::Elementary, SwitchType::Generalized}) {
    const auto check = check_router_demands(type, B, split);
    std::printf("split two wavelengths of one input  [%s switch] -> %s%s%s\n",
                to_string(type), check.ok ? "ok" : "impossible",
                check.ok ? "" : ": ", check.reason.c_str());
  }

  // Scenario: a collision demand — two inputs sending the same wavelength
  // to the same output. No switch can realize it; this is exactly the
  // event the serve-first / priority couplers resolve at runtime.
  const std::vector<RouterDemand> collision{{0, 2, 1}, {1, 2, 1}};
  const auto check = check_router_demands(SwitchType::Generalized, B, collision);
  std::printf("same wavelength to one output        [generalized]  -> %s: %s\n",
              check.ok ? "ok (bug!)" : "impossible", check.reason.c_str());

  // Print a full 2x2 configuration for a realizable generalized demand.
  const std::vector<RouterDemand> full{
      {0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1}};
  if (const auto config = configure_2x2(SwitchType::Generalized, B, full)) {
    std::printf("\n2x2 generalized router configuration (input,λ -> output):\n");
    for (std::uint32_t input = 0; input < 2; ++input)
      for (Wavelength w = 0; w < 2; ++w)
        std::printf("  in%u λ%u -> out%u\n", input, w,
                    (*config)[input * B + w]);
  }
  return 0;
}
