// Blocking-probability curves for dynamic circuit traffic (the [34]
// substrate): sweep the offered load on a chosen topology, with and
// without wavelength conversion.
//
//   ./blocking_curve [--topology ring|torus|hypercube] [--size 16]
//                    [--bandwidth 8] [--points 6] [--csv]
#include <cstdio>
#include <iostream>
#include <memory>

#include "opto/core/dynamic_traffic.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("blocking_curve",
                "Dynamic-traffic blocking probability vs offered load");
  const auto* topology =
      cli.add_string("topology", "ring", "ring|torus|hypercube");
  const auto* size = cli.add_int("size", 16, "nodes / side / dimension");
  const auto* bandwidth = cli.add_int("bandwidth", 8, "wavelengths");
  const auto* points = cli.add_int("points", 6, "load points (doubling)");
  const auto* arrivals = cli.add_int("arrivals", 30000, "arrivals per point");
  const auto* csv = cli.add_flag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  Graph graph;
  if (*topology == "ring") {
    graph = make_ring(static_cast<std::uint32_t>(*size));
  } else if (*topology == "torus") {
    graph = make_torus({static_cast<std::uint32_t>(*size),
                        static_cast<std::uint32_t>(*size)})
                .graph;
  } else if (*topology == "hypercube") {
    graph = make_hypercube(static_cast<std::uint32_t>(*size));
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", topology->c_str());
    return 1;
  }

  Table table(graph.name() + ", B=" + std::to_string(*bandwidth));
  table.set_header({"load (Erlang)", "blocking", "blocking w/ conversion",
                    "utilization", "mean route"});
  double load = 4.0;
  for (long long point = 0; point < *points; ++point, load *= 2.0) {
    DynamicTrafficConfig config;
    config.bandwidth = static_cast<std::uint16_t>(*bandwidth);
    config.offered_load = load;
    config.arrivals = static_cast<std::uint64_t>(*arrivals);
    config.warmup = config.arrivals / 8;
    config.conversion = false;
    const auto plain = simulate_dynamic_traffic(graph, config, 33);
    config.conversion = true;
    const auto converted = simulate_dynamic_traffic(graph, config, 33);
    table.row()
        .cell(load)
        .cell(plain.blocking_probability)
        .cell(converted.blocking_probability)
        .cell(plain.utilization)
        .cell(plain.mean_route_length);
  }
  if (*csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::printf(
      "Wavelength continuity is the binding constraint: conversion's gain\n"
      "is largest at low-to-moderate load and on long routes.\n");
  return 0;
}
