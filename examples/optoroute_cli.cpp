// optoroute_cli — general command-line front-end to the library.
//
//   ./optoroute_cli --topology torus --size 8 --workload permutation
//                   --rule priority --bandwidth 4 --length 8 --trials 5
//
// Topologies: mesh, torus (2-D, side = --size), butterfly (dim = --size),
// hypercube (dim), ring (nodes), debruijn (dim), circulant (nodes, chords
// 1 and --size/4), margulis (side).
// Workloads: function, permutation, qfunction (q = --q).
// Output: per-trial summary plus an aggregate table; --csv switches the
// aggregate to CSV for scripting.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "opto/analysis/bounds.hpp"
#include "opto/core/result_json.hpp"
#include "opto/benchsupport/experiment.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/debruijn.hpp"
#include "opto/graph/expander.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"
#include "opto/paths/bfs_shortest.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

namespace {

using namespace opto;

/// Builds the collection factory for (topology, workload) or exits.
CollectionFactory make_factory(const std::string& topology,
                               const std::string& workload,
                               std::uint32_t size, std::uint32_t q) {
  const auto graph_workload =
      [workload, q](std::shared_ptr<const Graph> graph,
                    std::uint64_t seed) -> PathCollection {
    Rng rng(seed);
    if (workload == "permutation") return bfs_random_permutation(graph, rng);
    if (workload == "qfunction") {
      const auto requests =
          random_q_function_requests(graph->node_count(), q, rng);
      return bfs_collection(graph, requests);
    }
    return bfs_random_function(graph, rng);
  };

  if (topology == "mesh" || topology == "torus") {
    const bool wrap = topology == "torus";
    return [=](std::uint64_t seed) {
      auto topo = std::make_shared<MeshTopology>(
          wrap ? make_torus({size, size}) : make_mesh({size, size}));
      Rng rng(seed);
      if (workload == "permutation") {
        const auto perm = random_permutation(topo->graph.node_count(), rng);
        std::shared_ptr<const Graph> graph(topo, &topo->graph);
        PathCollection collection(graph);
        for (NodeId s = 0; s < topo->graph.node_count(); ++s)
          collection.add(dimension_order_path(*topo, s, perm[s]));
        return collection;
      }
      if (workload == "qfunction") {
        const auto requests =
            random_q_function_requests(topo->graph.node_count(), q, rng);
        return mesh_collection(topo, requests);
      }
      return mesh_random_function(topo, rng);
    };
  }
  if (topology == "butterfly") {
    return [=](std::uint64_t seed) {
      auto topo = std::make_shared<ButterflyTopology>(make_butterfly(size));
      Rng rng(seed);
      if (workload == "permutation") {
        const auto perm = random_permutation(topo->rows(), rng);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
        for (std::uint32_t r = 0; r < topo->rows(); ++r)
          requests.emplace_back(r, perm[r]);
        return butterfly_io_collection(topo, requests);
      }
      return butterfly_random_q_function(topo,
                                         workload == "qfunction" ? q : 1, rng);
    };
  }
  const auto build_graph = [=]() -> std::shared_ptr<const Graph> {
    if (topology == "hypercube")
      return std::make_shared<Graph>(make_hypercube(size));
    if (topology == "ring") return std::make_shared<Graph>(make_ring(size));
    if (topology == "debruijn")
      return std::make_shared<Graph>(make_debruijn(size));
    if (topology == "circulant")
      return std::make_shared<Graph>(
          make_circulant(size, {1, std::max(2u, size / 4)}));
    if (topology == "margulis")
      return std::make_shared<Graph>(make_margulis_expander(size));
    return nullptr;
  };
  const auto graph = build_graph();
  if (graph == nullptr) return nullptr;
  return [=](std::uint64_t seed) { return graph_workload(graph, seed); };
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("optoroute_cli",
                "Trial-and-Failure routing on a configurable network");
  const auto* topology = cli.add_string(
      "topology", "torus",
      "mesh|torus|butterfly|hypercube|ring|debruijn|circulant|margulis");
  const auto* size = cli.add_int("size", 8, "side / dimension / node count");
  const auto* workload =
      cli.add_string("workload", "function", "function|permutation|qfunction");
  const auto* q = cli.add_int("q", 2, "messages per node for qfunction");
  const auto* rule =
      cli.add_string("rule", "serve-first", "serve-first|priority");
  const auto* bandwidth = cli.add_int("bandwidth", 2, "wavelengths B");
  const auto* length = cli.add_int("length", 4, "worm length L");
  const auto* conversion = cli.add_flag("conversion", "full wavelength conversion");
  const auto* ack = cli.add_string("ack", "ideal", "ideal|simulated");
  const auto* trials = cli.add_int("trials", 5, "independent trials");
  const auto* seed = cli.add_int("seed", 1, "base random seed");
  const auto* csv = cli.add_flag("csv", "emit the summary as CSV");
  const auto* dump = cli.add_string(
      "dump", "", "write one full per-round JSON result to this file");
  if (!cli.parse(argc, argv)) return 1;

  const auto factory =
      make_factory(*topology, *workload, static_cast<std::uint32_t>(*size),
                   static_cast<std::uint32_t>(*q));
  if (!factory) {
    std::fprintf(stderr, "unknown topology '%s'\n", topology->c_str());
    return 1;
  }

  ProtocolConfig config;
  config.rule = (*rule == "priority") ? ContentionRule::Priority
                                      : ContentionRule::ServeFirst;
  config.bandwidth = static_cast<std::uint16_t>(*bandwidth);
  config.worm_length = static_cast<std::uint32_t>(*length);
  config.conversion =
      *conversion ? ConversionMode::Full : ConversionMode::None;
  config.ack_mode = (*ack == "simulated") ? AckMode::Simulated : AckMode::Ideal;
  config.max_rounds = 5000;

  const auto aggregate = run_trials(
      factory, paper_schedule_factory(config.worm_length, config.bandwidth),
      config, static_cast<std::size_t>(*trials),
      static_cast<std::uint64_t>(*seed));

  if (!dump->empty()) {
    // One representative run with full per-round detail.
    const auto collection = factory(static_cast<std::uint64_t>(*seed));
    const auto schedule = paper_schedule_factory(
        config.worm_length, config.bandwidth)(collection);
    TrialAndFailure protocol(collection, config, *schedule);
    const auto result = protocol.run(static_cast<std::uint64_t>(*seed));
    std::ofstream out(*dump);
    write_result_json(out, result);
    std::printf("wrote per-round JSON to %s\n", dump->c_str());
  }

  Table table(*topology + "-" + std::to_string(*size) + " " + *workload +
              " (" + *rule + ", B=" + std::to_string(*bandwidth) +
              ", L=" + std::to_string(*length) + ")");
  table.set_header({"metric", "mean", "p95", "min", "max"});
  const auto row = [&](const char* name, const SampleSet& set) {
    if (set.count() == 0) return;
    table.row()
        .cell(name)
        .cell(set.mean())
        .cell(set.quantile(0.95))
        .cell(set.min())
        .cell(set.max());
  };
  row("rounds", aggregate.rounds);
  row("charged time", aggregate.charged_time);
  row("observed time", aggregate.actual_time);
  row("path congestion", aggregate.path_congestion);
  row("dilation", aggregate.dilation);
  if (*csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  if (aggregate.failures > 0)
    std::printf("WARNING: %u trial(s) hit the round limit\n",
                aggregate.failures);
  if (aggregate.rounds.count() > 0 && aggregate.dilation.count() > 0) {
    ProblemShape shape;
    shape.size = 0;  // filled from measured aggregates below
    shape.dilation =
        static_cast<std::uint32_t>(aggregate.dilation.mean() + 0.5);
    shape.path_congestion =
        static_cast<std::uint32_t>(aggregate.path_congestion.mean() + 0.5);
    shape.worm_length = config.worm_length;
    shape.bandwidth = config.bandwidth;
    // n from a fresh instance (collections can differ per trial only in
    // paths, not count).
    shape.size = factory(static_cast<std::uint64_t>(*seed)).size();
    std::printf("Thm 1.1/1.3 round shape for this instance: %.2f;"
                " paper budget T: %.2f\n",
                rounds_leveled(shape), paper_round_budget(shape));
  }
  return aggregate.failures == 0 ? 0 : 2;
}
