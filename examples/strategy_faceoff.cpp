// Face-off: every routing strategy in the library on one workload.
//
//   trial-and-failure  serve-first   (the paper's protocol, Thm 1.1/1.2)
//   trial-and-failure  priority      (Thm 1.3)
//   trial-and-failure  + conversion  (the [11] comparator, §4)
//   static RWA batches                (single-hop baseline, §1.2)
//   multi-hop segments                (bounded-hop extension, §4)
//
//   ./strategy_faceoff [--side 8] [--bandwidth 4] [--length 8] [--seed 3]
#include <cstdio>
#include <iostream>
#include <memory>

#include "opto/core/multi_hop.hpp"
#include "opto/core/static_wdm.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("strategy_faceoff",
                "All routing strategies on one mesh workload");
  const auto* side = cli.add_int("side", 8, "mesh side length");
  const auto* bandwidth = cli.add_int("bandwidth", 4, "wavelengths");
  const auto* length = cli.add_int("length", 8, "worm length");
  const auto* seed = cli.add_int("seed", 3, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto B = static_cast<std::uint16_t>(*bandwidth);
  const auto L = static_cast<std::uint32_t>(*length);

  auto topo = std::make_shared<MeshTopology>(
      make_mesh({static_cast<std::uint32_t>(*side),
                 static_cast<std::uint32_t>(*side)}));
  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto collection = mesh_random_function(topo, rng);
  const auto stats = collection.stats();
  std::printf("workload: %s, n=%u, D=%u, C=%u, L=%u, B=%u\n",
              topo->graph.name().c_str(), stats.size, stats.dilation,
              stats.path_congestion, L, B);

  ProblemShape shape;
  shape.size = stats.size;
  shape.dilation = stats.dilation;
  shape.path_congestion = stats.path_congestion;
  shape.worm_length = L;
  shape.bandwidth = B;
  PaperSchedule schedule(shape);

  Table table("strategy face-off");
  table.set_header({"strategy", "rounds", "time (steps)", "notes"});

  const auto run_taf = [&](const char* name, ContentionRule rule,
                           ConversionMode conversion) {
    ProtocolConfig config;
    config.rule = rule;
    config.bandwidth = B;
    config.worm_length = L;
    config.conversion = conversion;
    config.max_rounds = 2000;
    TrialAndFailure protocol(collection, config, schedule);
    const auto result = protocol.run(static_cast<std::uint64_t>(*seed));
    table.row()
        .cell(name)
        .cell(result.rounds_used)
        .cell(result.total_charged_time)
        .cell(result.success ? "online, no global knowledge"
                             : "INCOMPLETE");
  };
  run_taf("trial-and-failure serve-first", ContentionRule::ServeFirst,
          ConversionMode::None);
  run_taf("trial-and-failure priority", ContentionRule::Priority,
          ConversionMode::None);
  run_taf("trial-and-failure + conversion", ContentionRule::ServeFirst,
          ConversionMode::Full);

  {
    const auto rwa = run_static_wdm(collection, B, L);
    table.row()
        .cell("static RWA batches")
        .cell(rwa.batches)
        .cell(rwa.total_time)
        .cell("offline: " + std::to_string(rwa.colors) + " colors, needs "
              "full collection up front");
  }
  {
    MultiHopConfig config;
    config.hop_spacing = std::max(1u, stats.dilation / 2);
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 2000;
    MultiHopTrialAndFailure protocol(collection, config, schedule);
    const auto result = protocol.run(static_cast<std::uint64_t>(*seed));
    table.row()
        .cell("multi-hop (2 segments)")
        .cell(result.rounds_used)
        .cell(result.total_charged_time)
        .cell(result.success ? "electronic buffering at hop nodes"
                             : "INCOMPLETE");
  }
  table.print(std::cout);
  std::printf(
      "\nThe paper's pitch in one table: the serve-first protocol — the\n"
      "simplest hardware — stays within a small factor of every smarter\n"
      "or better-informed alternative.\n");
  return 0;
}
