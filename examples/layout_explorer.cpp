// Layout explorer: inspect the Gerstel–Zaks lightpath-layout family
// (chain / ring / mesh / tree) at any base — static trade-off numbers, a
// sample route, and optional DOT output of the lightpath set.
//
//   ./layout_explorer --family tree --size 64 --base 4 --src 3 --dst 60
//   ./layout_explorer --family ring --size 64 --base 2 --dot ring.dot
#include <cstdio>
#include <fstream>
#include <iostream>

#include "opto/paths/dot_export.hpp"
#include "opto/paths/lightpath_layout.hpp"
#include "opto/paths/tree_layout.hpp"
#include "opto/rng/rng.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

namespace {

using namespace opto;

void describe_route(const std::vector<Path>& route, const Graph& graph) {
  std::printf("route: %zu hops\n", route.size());
  for (const Path& tunnel : route) {
    std::printf("  tunnel %u -> %u (%u links)\n", tunnel.source(),
                tunnel.destination(), tunnel.length());
    (void)graph;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("layout_explorer", "Lightpath layout family explorer");
  const auto* family =
      cli.add_string("family", "chain", "chain|ring|mesh|tree");
  const auto* size = cli.add_int("size", 64, "nodes (mesh: side)");
  const auto* base = cli.add_int("base", 2, "tunnel ladder base");
  const auto* src = cli.add_int("src", 0, "sample route source");
  const auto* dst = cli.add_int("dst", 1, "sample route destination");
  const auto* seed = cli.add_int("seed", 1, "tree shape seed");
  const auto* dot = cli.add_string("dot", "", "write lightpath DOT here");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::uint32_t>(*size);
  const auto b = static_cast<std::uint32_t>(*base);
  const auto s = static_cast<NodeId>(*src);
  const auto d = static_cast<NodeId>(*dst);

  Table table(*family + " layout, n=" + std::to_string(n) +
              ", base=" + std::to_string(b));
  table.set_header({"metric", "value"});

  PathCollection lightpaths;
  std::vector<Path> route;
  if (*family == "chain") {
    const auto layout = make_chain_layout(n, b);
    lightpaths = layout_lightpaths(layout);
    route = layout_route(layout, s, d);
    table.row().cell("levels").cell(layout.levels);
    table.row().cell("wavelengths/fiber").cell(
        layout_wavelength_congestion(layout));
    table.row().cell("max hops").cell(layout_max_hops(layout));
    table.row().cell("mean hops").cell(layout_mean_hops(layout));
  } else if (*family == "ring") {
    const auto layout = make_ring_layout(n, b);
    lightpaths = ring_layout_lightpaths(layout);
    route = ring_layout_route(layout, s, d);
    table.row().cell("levels").cell(layout.levels);
    table.row().cell("wavelengths/fiber").cell(
        ring_layout_wavelength_congestion(layout));
    table.row().cell("max hops").cell(ring_layout_max_hops(layout));
  } else if (*family == "mesh") {
    const auto layout = make_mesh_layout(n, b);
    lightpaths = mesh_layout_lightpaths(layout);
    route = mesh_layout_route(layout, s, d);
    table.row().cell("levels").cell(layout.levels);
    table.row().cell("wavelengths/fiber").cell(
        mesh_layout_wavelength_congestion(layout));
    table.row().cell("max hops").cell(mesh_layout_max_hops(layout));
  } else if (*family == "tree") {
    Rng rng(static_cast<std::uint64_t>(*seed));
    const auto parents = random_tree_parents(n, rng);
    const auto layout = make_tree_layout(parents, b);
    lightpaths = tree_layout_lightpaths(layout);
    route = tree_layout_route(layout, s, d);
    table.row().cell("wavelengths/fiber").cell(
        tree_layout_wavelength_congestion(layout));
    table.row().cell("max hops").cell(tree_layout_max_hops(layout));
    table.row().cell("lca(src,dst)").cell(
        static_cast<long long>(tree_lca(layout, s, d)));
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family->c_str());
    return 1;
  }
  table.row().cell("lightpaths kept lit").cell(lightpaths.size());
  table.print(std::cout);
  describe_route(route, lightpaths.graph());

  if (!dot->empty()) {
    std::ofstream out(*dot);
    write_dot(out, lightpaths);
    std::printf("wrote %s\n", dot->c_str());
  }
  return 0;
}
