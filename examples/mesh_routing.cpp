// Theorem 1.6 scenario: route a random function on a d-dimensional mesh
// with dimension-order paths and serve-first routers, compare the measured
// charged time against the theorem's closed-form shape, and show how the
// result scales with bandwidth.
//
//   ./mesh_routing [--side 8] [--dims 2] [--length 4] [--trials 5]
#include <cstdio>
#include <iostream>
#include <memory>

#include "opto/analysis/bounds.hpp"
#include "opto/benchsupport/experiment.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("mesh_routing",
                "Random functions on a d-dimensional mesh (Theorem 1.6)");
  const auto* side = cli.add_int("side", 8, "mesh side length");
  const auto* dims = cli.add_int("dims", 2, "mesh dimensions");
  const auto* length = cli.add_int("length", 4, "worm length");
  const auto* trials = cli.add_int("trials", 5, "trials per bandwidth");
  if (!cli.parse(argc, argv)) return 1;

  const std::vector<std::uint32_t> sides(
      static_cast<std::size_t>(*dims), static_cast<std::uint32_t>(*side));
  const auto L = static_cast<std::uint32_t>(*length);

  Table table("mesh random-function routing vs bandwidth");
  table.set_header({"B", "mean rounds", "mean charged time", "measured C",
                    "Thm 1.6 bound", "time/bound"});

  for (const std::uint16_t bandwidth : {1, 2, 4, 8}) {
    CollectionFactory factory = [&sides](std::uint64_t seed) {
      auto topo = std::make_shared<MeshTopology>(make_mesh(sides));
      Rng rng(seed);
      return mesh_random_function(topo, rng);
    };
    ProtocolConfig config;
    config.bandwidth = bandwidth;
    config.worm_length = L;
    config.max_rounds = 1000;

    const auto aggregate =
        run_trials(factory, paper_schedule_factory(L, bandwidth), config,
                   static_cast<std::size_t>(*trials), 2024);
    const double bound =
        runtime_mesh(static_cast<std::uint32_t>(*side),
                     static_cast<std::uint32_t>(*dims), L, bandwidth);
    table.row()
        .cell(static_cast<long long>(bandwidth))
        .cell(aggregate.rounds.mean())
        .cell(aggregate.charged_time.mean())
        .cell(aggregate.path_congestion.mean())
        .cell(bound)
        .cell(aggregate.charged_time.mean() / bound);
  }
  table.print(std::cout);
  std::printf(
      "The 'time/bound' column should stay roughly constant across B —\n"
      "the protocol tracks the L·d·n/B + rounds·(...) shape of Thm 1.6.\n");
  return 0;
}
