// The lower-bound constructions in action (Figures 5 and 6): watch the
// staircase blocking chain, the bundle's congestion decay, and the
// triangle deadlock that the priority rule breaks.
//
//   ./adversarial_structures [--length 4] [--verbose]
#include <cstdio>
#include <iostream>

#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/sim/simulator.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

namespace {

opto::ProblemShape shape_of(const opto::PathCollection& collection,
                            std::uint32_t L, std::uint16_t B) {
  opto::ProblemShape shape;
  shape.size = collection.size();
  shape.dilation = collection.dilation();
  shape.path_congestion = collection.path_congestion();
  shape.worm_length = L;
  shape.bandwidth = B;
  return shape;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("adversarial_structures",
                "Lower-bound structures: staircase, bundle, triangle");
  const auto* length = cli.add_int("length", 4, "worm length (>= 2)");
  const auto* verbose = cli.add_flag("verbose", "print collision traces");
  if (!cli.parse(argc, argv)) return 1;
  const auto L = static_cast<std::uint32_t>(*length);

  // --- Staircase (Fig. 5): equal delays cascade kills up the chain. ---
  {
    const std::uint32_t k = 6;
    const auto collection = make_staircase_collection(1, k, 3 * L + 4, L);
    SimConfig sim_config;
    sim_config.record_trace = *verbose;
    Simulator sim(collection, sim_config);
    std::vector<LaunchSpec> specs(k);
    for (PathId id = 0; id < k; ++id) {
      specs[id].path = id;
      specs[id].start_time = 0;
      specs[id].wavelength = 0;
      specs[id].length = L;
    }
    const auto result = sim.run(specs);
    std::printf(
        "Staircase (k=%u, L=%u, step d=%u): equal delays kill %llu of %u "
        "worms —\nLemma 2.8's blocking chain (only the topmost survives).\n",
        k, L, StructureBuilder::staircase_step(L),
        static_cast<unsigned long long>(result.metrics.killed), k);
    if (*verbose)
      for (const auto& event : result.trace.events())
        std::printf("  %s\n", Trace::describe(event).c_str());
  }

  // --- Bundle (type-2): doubly exponential congestion decay. ---
  {
    const auto collection = make_bundle_collection(1, 256, 8);
    ProtocolConfig config;
    config.worm_length = L;
    config.max_rounds = 200;
    config.track_congestion = true;
    PaperSchedule schedule(shape_of(collection, L, 1));
    TrialAndFailure protocol(collection, config, schedule);
    const auto result = protocol.run(42);

    Table table("bundle of 256 identical paths: survivors per round");
    table.set_header({"round", "delta", "active", "congestion"});
    for (const auto& report : result.rounds)
      table.row()
          .cell(report.round)
          .cell(report.delta)
          .cell(report.active_before)
          .cell(report.active_congestion);
    table.print(std::cout);
    std::printf("(Lemma 2.4/2.10 regime: the survivor count collapses.)\n\n");
  }

  // --- Triangle (Fig. 6): serve-first livelock vs priority progress. ---
  {
    const auto collection = make_triangle_collection(4, 2 * L + 4, L);
    NoDelaySchedule no_delay;

    ProtocolConfig serve_first;
    serve_first.worm_length = L;
    serve_first.max_rounds = 20;
    TrialAndFailure sf(collection, serve_first, no_delay);
    const auto sf_result = sf.run(7);

    ProtocolConfig priority = serve_first;
    priority.rule = ContentionRule::Priority;
    TrialAndFailure pr(collection, priority, no_delay);
    const auto pr_result = pr.run(7);

    std::printf(
        "Triangles (Fig. 6), no startup delays, one wavelength:\n"
        "  serve-first: %s after %u rounds (deterministic livelock —\n"
        "               the cyclic elimination of Main Thm 1.2's bound)\n"
        "  priority   : %s in %u rounds (someone always wins: Thm 1.3)\n",
        sf_result.success ? "finished" : "STILL STUCK", sf_result.rounds_used,
        pr_result.success ? "finished" : "stuck", pr_result.rounds_used);
  }
  return 0;
}
