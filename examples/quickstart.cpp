// Quickstart: route a random permutation on a small torus with the
// Trial-and-Failure protocol and print what happened, round by round.
//
//   ./quickstart [--side 6] [--bandwidth 2] [--length 4]
//                [--rule serve-first|priority] [--seed 1]
//
// This is the smallest end-to-end use of the library: build a topology,
// pick paths, configure the protocol, run, inspect the result.
#include <cstdio>
#include <iostream>
#include <memory>

#include "opto/core/trial_and_failure.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("quickstart", "Trial-and-Failure on a torus permutation");
  const auto* side = cli.add_int("side", 6, "torus side length");
  const auto* bandwidth = cli.add_int("bandwidth", 2, "wavelengths per fiber");
  const auto* length = cli.add_int("length", 4, "worm length in flits");
  const auto* rule = cli.add_string("rule", "serve-first",
                                    "'serve-first' or 'priority'");
  const auto* seed = cli.add_int("seed", 1, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  // 1. Topology: a 2-D torus (node-symmetric, like the paper's §1.4).
  auto topo = std::make_shared<MeshTopology>(
      make_torus({static_cast<std::uint32_t>(*side),
                  static_cast<std::uint32_t>(*side)}));

  // 2. Workload + path selection: a random permutation routed with
  //    dimension-order paths (a short-cut free path system).
  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto perm = random_permutation(topo->graph.node_count(), rng);
  std::shared_ptr<const Graph> graph(topo, &topo->graph);
  PathCollection collection(graph);
  for (NodeId s = 0; s < topo->graph.node_count(); ++s)
    collection.add(dimension_order_path(*topo, s, perm[s]));

  const auto stats = collection.stats();
  std::printf("network: %s   paths n=%u  dilation D=%u  path congestion C=%u\n",
              topo->graph.name().c_str(), stats.size, stats.dilation,
              stats.path_congestion);

  // 3. Protocol configuration (paper schedule, §2.1's Δ_t shape).
  ProtocolConfig config;
  config.rule = (*rule == "priority") ? ContentionRule::Priority
                                      : ContentionRule::ServeFirst;
  config.bandwidth = static_cast<std::uint16_t>(*bandwidth);
  config.worm_length = static_cast<std::uint32_t>(*length);
  config.max_rounds = 500;

  ProblemShape shape;
  shape.size = stats.size;
  shape.dilation = stats.dilation;
  shape.path_congestion = stats.path_congestion;
  shape.worm_length = config.worm_length;
  shape.bandwidth = config.bandwidth;
  PaperSchedule schedule(shape);

  // 4. Run.
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(static_cast<std::uint64_t>(*seed));

  // 5. Report.
  Table table("round-by-round (" + std::string(to_string(config.rule)) + ")");
  table.set_header({"round", "delta", "active", "delivered", "charged time"});
  for (const auto& report : result.rounds)
    table.row()
        .cell(report.round)
        .cell(report.delta)
        .cell(report.active_before)
        .cell(report.acknowledged)
        .cell(report.charged_time);
  table.print(std::cout);

  std::printf("%s in %u rounds; charged time %lld steps, observed %lld steps\n",
              result.success ? "All worms delivered" : "INCOMPLETE",
              result.rounds_used,
              static_cast<long long>(result.total_charged_time),
              static_cast<long long>(result.total_actual_time));
  return result.success ? 0 : 2;
}
