// Theorem 1.7 scenario: random q-functions from the inputs to the outputs
// of a butterfly along its unique leveled path system.
//
//   ./butterfly_qrouting [--dim 6] [--length 4] [--bandwidth 2] [--trials 5]
#include <cstdio>
#include <iostream>
#include <memory>

#include "opto/analysis/bounds.hpp"
#include "opto/benchsupport/experiment.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/paths/leveled.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/cli.hpp"
#include "opto/util/table.hpp"

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("butterfly_qrouting",
                "Random q-functions on a butterfly (Theorem 1.7)");
  const auto* dim = cli.add_int("dim", 6, "butterfly dimension (log n)");
  const auto* length = cli.add_int("length", 4, "worm length");
  const auto* bandwidth = cli.add_int("bandwidth", 2, "wavelengths");
  const auto* trials = cli.add_int("trials", 5, "trials per q");
  if (!cli.parse(argc, argv)) return 1;

  const auto d = static_cast<std::uint32_t>(*dim);
  const auto L = static_cast<std::uint32_t>(*length);
  const auto B = static_cast<std::uint16_t>(*bandwidth);

  {
    // Demonstrate the structural property Thm 1.7 builds on.
    auto topo = std::make_shared<ButterflyTopology>(make_butterfly(d));
    Rng rng(7);
    const auto sample = butterfly_random_q_function(topo, 2, rng);
    std::printf("butterfly dim=%u: %u rows, path system leveled: %s\n", d,
                topo->rows(), is_leveled(sample) ? "yes" : "NO (bug!)");
  }

  Table table("butterfly q-function routing");
  table.set_header({"q", "n paths", "mean rounds", "mean charged time",
                    "measured C", "Thm 1.7 bound", "time/bound"});
  for (const std::uint32_t q : {1u, 2u, 4u, 8u}) {
    CollectionFactory factory = [d, q](std::uint64_t seed) {
      auto topo = std::make_shared<ButterflyTopology>(make_butterfly(d));
      Rng rng(seed);
      return butterfly_random_q_function(topo, q, rng);
    };
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = L;
    config.max_rounds = 1000;
    const auto aggregate =
        run_trials(factory, paper_schedule_factory(L, B), config,
                   static_cast<std::size_t>(*trials), 9 + q);
    const double bound = runtime_butterfly(1u << d, q, L, B);
    table.row()
        .cell(static_cast<long long>(q))
        .cell(static_cast<long long>((1u << d) * q))
        .cell(aggregate.rounds.mean())
        .cell(aggregate.charged_time.mean())
        .cell(aggregate.path_congestion.mean())
        .cell(bound)
        .cell(aggregate.charged_time.mean() / bound);
  }
  table.print(std::cout);
  std::printf(
      "Charged time should grow roughly linearly in q (the L·q·log n/B\n"
      "congestion term of Thm 1.7 dominates as q rises).\n");
  return 0;
}
