// Gallery: renders the paper's objects as Graphviz DOT files —
// the Fig. 5 staircase, the Fig. 6 triangle, a routed torus workload, and
// an empirical witness tree (Fig. 4's real-world counterpart).
//
//   ./gallery [--out gallery]
//   for f in gallery/*.dot; do dot -Tsvg "$f" -o "${f%.dot}.svg"; done
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "opto/analysis/witness_builder.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/dot_export.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/util/cli.hpp"

namespace {

void save(const std::filesystem::path& file, const std::string& dot) {
  std::ofstream out(file);
  out << dot;
  std::printf("wrote %s (%zu bytes)\n", file.string().c_str(), dot.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opto;

  CliParser cli("gallery", "Render the paper's structures as DOT files");
  const auto* out_dir = cli.add_string("out", "gallery", "output directory");
  if (!cli.parse(argc, argv)) return 1;

  std::error_code ec;
  std::filesystem::create_directories(*out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create '%s': %s\n", out_dir->c_str(),
                 ec.message().c_str());
    return 1;
  }
  const std::filesystem::path dir(*out_dir);

  // Fig. 5: a staircase of 5 paths (L = 4 → step 2).
  save(dir / "fig5_staircase.dot",
       to_dot(make_staircase_collection(1, 5, 12, 4)));

  // Fig. 6: the triangle blocking cycle (L = 4 → offset 2).
  save(dir / "fig6_triangle.dot", to_dot(make_triangle_collection(1, 8, 4)));

  // A routed workload: random function on a 4x4 torus, loads per link.
  {
    auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
    Rng rng(7);
    save(dir / "torus_random_function.dot",
         to_dot(mesh_random_function(topo, rng)));
  }

  // Fig. 4's empirical counterpart: the witness tree of a worm that
  // stayed active for 4 rounds of the deterministic triangle livelock.
  {
    const auto collection = make_triangle_collection(1, 10, 4);
    ProtocolConfig config;
    config.worm_length = 4;
    config.max_rounds = 4;
    config.keep_round_outcomes = true;
    NoDelaySchedule schedule;
    TrialAndFailure protocol(collection, config, schedule);
    const auto result = protocol.run(1);
    const auto tree = build_witness_tree(result, 0, 4);
    save(dir / "fig4_witness_tree.dot", witness_tree_to_dot(tree));
  }

  std::printf("render with: for f in %s/*.dot; do dot -Tsvg \"$f\" -o "
              "\"${f%%.dot}.svg\"; done\n",
              out_dir->c_str());
  return 0;
}
