// JSON serialization of protocol results — lets scripts consume full
// per-round detail from optoroute_cli or custom drivers.
#pragma once

#include <ostream>

#include "opto/core/trial_and_failure.hpp"

namespace opto {

/// Writes {"success":…, "rounds_used":…, "total_charged_time":…,
/// "total_actual_time":…, "duplicate_deliveries":…, "completion_round":[…],
/// "rounds":[{…}]} — round entries carry the delta, population counts, and
/// forward-pass metrics (not the per-worm outcome arrays, which are
/// debugging payloads).
void write_result_json(std::ostream& os, const ProtocolResult& result);

}  // namespace opto
