#include "opto/core/priority_assign.hpp"

#include <algorithm>
#include <numeric>

#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(PriorityStrategy strategy) {
  switch (strategy) {
    case PriorityStrategy::RandomPermutation:
      return "random-permutation";
    case PriorityStrategy::FixedByPath:
      return "fixed-by-path";
    case PriorityStrategy::ReverseByPath:
      return "reverse-by-path";
    case PriorityStrategy::AdversarialByPath:
      return "adversarial-by-path";
  }
  return "?";
}

std::vector<std::uint32_t> assign_priorities(
    PriorityStrategy strategy, std::span<const PathId> active_paths,
    std::uint32_t total_paths, Rng& rng) {
  std::vector<std::uint32_t> ranks(active_paths.size());
  switch (strategy) {
    case PriorityStrategy::RandomPermutation: {
      const auto perm =
          rng.permutation(static_cast<std::uint32_t>(active_paths.size()));
      for (std::size_t i = 0; i < ranks.size(); ++i) ranks[i] = perm[i];
      break;
    }
    case PriorityStrategy::FixedByPath:
    case PriorityStrategy::AdversarialByPath:
      for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = active_paths[i];
      break;
    case PriorityStrategy::ReverseByPath:
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        OPTO_ASSERT(active_paths[i] < total_paths);
        ranks[i] = total_paths - 1 - active_paths[i];
      }
      break;
  }
  return ranks;
}

std::vector<std::uint32_t> assign_priorities(
    PriorityStrategy strategy, std::span<const PathId> active_paths,
    std::uint32_t total_paths, const CounterRng& rng,
    std::span<const std::uint32_t> uids) {
  if (strategy != PriorityStrategy::RandomPermutation) {
    // The by-path strategies draw nothing; reuse the sequential
    // implementation with a throwaway stream (never consumed).
    Rng unused = Rng::stream(0, 0);
    return assign_priorities(strategy, active_paths, total_paths, unused);
  }
  OPTO_ASSERT(uids.size() == active_paths.size());
  // Rank = position after sorting members by their keyed draw. Each
  // member's key is addressed by uid alone, so the resulting permutation
  // is invariant under member-vector order and any other draws this round.
  std::vector<std::uint64_t> keys(active_paths.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = rng.at(uids[i], CounterRng::kSlotPriority);
  std::vector<std::uint32_t> order(active_paths.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return uids[a] < uids[b];
            });
  std::vector<std::uint32_t> ranks(active_paths.size());
  for (std::size_t r = 0; r < order.size(); ++r)
    ranks[order[r]] = static_cast<std::uint32_t>(r);
  return ranks;
}

}  // namespace opto
