#include "opto/core/priority_assign.hpp"

#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(PriorityStrategy strategy) {
  switch (strategy) {
    case PriorityStrategy::RandomPermutation:
      return "random-permutation";
    case PriorityStrategy::FixedByPath:
      return "fixed-by-path";
    case PriorityStrategy::ReverseByPath:
      return "reverse-by-path";
    case PriorityStrategy::AdversarialByPath:
      return "adversarial-by-path";
  }
  return "?";
}

std::vector<std::uint32_t> assign_priorities(
    PriorityStrategy strategy, std::span<const PathId> active_paths,
    std::uint32_t total_paths, Rng& rng) {
  std::vector<std::uint32_t> ranks(active_paths.size());
  switch (strategy) {
    case PriorityStrategy::RandomPermutation: {
      const auto perm =
          rng.permutation(static_cast<std::uint32_t>(active_paths.size()));
      for (std::size_t i = 0; i < ranks.size(); ++i) ranks[i] = perm[i];
      break;
    }
    case PriorityStrategy::FixedByPath:
    case PriorityStrategy::AdversarialByPath:
      for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = active_paths[i];
      break;
    case PriorityStrategy::ReverseByPath:
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        OPTO_ASSERT(active_paths[i] < total_paths);
        ranks[i] = total_paths - 1 - active_paths[i];
      }
      break;
  }
  return ranks;
}

}  // namespace opto
