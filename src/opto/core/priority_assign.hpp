// Priority-rank assignment for the priority rule.
//
// Main Theorem 1.3's upper bound holds for *any* rank assignment in which
// no two worms meeting in a round share a rank — whether ranks change per
// round, are random, or deterministic. We guarantee distinctness globally
// by handing out a permutation of [active worms]. The adversarial strategy
// reproduces the lower-bound setup of §2.2 (worm on path i gets rank i, so
// the staircase always discards the longest possible prefix).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "opto/paths/path.hpp"
#include "opto/rng/philox.hpp"
#include "opto/rng/rng.hpp"

namespace opto {

enum class PriorityStrategy : std::uint8_t {
  RandomPermutation,  ///< fresh random ranks each round (default)
  FixedByPath,        ///< rank = path id (stable across rounds)
  ReverseByPath,      ///< rank = n − path id
  AdversarialByPath,  ///< alias of FixedByPath, named for the lower bound:
                      ///< later staircase paths outrank earlier ones
};

const char* to_string(PriorityStrategy strategy);

/// Ranks for the given active worms (parallel to `active_paths`); pairwise
/// distinct. Draws from a sequential stream, so the result depends on how
/// much of `rng` was consumed before the call (legacy single-stream users,
/// e.g. the multi-hop scheduler).
std::vector<std::uint32_t> assign_priorities(
    PriorityStrategy strategy, std::span<const PathId> active_paths,
    std::uint32_t total_paths, Rng& rng);

/// Keyed variant for the protocol layer: RandomPermutation ranks members by
/// their drawn u64 key (uid breaks the ~2^-64 collisions), so a member's
/// rank is a pure function of the (seed, round) behind `rng` and the set of
/// active uids — independent of member order, other draws, batching, and
/// thread count. `uids` is parallel to `active_paths`.
std::vector<std::uint32_t> assign_priorities(
    PriorityStrategy strategy, std::span<const PathId> active_paths,
    std::uint32_t total_paths, const CounterRng& rng,
    std::span<const std::uint32_t> uids);

}  // namespace opto
