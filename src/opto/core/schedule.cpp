#include "opto/core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "opto/util/assert.hpp"

namespace opto {

PaperSchedule::PaperSchedule(ProblemShape shape, Constants constants)
    : shape_(shape), constants_(constants) {
  OPTO_ASSERT(shape_.bandwidth >= 1);
  OPTO_ASSERT(shape_.worm_length >= 1);
  log_n_ = std::max(1.0, std::log2(static_cast<double>(std::max(2u, shape_.size))));
}

SimTime PaperSchedule::delta(std::uint32_t round) const {
  OPTO_ASSERT(round >= 1);
  const double L = shape_.worm_length;
  const double B = shape_.bandwidth;
  const double C = shape_.path_congestion;
  // C̃_t = max{C̃ / 2^{t-1}, log n}: the w.h.p. residual congestion after
  // t−1 halving rounds (Lemma 2.4).
  const double congestion_t =
      std::max(C / std::exp2(static_cast<double>(round - 1)), log_n_);
  const double range = std::max(
      {constants_.congestion_factor * L * congestion_t / B,
       constants_.congestion_factor * L * C / (B * log_n_),
       constants_.log_floor_factor * L * log_n_ / B});
  const double total = range + shape_.dilation + shape_.worm_length;
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(total)));
}

std::string PaperSchedule::describe() const {
  std::ostringstream os;
  os << "paper-geometric(c=" << constants_.congestion_factor
     << ",c'=" << constants_.log_floor_factor << ")";
  return os.str();
}

FixedSchedule::FixedSchedule(SimTime delta) : delta_(delta) {
  OPTO_ASSERT(delta >= 1);
}

SimTime FixedSchedule::delta(std::uint32_t /*round*/) const { return delta_; }

std::string FixedSchedule::describe() const {
  return "fixed(" + std::to_string(delta_) + ")";
}

SimTime NoDelaySchedule::delta(std::uint32_t /*round*/) const { return 1; }

std::string NoDelaySchedule::describe() const { return "no-delay"; }

AdaptiveSchedule::AdaptiveSchedule(SimTime initial, Tuning tuning)
    : initial_(initial), tuning_(tuning), current_(initial) {
  OPTO_ASSERT(initial >= 1);
  OPTO_ASSERT(tuning_.grow > 1.0 && tuning_.shrink < 1.0 &&
              tuning_.shrink > 0.0);
  OPTO_ASSERT(tuning_.low_success <= tuning_.high_success);
  OPTO_ASSERT(tuning_.min_delta >= 1 &&
              tuning_.max_delta >= tuning_.min_delta);
  current_ = std::clamp(current_, tuning_.min_delta, tuning_.max_delta);
}

SimTime AdaptiveSchedule::delta(std::uint32_t /*round*/) const {
  return current_;
}

void AdaptiveSchedule::observe(std::uint32_t launched,
                               std::uint32_t acknowledged) {
  if (launched == 0) return;
  const double success =
      static_cast<double>(acknowledged) / static_cast<double>(launched);
  double next = static_cast<double>(current_);
  if (success < tuning_.low_success)
    next *= tuning_.grow;
  else if (success > tuning_.high_success)
    next *= tuning_.shrink;
  current_ = std::clamp(static_cast<SimTime>(std::llround(next)),
                        tuning_.min_delta, tuning_.max_delta);
}

std::string AdaptiveSchedule::describe() const {
  return "adaptive(start=" + std::to_string(initial_) + ")";
}

void AdaptiveSchedule::reset() {
  current_ = std::clamp(initial_, tuning_.min_delta, tuning_.max_delta);
}

}  // namespace opto
