#include "opto/core/static_wdm.hpp"

#include <vector>

#include "opto/util/assert.hpp"

namespace opto {

StaticWdmResult run_static_wdm(const PathCollection& collection,
                               std::uint16_t bandwidth,
                               std::uint32_t worm_length) {
  OPTO_ASSERT(bandwidth >= 1 && worm_length >= 1);
  StaticWdmResult result;

  const WavelengthAssignment assignment =
      assign_wavelengths(collection, ColoringOrder::ByDegreeDesc);
  OPTO_ASSERT(is_valid_assignment(collection, assignment));
  result.colors = assignment.colors_used;
  result.batches = (assignment.colors_used + bandwidth - 1) / bandwidth;

  SimConfig sim_config;
  sim_config.bandwidth = bandwidth;
  Simulator sim(collection, sim_config);

  bool all_delivered = true;
  for (std::uint32_t batch = 0; batch < result.batches; ++batch) {
    const std::uint32_t color_lo = batch * bandwidth;
    const std::uint32_t color_hi = color_lo + bandwidth;  // exclusive
    std::vector<LaunchSpec> specs;
    for (PathId id = 0; id < collection.size(); ++id) {
      const std::uint32_t color = assignment.color[id];
      if (color < color_lo || color >= color_hi) continue;
      LaunchSpec spec;
      spec.path = id;
      spec.start_time = 0;
      spec.wavelength = static_cast<Wavelength>(color - color_lo);
      spec.length = worm_length;
      spec.priority = id;
      specs.push_back(spec);
    }
    if (specs.empty()) continue;
    const PassResult pass = sim.run(specs);
    // The coloring guarantees collision-freedom; anything else is a bug in
    // the assignment (or an invalid external one).
    all_delivered &= pass.metrics.delivered == specs.size();
    result.total_time += pass.metrics.makespan + 1;
    result.worm_steps += pass.metrics.worm_steps;
  }
  result.success = all_delivered;
  return result;
}

}  // namespace opto
