// The Trial-and-Failure protocol (§1.3) — the paper's primary
// contribution, driven on top of the wormhole simulator.
//
//   all n worms are declared active
//   for t = 1 to T:
//     each active worm launches with a random startup delay in [Δ_t]
//     and a random wavelength in [B]
//     every worm that completely reaches its destination sends an
//     acknowledgement back; acknowledged worms turn inactive
//
// Round t is charged Δ_t + 2(D+L) steps (the paper's accounting); the
// simulated makespans are also recorded. Acks run either idealized (the
// paper's one-forward-pass simplification — its analysis covers acks by
// doubling C̃) or fully simulated on the reverse paths in a separate band
// of B wavelengths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "opto/core/priority_assign.hpp"
#include "opto/core/schedule.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {

enum class AckMode : std::uint8_t { Ideal, Simulated };

const char* to_string(AckMode mode);

/// Bounded exponential backoff on the startup-delay window Δ_t. After a
/// round that lost worms to *faults* (not contention — the Δ-schedule
/// already handles contention), the next round's window is widened by the
/// cumulative backoff multiplier: retrying into a dark link at the same
/// cadence just re-kills the worm, so spreading the retries out both
/// de-phases them from periodic outages and keeps the re-sent population
/// from re-contending at full density. The multiplier grows by
/// `growth` per faulty round, is capped at `max_backoff`, and relaxes by
/// `decay` after every clean round. With no faults injected the
/// multiplier stays exactly 1.0 and Δ_t is untouched (bit-identical runs).
struct RetryPolicy {
  double growth = 2.0;       ///< multiplier applied after a faulty round
  double decay = 0.5;        ///< relaxation factor after a clean round
  double max_backoff = 16.0; ///< cap on the cumulative multiplier
};

struct ProtocolConfig {
  ContentionRule rule = ContentionRule::ServeFirst;
  TiePolicy tie = TiePolicy::KillAll;
  std::uint16_t bandwidth = 1;      ///< B (message band)
  std::uint32_t worm_length = 1;    ///< L
  std::uint32_t max_rounds = 128;
  AckMode ack_mode = AckMode::Ideal;
  std::uint32_t ack_length = 1;     ///< flits per acknowledgement
  PriorityStrategy priorities = PriorityStrategy::RandomPermutation;
  /// Recompute the active sub-collection's path congestion each round
  /// (validates Lemma 2.4 / Lemma 2.10 decay; costs extra time).
  bool track_congestion = false;
  /// Wavelength-conversion capability of the routers (extension, §4).
  ConversionMode conversion = ConversionMode::None;
  std::vector<char> converters;  ///< per-node flags for Sparse mode
  /// Retain each round's launch set and per-worm outcomes (needed by the
  /// witness-tree builder in opto/analysis; costs memory per round).
  bool keep_round_outcomes = false;
  /// Fault injection (sim/faults.hpp). The plan is derived from the run
  /// seed and re-keyed every round (fault_epoch = round number), so a run
  /// replays bit-identically. Zero rates (the default) inject nothing.
  FaultConfig faults;
  /// Δ_t backoff applied after fault-caused losses; inert without faults.
  RetryPolicy retry;
  /// Contention-component pass sharding, forwarded to the simulators
  /// (sim/simulator.hpp). Auto lets large multi-component passes run on
  /// the thread pool; model-level results are identical in every mode.
  PassSharding sharding = PassSharding::Auto;
};

struct RoundReport {
  std::uint32_t round = 0;          ///< 1-based
  SimTime delta = 0;                ///< Δ_t used (backoff already applied)
  std::uint32_t active_before = 0;
  std::uint32_t delivered = 0;      ///< intact deliveries this round
  std::uint32_t acknowledged = 0;   ///< deliveries whose ack returned
  std::uint32_t duplicates = 0;     ///< delivered but ack lost (will retry)
  /// Fault vs contention loss split for this round's forward pass:
  /// fault_losses = fault kills + corrupted arrivals; contention_losses =
  /// contention kills + truncated arrivals.
  std::uint32_t fault_losses = 0;
  std::uint32_t contention_losses = 0;
  std::uint32_t ack_drops = 0;      ///< acks lost to the fault plan
  double backoff = 1.0;             ///< RetryPolicy multiplier in effect
  SimTime charged_time = 0;         ///< Δ_t + 2(D+L)
  SimTime forward_makespan = 0;
  SimTime ack_makespan = 0;
  std::uint32_t active_congestion = 0;  ///< iff track_congestion
  PassMetrics forward;
  /// Populated iff keep_round_outcomes: the worms launched this round (by
  /// path id, parallel to `outcomes`).
  std::vector<PathId> launched;
  std::vector<WormOutcome> outcomes;
};

struct ProtocolResult {
  bool success = false;             ///< all worms acknowledged
  std::uint32_t rounds_used = 0;
  SimTime total_charged_time = 0;   ///< Σ_t (Δ_t + 2(D+L))
  SimTime total_actual_time = 0;    ///< Σ_t observed per-round makespan
  std::uint64_t duplicate_deliveries = 0;
  std::vector<RoundReport> rounds;
  /// Round in which each worm was acknowledged (0 = never).
  std::vector<std::uint32_t> completion_round;
};

/// One live Trial-and-Failure batch, driven round by round by an external
/// event loop. This is the re-entrant core of the protocol: members
/// (path + caller tag) are admitted at any time between rounds, step()
/// executes exactly one round (launch → forward pass → acks → retirement),
/// and acknowledged members surface through completed(). The batch-mode
/// TrialAndFailure::run() below is a thin driver over this class and
/// remains bit-identical to the pre-session implementation; the streaming
/// engine (opto/engine) drives the same session with open arrivals,
/// rolling admissions, held channels (set_pinned), and a first-fit
/// wavelength chooser.
///
/// Determinism: every draw of round t comes from the counter-based
/// CounterRng(seed, t) (rng/philox.hpp) addressed by (member uid, draw
/// slot), where a member's uid is its admission sequence number. A draw is
/// therefore a pure function of (seed, round, uid) — not of member order,
/// of which other members launch, or of how many draws precede it — so a
/// session's trajectory is a pure function of (seed, admission sequence,
/// chooser decisions, pinned sets), independent of wall clock, thread
/// count, and whether other sessions run interleaved with it (see
/// TrialAndFailure::run_many and DESIGN.md §9).
class ProtocolSession {
 public:
  /// Per-round wavelength choice override. Called once per member per
  /// round (in member order) instead of the protocol's uniform draw;
  /// returning nullopt skips the member's launch this round — it still
  /// ages (attempts grow) and retries next round. Without a chooser the
  /// session draws uniformly from [B], consuming the RNG stream exactly
  /// as the batch protocol always has.
  using WavelengthChooser =
      std::function<std::optional<Wavelength>(PathId, std::uint64_t tag)>;

  /// An acknowledged (or expired) member. `history_begin/end` index into
  /// wavelength_history() — the wavelength the worm held on each link it
  /// entered; empty without conversion, where `wavelength` holds on every
  /// link of the path.
  struct Completion {
    std::uint64_t tag = 0;
    PathId path = kInvalidPath;
    std::uint32_t attempts = 0;  ///< rounds participated, this one included
    Wavelength wavelength = 0;   ///< launch wavelength
    std::uint32_t history_begin = 0;
    std::uint32_t history_end = 0;
  };

  /// Collection and schedule must outlive the session. `reverse` is an
  /// optional pre-built reverse-path collection for Simulated acks (the
  /// session builds its own when null and the config needs one).
  ProtocolSession(const PathCollection& collection, ProtocolConfig config,
                  DeltaSchedule& schedule, std::uint64_t seed,
                  const PathCollection* reverse = nullptr);

  /// Adds a member to the next round's batch. `tag` is opaque caller
  /// context (the batch driver uses the path id; the engine a connection
  /// id). Members launch in admission order. With the priority rule and
  /// a by-path strategy, admitting one path twice would duplicate ranks —
  /// use RandomPermutation for multi-connection workloads.
  void admit(PathId path, std::uint64_t tag);

  void set_wavelength_chooser(WavelengthChooser chooser) {
    chooser_ = std::move(chooser);
  }

  /// Held channels for the forward passes (Simulator::set_pinned); the
  /// span is re-read every round, so the caller may mutate the vector
  /// between steps. Acks are modelled on a separate band and are not
  /// blocked by pinned message channels.
  void set_pinned(std::span<const PinnedSlot> pinned) {
    forward_sim_.set_pinned(pinned);
  }

  /// Executes one protocol round over the current members. The returned
  /// report (valid until the next step) uses the session's global round
  /// number; completed() lists the members acknowledged by this round.
  const RoundReport& step();

  /// Members acknowledged by the latest step(), in member order.
  const std::vector<Completion>& completed() const { return completed_; }

  /// Flattened per-link wavelength histories behind completed()'s
  /// history_begin/end; cleared by the next step().
  std::span<const Wavelength> wavelength_history() const {
    return {completed_history_.data(), completed_history_.size()};
  }

  /// Removes members whose attempts reached `max_attempts` and returns
  /// them (valid until the next expire/remove_if). The batch driver never
  /// expires; the engine uses this as a livelock safety net.
  const std::vector<Completion>& expire(std::uint32_t max_attempts);

  /// Predicate-driven removal: members with `pred(tag, attempts)` true
  /// are removed (order-preserving compaction) and returned, valid until
  /// the next expire/remove_if. The engine's loss-call-cleared admission
  /// drops requests that found every wavelength busy at decision time.
  using RemovePredicate =
      std::function<bool(std::uint64_t tag, std::uint32_t attempts)>;
  const std::vector<Completion>& remove_if(const RemovePredicate& pred);

  std::size_t active_count() const { return active_.size(); }
  std::uint32_t rounds_run() const { return round_; }
  std::uint64_t duplicate_deliveries() const { return duplicates_; }

 private:
  const PathCollection& collection_;
  ProtocolConfig config_;
  DeltaSchedule& schedule_;
  std::uint64_t seed_;
  std::uint32_t dilation_;
  FaultPlan fault_plan_;
  bool faults_on_ = false;
  double backoff_ = 1.0;
  std::uint32_t round_ = 0;
  std::uint64_t duplicates_ = 0;
  WavelengthChooser chooser_;

  std::unique_ptr<PathCollection> owned_reverse_;  ///< iff built here
  Simulator forward_sim_;
  std::optional<Simulator> ack_sim_;

  // Members, parallel vectors compacted in order on retirement/expiry.
  // uids_ carries each member's admission sequence number — the RNG
  // address that survives compaction.
  std::vector<PathId> active_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> attempts_;
  std::vector<std::uint32_t> uids_;
  std::uint32_t next_uid_ = 0;

  // Per-round state, hoisted so a steady-state round allocates nothing.
  RoundReport report_;
  PassResult forward_;
  PassResult ack_pass_;
  std::vector<LaunchSpec> specs_;
  std::vector<std::uint32_t> launcher_;     ///< spec index → member index
  std::vector<std::uint32_t> member_spec_;  ///< member index → spec or none
  std::vector<char> acked_;
  std::vector<LaunchSpec> ack_specs_;
  std::vector<std::size_t> ack_owner_;  ///< ack spec → member index
  std::vector<PathId> still_active_;
  std::vector<std::uint64_t> still_tags_;
  std::vector<std::uint32_t> still_attempts_;
  std::vector<std::uint32_t> still_uids_;
  std::vector<Completion> completed_;
  std::vector<Wavelength> completed_history_;
  std::vector<Completion> expired_;
};

class TrialAndFailure {
 public:
  /// Collection and schedule must outlive the protocol object.
  /// The schedule is mutable: its observe() feedback hook is called after
  /// every round (stateful schedules like AdaptiveSchedule rely on it).
  TrialAndFailure(const PathCollection& collection, ProtocolConfig config,
                  DeltaSchedule& schedule);

  /// Runs the protocol to completion (or max_rounds); deterministic in
  /// `seed`.
  ProtocolResult run(std::uint64_t seed);

  /// Trial-level batching: runs seeds.size() independent trials as one
  /// lockstep mega-pass — every live trial advances one round per sweep,
  /// sweeps fan out over the thread pool. Because every draw is a counter
  /// lookup (no shared RNG state to advance), results[k] is bit-identical
  /// to run(seeds[k]) for every batch shape and OPTO_THREADS value.
  /// Schedules are per-trial (they are stateful via observe()) and must be
  /// fresh — one per seed, parallel to `seeds`; the constructor's schedule
  /// is not used.
  std::vector<ProtocolResult> run_many(
      std::span<const std::uint64_t> seeds,
      std::span<DeltaSchedule* const> schedules);

  const ProtocolConfig& config() const { return config_; }

 private:
  const PathCollection& ensure_reverse_collection();

  const PathCollection& collection_;
  ProtocolConfig config_;
  DeltaSchedule& schedule_;
  std::uint32_t dilation_;
  std::unique_ptr<PathCollection> reverse_collection_;  ///< lazily built
};

}  // namespace opto
