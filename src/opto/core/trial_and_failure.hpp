// The Trial-and-Failure protocol (§1.3) — the paper's primary
// contribution, driven on top of the wormhole simulator.
//
//   all n worms are declared active
//   for t = 1 to T:
//     each active worm launches with a random startup delay in [Δ_t]
//     and a random wavelength in [B]
//     every worm that completely reaches its destination sends an
//     acknowledgement back; acknowledged worms turn inactive
//
// Round t is charged Δ_t + 2(D+L) steps (the paper's accounting); the
// simulated makespans are also recorded. Acks run either idealized (the
// paper's one-forward-pass simplification — its analysis covers acks by
// doubling C̃) or fully simulated on the reverse paths in a separate band
// of B wavelengths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "opto/core/priority_assign.hpp"
#include "opto/core/schedule.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {

enum class AckMode : std::uint8_t { Ideal, Simulated };

const char* to_string(AckMode mode);

/// Bounded exponential backoff on the startup-delay window Δ_t. After a
/// round that lost worms to *faults* (not contention — the Δ-schedule
/// already handles contention), the next round's window is widened by the
/// cumulative backoff multiplier: retrying into a dark link at the same
/// cadence just re-kills the worm, so spreading the retries out both
/// de-phases them from periodic outages and keeps the re-sent population
/// from re-contending at full density. The multiplier grows by
/// `growth` per faulty round, is capped at `max_backoff`, and relaxes by
/// `decay` after every clean round. With no faults injected the
/// multiplier stays exactly 1.0 and Δ_t is untouched (bit-identical runs).
struct RetryPolicy {
  double growth = 2.0;       ///< multiplier applied after a faulty round
  double decay = 0.5;        ///< relaxation factor after a clean round
  double max_backoff = 16.0; ///< cap on the cumulative multiplier
};

struct ProtocolConfig {
  ContentionRule rule = ContentionRule::ServeFirst;
  TiePolicy tie = TiePolicy::KillAll;
  std::uint16_t bandwidth = 1;      ///< B (message band)
  std::uint32_t worm_length = 1;    ///< L
  std::uint32_t max_rounds = 128;
  AckMode ack_mode = AckMode::Ideal;
  std::uint32_t ack_length = 1;     ///< flits per acknowledgement
  PriorityStrategy priorities = PriorityStrategy::RandomPermutation;
  /// Recompute the active sub-collection's path congestion each round
  /// (validates Lemma 2.4 / Lemma 2.10 decay; costs extra time).
  bool track_congestion = false;
  /// Wavelength-conversion capability of the routers (extension, §4).
  ConversionMode conversion = ConversionMode::None;
  std::vector<char> converters;  ///< per-node flags for Sparse mode
  /// Retain each round's launch set and per-worm outcomes (needed by the
  /// witness-tree builder in opto/analysis; costs memory per round).
  bool keep_round_outcomes = false;
  /// Fault injection (sim/faults.hpp). The plan is derived from the run
  /// seed and re-keyed every round (fault_epoch = round number), so a run
  /// replays bit-identically. Zero rates (the default) inject nothing.
  FaultConfig faults;
  /// Δ_t backoff applied after fault-caused losses; inert without faults.
  RetryPolicy retry;
  /// Contention-component pass sharding, forwarded to the simulators
  /// (sim/simulator.hpp). Auto lets large multi-component passes run on
  /// the thread pool; model-level results are identical in every mode.
  PassSharding sharding = PassSharding::Auto;
};

struct RoundReport {
  std::uint32_t round = 0;          ///< 1-based
  SimTime delta = 0;                ///< Δ_t used (backoff already applied)
  std::uint32_t active_before = 0;
  std::uint32_t delivered = 0;      ///< intact deliveries this round
  std::uint32_t acknowledged = 0;   ///< deliveries whose ack returned
  std::uint32_t duplicates = 0;     ///< delivered but ack lost (will retry)
  /// Fault vs contention loss split for this round's forward pass:
  /// fault_losses = fault kills + corrupted arrivals; contention_losses =
  /// contention kills + truncated arrivals.
  std::uint32_t fault_losses = 0;
  std::uint32_t contention_losses = 0;
  std::uint32_t ack_drops = 0;      ///< acks lost to the fault plan
  double backoff = 1.0;             ///< RetryPolicy multiplier in effect
  SimTime charged_time = 0;         ///< Δ_t + 2(D+L)
  SimTime forward_makespan = 0;
  SimTime ack_makespan = 0;
  std::uint32_t active_congestion = 0;  ///< iff track_congestion
  PassMetrics forward;
  /// Populated iff keep_round_outcomes: the worms launched this round (by
  /// path id, parallel to `outcomes`).
  std::vector<PathId> launched;
  std::vector<WormOutcome> outcomes;
};

struct ProtocolResult {
  bool success = false;             ///< all worms acknowledged
  std::uint32_t rounds_used = 0;
  SimTime total_charged_time = 0;   ///< Σ_t (Δ_t + 2(D+L))
  SimTime total_actual_time = 0;    ///< Σ_t observed per-round makespan
  std::uint64_t duplicate_deliveries = 0;
  std::vector<RoundReport> rounds;
  /// Round in which each worm was acknowledged (0 = never).
  std::vector<std::uint32_t> completion_round;
};

class TrialAndFailure {
 public:
  /// Collection and schedule must outlive the protocol object.
  /// The schedule is mutable: its observe() feedback hook is called after
  /// every round (stateful schedules like AdaptiveSchedule rely on it).
  TrialAndFailure(const PathCollection& collection, ProtocolConfig config,
                  DeltaSchedule& schedule);

  /// Runs the protocol to completion (or max_rounds); deterministic in
  /// `seed`.
  ProtocolResult run(std::uint64_t seed);

  const ProtocolConfig& config() const { return config_; }

 private:
  const PathCollection& ensure_reverse_collection();

  const PathCollection& collection_;
  ProtocolConfig config_;
  DeltaSchedule& schedule_;
  std::uint32_t dilation_;
  std::unique_ptr<PathCollection> reverse_collection_;  ///< lazily built
};

}  // namespace opto
