#include "opto/core/trial_and_failure.hpp"

#include <algorithm>
#include <cmath>

#include "opto/obs/obs.hpp"
#include "opto/par/parallel_for.hpp"
#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(AckMode mode) {
  return mode == AckMode::Ideal ? "ideal" : "simulated";
}

namespace {

/// Member-with-no-spec sentinel: the wavelength chooser sat this member
/// out for the round, so it has no slot in the pass results.
constexpr std::uint32_t kNoSpec = ~std::uint32_t{0};

SimConfig protocol_sim_config(const ProtocolConfig& config,
                              const FaultPlan* plan) {
  SimConfig sim;
  sim.rule = config.rule;
  sim.tie = config.tie;
  sim.bandwidth = config.bandwidth;
  sim.conversion = config.conversion;
  sim.converters = config.converters;
  sim.faults = plan;
  sim.sharding = config.sharding;
  return sim;
}

/// Path congestion of the active subset (Lemma 2.4 / 2.10 tracking).
std::uint32_t active_path_congestion(const PathCollection& collection,
                                     const std::vector<PathId>& active) {
  PathCollection subset(collection.graph_ptr());
  subset.reserve(active.size());
  for (PathId id : active) subset.add(collection.path(id));
  return subset.path_congestion();
}

/// Protocol-level obs: run/round totals and the fault-vs-contention loss
/// split, recorded once per run (see obs/bench_record.hpp for how these
/// surface in the BenchRecord metrics).
struct ProtocolObsCounters {
  obs::Counter runs{"protocol.runs"};
  obs::Counter failures{"protocol.failures"};
  obs::Counter rounds{"protocol.rounds"};
  obs::Counter fault_losses{"protocol.fault_losses"};
  obs::Counter contention_losses{"protocol.contention_losses"};
  obs::Counter ack_drops{"protocol.ack_drops"};
  obs::Counter duplicates{"protocol.duplicates"};
};

void record_run_observation(const ProtocolResult& result) {
  static ProtocolObsCounters counters;
  counters.runs.add(1);
  if (!result.success) counters.failures.add(1);
  counters.rounds.add(result.rounds_used);
  std::uint64_t fault_losses = 0;
  std::uint64_t contention_losses = 0;
  std::uint64_t ack_drops = 0;
  for (const RoundReport& round : result.rounds) {
    fault_losses += round.fault_losses;
    contention_losses += round.contention_losses;
    ack_drops += round.ack_drops;
  }
  counters.fault_losses.add(fault_losses);
  counters.contention_losses.add(contention_losses);
  counters.ack_drops.add(ack_drops);
  counters.duplicates.add(result.duplicate_deliveries);
}

/// Folds one round of a closed batch into its trial result — the shared
/// accounting of run() and run_many().
void fold_round(ProtocolResult& result, const ProtocolSession& session,
                const RoundReport& report) {
  for (const ProtocolSession::Completion& done : session.completed())
    result.completion_round[done.tag] = report.round;
  result.total_charged_time += report.charged_time;
  result.total_actual_time +=
      std::max(report.forward_makespan, report.ack_makespan) + 1;
  result.rounds.push_back(report);
  result.rounds_used = report.round;
}

}  // namespace

// --- ProtocolSession ----------------------------------------------------

ProtocolSession::ProtocolSession(const PathCollection& collection,
                                 ProtocolConfig config,
                                 DeltaSchedule& schedule, std::uint64_t seed,
                                 const PathCollection* reverse)
    : collection_(collection),
      config_(std::move(config)),
      schedule_(schedule),
      seed_(seed),
      dilation_(collection.dilation()),
      // The fault plan is keyed by the session seed and re-keyed each
      // round (fault_epoch = round), so fault decisions replay bit-
      // identically and never consume from the protocol's RNG streams.
      // Both simulators share the plan: acks route through the same
      // faulted network.
      fault_plan_(config_.faults, seed),
      forward_sim_(collection, protocol_sim_config(config_, &fault_plan_)) {
  OPTO_ASSERT(config_.bandwidth >= 1);
  OPTO_ASSERT(config_.worm_length >= 1);
  OPTO_ASSERT_MSG(config_.retry.growth >= 1.0 &&
                      config_.retry.max_backoff >= 1.0 &&
                      config_.retry.decay > 0.0 && config_.retry.decay <= 1.0,
                  "RetryPolicy: growth/max_backoff >= 1, decay in (0, 1]");
  faults_on_ = fault_plan_.enabled();
  if (config_.ack_mode == AckMode::Simulated) {
    if (reverse == nullptr) {
      owned_reverse_ = std::make_unique<PathCollection>(collection.graph_ptr());
      owned_reverse_->reserve(collection.size());
      for (const Path& p : collection.paths())
        owned_reverse_->add(p.reversed());
      reverse = owned_reverse_.get();
    }
    ack_sim_.emplace(*reverse, protocol_sim_config(config_, &fault_plan_));
  }
}

void ProtocolSession::admit(PathId path, std::uint64_t tag) {
  OPTO_ASSERT(path < collection_.size());
  active_.push_back(path);
  tags_.push_back(tag);
  attempts_.push_back(0);
  uids_.push_back(next_uid_++);
}

const RoundReport& ProtocolSession::step() {
  const std::uint32_t round = ++round_;
  // Counter-based draws: everything this round needs is addressed by
  // (member uid, slot) under the (seed, round) key — see the class
  // determinism comment. No draw depends on any other draw.
  const CounterRng rng(seed_, round);
  fault_plan_.set_epoch(round);
  SimTime delta = schedule_.delta(round);
  OPTO_ASSERT(delta >= 1);
  // Widen the startup-delay window by the fault backoff. backoff == 1.0
  // exactly when no fault loss has occurred, keeping Δ_t bit-identical
  // to the fault-free run.
  if (backoff_ > 1.0)
    delta = static_cast<SimTime>(
        std::llround(static_cast<double>(delta) * backoff_));

  report_ = RoundReport{};
  report_.round = round;
  report_.delta = delta;
  report_.backoff = backoff_;
  report_.active_before = static_cast<std::uint32_t>(active_.size());
  report_.charged_time =
      delta + 2 * static_cast<SimTime>(dilation_ + config_.worm_length);
  if (config_.track_congestion)
    report_.active_congestion = active_path_congestion(collection_, active_);

  const auto ranks = assign_priorities(config_.priorities, active_,
                                       static_cast<std::uint32_t>(
                                           collection_.size()),
                                       rng, uids_);

  // Launch every member with a fresh random delay; the wavelength comes
  // from the chooser when one is installed (nullopt = sit this round
  // out), else from the protocol's uniform draw.
  specs_.clear();
  launcher_.clear();
  member_spec_.assign(active_.size(), kNoSpec);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const auto start = static_cast<SimTime>(
        rng.below(static_cast<std::uint64_t>(delta), uids_[i],
                  CounterRng::kSlotStartDelay));
    std::optional<Wavelength> wavelength;
    if (chooser_)
      wavelength = chooser_(active_[i], tags_[i]);
    else
      wavelength = static_cast<Wavelength>(
          rng.below(config_.bandwidth, uids_[i],
                    CounterRng::kSlotWavelength));
    ++attempts_[i];
    if (!wavelength.has_value()) continue;
    LaunchSpec spec;
    spec.path = active_[i];
    spec.start_time = start;
    spec.wavelength = *wavelength;
    spec.priority = ranks[i];
    spec.length = config_.worm_length;
    member_spec_[i] = static_cast<std::uint32_t>(specs_.size());
    launcher_.push_back(static_cast<std::uint32_t>(i));
    specs_.push_back(spec);
  }

  forward_sim_.run(specs_, forward_);
  report_.forward = forward_.metrics;
  report_.forward_makespan = forward_.metrics.makespan;
  report_.fault_losses = static_cast<std::uint32_t>(
      forward_.metrics.fault_kills + forward_.metrics.corrupted_arrivals);
  // Pinned blocks (held channels) count as contention for reporting —
  // the channel is busy, not broken — and never feed the fault backoff.
  report_.contention_losses = static_cast<std::uint32_t>(
      forward_.metrics.killed + forward_.metrics.pinned_blocks +
      forward_.metrics.truncated_arrivals);
  if (config_.keep_round_outcomes) {
    report_.launched.reserve(specs_.size());
    for (const LaunchSpec& spec : specs_)
      report_.launched.push_back(spec.path);
    report_.outcomes = forward_.worms;
  }

  // Determine which deliveries get acknowledged.
  // A lossy ack channel (fault plan) can swallow the acknowledgement of
  // a successful delivery in either mode: the sender re-sends next
  // round (a duplicate delivery), exactly like a lost simulated ack.
  const auto ack_dropped = [&](std::size_t member) {
    if (!faults_on_ || !fault_plan_.drops_ack(active_[member])) return false;
    ++report_.ack_drops;
    return true;
  };
  acked_.assign(active_.size(), 0);
  if (config_.ack_mode == AckMode::Ideal) {
    for (std::size_t j = 0; j < specs_.size(); ++j) {
      const std::size_t member = launcher_[j];
      acked_[member] =
          forward_.worms[j].delivered_intact() && !ack_dropped(member) ? 1
                                                                       : 0;
    }
  } else {
    // Simulated acks: 1..ack_length flits back along the reverse path in
    // a separate band of B wavelengths, launched right after delivery.
    ack_specs_.clear();
    ack_owner_.clear();
    for (std::size_t j = 0; j < specs_.size(); ++j) {
      if (!forward_.worms[j].delivered_intact()) continue;
      const std::size_t member = launcher_[j];
      LaunchSpec spec;
      spec.path = active_[member];
      spec.start_time = forward_.worms[j].finish_time + 1;
      spec.wavelength = static_cast<Wavelength>(
          rng.below(config_.bandwidth, uids_[member],
                    CounterRng::kSlotAckWavelength));
      spec.priority = ranks[member];
      spec.length = config_.ack_length;
      ack_specs_.push_back(spec);
      ack_owner_.push_back(member);
    }
    ack_sim_->run(ack_specs_, ack_pass_);
    report_.ack_makespan = ack_pass_.metrics.makespan;
    for (std::size_t j = 0; j < ack_specs_.size(); ++j)
      if (ack_pass_.worms[j].delivered_intact() &&
          !ack_dropped(ack_owner_[j]))
        acked_[ack_owner_[j]] = 1;
  }

  // Bookkeeping + retirement of acknowledged members (order-preserving
  // compaction, recycling the previous round's buffers).
  completed_.clear();
  completed_history_.clear();
  still_active_.clear();
  still_tags_.clear();
  still_attempts_.clear();
  still_uids_.clear();
  still_active_.reserve(active_.size());
  still_tags_.reserve(active_.size());
  still_attempts_.reserve(active_.size());
  still_uids_.reserve(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const std::uint32_t j = member_spec_[i];
    const bool delivered =
        j != kNoSpec && forward_.worms[j].delivered_intact();
    if (delivered) ++report_.delivered;
    if (acked_[i] != 0) {
      ++report_.acknowledged;
      Completion done;
      done.tag = tags_[i];
      done.path = active_[i];
      done.attempts = attempts_[i];
      done.wavelength = specs_[j].wavelength;
      if (!forward_.wavelength_offsets.empty()) {
        done.history_begin =
            static_cast<std::uint32_t>(completed_history_.size());
        completed_history_.insert(
            completed_history_.end(),
            forward_.wavelengths.begin() + forward_.wavelength_offsets[j],
            forward_.wavelengths.begin() +
                forward_.wavelength_offsets[j + 1]);
        done.history_end =
            static_cast<std::uint32_t>(completed_history_.size());
      }
      completed_.push_back(done);
    } else {
      if (delivered) ++report_.duplicates;  // re-sent next round
      still_active_.push_back(active_[i]);
      still_tags_.push_back(tags_[i]);
      still_attempts_.push_back(attempts_[i]);
      still_uids_.push_back(uids_[i]);
    }
  }
  duplicates_ += report_.duplicates;
  std::swap(active_, still_active_);
  std::swap(tags_, still_tags_);
  std::swap(attempts_, still_attempts_);
  std::swap(uids_, still_uids_);

  schedule_.observe(report_.active_before, report_.acknowledged);
  // RetryPolicy: widen the next window after fault-caused losses (lost
  // acks included — the sender cannot tell them apart), relax toward
  // the schedule's Δ_t after clean rounds.
  if (report_.fault_losses > 0 || report_.ack_drops > 0)
    backoff_ =
        std::min(backoff_ * config_.retry.growth, config_.retry.max_backoff);
  else
    backoff_ = std::max(1.0, backoff_ * config_.retry.decay);
  return report_;
}

const std::vector<ProtocolSession::Completion>& ProtocolSession::expire(
    std::uint32_t max_attempts) {
  return remove_if([max_attempts](std::uint64_t, std::uint32_t attempts) {
    return attempts >= max_attempts;
  });
}

const std::vector<ProtocolSession::Completion>& ProtocolSession::remove_if(
    const RemovePredicate& pred) {
  expired_.clear();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (pred(tags_[i], attempts_[i])) {
      Completion gone;
      gone.tag = tags_[i];
      gone.path = active_[i];
      gone.attempts = attempts_[i];
      expired_.push_back(gone);
      continue;
    }
    active_[keep] = active_[i];
    tags_[keep] = tags_[i];
    attempts_[keep] = attempts_[i];
    uids_[keep] = uids_[i];
    ++keep;
  }
  active_.resize(keep);
  tags_.resize(keep);
  attempts_.resize(keep);
  uids_.resize(keep);
  return expired_;
}

// --- TrialAndFailure ----------------------------------------------------

TrialAndFailure::TrialAndFailure(const PathCollection& collection,
                                 ProtocolConfig config,
                                 DeltaSchedule& schedule)
    : collection_(collection),
      config_(config),
      schedule_(schedule),
      dilation_(collection.dilation()) {
  OPTO_ASSERT(config_.bandwidth >= 1);
  OPTO_ASSERT(config_.worm_length >= 1);
  OPTO_ASSERT(config_.max_rounds >= 1);
  OPTO_ASSERT_MSG(config_.retry.growth >= 1.0 &&
                      config_.retry.max_backoff >= 1.0 &&
                      config_.retry.decay > 0.0 && config_.retry.decay <= 1.0,
                  "RetryPolicy: growth/max_backoff >= 1, decay in (0, 1]");
}

const PathCollection& TrialAndFailure::ensure_reverse_collection() {
  if (reverse_collection_ == nullptr) {
    reverse_collection_ =
        std::make_unique<PathCollection>(collection_.graph_ptr());
    reverse_collection_->reserve(collection_.size());
    for (const Path& p : collection_.paths())
      reverse_collection_->add(p.reversed());
  }
  return *reverse_collection_;
}

ProtocolResult TrialAndFailure::run(std::uint64_t seed) {
  const obs::ScopedTimer obs_timer("protocol.run");
  ProtocolResult result;
  result.completion_round.assign(collection_.size(), 0);

  // One closed batch: every path is a member up front, tagged by its own
  // id, and rounds run until all are acknowledged or the budget is spent.
  // The session keeps the round trajectory bit-identical to the original
  // monolithic loop (same per-round RNG streams, same draw order).
  const PathCollection* reverse = config_.ack_mode == AckMode::Simulated
                                      ? &ensure_reverse_collection()
                                      : nullptr;
  ProtocolSession session(collection_, config_, schedule_, seed, reverse);
  const auto count = static_cast<PathId>(collection_.size());
  for (PathId id = 0; id < count; ++id) session.admit(id, id);

  while (session.active_count() > 0 &&
         session.rounds_run() < config_.max_rounds) {
    const RoundReport& report = session.step();
    fold_round(result, session, report);
  }
  result.duplicate_deliveries = session.duplicate_deliveries();
  result.success = session.active_count() == 0;
  if (obs::enabled()) record_run_observation(result);
  return result;
}

std::vector<ProtocolResult> TrialAndFailure::run_many(
    std::span<const std::uint64_t> seeds,
    std::span<DeltaSchedule* const> schedules) {
  OPTO_ASSERT_MSG(seeds.size() == schedules.size(),
                  "run_many: one schedule per seed");
  const obs::ScopedTimer obs_timer("protocol.run_many");
  const std::size_t trials = seeds.size();
  std::vector<ProtocolResult> results(trials);
  if (trials == 0) return results;

  const PathCollection* reverse = config_.ack_mode == AckMode::Simulated
                                      ? &ensure_reverse_collection()
                                      : nullptr;
  // One closed batch per trial, all admitted up front — the same setup
  // run() performs, so trial k is bit-identical to run(seeds[k]).
  std::vector<std::unique_ptr<ProtocolSession>> sessions;
  sessions.reserve(trials);
  const auto count = static_cast<PathId>(collection_.size());
  for (std::size_t k = 0; k < trials; ++k) {
    OPTO_ASSERT(schedules[k] != nullptr);
    sessions.push_back(std::make_unique<ProtocolSession>(
        collection_, config_, *schedules[k], seeds[k], reverse));
    for (PathId id = 0; id < count; ++id) sessions[k]->admit(id, id);
    results[k].completion_round.assign(collection_.size(), 0);
  }

  // The mega-pass: every live trial advances one round per sweep, fanned
  // out over the pool. Each lane touches only its own session, schedule,
  // and result slot; counter-based draws mean no RNG state is shared, so
  // the interleaving (and OPTO_THREADS) cannot leak between trials.
  bool any_live = true;
  while (any_live) {
    parallel_for(0, trials, [&](std::size_t k) {
      ProtocolSession& session = *sessions[k];
      if (session.active_count() == 0 ||
          session.rounds_run() >= config_.max_rounds)
        return;
      const RoundReport& report = session.step();
      fold_round(results[k], session, report);
    });
    any_live = false;
    for (std::size_t k = 0; k < trials; ++k)
      if (sessions[k]->active_count() > 0 &&
          sessions[k]->rounds_run() < config_.max_rounds)
        any_live = true;
  }
  for (std::size_t k = 0; k < trials; ++k) {
    results[k].duplicate_deliveries = sessions[k]->duplicate_deliveries();
    results[k].success = sessions[k]->active_count() == 0;
    if (obs::enabled()) record_run_observation(results[k]);
  }
  return results;
}

}  // namespace opto
