#include "opto/core/trial_and_failure.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "opto/obs/obs.hpp"
#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(AckMode mode) {
  return mode == AckMode::Ideal ? "ideal" : "simulated";
}

TrialAndFailure::TrialAndFailure(const PathCollection& collection,
                                 ProtocolConfig config,
                                 DeltaSchedule& schedule)
    : collection_(collection),
      config_(config),
      schedule_(schedule),
      dilation_(collection.dilation()) {
  OPTO_ASSERT(config_.bandwidth >= 1);
  OPTO_ASSERT(config_.worm_length >= 1);
  OPTO_ASSERT(config_.max_rounds >= 1);
  OPTO_ASSERT_MSG(config_.retry.growth >= 1.0 &&
                      config_.retry.max_backoff >= 1.0 &&
                      config_.retry.decay > 0.0 && config_.retry.decay <= 1.0,
                  "RetryPolicy: growth/max_backoff >= 1, decay in (0, 1]");
}

const PathCollection& TrialAndFailure::ensure_reverse_collection() {
  if (reverse_collection_ == nullptr) {
    reverse_collection_ =
        std::make_unique<PathCollection>(collection_.graph_ptr());
    reverse_collection_->reserve(collection_.size());
    for (const Path& p : collection_.paths())
      reverse_collection_->add(p.reversed());
  }
  return *reverse_collection_;
}

namespace {

/// Path congestion of the active subset (Lemma 2.4 / 2.10 tracking).
std::uint32_t active_path_congestion(const PathCollection& collection,
                                     const std::vector<PathId>& active) {
  PathCollection subset(collection.graph_ptr());
  subset.reserve(active.size());
  for (PathId id : active) subset.add(collection.path(id));
  return subset.path_congestion();
}

}  // namespace

namespace {

/// Protocol-level obs: run/round totals and the fault-vs-contention loss
/// split, recorded once per run (see obs/bench_record.hpp for how these
/// surface in the BenchRecord metrics).
struct ProtocolObsCounters {
  obs::Counter runs{"protocol.runs"};
  obs::Counter failures{"protocol.failures"};
  obs::Counter rounds{"protocol.rounds"};
  obs::Counter fault_losses{"protocol.fault_losses"};
  obs::Counter contention_losses{"protocol.contention_losses"};
  obs::Counter ack_drops{"protocol.ack_drops"};
  obs::Counter duplicates{"protocol.duplicates"};
};

void record_run_observation(const ProtocolResult& result) {
  static ProtocolObsCounters counters;
  counters.runs.add(1);
  if (!result.success) counters.failures.add(1);
  counters.rounds.add(result.rounds_used);
  std::uint64_t fault_losses = 0;
  std::uint64_t contention_losses = 0;
  std::uint64_t ack_drops = 0;
  for (const RoundReport& round : result.rounds) {
    fault_losses += round.fault_losses;
    contention_losses += round.contention_losses;
    ack_drops += round.ack_drops;
  }
  counters.fault_losses.add(fault_losses);
  counters.contention_losses.add(contention_losses);
  counters.ack_drops.add(ack_drops);
  counters.duplicates.add(result.duplicate_deliveries);
}

}  // namespace

ProtocolResult TrialAndFailure::run(std::uint64_t seed) {
  const obs::ScopedTimer obs_timer("protocol.run");
  ProtocolResult result;
  result.completion_round.assign(collection_.size(), 0);

  std::vector<PathId> active(collection_.size());
  std::iota(active.begin(), active.end(), 0u);

  // The fault plan is keyed by the run seed and re-keyed each round
  // (fault_epoch = round), so fault decisions replay bit-identically and
  // never consume from the protocol's RNG streams. Both simulators share
  // the plan: acks route through the same faulted network.
  FaultPlan fault_plan(config_.faults, seed);
  const bool faults_on = fault_plan.enabled();
  // Cumulative RetryPolicy multiplier on Δ_t; stays exactly 1.0 (and
  // leaves Δ_t untouched) until a round loses worms to faults.
  double backoff = 1.0;

  SimConfig sim_config;
  sim_config.rule = config_.rule;
  sim_config.tie = config_.tie;
  sim_config.bandwidth = config_.bandwidth;
  sim_config.conversion = config_.conversion;
  sim_config.converters = config_.converters;
  sim_config.faults = &fault_plan;
  sim_config.sharding = config_.sharding;
  Simulator forward_sim(collection_, sim_config);
  // The ack simulator and every per-round buffer live outside the round
  // loop: together with the simulator's own pass-state reuse this makes
  // the steady state of a protocol run allocation-free.
  std::optional<Simulator> ack_sim;
  if (config_.ack_mode == AckMode::Simulated)
    ack_sim.emplace(ensure_reverse_collection(), sim_config);
  PassResult forward;
  PassResult ack_pass;
  std::vector<LaunchSpec> specs;
  std::vector<char> acked;
  std::vector<PathId> still_active;
  std::vector<LaunchSpec> ack_specs;
  std::vector<std::size_t> ack_owner;  // index into `active`

  for (std::uint32_t round = 1;
       round <= config_.max_rounds && !active.empty(); ++round) {
    Rng rng = Rng::stream(seed, round);
    fault_plan.set_epoch(round);
    SimTime delta = schedule_.delta(round);
    OPTO_ASSERT(delta >= 1);
    // Widen the startup-delay window by the fault backoff. backoff == 1.0
    // exactly when no fault loss has occurred, keeping Δ_t bit-identical
    // to the fault-free run.
    if (backoff > 1.0)
      delta = static_cast<SimTime>(
          std::llround(static_cast<double>(delta) * backoff));

    RoundReport report;
    report.round = round;
    report.delta = delta;
    report.backoff = backoff;
    report.active_before = static_cast<std::uint32_t>(active.size());
    report.charged_time =
        delta + 2 * static_cast<SimTime>(dilation_ + config_.worm_length);
    if (config_.track_congestion)
      report.active_congestion = active_path_congestion(collection_, active);

    const auto ranks =
        assign_priorities(config_.priorities, active, collection_.size(), rng);

    // Launch every active worm with fresh random delay and wavelength.
    specs.assign(active.size(), LaunchSpec{});
    for (std::size_t i = 0; i < active.size(); ++i) {
      LaunchSpec& spec = specs[i];
      spec.path = active[i];
      spec.start_time = static_cast<SimTime>(
          rng.next_below(static_cast<std::uint64_t>(delta)));
      spec.wavelength = static_cast<Wavelength>(
          rng.next_below(config_.bandwidth));
      spec.priority = ranks[i];
      spec.length = config_.worm_length;
    }

    forward_sim.run(specs, forward);
    report.forward = forward.metrics;
    report.forward_makespan = forward.metrics.makespan;
    report.fault_losses = static_cast<std::uint32_t>(
        forward.metrics.fault_kills + forward.metrics.corrupted_arrivals);
    report.contention_losses = static_cast<std::uint32_t>(
        forward.metrics.killed + forward.metrics.truncated_arrivals);
    if (config_.keep_round_outcomes) {
      report.launched = active;
      report.outcomes = forward.worms;
    }

    // Determine which deliveries get acknowledged.
    // A lossy ack channel (fault plan) can swallow the acknowledgement of
    // a successful delivery in either mode: the sender re-sends next
    // round (a duplicate delivery), exactly like a lost simulated ack.
    const auto ack_dropped = [&](std::size_t i) {
      if (!faults_on || !fault_plan.drops_ack(active[i])) return false;
      ++report.ack_drops;
      return true;
    };
    acked.assign(active.size(), 0);
    if (config_.ack_mode == AckMode::Ideal) {
      for (std::size_t i = 0; i < active.size(); ++i)
        acked[i] =
            forward.worms[i].delivered_intact() && !ack_dropped(i) ? 1 : 0;
    } else {
      // Simulated acks: 1..ack_length flits back along the reverse path in
      // a separate band of B wavelengths, launched right after delivery.
      ack_specs.clear();
      ack_owner.clear();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!forward.worms[i].delivered_intact()) continue;
        LaunchSpec spec;
        spec.path = active[i];
        spec.start_time = forward.worms[i].finish_time + 1;
        spec.wavelength = static_cast<Wavelength>(
            rng.next_below(config_.bandwidth));
        spec.priority = ranks[i];
        spec.length = config_.ack_length;
        ack_specs.push_back(spec);
        ack_owner.push_back(i);
      }
      ack_sim->run(ack_specs, ack_pass);
      report.ack_makespan = ack_pass.metrics.makespan;
      for (std::size_t j = 0; j < ack_specs.size(); ++j)
        if (ack_pass.worms[j].delivered_intact() && !ack_dropped(ack_owner[j]))
          acked[ack_owner[j]] = 1;
    }

    // Bookkeeping + retirement of acknowledged worms.
    still_active.clear();
    still_active.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const bool delivered = forward.worms[i].delivered_intact();
      if (delivered) ++report.delivered;
      if (acked[i]) {
        ++report.acknowledged;
        result.completion_round[active[i]] = round;
      } else {
        if (delivered) ++report.duplicates;  // will be re-sent next round
        still_active.push_back(active[i]);
      }
    }
    result.duplicate_deliveries += report.duplicates;
    std::swap(active, still_active);  // recycle the old buffer next round

    result.total_charged_time += report.charged_time;
    result.total_actual_time +=
        std::max(report.forward_makespan, report.ack_makespan) + 1;
    schedule_.observe(report.active_before, report.acknowledged);
    // RetryPolicy: widen the next window after fault-caused losses (lost
    // acks included — the sender cannot tell them apart), relax toward
    // the schedule's Δ_t after clean rounds.
    if (report.fault_losses > 0 || report.ack_drops > 0)
      backoff =
          std::min(backoff * config_.retry.growth, config_.retry.max_backoff);
    else
      backoff = std::max(1.0, backoff * config_.retry.decay);
    result.rounds.push_back(report);
    result.rounds_used = round;
  }

  result.success = active.empty();
  if (obs::enabled()) record_run_observation(result);
  return result;
}

}  // namespace opto
