#include "opto/core/dynamic_traffic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "opto/graph/graph_algo.hpp"
#include "opto/optical/worm.hpp"
#include "opto/rng/rng.hpp"
#include "opto/util/assert.hpp"

namespace opto {
namespace {

/// Canonical BFS parent arrays for every source (graphs here are small).
std::vector<std::vector<NodeId>> all_bfs_trees(const Graph& graph) {
  std::vector<std::vector<NodeId>> trees(graph.node_count());
  std::vector<NodeId> neighbors;
  for (NodeId source = 0; source < graph.node_count(); ++source) {
    auto& parent = trees[source];
    parent.assign(graph.node_count(), kInvalidNode);
    parent[source] = source;
    std::deque<NodeId> queue{source};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      neighbors.clear();
      for (const EdgeId e : graph.out_links(u))
        neighbors.push_back(graph.target(e));
      std::sort(neighbors.begin(), neighbors.end());
      for (const NodeId v : neighbors) {
        if (parent[v] != kInvalidNode) continue;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return trees;
}

std::vector<EdgeId> route_links(const Graph& graph,
                                const std::vector<NodeId>& parent,
                                NodeId source, NodeId destination) {
  OPTO_ASSERT_MSG(parent[destination] != kInvalidNode, "disconnected graph");
  std::vector<EdgeId> links;
  for (NodeId w = destination; w != source; w = parent[w])
    links.push_back(graph.find_link(parent[w], w));
  std::reverse(links.begin(), links.end());
  return links;
}

double exponential(Rng& rng, double mean) {
  // Inverse CDF; 1 − U in (0, 1].
  return -mean * std::log(1.0 - rng.next_double());
}

}  // namespace

DynamicTrafficResult simulate_dynamic_traffic(
    const Graph& graph, const DynamicTrafficConfig& config,
    std::uint64_t seed) {
  OPTO_ASSERT(config.bandwidth >= 1);
  OPTO_ASSERT(config.offered_load > 0.0 && config.mean_holding_time > 0.0);
  OPTO_ASSERT(graph.node_count() >= 2);
  OPTO_ASSERT(config.arrivals > config.warmup);

  const auto trees = all_bfs_trees(graph);
  const std::uint16_t B = config.bandwidth;
  const std::size_t slots =
      static_cast<std::size_t>(graph.link_count()) * B;
  std::vector<char> busy(slots, 0);
  const auto slot = [B](EdgeId link, Wavelength w) {
    return static_cast<std::size_t>(link) * B + w;
  };

  struct Departure {
    double time;
    std::uint32_t connection;
    // Strict weak order: break exact time ties on the connection id.
    // Comparing `time` alone makes equal-time departures unordered (an
    // invalid comparator for the heap) and their pop order arbitrary.
    bool operator>(const Departure& other) const {
      if (time != other.time) return time > other.time;
      return connection > other.connection;
    }
  };
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  // Accepted connections' held slots (freed on departure). Departed ids
  // go on a free list and are recycled, so the table size tracks the
  // number of *simultaneously* active connections instead of growing by
  // one row per accepted arrival for the whole run.
  std::vector<std::vector<std::size_t>> held;
  std::vector<std::uint32_t> free_ids;

  Rng rng(seed);
  const double arrival_rate = config.offered_load / config.mean_holding_time;

  DynamicTrafficResult result;
  double now = 0.0;
  double measure_start = -1.0;
  double busy_integral = 0.0;
  double last_event = 0.0;
  std::size_t busy_count = 0;
  double route_length_total = 0.0;

  const auto advance_to = [&](double t) {
    if (measure_start >= 0.0)
      busy_integral += static_cast<double>(busy_count) *
                       (t - std::max(last_event, measure_start));
    last_event = t;
  };

  for (std::uint64_t arrival = 0; arrival < config.arrivals; ++arrival) {
    now += exponential(rng, 1.0 / arrival_rate);

    // Free departed connections first.
    while (!departures.empty() && departures.top().time <= now) {
      const Departure d = departures.top();
      departures.pop();
      advance_to(d.time);
      for (const std::size_t s : held[d.connection]) {
        OPTO_DASSERT(busy[s]);
        busy[s] = 0;
      }
      busy_count -= held[d.connection].size();
      held[d.connection].clear();
      free_ids.push_back(d.connection);
    }
    advance_to(now);
    if (arrival == config.warmup) measure_start = now;

    const auto source = static_cast<NodeId>(rng.next_below(graph.node_count()));
    auto destination = static_cast<NodeId>(
        rng.next_below(graph.node_count() - 1));
    if (destination >= source) ++destination;
    const auto links = route_links(graph, trees[source], source, destination);

    const bool measured = arrival >= config.warmup;
    if (measured) {
      ++result.offered;
      route_length_total += static_cast<double>(links.size());
    }

    // Wavelength selection.
    std::vector<std::size_t> taken;
    bool accepted = false;
    if (!config.conversion) {
      // Continuity: one wavelength free on every link, first-fit.
      for (Wavelength w = 0; w < B && !accepted; ++w) {
        bool free = true;
        for (const EdgeId link : links)
          if (busy[slot(link, w)]) {
            free = false;
            break;
          }
        if (!free) continue;
        for (const EdgeId link : links) taken.push_back(slot(link, w));
        accepted = true;
      }
    } else {
      // Conversion: any free wavelength per link, first-fit per link.
      accepted = true;
      for (const EdgeId link : links) {
        bool found = false;
        for (Wavelength w = 0; w < B; ++w) {
          if (busy[slot(link, w)]) continue;
          taken.push_back(slot(link, w));
          found = true;
          break;
        }
        if (!found) {
          accepted = false;
          break;
        }
      }
    }

    if (!accepted) {
      if (measured) ++result.blocked;
      continue;
    }
    for (const std::size_t s : taken) busy[s] = 1;
    busy_count += taken.size();
    std::uint32_t connection;
    if (!free_ids.empty()) {
      connection = free_ids.back();
      free_ids.pop_back();
      held[connection] = std::move(taken);
    } else {
      connection = static_cast<std::uint32_t>(held.size());
      held.push_back(std::move(taken));
    }
    result.peak_connections =
        std::max(result.peak_connections,
                 static_cast<std::uint64_t>(held.size()));
    departures.push({now + exponential(rng, config.mean_holding_time),
                     connection});
  }
  advance_to(now);

  result.blocking_probability =
      result.offered > 0
          ? static_cast<double>(result.blocked) /
                static_cast<double>(result.offered)
          : 0.0;
  result.mean_route_length =
      result.offered > 0
          ? route_length_total / static_cast<double>(result.offered)
          : 0.0;
  const double duration = now - (measure_start >= 0.0 ? measure_start : now);
  result.utilization =
      duration > 0.0
          ? busy_integral / (static_cast<double>(slots) * duration)
          : 0.0;
  return result;
}

}  // namespace opto
