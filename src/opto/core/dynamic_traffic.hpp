// Dynamic circuit traffic — the Ramaswami–Sivarajan [34] setting from the
// paper's related work: connection requests arrive at random, hold their
// lightpath for a random time, and are *blocked* if no wavelength is
// available along the route. The classic result this substrate
// reproduces: wavelength conversion lowers the blocking probability,
// because without conversion a connection needs ONE wavelength free on
// EVERY link (wavelength-continuity constraint), while with conversion it
// merely needs SOME free wavelength per link.
//
// Model: Poisson arrivals (rate = load × departure rate), exponential
// holding times, uniform random (src ≠ dst) pairs, canonical BFS routes,
// first-fit wavelength selection. Deterministic in the seed.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

struct DynamicTrafficConfig {
  std::uint16_t bandwidth = 8;      ///< wavelengths per fiber
  bool conversion = false;          ///< converters at every node
  double offered_load = 4.0;        ///< Erlangs (arrival rate × mean hold)
  double mean_holding_time = 1.0;
  std::uint64_t arrivals = 10000;   ///< connections to simulate
  std::uint64_t warmup = 1000;      ///< arrivals ignored in the statistics
};

struct DynamicTrafficResult {
  std::uint64_t offered = 0;   ///< measured arrivals (post-warmup)
  std::uint64_t blocked = 0;
  double blocking_probability = 0.0;
  double mean_route_length = 0.0;
  /// Time-averaged fraction of busy (link, wavelength) slots.
  double utilization = 0.0;
  /// High-water mark of the connection table. Ids are recycled through a
  /// free list, so this is the peak number of simultaneously active
  /// connections — NOT the total accepted — and bounds the simulation's
  /// memory for arbitrarily long runs.
  std::uint64_t peak_connections = 0;
};

/// Runs the event-driven simulation on `graph` (must be connected).
DynamicTrafficResult simulate_dynamic_traffic(const Graph& graph,
                                              const DynamicTrafficConfig& config,
                                              std::uint64_t seed);

}  // namespace opto
