#include "opto/core/result_json.hpp"

#include "opto/util/json.hpp"

namespace opto {

void write_result_json(std::ostream& os, const ProtocolResult& result) {
  JsonWriter json(os);
  json.begin_object();
  json.key("success");
  json.value(result.success);
  json.key("rounds_used");
  json.value(static_cast<std::uint64_t>(result.rounds_used));
  json.key("total_charged_time");
  json.value(static_cast<std::int64_t>(result.total_charged_time));
  json.key("total_actual_time");
  json.value(static_cast<std::int64_t>(result.total_actual_time));
  json.key("duplicate_deliveries");
  json.value(result.duplicate_deliveries);
  json.key("completion_round");
  json.begin_array();
  for (const std::uint32_t round : result.completion_round)
    json.value(static_cast<std::uint64_t>(round));
  json.end_array();
  json.key("rounds");
  json.begin_array();
  for (const RoundReport& report : result.rounds) {
    json.begin_object();
    json.key("round");
    json.value(static_cast<std::uint64_t>(report.round));
    json.key("delta");
    json.value(static_cast<std::int64_t>(report.delta));
    json.key("active_before");
    json.value(static_cast<std::uint64_t>(report.active_before));
    json.key("delivered");
    json.value(static_cast<std::uint64_t>(report.delivered));
    json.key("acknowledged");
    json.value(static_cast<std::uint64_t>(report.acknowledged));
    json.key("duplicates");
    json.value(static_cast<std::uint64_t>(report.duplicates));
    json.key("fault_losses");
    json.value(static_cast<std::uint64_t>(report.fault_losses));
    json.key("contention_losses");
    json.value(static_cast<std::uint64_t>(report.contention_losses));
    json.key("ack_drops");
    json.value(static_cast<std::uint64_t>(report.ack_drops));
    json.key("backoff");
    json.value(report.backoff);
    json.key("charged_time");
    json.value(static_cast<std::int64_t>(report.charged_time));
    json.key("forward_makespan");
    json.value(static_cast<std::int64_t>(report.forward_makespan));
    json.key("ack_makespan");
    json.value(static_cast<std::int64_t>(report.ack_makespan));
    json.key("active_congestion");
    json.value(static_cast<std::uint64_t>(report.active_congestion));
    json.key("metrics");
    json.begin_object();
    json.key("killed");
    json.value(report.forward.killed);
    json.key("truncated");
    json.value(report.forward.truncated);
    json.key("contentions");
    json.value(report.forward.contentions);
    json.key("retunes");
    json.value(report.forward.retunes);
    json.key("fault_kills");
    json.value(report.forward.fault_kills);
    json.key("corrupted");
    json.value(report.forward.corrupted);
    json.key("corrupted_arrivals");
    json.value(report.forward.corrupted_arrivals);
    json.key("worm_steps");
    json.value(report.forward.worm_steps);
    json.key("link_busy_steps");
    json.value(report.forward.link_busy_steps);
    json.key("steps");
    json.value(report.forward.steps);
    json.key("registry_probes");
    json.value(report.forward.registry_probes);
    json.key("registry_hits");
    json.value(report.forward.registry_hits);
    json.key("peak_inflight");
    json.value(report.forward.peak_inflight);
    json.key("wall_ns");  // nonzero only under OPTO_PROFILE
    json.value(report.forward.wall_ns);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

}  // namespace opto
