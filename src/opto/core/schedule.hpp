// Startup-delay range schedules Δ_t for the Trial-and-Failure protocol.
//
// The paper's analysis (§2.1) chooses, per round t,
//
//   Δ_t = max{ c·L·C̃_t/B, c·L·C̃/(B·log n), c'·L·log n/B } + D + L,
//   C̃_t = max{ C̃ / 2^{t-1}, Θ(log n) },
//
// i.e. the range starts proportional to the congestion term L·C̃/B and
// halves every round until it floors at the Θ(L·log n/B) + D + L level.
// The paper's constants (32, 40e²) serve the w.h.p. bookkeeping; the
// defaults here are small practical values and are configurable (ablation
// A1 sweeps them).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "opto/optical/worm.hpp"

namespace opto {

/// Static shape of a routing problem, as the schedules consume it.
struct ProblemShape {
  std::uint32_t size = 0;             ///< n — number of worms
  std::uint32_t dilation = 0;         ///< D
  std::uint32_t path_congestion = 0;  ///< C̃
  std::uint32_t worm_length = 1;      ///< L
  std::uint16_t bandwidth = 1;        ///< B
};

class DeltaSchedule {
 public:
  virtual ~DeltaSchedule() = default;

  /// Delay range for round t (1-based); delays are drawn from [0, Δ_t).
  /// Always ≥ 1 (a range of 1 means "no delay").
  virtual SimTime delta(std::uint32_t round) const = 0;

  /// Feedback hook, called by the protocol after every round with the
  /// number of worms launched and the number acknowledged. Most schedules
  /// ignore it; AdaptiveSchedule learns its range from it.
  virtual void observe(std::uint32_t /*launched*/,
                       std::uint32_t /*acknowledged*/) {}

  virtual std::string describe() const = 0;
};

/// The paper's geometric-halving schedule.
class PaperSchedule final : public DeltaSchedule {
 public:
  struct Constants {
    double congestion_factor = 4.0;  ///< c  (paper: 32)
    double log_floor_factor = 2.0;   ///< c' (paper: 40e²·δ)
  };

  explicit PaperSchedule(ProblemShape shape)
      : PaperSchedule(shape, Constants{}) {}
  PaperSchedule(ProblemShape shape, Constants constants);

  SimTime delta(std::uint32_t round) const override;
  std::string describe() const override;

  const ProblemShape& shape() const { return shape_; }

 private:
  ProblemShape shape_;
  Constants constants_;
  double log_n_;
};

/// Constant delay range (baseline for ablation A1).
class FixedSchedule final : public DeltaSchedule {
 public:
  explicit FixedSchedule(SimTime delta);
  SimTime delta(std::uint32_t round) const override;
  std::string describe() const override;

 private:
  SimTime delta_;
};

/// Degenerate schedule: everyone launches immediately (Δ_t = 1).
class NoDelaySchedule final : public DeltaSchedule {
 public:
  SimTime delta(std::uint32_t round) const override;
  std::string describe() const override;
};

/// Congestion-oblivious adaptive schedule.
///
/// The paper's Δ_t needs the path congestion C̃ up front (§2.1 sets
/// Δ_t ∝ L·C̃_t/B). When C̃ is unknown, multiplicative
/// increase/decrease on the observed per-round success rate finds the
/// right range within O(log(L·C̃/B)) rounds: too many failures → the
/// range was too tight, double it; (near-)everyone succeeded → halve for
/// the (smaller) surviving population. One stateful instance drives one
/// protocol run; reset() re-arms it.
class AdaptiveSchedule final : public DeltaSchedule {
 public:
  struct Tuning {
    double low_success = 0.5;   ///< below this, grow the range
    double high_success = 0.9;  ///< above this, shrink it
    double grow = 2.0;
    double shrink = 0.5;
    SimTime min_delta = 1;
    SimTime max_delta = 1 << 24;
  };

  explicit AdaptiveSchedule(SimTime initial)
      : AdaptiveSchedule(initial, Tuning{}) {}
  AdaptiveSchedule(SimTime initial, Tuning tuning);

  SimTime delta(std::uint32_t round) const override;
  void observe(std::uint32_t launched,
               std::uint32_t acknowledged) override;
  std::string describe() const override;

  void reset();
  SimTime current() const { return current_; }

 private:
  SimTime initial_;
  Tuning tuning_;
  SimTime current_;
};

}  // namespace opto
