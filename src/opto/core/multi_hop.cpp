#include "opto/core/multi_hop.hpp"

#include <algorithm>
#include <numeric>

#include "opto/util/assert.hpp"

namespace opto {

MultiHopTrialAndFailure::MultiHopTrialAndFailure(
    const PathCollection& collection, MultiHopConfig config,
    DeltaSchedule& schedule)
    : worm_count_(collection.size()),
      config_(config),
      schedule_(schedule),
      segments_(collection.graph_ptr()),
      segment_ids_(collection.size()) {
  OPTO_ASSERT(config_.hop_spacing >= 1);
  OPTO_ASSERT(config_.worm_length >= 1);

  // Split every path into chunks of ≤ hop_spacing links.
  for (PathId id = 0; id < collection.size(); ++id) {
    const Path& path = collection.path(id);
    if (path.empty()) {
      // Zero-length path: one empty segment keeps the round logic uniform.
      segment_ids_[id].push_back(segments_.size());
      segments_.add(path);
      continue;
    }
    const auto links = path.links();
    for (std::uint32_t lo = 0; lo < path.length(); lo += config_.hop_spacing) {
      const std::uint32_t hi =
          std::min(lo + config_.hop_spacing, path.length());
      std::vector<EdgeId> chunk(links.begin() + lo, links.begin() + hi);
      segment_ids_[id].push_back(segments_.size());
      segments_.add(Path::from_links(collection.graph(), std::move(chunk)));
      max_segment_length_ = std::max(max_segment_length_, hi - lo);
    }
  }
}

MultiHopTrialAndFailure::MultiHopTrialAndFailure(
    std::shared_ptr<const Graph> graph,
    std::vector<std::vector<Path>> worm_segments, MultiHopConfig config,
    DeltaSchedule& schedule)
    : worm_count_(static_cast<std::uint32_t>(worm_segments.size())),
      config_(config),
      schedule_(schedule),
      segments_(std::move(graph)),
      segment_ids_(worm_segments.size()) {
  OPTO_ASSERT(config_.worm_length >= 1);
  for (PathId worm = 0; worm < worm_segments.size(); ++worm) {
    auto& chain = worm_segments[worm];
    OPTO_ASSERT_MSG(!chain.empty(), "every worm needs at least one segment");
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i > 0)
        OPTO_ASSERT_MSG(chain[i].source() == chain[i - 1].destination(),
                        "segments must chain source-to-destination");
      max_segment_length_ = std::max(max_segment_length_, chain[i].length());
      segment_ids_[worm].push_back(segments_.size());
      segments_.add(std::move(chain[i]));
    }
  }
}

MultiHopResult MultiHopTrialAndFailure::run(std::uint64_t seed) {
  MultiHopResult result;
  result.completion_round.assign(worm_count_, 0);
  for (const auto& ids : segment_ids_)
    result.max_segments = std::max(
        result.max_segments, static_cast<std::uint32_t>(ids.size()));

  SimConfig sim_config;
  sim_config.rule = config_.rule;
  sim_config.tie = config_.tie;
  sim_config.bandwidth = config_.bandwidth;
  Simulator sim(segments_, sim_config);

  // Per worm: which segment it attempts next (== done when all passed).
  std::vector<std::uint32_t> progress(worm_count_, 0);
  std::vector<PathId> active(worm_count_);
  std::iota(active.begin(), active.end(), 0u);

  for (std::uint32_t round = 1;
       round <= config_.max_rounds && !active.empty(); ++round) {
    Rng rng = Rng::stream(seed, round);
    const SimTime delta = schedule_.delta(round);

    MultiHopRound report;
    report.round = round;
    report.delta = delta;
    report.attempts = static_cast<std::uint32_t>(active.size());
    report.charged_time =
        delta +
        2 * static_cast<SimTime>(max_segment_length_ + config_.worm_length);

    const auto ranks =
        assign_priorities(config_.priorities, active, worm_count_, rng);

    std::vector<LaunchSpec> specs(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const PathId worm = active[i];
      LaunchSpec& spec = specs[i];
      spec.path = segment_ids_[worm][progress[worm]];
      spec.start_time = static_cast<SimTime>(
          rng.next_below(static_cast<std::uint64_t>(delta)));
      spec.wavelength =
          static_cast<Wavelength>(rng.next_below(config_.bandwidth));
      spec.priority = ranks[i];
      spec.length = config_.worm_length;
    }

    const PassResult pass = sim.run(specs);

    std::vector<PathId> still_active;
    still_active.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      const PathId worm = active[i];
      if (pass.worms[i].delivered_intact()) {
        ++report.segment_deliveries;
        if (++progress[worm] == segment_ids_[worm].size()) {
          ++report.worms_finished;
          result.completion_round[worm] = round;
          continue;
        }
      }
      still_active.push_back(worm);
    }
    active = std::move(still_active);

    result.total_charged_time += report.charged_time;
    // For multi-hop, per-round "success" is a completed segment.
    schedule_.observe(report.attempts, report.segment_deliveries);
    result.rounds.push_back(report);
    result.rounds_used = round;
  }

  result.success = active.empty();
  return result;
}

}  // namespace opto
