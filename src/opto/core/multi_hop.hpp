// Bounded-hop routing extension (§4: "worms are allowed a bounded number
// of hops (i.e., conversions to and from electrical form) in the
// network"; the multi-hop strategies of §1.2).
//
// Each path is split into segments of at most `hop_spacing` links. A hop
// node buffers the whole worm electronically, so per round an active worm
// only attempts its *current* segment, as an independent optical worm
// with fresh random delay and wavelength. Reaching the segment end stores
// the worm at the hop node; the next round it attempts the next segment.
//
// The trade: segments shorten the exposure window (dilation D shrinks to
// the hop spacing h, so each round is cheaper and less collision-prone),
// but a worm needs ⌈|path|/h⌉ successful rounds instead of one — the
// hop-congestion trade-off of Kranakis et al. [22].
#pragma once

#include <cstdint>
#include <vector>

#include "opto/core/priority_assign.hpp"
#include "opto/core/schedule.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {

struct MultiHopConfig {
  /// Maximum links per segment (≥ 1).
  std::uint32_t hop_spacing = 4;
  ContentionRule rule = ContentionRule::ServeFirst;
  TiePolicy tie = TiePolicy::KillAll;
  std::uint16_t bandwidth = 1;
  std::uint32_t worm_length = 1;
  std::uint32_t max_rounds = 256;
  PriorityStrategy priorities = PriorityStrategy::RandomPermutation;
};

struct MultiHopRound {
  std::uint32_t round = 0;
  SimTime delta = 0;
  std::uint32_t attempts = 0;            ///< segment launches this round
  std::uint32_t segment_deliveries = 0;  ///< segments completed
  std::uint32_t worms_finished = 0;      ///< worms whose last segment landed
  SimTime charged_time = 0;              ///< Δ_t + 2(h + L)
};

struct MultiHopResult {
  bool success = false;
  std::uint32_t rounds_used = 0;
  SimTime total_charged_time = 0;
  std::uint32_t max_segments = 0;  ///< hops+1 of the longest path
  std::vector<MultiHopRound> rounds;
  std::vector<std::uint32_t> completion_round;  ///< per worm; 0 = never
};

class MultiHopTrialAndFailure {
 public:
  /// Collection and schedule must outlive the protocol object. The
  /// schedule is queried per round exactly like in TrialAndFailure
  /// (build it from the *segment* shape: dilation = hop spacing).
  MultiHopTrialAndFailure(const PathCollection& collection,
                          MultiHopConfig config,
                          DeltaSchedule& schedule);

  /// Explicit-segment variant: worm w travels worm_segments[w] in order
  /// (consecutive segments must chain: destination = next source). Used
  /// by lightpath layouts, where segment boundaries come from the virtual
  /// topology rather than a fixed spacing; config.hop_spacing is ignored.
  MultiHopTrialAndFailure(std::shared_ptr<const Graph> graph,
                          std::vector<std::vector<Path>> worm_segments,
                          MultiHopConfig config,
                          DeltaSchedule& schedule);

  MultiHopResult run(std::uint64_t seed);

  /// The segment collection (one path per segment), e.g. to size the
  /// schedule; segment_index(worm, k) gives its k-th segment's PathId.
  const PathCollection& segments() const { return segments_; }
  std::uint32_t segment_count(PathId worm) const {
    return static_cast<std::uint32_t>(segment_ids_[worm].size());
  }

 private:
  std::uint32_t worm_count_ = 0;
  MultiHopConfig config_;
  DeltaSchedule& schedule_;
  PathCollection segments_;
  std::vector<std::vector<PathId>> segment_ids_;  ///< per worm, in order
  std::uint32_t max_segment_length_ = 0;
};

}  // namespace opto
