// Static-WDM baseline scheduler: the single-hop RWA strategy of §1.2.
//
// Given a wavelength assignment (coloring) of the collection, color
// classes are packed into batches of B wavelengths; batch k launches all
// its worms simultaneously in round k (no randomness, no retries —
// collision-freedom is guaranteed by the coloring, and the simulator
// verifies it).
//
// Cost model mirrors the trial-and-failure accounting: each batch costs
// its simulated makespan (+1); with ⌈colors/B⌉ batches the total is
// roughly ⌈(C̃+1)/B⌉·(D+L) — good when C̃ is small or fully known ahead
// of time, but it requires global knowledge of the whole collection,
// which is exactly what the trial-and-failure protocol avoids.
#pragma once

#include <cstdint>

#include "opto/paths/path_collection.hpp"
#include "opto/paths/wavelength_assignment.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {

struct StaticWdmResult {
  bool success = false;
  std::uint32_t colors = 0;
  std::uint32_t batches = 0;
  SimTime total_time = 0;   ///< Σ batch makespans (+1 each)
  std::uint64_t worm_steps = 0;
};

/// Runs the baseline: colors the collection (Welsh-Powell greedy), packs
/// color classes into ⌈colors/B⌉ batches, and simulates each batch.
/// Asserts (and reports failure) if any worm collides — a valid coloring
/// can never collide, so this doubles as a checker.
StaticWdmResult run_static_wdm(const PathCollection& collection,
                               std::uint16_t bandwidth,
                               std::uint32_t worm_length);

}  // namespace opto
