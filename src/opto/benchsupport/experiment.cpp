#include "opto/benchsupport/experiment.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>

#include "opto/par/parallel_for.hpp"
#include "opto/rng/splitmix64.hpp"
#include "opto/util/string_util.hpp"

namespace opto {

TrialAggregate run_trials(const CollectionFactory& factory,
                          const ScheduleFactory& schedule_factory,
                          const ProtocolConfig& config, std::size_t trials,
                          std::uint64_t base_seed) {
  TrialAggregate aggregate;
  std::mutex merge_mutex;

  parallel_for_chunked(0, trials, [&](std::size_t lo, std::size_t hi) {
    TrialAggregate local;
    for (std::size_t trial = lo; trial < hi; ++trial) {
      const std::uint64_t seed =
          splitmix64_once(base_seed + 0x9e3779b97f4a7c15ull * (trial + 1));
      const PathCollection collection = factory(seed);
      const auto schedule = schedule_factory(collection);
      TrialAndFailure protocol(collection, config, *schedule);
      const ProtocolResult result = protocol.run(seed ^ 0xabcdef);

      // Loss accounting covers every trial — failed ones especially, since
      // under fault injection the failures are the interesting signal.
      std::uint64_t fault_losses = 0;
      std::uint64_t contention_losses = 0;
      for (const RoundReport& round : result.rounds) {
        fault_losses += round.fault_losses;
        contention_losses += round.contention_losses;
        local.ack_drops += round.ack_drops;
      }
      local.fault_losses.add(static_cast<double>(fault_losses));
      local.contention_losses.add(static_cast<double>(contention_losses));

      if (!result.success) {
        ++local.failures;
        continue;
      }
      local.rounds.add(static_cast<double>(result.rounds_used));
      local.charged_time.add(static_cast<double>(result.total_charged_time));
      local.actual_time.add(static_cast<double>(result.total_actual_time));
      local.path_congestion.add(
          static_cast<double>(collection.path_congestion()));
      local.dilation.add(static_cast<double>(collection.dilation()));
      local.duplicates += result.duplicate_deliveries;
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    aggregate.rounds.merge(local.rounds);
    aggregate.charged_time.merge(local.charged_time);
    aggregate.actual_time.merge(local.actual_time);
    aggregate.path_congestion.merge(local.path_congestion);
    aggregate.dilation.merge(local.dilation);
    aggregate.fault_losses.merge(local.fault_losses);
    aggregate.contention_losses.merge(local.contention_losses);
    aggregate.ack_drops += local.ack_drops;
    aggregate.failures += local.failures;
    aggregate.duplicates += local.duplicates;
  });
  aggregate.trials = trials;
  return aggregate;
}

ScheduleFactory paper_schedule_factory(std::uint32_t worm_length,
                                       std::uint16_t bandwidth,
                                       PaperSchedule::Constants constants) {
  return [worm_length, bandwidth,
          constants](const PathCollection& collection)
             -> std::unique_ptr<DeltaSchedule> {
    ProblemShape shape;
    shape.size = collection.size();
    shape.dilation = collection.dilation();
    shape.path_congestion = collection.path_congestion();
    shape.worm_length = worm_length;
    shape.bandwidth = bandwidth;
    return std::make_unique<PaperSchedule>(shape, constants);
  };
}

double repro_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("REPRO_SCALE")) {
      if (auto value = parse_double(env))
        return std::clamp(*value, 0.05, 100.0);
    }
    return 1.0;
  }();
  return scale;
}

std::size_t scaled_trials(std::size_t base) {
  const double scaled = static_cast<double>(base) * repro_scale();
  return static_cast<std::size_t>(std::max(1.0, scaled + 0.5));
}

namespace {

std::string slugify(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug += '-';
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

}  // namespace

void print_experiment_table(const Table& table) {
  table.print(std::cout);
  const char* dir = std::getenv("OPTO_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "OPTO_RESULTS_DIR: cannot create '%s': %s\n", dir,
                 ec.message().c_str());
    return;
  }
  const std::string base =
      (std::filesystem::path(dir) / slugify(table.title())).string();
  if (std::ofstream csv(base + ".csv"); csv) table.print_csv(csv);
  if (std::ofstream json(base + ".json"); json) table.print_json(json);
}

void print_experiment_banner(const std::string& id, const std::string& claim) {
  std::printf("\n########################################################\n");
  std::printf("# %s\n# %s\n", id.c_str(), claim.c_str());
  std::printf("# trials scale: REPRO_SCALE=%.2f\n", repro_scale());
  std::printf("########################################################\n");
}

}  // namespace opto
