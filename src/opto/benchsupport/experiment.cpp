#include "opto/benchsupport/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "opto/obs/bench_record.hpp"
#include "opto/obs/obs.hpp"
#include "opto/par/parallel_for.hpp"
#include "opto/rng/splitmix64.hpp"
#include "opto/util/string_util.hpp"

namespace opto {

namespace {

/// One trial's contribution, written into a per-trial slot so the final
/// aggregation can run sequentially in trial order. Merging per-chunk
/// accumulators under a mutex (the old scheme) folded doubles in thread-
/// completion order, which made table means bit-unstable across runs and
/// OPTO_THREADS settings — the determinism CI job diffs these outputs
/// byte-for-byte, so the fold order must be fixed.
struct TrialOutcome {
  bool success = false;
  double rounds = 0.0;
  double charged_time = 0.0;
  double actual_time = 0.0;
  double path_congestion = 0.0;
  double dilation = 0.0;
  double fault_losses = 0.0;
  double contention_losses = 0.0;
  std::uint64_t ack_drops = 0;
  std::uint64_t duplicates = 0;
};

}  // namespace

TrialAggregate run_trials(const CollectionFactory& factory,
                          const ScheduleFactory& schedule_factory,
                          const ProtocolConfig& config, std::size_t trials,
                          std::uint64_t base_seed) {
  const obs::ScopedTimer obs_timer("experiment.run_trials");
  {
    static obs::Counter trial_counter("experiment.trials");
    trial_counter.add(trials);
    obs::annotate("base_seed", std::to_string(base_seed));
  }

  std::vector<TrialOutcome> outcomes(trials);
  parallel_for_chunked(0, trials, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t trial = lo; trial < hi; ++trial) {
      const std::uint64_t seed =
          splitmix64_once(base_seed + 0x9e3779b97f4a7c15ull * (trial + 1));
      const PathCollection collection = factory(seed);
      const auto schedule = schedule_factory(collection);
      TrialAndFailure protocol(collection, config, *schedule);
      const ProtocolResult result = protocol.run(seed ^ 0xabcdef);

      TrialOutcome& outcome = outcomes[trial];
      // Loss accounting covers every trial — failed ones especially, since
      // under fault injection the failures are the interesting signal.
      for (const RoundReport& round : result.rounds) {
        outcome.fault_losses += static_cast<double>(round.fault_losses);
        outcome.contention_losses +=
            static_cast<double>(round.contention_losses);
        outcome.ack_drops += round.ack_drops;
      }
      outcome.success = result.success;
      if (!result.success) continue;
      outcome.rounds = static_cast<double>(result.rounds_used);
      outcome.charged_time = static_cast<double>(result.total_charged_time);
      outcome.actual_time = static_cast<double>(result.total_actual_time);
      outcome.path_congestion =
          static_cast<double>(collection.path_congestion());
      outcome.dilation = static_cast<double>(collection.dilation());
      outcome.duplicates = result.duplicate_deliveries;
    }
  });

  // Sequential fold in trial order: deterministic in (base_seed, trials)
  // alone, whatever the pool did.
  TrialAggregate aggregate;
  for (const TrialOutcome& outcome : outcomes) {
    aggregate.fault_losses.add(outcome.fault_losses);
    aggregate.contention_losses.add(outcome.contention_losses);
    aggregate.ack_drops += outcome.ack_drops;
    if (!outcome.success) {
      ++aggregate.failures;
      continue;
    }
    aggregate.rounds.add(outcome.rounds);
    aggregate.charged_time.add(outcome.charged_time);
    aggregate.actual_time.add(outcome.actual_time);
    aggregate.path_congestion.add(outcome.path_congestion);
    aggregate.dilation.add(outcome.dilation);
    aggregate.duplicates += outcome.duplicates;
  }
  aggregate.trials = trials;
  return aggregate;
}

ScheduleFactory paper_schedule_factory(std::uint32_t worm_length,
                                       std::uint16_t bandwidth,
                                       PaperSchedule::Constants constants) {
  return [worm_length, bandwidth,
          constants](const PathCollection& collection)
             -> std::unique_ptr<DeltaSchedule> {
    ProblemShape shape;
    shape.size = collection.size();
    shape.dilation = collection.dilation();
    shape.path_congestion = collection.path_congestion();
    shape.worm_length = worm_length;
    shape.bandwidth = bandwidth;
    return std::make_unique<PaperSchedule>(shape, constants);
  };
}

double repro_scale() {
  // Not cached: called rarely, and re-reading keeps the strict validation
  // testable (a garbage value must fail whenever it is consulted).
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  const auto value = parse_double(env);
  if (!value || !std::isfinite(*value) || *value <= 0.0) {
    // A silent fall-through here used to run benches at a default or
    // near-zero scale — worthless data that looked legitimate. Reject.
    std::fprintf(stderr,
                 "REPRO_SCALE='%s' is not a positive number; "
                 "use e.g. REPRO_SCALE=0.1 or unset it\n",
                 env);
    std::exit(2);
  }
  return std::clamp(*value, 0.05, 100.0);
}

std::size_t scaled_trials(std::size_t base) {
  const double scaled = static_cast<double>(base) * repro_scale();
  return static_cast<std::size_t>(std::max(1.0, scaled + 0.5));
}

void print_experiment_table(const Table& table) {
  table.print(std::cout);
  const char* dir = std::getenv("OPTO_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "OPTO_RESULTS_DIR: cannot create '%s': %s\n", dir,
                 ec.message().c_str());
    return;
  }
  const std::string base =
      (std::filesystem::path(dir) / slugify(table.title())).string();
  if (std::ofstream csv(base + ".csv"); csv) table.print_csv(csv);
  if (std::ofstream json(base + ".json"); json) table.print_json(json);
}

void print_experiment_banner(const std::string& id, const std::string& claim) {
  std::printf("\n########################################################\n");
  std::printf("# %s\n# %s\n", id.c_str(), claim.c_str());
  std::printf("# trials scale: REPRO_SCALE=%.2f\n", repro_scale());
  std::printf("########################################################\n");
  // Every bench that prints the standard banner emits a BenchRecord on
  // exit (into OPTO_RESULTS_DIR, when set) — no per-bench wiring.
  obs::annotate("bench", id);
  obs::annotate("repro_scale", Table::format_number(repro_scale()));
  obs::install_bench_record_at_exit(slugify(id));
}

}  // namespace opto
