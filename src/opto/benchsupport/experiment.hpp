// Experiment harness shared by all bench binaries.
//
// An experiment point builds a (possibly random) path collection per
// trial, runs the Trial-and-Failure protocol, and aggregates rounds /
// charged time / actual time over the trials. Trials run in parallel on
// the global thread pool; every trial is deterministic in (base seed,
// trial index).
//
// Output goes through util::Table so all benches print uniform,
// greppable series. REPRO_SCALE (float env var, default 1) scales trial
// counts; OPTO_THREADS bounds the pool.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "opto/core/trial_and_failure.hpp"
#include "opto/util/stats.hpp"
#include "opto/util/table.hpp"

namespace opto {

/// Builds the collection for one trial. Deterministic in the seed.
using CollectionFactory = std::function<PathCollection(std::uint64_t seed)>;

/// Builds the schedule for a trial's collection (shapes can differ per
/// trial for random workloads).
using ScheduleFactory =
    std::function<std::unique_ptr<DeltaSchedule>(const PathCollection&)>;

struct TrialAggregate {
  SampleSet rounds;          ///< rounds_used per successful trial
  SampleSet charged_time;    ///< Σ (Δ_t + 2(D+L))
  SampleSet actual_time;     ///< Σ per-round makespans
  SampleSet path_congestion; ///< measured C̃ per trial
  SampleSet dilation;
  /// Loss split under fault injection, summed over every round of a trial
  /// (failed trials included — a trial killed by faults still reports its
  /// losses). Zero-fault runs add all-zero samples.
  SampleSet fault_losses;       ///< fault kills + corrupted arrivals
  SampleSet contention_losses;  ///< contention kills + truncated arrivals
  std::uint64_t ack_drops = 0;  ///< acks lost to the fault plan, all trials
  std::uint32_t failures = 0;  ///< trials hitting max_rounds
  std::uint64_t duplicates = 0;
  std::size_t trials = 0;      ///< total trials run (failures included)

  /// Fraction of trials that routed everything within max_rounds.
  double success_rate() const {
    return trials == 0
               ? 0.0
               : 1.0 - static_cast<double>(failures) /
                           static_cast<double>(trials);
  }
};

/// Runs `trials` protocol executions in parallel and aggregates.
TrialAggregate run_trials(const CollectionFactory& factory,
                          const ScheduleFactory& schedule_factory,
                          const ProtocolConfig& config, std::size_t trials,
                          std::uint64_t base_seed);

/// Convenience: paper schedule from measured collection stats.
ScheduleFactory paper_schedule_factory(std::uint32_t worm_length,
                                       std::uint16_t bandwidth,
                                       PaperSchedule::Constants constants = {});

/// REPRO_SCALE env var (default 1.0), clamped to [0.05, 100]. A set but
/// unparseable or non-positive value is a hard error (exit 2): silently
/// running at a default or zero scale produces data that looks real.
double repro_scale();

/// max(1, round(base * repro_scale())).
std::size_t scaled_trials(std::size_t base);

/// Standard experiment header printed by every bench binary. Also
/// registers the bench with the observability layer: on clean exit the
/// process writes a BenchRecord JSON (obs/bench_record.hpp) into
/// OPTO_RESULTS_DIR, keyed by the slug of `id`.
void print_experiment_banner(const std::string& id, const std::string& claim);

/// Prints the table to stdout and — when OPTO_RESULTS_DIR is set —
/// persists it as <dir>/<slug-of-title>.csv and .json for scripting.
void print_experiment_table(const Table& table);

}  // namespace opto
