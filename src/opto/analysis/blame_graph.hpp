// Blame graphs: the empirical counterpart of the witness-tree argument.
//
// After a forward pass, every killed worm points at the worm that blocked
// it (its "witness", Lemma 2.2). The resulting functional digraph is what
// Definition 2.3 calls G_i for one round. Claim 2.6's structure is
// directly checkable:
//   * priority rule          → blame edges go to strictly higher ranks,
//                              so the graph is acyclic;
//   * leveled + serve-first  → a blocking cycle would need a worm to fail
//                              before it blocks, impossible — acyclic;
//   * short-cut free + serve-first → cycles CAN occur (Fig. 6 triangles);
//                              they are exactly the livelocks behind the
//                              Main Thm 1.2 separation.
//
// One discrete-time caveat: under TiePolicy::KillAll, two heads arriving
// in the same flit step eliminate each other and cite each other, giving
// a mutual 2-cycle. The paper's continuous-time model has no dead-heats;
// use FirstWins when checking Claim 2.6's acyclicity exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "opto/sim/simulator.hpp"

namespace opto {

class BlameGraph {
 public:
  /// Builds the blame graph of one pass: node per worm, one out-edge per
  /// killed worm (to its blocker).
  static BlameGraph from_pass(const PassResult& pass);

  std::size_t size() const { return blocker_.size(); }

  /// Blocker of worm `w` (kInvalidWorm if it was not killed).
  WormId blocker(WormId w) const { return blocker_[w]; }

  /// True iff following blame edges from some worm returns to it.
  bool has_cycle() const;

  /// All blame cycles, each as a worm-id sequence (canonical rotation:
  /// starts at its smallest id).
  std::vector<std::vector<WormId>> cycles() const;

  /// Sizes of the weakly-connected components that contain at least one
  /// blame edge (singletons without edges are skipped). These correspond
  /// to the per-level components of Definition 2.3.
  std::vector<std::uint32_t> component_sizes() const;

  std::uint32_t edge_count() const { return edges_; }

 private:
  std::vector<WormId> blocker_;
  std::uint32_t edges_ = 0;
};

}  // namespace opto
