#include "opto/analysis/witness_builder.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "opto/util/assert.hpp"

namespace opto {

std::uint32_t WitnessTree::total_distinct_worms() const {
  std::set<PathId> all;
  for (const WitnessLevel& level : levels)
    all.insert(level.worms.begin(), level.worms.end());
  return static_cast<std::uint32_t>(all.size());
}

std::vector<std::uint32_t> WitnessTree::level_sizes() const {
  std::vector<std::uint32_t> sizes;
  sizes.reserve(levels.size());
  for (const WitnessLevel& level : levels)
    sizes.push_back(static_cast<std::uint32_t>(level.worms.size()));
  return sizes;
}

std::vector<std::uint32_t> WitnessTree::new_worm_counts() const {
  const auto sizes = level_sizes();
  std::vector<std::uint32_t> fresh;
  fresh.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i)
    fresh.push_back(i == 0 ? sizes[0] : sizes[i] - sizes[i - 1]);
  return fresh;
}

WitnessTree build_witness_tree(const ProtocolResult& result, PathId worm,
                               std::uint32_t rounds) {
  OPTO_ASSERT(rounds >= 1 && rounds <= result.rounds.size());
  OPTO_ASSERT_MSG(!result.rounds.front().launched.empty(),
                  "run the protocol with keep_round_outcomes = true");
  OPTO_ASSERT_MSG(result.completion_round[worm] == 0 ||
                      result.completion_round[worm] > rounds,
                  "worm completed before the requested depth");

  // Per-round lookup: path id -> index into that round's outcome array.
  std::vector<std::unordered_map<PathId, std::uint32_t>> index(rounds);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const auto& launched = result.rounds[r].launched;
    for (std::uint32_t i = 0; i < launched.size(); ++i)
      index[r].emplace(launched[i], i);
  }

  const auto blocker_of = [&](PathId w, std::uint32_t round) -> PathId {
    const auto& report = result.rounds[round - 1];
    const auto it = index[round - 1].find(w);
    OPTO_ASSERT_MSG(it != index[round - 1].end(),
                    "worm was not launched in a round it should be active");
    const WormOutcome& outcome = report.outcomes[it->second];
    OPTO_ASSERT_MSG(outcome.status == WormStatus::Killed,
                    "witness trees need every failure to be a kill "
                    "(serve-first routers, ideal acks)");
    OPTO_ASSERT(outcome.blocked_by != kInvalidWorm);
    return report.launched[outcome.blocked_by];
  };

  WitnessTree tree;
  tree.root = worm;
  tree.depth = rounds;
  tree.levels.resize(rounds + 1);
  tree.levels[0].worms = {worm};

  for (std::uint32_t i = 1; i <= rounds; ++i) {
    // Level i records the collisions of round (depth − i + 1): every worm
    // of level i−1 was active then, so it was prevented by some witness.
    const std::uint32_t round = rounds - i + 1;
    WitnessLevel& level = tree.levels[i];
    std::set<PathId> worms(tree.levels[i - 1].worms.begin(),
                           tree.levels[i - 1].worms.end());
    for (const PathId w : tree.levels[i - 1].worms) {
      const PathId witness = blocker_of(w, round);
      level.collisions.emplace_back(w, witness);
      worms.insert(witness);
    }
    level.worms.assign(worms.begin(), worms.end());
  }
  return tree;
}

bool is_valid_witness_tree(const WitnessTree& tree) {
  if (tree.levels.empty() || tree.levels[0].worms.size() != 1) return false;
  for (std::size_t i = 1; i < tree.levels.size(); ++i) {
    const WitnessLevel& level = tree.levels[i];
    const auto& prev = tree.levels[i - 1].worms;
    // Doubling cap: m_i ≤ 2·m_{i−1}.
    if (level.worms.size() > 2 * prev.size()) return false;
    std::set<PathId> witnessed;
    for (const auto& [w, witness] : level.collisions) {
      if (w == witness) return false;  // Definition 2.1, first bullet
      // w must be embedded one level up (third structural condition).
      if (std::find(prev.begin(), prev.end(), w) == prev.end()) return false;
      // Unique witness per old worm and level.
      if (!witnessed.insert(w).second) return false;
      // Both endpoints are embedded at this level.
      if (std::find(level.worms.begin(), level.worms.end(), witness) ==
          level.worms.end())
        return false;
    }
    // Every old worm needs a witness at every level.
    if (witnessed.size() != prev.size()) return false;
  }
  return true;
}

std::string witness_tree_to_dot(const WitnessTree& tree) {
  std::ostringstream os;
  os << "digraph witness {\n  rankdir=TB;\n  node [shape=circle,"
        " fontsize=10];\n";
  // One subgraph per level to force ranks; node ids are level-qualified
  // since the same worm appears on several levels.
  for (std::size_t i = 0; i < tree.levels.size(); ++i) {
    os << "  { rank=same;";
    for (const PathId worm : tree.levels[i].worms)
      os << " \"L" << i << "w" << worm << "\" [label=\"" << worm << "\"];";
    os << " }\n";
  }
  for (std::size_t i = 1; i < tree.levels.size(); ++i) {
    // Continuation edges (a worm persists to the next level) are dotted;
    // collision edges w -> witness are solid.
    for (const PathId worm : tree.levels[i - 1].worms)
      os << "  \"L" << i - 1 << "w" << worm << "\" -> \"L" << i << "w"
         << worm << "\" [style=dotted, arrowhead=none];\n";
    for (const auto& [worm, witness] : tree.levels[i].collisions)
      os << "  \"L" << i - 1 << "w" << worm << "\" -> \"L" << i << "w"
         << witness << "\" [color=\"#ee6677\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace opto
