// Closed-form evaluation of the paper's bounds, used by benches to print
// predicted-vs-measured series (EXPERIMENTS.md).
//
// All logs are base 2 unless the base is explicit; bases are clamped to
// > 1 + ε so the expressions stay finite on degenerate inputs (tiny n,
// C̃ ≤ 1, ...). Bounds are asymptotic: only *shapes* (growth rates,
// crossovers) are comparable with measurements, not absolute values.
#pragma once

#include <cstdint>

#include "opto/core/schedule.hpp"

namespace opto {

/// α = C̃ + B(D/L + 1) + 2   (Main Theorems 1.1–1.3).
double bound_alpha(const ProblemShape& shape);

/// β = α/C̃ + 2.
double bound_beta(const ProblemShape& shape);

/// log_base(x), with base clamped to ≥ 1.0001 and x to ≥ 1.
double log_base(double base, double x);

/// Round-count term of Thms 1.1/1.3: √(log_α n) + log log_β n.
double rounds_leveled(const ProblemShape& shape);

/// Round-count term of Thm 1.2: log_α n + log log_β n.
double rounds_shortcut_free(const ProblemShape& shape);

/// Full runtime bound of Main Theorem 1.1 / 1.3:
/// L·C̃/B + rounds·(D + L + L·log n / B).
double runtime_leveled(const ProblemShape& shape);

/// Full runtime bound of Main Theorem 1.2 (log^{3/2} n term).
double runtime_shortcut_free(const ProblemShape& shape);

/// Theorem 1.5 (node-symmetric, priority routers):
/// L·D²/B + (√(log_D n) + loglog n)(D + L).
double runtime_node_symmetric(std::uint32_t n, std::uint32_t diameter,
                              std::uint32_t worm_length,
                              std::uint16_t bandwidth);

/// Theorem 1.6 (d-dim mesh of side n, serve-first):
/// L·d·n/B + (√d + loglog n)(d·n + L + L·d·log n/B).
double runtime_mesh(std::uint32_t side, std::uint32_t dims,
                    std::uint32_t worm_length, std::uint16_t bandwidth);

/// Theorem 1.7 (log n-dim butterfly, q-functions, serve-first):
/// L·q·log n/B + √(log n / log(q·log n))·(L + log n + L·log n/B).
double runtime_butterfly(std::uint32_t rows, std::uint32_t q,
                         std::uint32_t worm_length, std::uint16_t bandwidth);

/// Lower-bound round terms (§2.2, §3.2) — same shapes as the upper bounds.
double lower_rounds_staircase(const ProblemShape& shape);  ///< √(log_α n)
double lower_rounds_bundle(const ProblemShape& shape);     ///< loglog_β n
double lower_rounds_triangle(const ProblemShape& shape);   ///< log_α n

/// The proofs' explicit constants (§2.1): k₀ and the round budget T the
/// w.h.p. argument actually uses, with failure probability ≤ n^{−γ}.
///   k₀ = (2+γ)·log n / log(2 + B(D/L+1)/(16·C̃)) + 1
///   T  = √( 2(2+γ)·log n /
///           log( (1/√(2k₀))·[max{C̃/log n, log n} + B(D/L+1)/(6e)] ) )
///        + ⌈log k₀⌉
/// Degenerate log bases are clamped; the result is a real-valued round
/// count (benches compare its growth against measured rounds).
double paper_k0(const ProblemShape& shape, double gamma = 1.0);
double paper_round_budget(const ProblemShape& shape, double gamma = 1.0);

}  // namespace opto
