// Congestion-decay predictions used by the protocol analysis.
//
// Lemma 2.4: with Δ_t ∝ L·C̃_t/B, the surviving path congestion halves
// every round until it floors at Θ(log n).
//
// Lemma 2.10: in a type-2 bundle the residual congestion after t rounds is
// at least C̃ / γ^(2^{t-1} − 1) with γ = 32BΔ̂/((L−1)C̃) — doubly
// exponential decay, which is where the loglog term comes from.
//
// Chernoff helpers follow Hagerup–Rüb [18], the form the paper cites.
#pragma once

#include <cstdint>
#include <vector>

namespace opto {

/// Lemma 2.4 prediction: C̃_t = max{C̃ / 2^{t-1}, log₂ n}.
double lemma24_congestion(double path_congestion, std::uint32_t round,
                          std::uint32_t n);

/// Lemma 2.10 residual congestion lower bound after `round` rounds
/// (1-based; round 1 = initial C̃). Computed in log-space.
double lemma210_residual(double path_congestion, double bandwidth,
                         double delta_hat, double worm_length,
                         std::uint32_t round);

/// Rounds until Lemma 2.10's residual drops below `threshold`:
/// t ≥ log₂(1 + log_γ(C̃/threshold)).
double lemma210_rounds_to(double path_congestion, double bandwidth,
                          double delta_hat, double worm_length,
                          double threshold);

/// Chernoff upper-tail bound  Pr[X ≥ (1+ε)μ] ≤ (e^ε/(1+ε)^{1+ε})^μ
/// for sums of independent 0/1 variables; returns the bound (≤ 1).
double chernoff_upper_tail(double mu, double epsilon);

/// Chernoff lower-tail bound  Pr[X ≤ (1−ε)μ] ≤ e^{−ε²μ/2}.
double chernoff_lower_tail(double mu, double epsilon);

/// Per-pair blocking probability bound used throughout §2:
/// Pr[w₁ discarded by w₂] ≤ 2L/(BΔ) (serve-first, both directions) —
/// clamped to 1.
double pairwise_block_probability(double worm_length, double bandwidth,
                                  double delta);

/// Lemma 2.8's per-link blocking probability in a staircase: with the
/// worms of the first i+1 paths active and delay range Δ ≥ L, the first
/// i worms are all discarded with probability ≥ ((L−1)/(2BΔ))^i.
double lemma28_chain_probability(double worm_length, double bandwidth,
                                 double delta, std::uint32_t chain_length);

/// Lemma 2.9's optimizer: maximize Π_{i=1..n} (x_i + α)^i subject to
/// Σ x_i = y, x_i ≥ 0. The maximizing split is
/// x_i + α = i·(y + n·α)/binom(n+1, 2). Used by the §2.2 lower bound to
/// choose per-round delay ranges (α = L there). Returns the x_i + α
/// values.
std::vector<double> lemma29_optimal_split(double total, std::uint32_t rounds,
                                          double alpha);

}  // namespace opto
