#include "opto/analysis/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

constexpr double kMinBase = 1.0001;

double log2_clamped(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

double log_base(double base, double x) {
  base = std::max(base, kMinBase);
  x = std::max(x, 1.0);
  return std::log2(x) / std::log2(base);
}

double bound_alpha(const ProblemShape& shape) {
  const double L = std::max(1u, shape.worm_length);
  return static_cast<double>(shape.path_congestion) +
         static_cast<double>(shape.bandwidth) *
             (static_cast<double>(shape.dilation) / L + 1.0) +
         2.0;
}

double bound_beta(const ProblemShape& shape) {
  const double congestion = std::max(1u, shape.path_congestion);
  return bound_alpha(shape) / congestion + 2.0;
}

double rounds_leveled(const ProblemShape& shape) {
  const double n = std::max(2u, shape.size);
  const double loglog = log2_clamped(log_base(bound_beta(shape), n));
  return std::sqrt(log_base(bound_alpha(shape), n)) + loglog;
}

double rounds_shortcut_free(const ProblemShape& shape) {
  const double n = std::max(2u, shape.size);
  const double loglog = log2_clamped(log_base(bound_beta(shape), n));
  return log_base(bound_alpha(shape), n) + loglog;
}

double runtime_leveled(const ProblemShape& shape) {
  const double L = shape.worm_length;
  const double B = shape.bandwidth;
  const double C = shape.path_congestion;
  const double D = shape.dilation;
  const double log_n = log2_clamped(shape.size);
  return L * C / B + rounds_leveled(shape) * (D + L + L * log_n / B);
}

double runtime_shortcut_free(const ProblemShape& shape) {
  const double L = shape.worm_length;
  const double B = shape.bandwidth;
  const double C = shape.path_congestion;
  const double D = shape.dilation;
  const double log_n = log2_clamped(shape.size);
  return L * C / B +
         rounds_shortcut_free(shape) * (D + L + L * std::pow(log_n, 1.5) / B);
}

double runtime_node_symmetric(std::uint32_t n, std::uint32_t diameter,
                              std::uint32_t worm_length,
                              std::uint16_t bandwidth) {
  const double L = worm_length;
  const double B = bandwidth;
  const double D = std::max(1u, diameter);
  const double rounds = std::sqrt(log_base(D, std::max(2u, n))) +
                        log2_clamped(log2_clamped(n));
  return L * D * D / B + rounds * (D + L);
}

double runtime_mesh(std::uint32_t side, std::uint32_t dims,
                    std::uint32_t worm_length, std::uint16_t bandwidth) {
  const double L = worm_length;
  const double B = bandwidth;
  const double d = dims;
  const double n = std::max(2u, side);
  const double rounds = std::sqrt(d) + log2_clamped(log2_clamped(n));
  return L * d * n / B + rounds * (d * n + L + L * d * log2_clamped(n) / B);
}

double runtime_butterfly(std::uint32_t rows, std::uint32_t q,
                         std::uint32_t worm_length, std::uint16_t bandwidth) {
  const double L = worm_length;
  const double B = bandwidth;
  const double log_n = log2_clamped(rows);
  const double q_log_n = std::max(2.0, static_cast<double>(q) * log_n);
  const double rounds = std::sqrt(log_n / std::log2(q_log_n));
  return L * q * log_n / B + rounds * (L + log_n + L * log_n / B);
}

double lower_rounds_staircase(const ProblemShape& shape) {
  return std::sqrt(log_base(bound_alpha(shape), std::max(2u, shape.size)));
}

double lower_rounds_bundle(const ProblemShape& shape) {
  return log2_clamped(
      log_base(bound_beta(shape), std::max(2u, shape.size)));
}

double lower_rounds_triangle(const ProblemShape& shape) {
  return log_base(bound_alpha(shape), std::max(2u, shape.size));
}

double paper_k0(const ProblemShape& shape, double gamma) {
  const double n = std::max(2u, shape.size);
  const double L = std::max(1u, shape.worm_length);
  const double C = std::max(1u, shape.path_congestion);
  const double base =
      2.0 + shape.bandwidth * (shape.dilation / L + 1.0) / (16.0 * C);
  return (2.0 + gamma) * std::log2(n) / std::log2(base) + 1.0;
}

double paper_round_budget(const ProblemShape& shape, double gamma) {
  constexpr double kSixE = 6.0 * 2.718281828459045;
  const double n = std::max(2u, shape.size);
  const double log_n = std::log2(n);
  const double L = std::max(1u, shape.worm_length);
  const double C = std::max(1u, shape.path_congestion);
  const double k0 = paper_k0(shape, gamma);
  const double inner =
      (std::max(C / log_n, log_n) +
       shape.bandwidth * (shape.dilation / L + 1.0) / kSixE) /
      std::sqrt(2.0 * k0);
  // The formula is asymptotic; for small shapes the bracket can dip
  // below 2, where it loses meaning. Clamping the base at 2 caps the
  // budget at √(2(2+γ)·log n) + ⌈log k₀⌉ — the natural worst case.
  const double log_inner = std::log2(std::max(inner, 2.0));
  return std::sqrt(2.0 * (2.0 + gamma) * log_n / log_inner) +
         std::ceil(std::log2(std::max(2.0, k0)));
}

}  // namespace opto
