// Numeric evaluation of the witness-tree probability bounds (§2.1, §3.1).
//
// The paper's delay-tree argument bounds the probability that any worm is
// still active after t rounds by counting active embeddings into the
// witness tree W(t). After simplification,
//
//   leveled / priority (§2.1):
//     P(t,k) ≤ n · 2^t · (16·L·C̃/(B·Δ₁))^{k−1}
//                     · (6e·L·t/(B·Δ_t))^{(t−⌈log k⌉)²/2}
//
//   short-cut free serve-first (§3.1):
//     P(t,k) ≤ n · 2k · (8·L·C̃/(B·Δ₁))^{k−1}
//                     · (26·L/(B·Δ_t))^{t−⌈log k⌉}
//
// Everything is evaluated in log₂-space; the aggregate failure probability
// sums P over the two case families exactly as the proofs do. These
// evaluators let benches print "theory says failure prob ≤ x" next to the
// observed round counts.
#pragma once

#include <cstdint>
#include <functional>

#include "opto/core/schedule.hpp"

namespace opto {

struct WitnessTreeParams {
  ProblemShape shape;
  /// Δ per round (1-based), typically DeltaSchedule::delta.
  std::function<SimTime(std::uint32_t)> delta;
};

/// log₂ P(t,k) for the leveled/priority bound; -inf-ish (very negative)
/// when the bound is tiny. Returns ≥ 0 values clamped to 0 (bound ≥ 1 is
/// vacuous).
double log2_embedding_bound_leveled(const WitnessTreeParams& params,
                                    std::uint32_t t, std::uint32_t k);

/// log₂ P(t,k) for the short-cut-free serve-first bound.
double log2_embedding_bound_shortcut_free(const WitnessTreeParams& params,
                                          std::uint32_t t, std::uint32_t k);

/// The proof's k₀ (§2.1): (2+γ)·log n / log(2 + B(D/L+1)/(16C̃)) + 1.
double witness_k0(const ProblemShape& shape, double gamma = 1.0);

/// Aggregate bound on Pr[protocol needs more than T rounds], following the
/// two-case split of the proofs (case families over t ≤ T, k ranges).
/// `leveled` selects which P(t,k) family to use. Clamped to [0, 1].
double failure_probability_bound(const WitnessTreeParams& params,
                                 std::uint32_t max_rounds, bool leveled,
                                 double gamma = 1.0);

}  // namespace opto
