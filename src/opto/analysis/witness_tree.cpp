#include "opto/analysis/witness_tree.hpp"

#include <algorithm>
#include <cmath>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

constexpr double kE = 2.718281828459045;

double ceil_log2(std::uint32_t k) {
  return std::ceil(std::log2(static_cast<double>(std::max(2u, k))));
}

}  // namespace

double log2_embedding_bound_leveled(const WitnessTreeParams& params,
                                    std::uint32_t t, std::uint32_t k) {
  OPTO_ASSERT(t >= 1 && k >= 1);
  const auto& s = params.shape;
  const double L = s.worm_length;
  const double B = s.bandwidth;
  const double C = std::max(1u, s.path_congestion);
  const double delta1 = static_cast<double>(params.delta(1));
  const double delta_t = static_cast<double>(params.delta(t));
  const double n = std::max(2u, s.size);

  double log2p = std::log2(n) + static_cast<double>(t);
  log2p += (k - 1.0) * std::log2(std::max(1e-300, 16.0 * L * C / (B * delta1)));
  const double levels = std::max(0.0, static_cast<double>(t) - ceil_log2(k));
  log2p += 0.5 * levels * levels *
           std::log2(std::max(1e-300, 6.0 * kE * L * t / (B * delta_t)));
  return std::min(0.0, log2p);
}

double log2_embedding_bound_shortcut_free(const WitnessTreeParams& params,
                                          std::uint32_t t, std::uint32_t k) {
  OPTO_ASSERT(t >= 1 && k >= 1);
  const auto& s = params.shape;
  const double L = s.worm_length;
  const double B = s.bandwidth;
  const double C = std::max(1u, s.path_congestion);
  const double delta1 = static_cast<double>(params.delta(1));
  const double delta_t = static_cast<double>(params.delta(t));
  const double n = std::max(2u, s.size);

  double log2p = std::log2(n) + std::log2(2.0 * k);
  log2p += (k - 1.0) * std::log2(std::max(1e-300, 8.0 * L * C / (B * delta1)));
  const double levels = std::max(0.0, static_cast<double>(t) - ceil_log2(k));
  log2p += levels * std::log2(std::max(1e-300, 26.0 * L / (B * delta_t)));
  return std::min(0.0, log2p);
}

double witness_k0(const ProblemShape& shape, double gamma) {
  const double n = std::max(2u, shape.size);
  const double L = std::max(1u, shape.worm_length);
  const double C = std::max(1u, shape.path_congestion);
  const double base =
      2.0 + shape.bandwidth * (shape.dilation / L + 1.0) / (16.0 * C);
  return (2.0 + gamma) * std::log2(n) / std::log2(base) + 1.0;
}

double failure_probability_bound(const WitnessTreeParams& params,
                                 std::uint32_t max_rounds, bool leveled,
                                 double gamma) {
  const double k0d = witness_k0(params.shape, gamma);
  const auto k0 = static_cast<std::uint32_t>(
      std::min(1e6, std::max(2.0, std::ceil(k0d))));
  const auto bound = leveled ? log2_embedding_bound_leveled
                             : log2_embedding_bound_shortcut_free;

  // Case (1): some level of W(T) accumulates k ∈ [k0, 2k0] worms, t ≤ T.
  // Case (2): the whole tree uses k ≤ k0 worms at depth T.
  double total = 0.0;
  const auto log_k0 =
      static_cast<std::uint32_t>(std::max(1.0, std::floor(std::log2(k0d))));
  for (std::uint32_t t = log_k0; t <= max_rounds; ++t)
    for (std::uint32_t k = k0; k <= 2 * k0; k += std::max(1u, k0 / 16))
      total += std::exp2(bound(params, t, k)) * std::max(1u, k0 / 16);
  for (std::uint32_t k = 2; k <= k0; ++k)
    total += std::exp2(bound(params, max_rounds, k));
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace opto
