#include "opto/analysis/congestion_theory.hpp"

#include <algorithm>
#include <cmath>

#include "opto/util/assert.hpp"

namespace opto {

double lemma24_congestion(double path_congestion, std::uint32_t round,
                          std::uint32_t n) {
  OPTO_ASSERT(round >= 1);
  const double floor_value = std::log2(std::max(2u, n));
  return std::max(path_congestion / std::exp2(static_cast<double>(round - 1)),
                  floor_value);
}

double lemma210_residual(double path_congestion, double bandwidth,
                         double delta_hat, double worm_length,
                         std::uint32_t round) {
  OPTO_ASSERT(round >= 1);
  if (worm_length <= 1.0) return 0.0;  // lemma needs L ≥ 2
  const double gamma =
      32.0 * bandwidth * delta_hat / ((worm_length - 1.0) * path_congestion);
  if (gamma <= 1.0) return path_congestion;  // no decay regime
  // log2(residual) = log2(C) − (2^{t−1} − 1)·log2(γ), computed in log-space
  // to survive the doubly exponential exponent.
  const double exponent = std::exp2(static_cast<double>(round - 1)) - 1.0;
  const double log2_res =
      std::log2(std::max(1e-300, path_congestion)) - exponent * std::log2(gamma);
  if (log2_res < -1000.0) return 0.0;
  return std::exp2(log2_res);
}

double lemma210_rounds_to(double path_congestion, double bandwidth,
                          double delta_hat, double worm_length,
                          double threshold) {
  if (worm_length <= 1.0 || threshold <= 0.0) return 0.0;
  const double gamma =
      32.0 * bandwidth * delta_hat / ((worm_length - 1.0) * path_congestion);
  if (gamma <= 1.0) return 0.0;
  const double ratio = path_congestion / threshold;
  if (ratio <= 1.0) return 0.0;
  return std::log2(1.0 + std::log2(ratio) / std::log2(gamma));
}

double chernoff_upper_tail(double mu, double epsilon) {
  OPTO_ASSERT(mu >= 0.0 && epsilon > 0.0);
  const double log_bound =
      mu * (epsilon - (1.0 + epsilon) * std::log1p(epsilon));
  return std::min(1.0, std::exp(log_bound));
}

double chernoff_lower_tail(double mu, double epsilon) {
  OPTO_ASSERT(mu >= 0.0 && epsilon > 0.0 && epsilon <= 1.0);
  return std::min(1.0, std::exp(-epsilon * epsilon * mu / 2.0));
}

double pairwise_block_probability(double worm_length, double bandwidth,
                                  double delta) {
  OPTO_ASSERT(bandwidth >= 1.0 && delta >= 1.0);
  return std::min(1.0, 2.0 * worm_length / (bandwidth * delta));
}

double lemma28_chain_probability(double worm_length, double bandwidth,
                                 double delta, std::uint32_t chain_length) {
  OPTO_ASSERT(bandwidth >= 1.0 && delta >= 1.0 && worm_length >= 1.0);
  const double per_link =
      std::min(1.0, (worm_length - 1.0) / (2.0 * bandwidth * delta));
  return std::pow(per_link, static_cast<double>(chain_length));
}

std::vector<double> lemma29_optimal_split(double total, std::uint32_t rounds,
                                          double alpha) {
  OPTO_ASSERT(rounds >= 1 && total >= 0.0 && alpha >= 0.0);
  const double n = rounds;
  const double choose2 = n * (n + 1.0) / 2.0;
  std::vector<double> split(rounds);
  for (std::uint32_t i = 1; i <= rounds; ++i)
    split[i - 1] = static_cast<double>(i) * (total + n * alpha) / choose2;
  return split;
}

}  // namespace opto
