// Empirical witness trees (Definitions 2.1–2.3).
//
// The upper-bound proofs hinge on this object: if a worm w₀ is still
// active after t rounds, there is a witness tree W(t) — at every level i
// each embedded worm w was prevented in round t−i+1 by some worm w',
// giving w the two children (w, w') one level down (Lemma 2.2).
//
// This builder reconstructs the *actual* witness tree of a protocol run
// (requires ProtocolConfig::keep_round_outcomes and serve-first routers
// with ideal acks, where every failed worm has a recorded blocker) and
// exposes the quantities the counting argument is about:
//   m_i  — distinct worms embedded in level i,
//   ℓ_i  — worms new at level i (m_i − m_{i−1}),
//   k    — total distinct worms,
// plus the per-level blame graphs G_i of Definition 2.3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opto/core/trial_and_failure.hpp"

namespace opto {

struct WitnessLevel {
  /// Distinct worms (by path id) embedded in this level.
  std::vector<PathId> worms;
  /// Collision pairs (w, w') of this level: w' prevented w (the edges of
  /// the level graph G_i).
  std::vector<std::pair<PathId, PathId>> collisions;
};

struct WitnessTree {
  PathId root = kInvalidPath;
  std::uint32_t depth = 0;  ///< t — rounds the root stayed active
  /// levels[i] covers round (depth − i); levels[0] = {root}.
  std::vector<WitnessLevel> levels;

  std::uint32_t total_distinct_worms() const;  ///< k
  /// m_i per level.
  std::vector<std::uint32_t> level_sizes() const;
  /// ℓ_i = m_i − m_{i−1} (ℓ_0 = 1).
  std::vector<std::uint32_t> new_worm_counts() const;
};

/// Builds the witness tree for `worm` over the first `rounds` rounds of
/// the run. The worm must have been active throughout (it failed rounds
/// 1..rounds). Requires result.rounds[*].launched/outcomes (see
/// keep_round_outcomes) and that every failure is a kill with a recorded
/// blocker — true under serve-first + ideal acks.
WitnessTree build_witness_tree(const ProtocolResult& result, PathId worm,
                               std::uint32_t rounds);

/// Validity per Definition 2.1: every collision pair (w, w') has w ≠ w',
/// at most one witness per old worm and level, and the level sets can
/// only grow by doubling (m_{i+1} ≤ 2·m_i).
bool is_valid_witness_tree(const WitnessTree& tree);

/// Graphviz DOT rendering: one rank per level, collision edges w → w'
/// (w' prevented w). Render with `dot -Tsvg`.
std::string witness_tree_to_dot(const WitnessTree& tree);

}  // namespace opto
