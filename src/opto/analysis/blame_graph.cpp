#include "opto/analysis/blame_graph.hpp"

#include <algorithm>

#include "opto/util/assert.hpp"

namespace opto {

BlameGraph BlameGraph::from_pass(const PassResult& pass) {
  BlameGraph graph;
  graph.blocker_.assign(pass.worms.size(), kInvalidWorm);
  for (WormId id = 0; id < pass.worms.size(); ++id) {
    if (pass.worms[id].status != WormStatus::Killed) continue;
    const WormId blocker = pass.worms[id].blocked_by;
    OPTO_ASSERT(blocker != kInvalidWorm && blocker < pass.worms.size());
    graph.blocker_[id] = blocker;
    ++graph.edges_;
  }
  return graph;
}

bool BlameGraph::has_cycle() const { return !cycles().empty(); }

std::vector<std::vector<WormId>> BlameGraph::cycles() const {
  // Functional graph: walk each chain with 3-color marking; a cycle is
  // found when a walk re-enters its own in-progress segment.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> state(blocker_.size(), kWhite);
  std::vector<std::vector<WormId>> found;

  for (WormId start = 0; start < blocker_.size(); ++start) {
    if (state[start] != kWhite) continue;
    std::vector<WormId> stack;
    WormId current = start;
    while (current != kInvalidWorm && state[current] == kWhite) {
      state[current] = kGray;
      stack.push_back(current);
      current = blocker_[current];
    }
    if (current != kInvalidWorm && state[current] == kGray) {
      // The tail of `stack` from `current` onward is a cycle.
      const auto it = std::find(stack.begin(), stack.end(), current);
      std::vector<WormId> cycle(it, stack.end());
      // Canonical rotation: smallest id first.
      const auto min_it = std::min_element(cycle.begin(), cycle.end());
      std::rotate(cycle.begin(), min_it, cycle.end());
      found.push_back(std::move(cycle));
    }
    for (const WormId id : stack) state[id] = kBlack;
  }
  return found;
}

std::vector<std::uint32_t> BlameGraph::component_sizes() const {
  // Union-find over blame edges.
  std::vector<WormId> parent(blocker_.size());
  for (WormId id = 0; id < parent.size(); ++id) parent[id] = id;
  const auto find = [&parent](WormId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<char> has_edge(blocker_.size(), 0);
  for (WormId id = 0; id < blocker_.size(); ++id) {
    if (blocker_[id] == kInvalidWorm) continue;
    has_edge[id] = 1;
    has_edge[blocker_[id]] = 1;
    parent[find(id)] = find(blocker_[id]);
  }
  std::vector<std::uint32_t> count(blocker_.size(), 0);
  for (WormId id = 0; id < blocker_.size(); ++id)
    if (has_edge[id]) ++count[find(id)];
  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t c : count)
    if (c > 0) sizes.push_back(c);
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace opto
