// Optional event trace for tests, debugging, and the examples' verbose
// mode. Disabled by default; recording costs one append per event.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/optical/worm.hpp"
#include "opto/util/assert.hpp"

namespace opto {

enum class TraceKind : std::uint8_t {
  Inject,    ///< worm launched onto its first link
  Admit,     ///< head admitted onto a link
  Retune,    ///< admitted after a wavelength conversion
  Kill,      ///< worm eliminated at a coupler
  Truncate,  ///< occupant cut by a higher-priority entrant
  Deliver,   ///< tail fully arrived at the destination
  FaultKill, ///< eliminated by a fault (dark link / coupler / stuck λ)
  Corrupt,   ///< payload corrupted while entering a link
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  SimTime time = 0;
  TraceKind kind = TraceKind::Inject;
  WormId worm = kInvalidWorm;
  EdgeId link = kInvalidEdge;     ///< link involved (invalid for Deliver)
  Wavelength wavelength = 0;
  WormId other = kInvalidWorm;    ///< blocker / truncator when applicable

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Canonical total order on events: (time, kind, worm, link, wavelength,
/// other). The sequential engine emits same-time events in resolution
/// order; the sharded engine merges per-component traces under this key.
/// Sorting either engine's trace yields the same sequence — within one
/// step no two events agree on all six fields, so the order is total.
bool canonical_less(const TraceEvent& a, const TraceEvent& b);

class Trace {
 public:
  explicit Trace(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void record(const TraceEvent& event) {
    if (!enabled_) return;
    // The simulator emits events in simulated-time order; a regression
    // here (e.g. finalizing a truncated drain too late) silently breaks
    // every trace consumer, so the invariant is checked on every append.
    OPTO_ASSERT_MSG(events_.empty() || events_.back().time <= event.time,
                    "trace events must be time-monotonic");
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Re-arms the trace for a fresh pass, keeping the event buffer's
  /// capacity (pass-state reuse: no steady-state allocation).
  void reset(bool enabled) {
    enabled_ = enabled;
    events_.clear();
  }

  /// Human-readable one-line rendering of an event.
  static std::string describe(const TraceEvent& event);

 private:
  bool enabled_;
  std::vector<TraceEvent> events_;
};

/// Copy of the trace's events sorted into the canonical order (the live
/// trace keeps its emission order). Two engine modes producing the same
/// event *set* compare equal through this view regardless of how they
/// interleaved same-step work.
std::vector<TraceEvent> canonical_events(const Trace& trace);

}  // namespace opto
