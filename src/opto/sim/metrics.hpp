// Aggregated counters for one forward pass of the simulator.
#pragma once

#include <cstdint>

#include "opto/optical/worm.hpp"

namespace opto {

struct PassMetrics {
  std::uint64_t launched = 0;    ///< worms injected
  std::uint64_t delivered = 0;   ///< tails that fully arrived *intact*
  std::uint64_t killed = 0;      ///< worms eliminated at a coupler
  std::uint64_t truncated = 0;   ///< truncation events (one worm may be cut
                                 ///< more than once)
  std::uint64_t truncated_arrivals = 0;  ///< remnants that reached their
                                         ///< destination (failed deliveries)
  /// Contention events: for fixed-wavelength couplers, one per group that
  /// had an occupant or multiple entrants; at converting couplers, one per
  /// entrant that found its preferred wavelength taken.
  std::uint64_t contentions = 0;
  std::uint64_t retunes = 0;     ///< wavelength conversions performed
  /// Fault-injection accounting (see sim/faults.hpp) — kept separate from
  /// `killed` so contention losses and physical-fault losses are
  /// distinguishable all the way up to the result JSON.
  std::uint64_t fault_kills = 0;  ///< eliminated by a dark link, failed
                                  ///< coupler, or stuck wavelength
  /// Worms eliminated by a pinned slot — a wavelength held by an
  /// established connection of the streaming engine (sim/simulator.hpp
  /// PinnedSlot). Kept apart from both `killed` (no worm witnesses the
  /// loss) and `fault_kills` (nothing is broken; the channel is busy).
  std::uint64_t pinned_blocks = 0;
  std::uint64_t corrupted = 0;    ///< flit-corruption events
  std::uint64_t corrupted_arrivals = 0;  ///< deliveries voided by corruption
  SimTime makespan = 0;          ///< last event time of the pass
  std::uint64_t worm_steps = 0;  ///< total link entries (engine throughput)
  /// Total (link, step) slots occupied by flits — admissions minus what
  /// truncations trimmed. Divide by link_count × (makespan+1) × B for the
  /// network's optical utilization.
  std::uint64_t link_busy_steps = 0;

  // Engine instrumentation (cheap counters, always on; see also
  // OPTO_PROFILE for wall-clock timing). The reference engine does not
  // populate these — they describe the fast engine's work, not the model.
  std::uint64_t steps = 0;            ///< time-loop iterations simulated
  std::uint64_t registry_probes = 0;  ///< occupancy-table slots inspected
  std::uint64_t registry_hits = 0;    ///< lookups that found an occupant
  std::uint64_t peak_inflight = 0;    ///< max worms running+draining at once
  /// Wall-clock nanoseconds spent in the pass; populated only when the
  /// OPTO_PROFILE environment variable is set (non-empty).
  std::uint64_t wall_ns = 0;

  void merge(const PassMetrics& other);

  /// Fraction of (link, wavelength, step) slots that carried a flit.
  double utilization(std::uint64_t link_count, std::uint16_t bandwidth) const;
};

}  // namespace opto
