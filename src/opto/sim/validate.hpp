// Post-pass validation: global invariants a PassResult must satisfy.
//
// Usable by library consumers as a self-check (run with traces enabled)
// and used heavily by the test suite. Every violation is returned as a
// human-readable message rather than asserting, so callers can decide.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "opto/sim/simulator.hpp"

namespace opto {

struct ValidationReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Checks, given the launch specs and the pass result:
///  * conservation: every worm ends Delivered or Killed; metric counters
///    match the per-worm outcomes (including the fault-loss split:
///    fault_kills and corrupted_arrivals are tallied separately);
///  * finish times: delivered worms finish within
///    [start + len(path) − 1, start + len(path) + L − 2]; killed worms
///    at their blocking step;
///  * witnesses: every contention-killed worm's blocker shares the
///    blocked link (and the wavelength, when conversion is off); fault
///    kills are witness-free by design and must stay that way;
///  * makespan = max finish time.
ValidationReport validate_pass(const PathCollection& collection,
                               const SimConfig& config,
                               std::span<const LaunchSpec> specs,
                               const PassResult& result);

/// Trace-based occupancy check (requires config.record_trace): on every
/// (link, wavelength), admission windows of different worms must not
/// overlap. Truncated worms' windows are conservatively shortened using
/// the trace's Truncate events.
ValidationReport validate_occupancy(const PathCollection& collection,
                                    std::span<const LaunchSpec> specs,
                                    const PassResult& result);

}  // namespace opto
