#include "opto/sim/occupancy.hpp"

#include "opto/util/assert.hpp"

namespace opto {

std::optional<Claim> OccupancyRegistry::occupant(EdgeId link,
                                                 Wavelength wavelength,
                                                 SimTime now) const {
  const auto it = claims_.find(key(link, wavelength));
  if (it == claims_.end()) return std::nullopt;
  const Claim& claim = it->second;
  if (claim.release <= now) return std::nullopt;  // stale: already drained
  OPTO_DASSERT(claim.entry <= now);
  return claim;
}

void OccupancyRegistry::claim(EdgeId link, Wavelength wavelength,
                              const Claim& claim) {
  OPTO_DASSERT(claim.release > claim.entry);
  claims_[key(link, wavelength)] = claim;
}

SimTime OccupancyRegistry::shorten(EdgeId link, Wavelength wavelength,
                                   WormId worm, SimTime new_release) {
  const auto it = claims_.find(key(link, wavelength));
  if (it == claims_.end() || it->second.worm != worm) return 0;
  if (new_release >= it->second.release) return 0;
  const SimTime trimmed = it->second.release - new_release;
  it->second.release = new_release;
  return trimmed;
}

void OccupancyRegistry::sweep(SimTime now) {
  for (auto it = claims_.begin(); it != claims_.end();) {
    if (it->second.release <= now)
      it = claims_.erase(it);
    else
      ++it;
  }
}

}  // namespace opto
