#include "opto/sim/occupancy.hpp"

#include <algorithm>

#include "opto/util/assert.hpp"

namespace opto {

namespace {
constexpr std::size_t kInitialCapacity = 64;  // power of two
constexpr std::size_t kNoSlot = ~std::size_t{0};
}  // namespace

OccupancyRegistry::OccupancyRegistry()
    : slots_(kInitialCapacity), mask_(kInitialCapacity - 1) {}

void OccupancyRegistry::use_dense(std::size_t link_count,
                                  std::uint32_t bandwidth) {
  OPTO_ASSERT_MSG(live_ == 0, "use_dense: registry must be empty");
  OPTO_ASSERT(bandwidth >= 1);
  bandwidth_ = bandwidth;
  const std::size_t channels = link_count * bandwidth;
  d_epoch_.assign(channels, 0);  // epoch_ >= 1, so 0 reads as empty
  d_release_.assign(channels, 0);
  d_claim_.assign(channels, Claim{});
  slots_.clear();
  slots_.shrink_to_fit();
}

const Claim* OccupancyRegistry::find(EdgeId link, Wavelength wavelength,
                                     SimTime now) const {
  if (dense()) {
    ++stats_.probes;
    const std::size_t idx = dense_index(link, wavelength);
    if (d_epoch_[idx] != epoch_ || d_release_[idx] <= now) return nullptr;
    OPTO_DASSERT(d_claim_[idx].entry <= now);
    ++stats_.hits;
    return &d_claim_[idx];
  }
  const std::uint64_t key = pack(link, wavelength);
  std::size_t idx = bucket(key);
  while (true) {
    const Slot& slot = slots_[idx];
    ++stats_.probes;
    if (slot.epoch != epoch_) return nullptr;  // empty: end of chain
    if (!slot.dead && slot.key == key) {
      if (slot.claim.release <= now) return nullptr;  // stale: drained
      OPTO_DASSERT(slot.claim.entry <= now);
      ++stats_.hits;
      return &slot.claim;
    }
    idx = (idx + 1) & mask_;
  }
}

std::optional<Claim> OccupancyRegistry::occupant(EdgeId link,
                                                 Wavelength wavelength,
                                                 SimTime now) const {
  const Claim* claim = find(link, wavelength, now);
  if (claim == nullptr) return std::nullopt;
  return *claim;
}

OccupancyRegistry::Slot* OccupancyRegistry::locate(std::uint64_t key) {
  std::size_t idx = bucket(key);
  while (true) {
    Slot& slot = slots_[idx];
    if (slot.epoch != epoch_) return nullptr;
    if (!slot.dead && slot.key == key) return &slot;
    idx = (idx + 1) & mask_;
  }
}

void OccupancyRegistry::claim(EdgeId link, Wavelength wavelength,
                              const Claim& claim) {
  OPTO_DASSERT(claim.release > claim.entry);
  if (dense()) {
    const std::size_t idx = dense_index(link, wavelength);
    if (d_epoch_[idx] != epoch_) {
      d_epoch_[idx] = epoch_;
      ++live_;
    }
    d_claim_[idx] = claim;
    d_release_[idx] = claim.release;
    return;
  }
  if ((used_ + 1) * 4 >= slots_.size() * 3) grow();
  const std::uint64_t key = pack(link, wavelength);
  std::size_t idx = bucket(key);
  std::size_t reusable = kNoSlot;
  while (true) {
    Slot& slot = slots_[idx];
    if (slot.epoch != epoch_) {
      // End of chain: the key has no live entry. Prefer recycling a
      // tombstone or an expired entry seen on the way (keeps chains
      // short); otherwise take the empty slot.
      if (reusable != kNoSlot) {
        Slot& reuse = slots_[reusable];
        if (reuse.dead) {
          reuse.dead = false;
          ++live_;
        }
        // An expired live entry is evicted in place: live_ unchanged.
        reuse.key = key;
        reuse.claim = claim;
        return;
      }
      slot.key = key;
      slot.claim = claim;
      slot.epoch = epoch_;
      slot.dead = false;
      ++live_;
      ++used_;
      return;
    }
    if (!slot.dead && slot.key == key) {
      slot.claim = claim;  // overwrite: admitted winner replaces loser
      return;
    }
    if (reusable == kNoSlot &&
        (slot.dead || slot.claim.release <= claim.entry))
      reusable = idx;
    idx = (idx + 1) & mask_;
  }
}

SimTime OccupancyRegistry::shorten(EdgeId link, Wavelength wavelength,
                                   WormId worm, SimTime new_release) {
  if (dense()) {
    const std::size_t idx = dense_index(link, wavelength);
    if (d_epoch_[idx] != epoch_ || d_claim_[idx].worm != worm) return 0;
    Claim& c = d_claim_[idx];
    if (new_release < c.entry) new_release = c.entry;
    if (new_release >= c.release) return 0;
    const SimTime trimmed = c.release - new_release;
    c.release = new_release;
    d_release_[idx] = new_release;
    return trimmed;
  }
  Slot* slot = locate(pack(link, wavelength));
  if (slot == nullptr || slot->claim.worm != worm) return 0;
  if (new_release < slot->claim.entry) new_release = slot->claim.entry;
  if (new_release >= slot->claim.release) return 0;
  const SimTime trimmed = slot->claim.release - new_release;
  slot->claim.release = new_release;
  return trimmed;
}

void OccupancyRegistry::clear() {
  if (++epoch_ == 0) {  // epoch wrap: lazily-emptied slots become ambiguous
    for (Slot& slot : slots_) slot.epoch = 0;
    for (std::uint32_t& e : d_epoch_) e = 0;
    epoch_ = 1;
  }
  live_ = 0;
  used_ = 0;
  sweep_cursor_ = 0;
}

void OccupancyRegistry::sweep(SimTime now) {
  if (dense()) return;  // fixed slots; expiry is judged at read time
  for (Slot& slot : slots_) {
    if (slot.epoch != epoch_ || slot.dead) continue;
    if (slot.claim.release <= now) {
      slot.dead = true;
      --live_;
    }
  }
}

void OccupancyRegistry::sweep_step(SimTime now, std::size_t budget) {
  if (dense()) return;  // nothing to reclaim
  if (live_ == 0) return;
  budget = std::min(budget, slots_.size());
  for (std::size_t i = 0; i < budget; ++i) {
    Slot& slot = slots_[sweep_cursor_];
    sweep_cursor_ = (sweep_cursor_ + 1) & mask_;
    if (slot.epoch != epoch_ || slot.dead) continue;
    if (slot.claim.release <= now) {
      slot.dead = true;
      --live_;
    }
  }
}

void OccupancyRegistry::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  used_ = live_;
  sweep_cursor_ = 0;
  for (const Slot& slot : old) {
    if (slot.epoch != epoch_ || slot.dead) continue;
    std::size_t idx = bucket(slot.key);
    while (slots_[idx].epoch == epoch_) idx = (idx + 1) & mask_;
    Slot& fresh = slots_[idx];
    fresh = slot;
  }
}

}  // namespace opto
