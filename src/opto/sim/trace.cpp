#include "opto/sim/trace.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace opto {

bool canonical_less(const TraceEvent& a, const TraceEvent& b) {
  return std::tuple(a.time, static_cast<std::uint8_t>(a.kind), a.worm, a.link,
                    a.wavelength, a.other) <
         std::tuple(b.time, static_cast<std::uint8_t>(b.kind), b.worm, b.link,
                    b.wavelength, b.other);
}

std::vector<TraceEvent> canonical_events(const Trace& trace) {
  std::vector<TraceEvent> events = trace.events();
  std::sort(events.begin(), events.end(), canonical_less);
  return events;
}

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::Inject:
      return "inject";
    case TraceKind::Admit:
      return "admit";
    case TraceKind::Retune:
      return "retune";
    case TraceKind::Kill:
      return "kill";
    case TraceKind::Truncate:
      return "truncate";
    case TraceKind::Deliver:
      return "deliver";
    case TraceKind::FaultKill:
      return "fault-kill";
    case TraceKind::Corrupt:
      return "corrupt";
  }
  return "?";
}

std::string Trace::describe(const TraceEvent& event) {
  std::ostringstream os;
  os << "t=" << event.time << " " << to_string(event.kind) << " worm="
     << event.worm;
  if (event.link != kInvalidEdge)
    os << " link=" << event.link << " wl=" << event.wavelength;
  if (event.other != kInvalidWorm) os << " by=" << event.other;
  return os.str();
}

}  // namespace opto
