#include "opto/sim/trace.hpp"

#include <sstream>

namespace opto {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::Inject:
      return "inject";
    case TraceKind::Admit:
      return "admit";
    case TraceKind::Retune:
      return "retune";
    case TraceKind::Kill:
      return "kill";
    case TraceKind::Truncate:
      return "truncate";
    case TraceKind::Deliver:
      return "deliver";
    case TraceKind::FaultKill:
      return "fault-kill";
    case TraceKind::Corrupt:
      return "corrupt";
  }
  return "?";
}

std::string Trace::describe(const TraceEvent& event) {
  std::ostringstream os;
  os << "t=" << event.time << " " << to_string(event.kind) << " worm="
     << event.worm;
  if (event.link != kInvalidEdge)
    os << " link=" << event.link << " wl=" << event.wavelength;
  if (event.other != kInvalidWorm) os << " by=" << event.other;
  return os.str();
}

}  // namespace opto
