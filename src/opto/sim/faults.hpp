// Deterministic fault injection for the wormhole engine.
//
// The Trial-and-Failure protocol is retry-based — a worm eliminated at a
// coupler is simply re-launched next round — which makes it a natural
// testbed for the physical faults the paper abstracts away: dark fibers
// (link outages), stuck wavelengths, failed couplers, flit corruption,
// and lossy acknowledgement channels.
//
// Every fault decision is derived *counter-style*: a query hashes
// (base_seed, fault_epoch, fault-kind, entity ids) through splitmix64 and
// compares the result against the configured rate. Consequences:
//  * queries are pure functions — no internal RNG stream is advanced, so
//    query order (and the engine's control flow) can never perturb the
//    fault pattern, and concurrent readers need no synchronization;
//  * a trial replays bit-identically from (base_seed, fault_epoch) alone;
//  * a zero-rate plan answers every query `false` without hashing, so a
//    zero-fault FaultPlan is behaviourally identical to no plan at all
//    (test_faults.cpp checks this differentially, bit for bit).
//
// The protocol bumps the epoch once per round, so outage schedules, stuck
// sets, and corruption streams resample across rounds — a worm unlucky in
// round t is not doomed in round t+1 (faults model transient hardware
// conditions, not a permanently altered topology).
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"
#include "opto/optical/worm.hpp"

namespace opto {

/// Fault rates and outage shapes. All rates are probabilities in [0, 1];
/// a default-constructed config injects nothing.
struct FaultConfig {
  /// Fraction of links carrying a periodic down/repair schedule this
  /// epoch. A worm entering a down link is eliminated like a serve-first
  /// loss (its upstream flits drain normally).
  double link_outage_rate = 0.0;
  /// Fraction of nodes whose coupler carries a down/repair schedule; a
  /// down coupler eliminates every worm trying to enter a link it feeds.
  double coupler_outage_rate = 0.0;
  /// Shared down/repair cycle for link and coupler outages: each faulted
  /// component is down for `outage_duration` steps out of every
  /// `outage_period`, at a per-component pseudorandom phase.
  SimTime outage_period = 64;
  SimTime outage_duration = 16;
  /// Per-(link, wavelength) probability that the wavelength is stuck —
  /// permanently held in the occupancy registry for the whole pass, as if
  /// an infinite-length worm owned it. Fixed-wavelength entrants are
  /// eliminated; converting routers retune around it.
  double stuck_wavelength_rate = 0.0;
  /// Per-link-entry probability that a worm's payload is corrupted. A
  /// corrupted worm keeps travelling (and occupying links) but its
  /// delivery is void — the destination rejects it and it must retry.
  double corruption_rate = 0.0;
  /// Per-worm probability that a successful delivery's acknowledgement is
  /// lost on the way back (the sender re-sends: a duplicate delivery).
  double ack_drop_rate = 0.0;

  bool any_fault() const {
    return link_outage_rate > 0.0 || coupler_outage_rate > 0.0 ||
           stuck_wavelength_rate > 0.0 || corruption_rate > 0.0 ||
           ack_drop_rate > 0.0;
  }
};

/// A replayable schedule of faults, keyed by (base_seed, fault_epoch).
/// Stateless per query; set_epoch() re-keys the whole plan between rounds.
/// Thread-safe for concurrent queries (set_epoch must be externally
/// ordered before them, as the protocol's round loop naturally does).
class FaultPlan {
 public:
  /// Zero-fault plan; disabled() and never injects.
  FaultPlan() = default;

  FaultPlan(const FaultConfig& config, std::uint64_t base_seed);

  /// Re-keys every fault stream for a new epoch (protocol round).
  void set_epoch(std::uint64_t epoch);

  const FaultConfig& config() const { return config_; }
  std::uint64_t base_seed() const { return base_seed_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Whether any fault stream can fire; the simulator skips all fault
  /// probes when this is false, making a zero-fault plan free.
  bool enabled() const { return enabled_; }
  bool has_stuck_wavelengths() const {
    return config_.stuck_wavelength_rate > 0.0;
  }

  /// Is `link` dark at time `now` (requires now ≥ 0)?
  bool link_down(EdgeId link, SimTime now) const;

  /// Is the coupler at `node` failed at time `now`?
  bool coupler_down(NodeId node, SimTime now) const;

  /// Is (link, wavelength) stuck for this whole epoch?
  bool wavelength_stuck(EdgeId link, Wavelength wavelength) const;

  /// Does `worm`'s payload corrupt while entering `link`?
  bool corrupts_flit(WormId worm, EdgeId link) const;

  /// Is the acknowledgement for the worm routing path `path` lost?
  bool drops_ack(PathId path) const;

 private:
  // Domain tags keep the per-kind hash streams disjoint.
  enum Domain : std::uint64_t {
    kLinkFaulty = 1,
    kLinkPhase,
    kCouplerFaulty,
    kCouplerPhase,
    kStuck,
    kCorrupt,
    kAckDrop,
  };

  std::uint64_t mix(std::uint64_t domain, std::uint64_t a,
                    std::uint64_t b) const;

  /// Uniform double in [0, 1), deterministic in (epoch key, domain, a, b).
  double uniform(std::uint64_t domain, std::uint64_t a,
                 std::uint64_t b = 0) const;

  /// Down/repair interval test shared by links and couplers.
  bool outage_down(std::uint64_t faulty_domain, std::uint64_t phase_domain,
                   std::uint64_t entity, double rate, SimTime now) const;

  FaultConfig config_;
  std::uint64_t base_seed_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_key_ = 0;  ///< splitmix of (base_seed, epoch)
  bool enabled_ = false;
};

}  // namespace opto
