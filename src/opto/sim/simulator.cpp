#include "opto/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(ConversionMode mode) {
  switch (mode) {
    case ConversionMode::None:
      return "none";
    case ConversionMode::Full:
      return "full";
    case ConversionMode::Sparse:
      return "sparse";
  }
  return "?";
}

Simulator::Simulator(const PathCollection& collection, SimConfig config)
    : collection_(collection), config_(std::move(config)) {
  OPTO_ASSERT(config_.bandwidth >= 1);
  if (config_.conversion == ConversionMode::Sparse)
    OPTO_ASSERT_MSG(config_.converters.size() >= collection.graph().node_count(),
                    "Sparse conversion needs a per-node converter flag");
}

bool Simulator::converts_at(NodeId node) const {
  switch (config_.conversion) {
    case ConversionMode::None:
      return false;
    case ConversionMode::Full:
      return true;
    case ConversionMode::Sparse:
      return config_.converters[node] != 0;
  }
  return false;
}

void Simulator::apply_truncation(std::vector<Worm>& worms, WormId victim,
                                 std::uint32_t cut_link_index, SimTime now,
                                 PassResult& result) {
  Worm& worm = worms[victim];
  const Path& path = collection_.path(worm.path);
  const SimTime cut_entry = worm.entry_time(cut_link_index);
  OPTO_ASSERT(now > cut_entry);
  // Flits that made it through the cut coupler before `now` survive on
  // this cut's downstream links; the head stream (what can still be
  // delivered) is the minimum across all cuts so far.
  const auto remnant = static_cast<std::uint32_t>(now - cut_entry);
  worm.length = std::min(worm.length, remnant);
  OPTO_ASSERT(worm.length >= 1);
  worm.truncated = true;
  ++result.metrics.truncated;
  const bool convert = config_.conversion != ConversionMode::None;
  const auto victim_wavelength = [&](std::uint32_t i) {
    return convert ? wavelength_history_[victim][i] : worm.wavelength;
  };
  result.trace.record({now, TraceKind::Truncate, victim,
                       path.link(cut_link_index),
                       victim_wavelength(cut_link_index), kInvalidWorm});
  // Shorten the victim's claims from the cut onward: link i now frees at
  // entry_i + remnant. shorten() takes the min with the existing release,
  // so links past an earlier (deeper) cut keep their shorter windows;
  // claims the victim no longer owns are skipped.
  for (std::uint32_t i = cut_link_index; i < worm.head_index; ++i)
    result.metrics.link_busy_steps -=
        static_cast<std::uint64_t>(registry_.shorten(
            path.link(i), victim_wavelength(i), victim,
            worm.entry_time(i) + remnant));
}

PassResult Simulator::run(std::span<const LaunchSpec> specs) {
  PassResult result;
  result.trace = Trace(config_.record_trace);
  const auto count = static_cast<WormId>(specs.size());
  result.worms.resize(count);
  registry_.clear();
  const bool convert = config_.conversion != ConversionMode::None;
  if (convert) wavelength_history_.assign(count, {});

  // Materialize worm state.
  std::vector<Worm> worms(count);
  for (WormId id = 0; id < count; ++id) {
    const LaunchSpec& spec = specs[id];
    OPTO_ASSERT(spec.path < collection_.size());
    OPTO_ASSERT(spec.length >= 1);
    OPTO_ASSERT(spec.wavelength < config_.bandwidth);
    Worm& worm = worms[id];
    worm.path = spec.path;
    worm.wavelength = spec.wavelength;
    worm.priority = spec.priority;
    worm.start_time = spec.start_time;
    worm.original_length = spec.length;
    worm.length = spec.length;
  }

  // Injection order: by start time (stable in worm id).
  std::vector<WormId> injection_order(count);
  std::iota(injection_order.begin(), injection_order.end(), 0u);
  std::stable_sort(injection_order.begin(), injection_order.end(),
                   [&worms](WormId a, WormId b) {
                     return worms[a].start_time < worms[b].start_time;
                   });

  std::vector<WormId> running;   // head still has links to enter
  std::vector<WormId> draining;  // head done, tail still arriving
  running.reserve(count);

  std::size_t next_injection = 0;
  SimTime now = count > 0 ? worms[injection_order.front()].start_time : 0;

  std::vector<Attempt> attempts;
  std::vector<Contender> contenders;

  const auto finish_kill = [&](WormId id, SimTime t, WormId blocker) {
    Worm& worm = worms[id];
    worm.status = WormStatus::Killed;
    worm.blocked_at_link = worm.head_index;
    worm.finish_time = t;
    ++result.metrics.killed;
    const Path& path = collection_.path(worm.path);
    result.trace.record({t, TraceKind::Kill, id, path.link(worm.head_index),
                         worm.wavelength, blocker});
    result.worms[id].blocked_by = blocker;
  };

  const auto finish_delivery = [&](WormId id, SimTime t) {
    Worm& worm = worms[id];
    worm.status = WormStatus::Delivered;
    worm.finish_time = t;
    if (worm.truncated)
      ++result.metrics.truncated_arrivals;
    else
      ++result.metrics.delivered;
    result.trace.record(
        {t, TraceKind::Deliver, id, kInvalidEdge, worm.wavelength, kInvalidWorm});
  };

  /// Admits `id` onto `link` at wavelength `wl` (its head enters now).
  const auto admit = [&](WormId id, EdgeId link, Wavelength wl, bool retuned) {
    Worm& worm = worms[id];
    if (convert) {
      wavelength_history_[id].push_back(wl);
      worm.wavelength = wl;
    }
    Claim claim;
    claim.worm = id;
    claim.priority = worm.priority;
    claim.link_index = worm.head_index;
    claim.entry = now;
    claim.release = now + worm.length;
    registry_.claim(link, wl, claim);
    result.trace.record({now, retuned ? TraceKind::Retune : TraceKind::Admit,
                         id, link, wl, kInvalidWorm});
    if (retuned) ++result.metrics.retunes;
    ++worm.head_index;
    ++result.metrics.worm_steps;
    result.metrics.link_busy_steps += worm.length;
  };

  /// Conversion-free contention for one (link, wavelength) group.
  const auto resolve_fixed = [&](EdgeId link, Wavelength wl,
                                 std::span<const Attempt> group) {
    contenders.clear();
    for (const Attempt& attempt : group)
      contenders.push_back({attempt.worm, worms[attempt.worm].priority});

    const auto occupant = registry_.occupant(link, wl, now);
    std::optional<Contender> occupant_contender;
    if (occupant.has_value())
      occupant_contender = Contender{occupant->worm, occupant->priority};

    if (occupant.has_value() || contenders.size() > 1)
      ++result.metrics.contentions;

    const ContentionOutcome outcome = resolve_contention(
        config_.rule, config_.tie, occupant_contender, contenders);

    if (outcome.occupant_truncated)
      apply_truncation(worms, occupant->worm, occupant->link_index, now,
                       result);

    for (WormId loser : outcome.eliminated) {
      // Witness (Lemma 2.2): the worm that prevented this one — the
      // occupant, else the admitted worm, else a dead-heat peer.
      WormId blocker = kInvalidWorm;
      if (occupant.has_value())
        blocker = occupant->worm;
      else if (outcome.admitted != kInvalidWorm)
        blocker = outcome.admitted;
      else
        blocker = loser == contenders.front().worm ? contenders.back().worm
                                                   : contenders.front().worm;
      finish_kill(loser, now, blocker);
    }

    if (outcome.admitted != kInvalidWorm)
      admit(outcome.admitted, link, wl, /*retuned=*/false);
  };

  /// Contention for one link at a converting router: entrants may retune
  /// to any free wavelength. Serve-first scans entrants in input-port
  /// (worm id) order; priority scans in descending rank and may steal the
  /// weakest occupant's wavelength when none is free.
  const auto resolve_converting = [&](EdgeId link,
                                      std::span<const Attempt> group) {
    const std::uint16_t bandwidth = config_.bandwidth;
    // Live occupants and same-step admissions per wavelength.
    std::vector<std::optional<Claim>> occupant(bandwidth);
    std::vector<WormId> admitted(bandwidth, kInvalidWorm);
    bool any_contention = false;
    for (Wavelength w = 0; w < bandwidth; ++w)
      occupant[w] = registry_.occupant(link, w, now);

    std::vector<WormId> order;
    order.reserve(group.size());
    for (const Attempt& attempt : group) order.push_back(attempt.worm);
    if (config_.rule == ContentionRule::Priority) {
      std::sort(order.begin(), order.end(), [&worms](WormId a, WormId b) {
        return worms[a].priority > worms[b].priority;
      });
    } else {
      std::sort(order.begin(), order.end());
    }

    const auto is_free = [&](Wavelength w) {
      return !occupant[w].has_value() && admitted[w] == kInvalidWorm;
    };
    const auto lowest_free = [&]() -> std::int32_t {
      for (Wavelength w = 0; w < bandwidth; ++w)
        if (is_free(w)) return w;
      return -1;
    };

    for (const WormId id : order) {
      Worm& worm = worms[id];
      const Wavelength preferred = worm.wavelength;
      if (is_free(preferred)) {
        admit(id, link, preferred, /*retuned=*/false);
        admitted[preferred] = id;
        continue;
      }
      any_contention = true;
      if (const std::int32_t w = lowest_free(); w >= 0) {
        admit(id, link, static_cast<Wavelength>(w), /*retuned=*/true);
        admitted[static_cast<Wavelength>(w)] = id;
        continue;
      }
      if (config_.rule == ContentionRule::Priority) {
        // No free wavelength: challenge the weakest pre-existing occupant
        // (same-step admissions are head-to-head and cannot be cut).
        std::int32_t weakest = -1;
        for (Wavelength w = 0; w < bandwidth; ++w) {
          if (!occupant[w].has_value()) continue;
          if (weakest < 0 ||
              occupant[w]->priority <
                  occupant[static_cast<Wavelength>(weakest)]->priority)
            weakest = w;
        }
        if (weakest >= 0) {
          const auto wl = static_cast<Wavelength>(weakest);
          if (occupant[wl]->priority < worm.priority) {
            apply_truncation(worms, occupant[wl]->worm,
                             occupant[wl]->link_index, now, result);
            admit(id, link, wl, /*retuned=*/wl != preferred);
            admitted[wl] = id;
            occupant[wl].reset();
            continue;
          }
        }
      }
      // Eliminated: witness is whoever holds the preferred wavelength.
      const WormId blocker = occupant[preferred].has_value()
                                 ? occupant[preferred]->worm
                                 : admitted[preferred];
      finish_kill(id, now, blocker);
    }
    if (any_contention) ++result.metrics.contentions;
  };

  while (next_injection < count || !running.empty() || !draining.empty()) {
    // Fast-forward across idle gaps (large startup-delay ranges leave long
    // stretches with nothing in flight).
    if (running.empty() && draining.empty()) {
      OPTO_ASSERT(next_injection < count);
      now = std::max(now, worms[injection_order[next_injection]].start_time);
    }

    // 1. Inject worms whose startup delay expired.
    while (next_injection < count &&
           worms[injection_order[next_injection]].start_time <= now) {
      const WormId id = injection_order[next_injection++];
      Worm& worm = worms[id];
      OPTO_ASSERT(worm.status == WormStatus::Waiting);
      worm.status = WormStatus::Running;
      ++result.metrics.launched;
      const Path& path = collection_.path(worm.path);
      result.trace.record({now, TraceKind::Inject, id,
                           path.empty() ? kInvalidEdge : path.link(0),
                           worm.wavelength, kInvalidWorm});
      if (path.empty()) {
        // Zero-length path: source == destination, no link contention.
        finish_delivery(id, now);
      } else {
        running.push_back(id);
      }
    }

    // 2. Collect this step's link-entry attempts. Every running worm's
    //    head enters a link every step (worms never stall). Grouping key:
    //    (link, wavelength) normally; link only at converting routers
    //    (entrants on different wavelengths interact there).
    attempts.clear();
    for (WormId id : running) {
      const Worm& worm = worms[id];
      OPTO_DASSERT(worm.status == WormStatus::Running);
      OPTO_DASSERT(worm.entry_time(worm.head_index) == now);
      const EdgeId link = collection_.path(worm.path).link(worm.head_index);
      const bool merge_wavelengths =
          convert && converts_at(collection_.graph().source(link));
      const std::uint64_t key =
          (static_cast<std::uint64_t>(link) << 17) |
          (merge_wavelengths ? 0x10000u : worm.wavelength);
      attempts.push_back({key, id});
    }
    std::sort(attempts.begin(), attempts.end(),
              [](const Attempt& a, const Attempt& b) {
                return a.key != b.key ? a.key < b.key : a.worm < b.worm;
              });

    // 3. Resolve contention groups in ascending key order.
    for (std::size_t lo = 0; lo < attempts.size();) {
      std::size_t hi = lo;
      while (hi < attempts.size() && attempts[hi].key == attempts[lo].key)
        ++hi;
      const auto link = static_cast<EdgeId>(attempts[lo].key >> 17);
      const std::span<const Attempt> group{attempts.data() + lo, hi - lo};
      if ((attempts[lo].key & 0x10000u) != 0)
        resolve_converting(link, group);
      else
        resolve_fixed(link,
                      static_cast<Wavelength>(attempts[lo].key & 0xffffu),
                      group);
      lo = hi;
    }

    // 4. Re-partition the running set: drop kills, move finished heads to
    //    the draining set.
    std::size_t keep = 0;
    for (WormId id : running) {
      Worm& worm = worms[id];
      if (worm.status != WormStatus::Running) continue;  // killed this step
      if (worm.head_index == collection_.path(worm.path).length())
        draining.push_back(id);
      else
        running[keep++] = id;
    }
    running.resize(keep);

    // 5. Finalize drained deliveries. The tail leaves the last link at
    //    entry_last + length − 1; truncation may have pulled that earlier.
    keep = 0;
    for (WormId id : draining) {
      Worm& worm = worms[id];
      const Path& path = collection_.path(worm.path);
      const SimTime done =
          worm.entry_time(path.length() - 1) + worm.length - 1;
      if (now >= done)
        finish_delivery(id, done);
      else
        draining[keep++] = id;
    }
    draining.resize(keep);

    // Periodic garbage collection of drained claims keeps the registry
    // proportional to the in-flight worm count on long passes.
    if ((now & 0x3ff) == 0) registry_.sweep(now);

    ++now;
  }

  // Publish per-worm outcomes and the makespan.
  for (WormId id = 0; id < count; ++id) {
    const Worm& worm = worms[id];
    OPTO_ASSERT(worm.status == WormStatus::Delivered ||
                worm.status == WormStatus::Killed);
    WormOutcome& outcome = result.worms[id];
    outcome.status = worm.status;
    outcome.truncated = worm.truncated;
    outcome.finish_time = worm.finish_time;
    outcome.blocked_at_link = worm.blocked_at_link;
    result.metrics.makespan =
        std::max(result.metrics.makespan, worm.finish_time);
  }
  return result;
}

}  // namespace opto
