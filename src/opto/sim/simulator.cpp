#include "opto/sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "opto/obs/obs.hpp"
#include "opto/par/parallel_for.hpp"
#include "opto/par/simd.hpp"
#include "opto/par/thread_pool.hpp"
#include "opto/sim/attempt_kernel.hpp"
#include "opto/util/assert.hpp"
#include "opto/util/timer.hpp"

namespace opto {

namespace {

/// Slots examined per step by the incremental registry sweep. Small enough
/// to be noise per step, large enough that the cursor laps the table well
/// before stale entries can accumulate (the table is bounded by the number
/// of distinct (link, wavelength) keys either way — sweeping only affects
/// memory residency, never outcomes).
constexpr std::size_t kSweepBudget = 16;

/// Channel-space ceiling for the dense direct-mapped registry backend
/// (occupancy.hpp): 2^17 channels keep the flat claim/release/epoch arrays
/// at a few MB per simulator, which covers every bench topology while
/// bounding memory for simulator fleets (run_many, per-shard instances).
constexpr std::size_t kDenseRegistryMaxChannels = std::size_t{1} << 17;

/// LSD radix sort over the low `passes` bytes of each key (higher bytes
/// must be zero). For the per-step attempt keys — a few hundred to a few
/// thousand nearly-random integers — the branch-free counting passes beat
/// introsort's mispredicted compares by ~2x.
void radix_sort(std::vector<std::uint64_t>& keys,
                std::vector<std::uint64_t>& scratch, unsigned passes) {
  scratch.resize(keys.size());
  for (unsigned pass = 0; pass < passes; ++pass) {
    const unsigned shift = pass * 8;
    std::uint32_t offsets[256] = {};
    for (const std::uint64_t v : keys) ++offsets[(v >> shift) & 0xff];
    std::uint32_t sum = 0;
    for (std::uint32_t& slot : offsets) {
      const std::uint32_t here = slot;
      slot = sum;
      sum += here;
    }
    for (const std::uint64_t v : keys)
      scratch[offsets[(v >> shift) & 0xff]++] = v;
    keys.swap(scratch);
  }
}

bool profile_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("OPTO_PROFILE");
    return env != nullptr && env[0] != '\0';
  }();
  return enabled;
}

/// OPTO_PASS_SHARDING=0 is the escape hatch that pins PassSharding::Auto
/// to the sequential engine (an explicit SimConfig On/Off wins either
/// way); anything else — including unset — leaves Auto live.
bool sharding_env_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("OPTO_PASS_SHARDING");
    return env == nullptr || !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

/// Auto mode only shards passes with at least this many specs: below it
/// the per-shard setup (injection sorts, registry resets, merge) costs
/// more than the pass. Deliberately independent of the pool width — the
/// mode decision shapes instrumentation counters that the determinism CI
/// byte-compares across OPTO_THREADS.
constexpr std::size_t kAutoShardMinSpecs = 64;

/// Upper bound on shard buckets per pass. Active components are packed
/// into at most this many buckets (LPT by spec count), which bounds both
/// the shard-simulator memory and the all-singleton pathology (thousands
/// of one-worm components) while still feeding every practical pool. A
/// fixed constant, again so results never depend on OPTO_THREADS.
constexpr std::size_t kMaxShards = 16;

/// Pass-granular obs counters (one batch of relaxed adds per pass, not
/// per step — the hot loop stays untouched). Static handles: the name
/// registration happens once per process.
struct SimObsCounters {
  obs::Counter passes{"sim.passes"};
  obs::Counter steps{"sim.steps"};
  obs::Counter worm_steps{"sim.worm_steps"};
  obs::Counter launched{"sim.launched"};
  obs::Counter delivered{"sim.delivered"};
  obs::Counter killed{"sim.killed"};
  obs::Counter truncated{"sim.truncated"};
  obs::Counter contentions{"sim.contentions"};
  obs::Counter retunes{"sim.retunes"};
  obs::Counter fault_kills{"sim.fault_kills"};
  obs::Counter corrupted_arrivals{"sim.corrupted_arrivals"};
  obs::Counter registry_probes{"sim.registry_probes"};
  obs::Counter registry_hits{"sim.registry_hits"};
};

/// Sharded-pass observability: how often the component engine engages
/// and how many active components each sharded pass decomposed into
/// (components / sharded_passes = average decomposition width).
struct ShardObsCounters {
  obs::Counter sharded_passes{"sim.sharded_passes"};
  obs::Counter components{"sim.components"};
};

void record_pass_observation(const PassMetrics& metrics) {
  static SimObsCounters counters;
  counters.passes.add(1);
  counters.steps.add(metrics.steps);
  counters.worm_steps.add(metrics.worm_steps);
  counters.launched.add(metrics.launched);
  counters.delivered.add(metrics.delivered);
  counters.killed.add(metrics.killed);
  counters.truncated.add(metrics.truncated);
  counters.contentions.add(metrics.contentions);
  counters.retunes.add(metrics.retunes);
  counters.fault_kills.add(metrics.fault_kills);
  counters.corrupted_arrivals.add(metrics.corrupted_arrivals);
  counters.registry_probes.add(metrics.registry_probes);
  counters.registry_hits.add(metrics.registry_hits);
}

}  // namespace

const char* to_string(ConversionMode mode) {
  switch (mode) {
    case ConversionMode::None:
      return "none";
    case ConversionMode::Full:
      return "full";
    case ConversionMode::Sparse:
      return "sparse";
  }
  return "?";
}

Simulator::Simulator(const PathCollection& collection, SimConfig config)
    : collection_(collection), config_(std::move(config)) {
  OPTO_ASSERT(config_.bandwidth >= 1);
  if (config_.conversion == ConversionMode::Sparse)
    OPTO_ASSERT_MSG(config_.converters.size() >= collection.graph().node_count(),
                    "Sparse conversion needs a per-node converter flag");
  // Snapshot the collection's derived views once (they are built lazily
  // and stay valid until the collection mutates — which the lifetime
  // contract forbids while simulators exist).
  const FlatPaths& flat = collection.flat_paths();
  flat_offsets_ = {flat.offsets.data(), flat.offsets.size()};
  flat_links_ = {flat.links.data(), flat.links.size()};
  components_ = &collection.components();
  if (config_.conversion != ConversionMode::None) {
    const Graph& graph = collection.graph();
    link_converts_.resize(graph.link_count());
    for (EdgeId link = 0; link < graph.link_count(); ++link)
      link_converts_[link] = converts_at(graph.source(link)) ? 1 : 0;
  }
  // Direct-map the registry when the channel space is small enough to
  // afford the flat arrays. The decision depends only on topology and
  // config — never on SIMD/threading knobs — so instrumentation stays
  // comparable across execution modes.
  const std::size_t channels =
      static_cast<std::size_t>(collection.graph().link_count()) *
      config_.bandwidth;
  if (channels > 0 && channels <= kDenseRegistryMaxChannels)
    registry_.use_dense(collection.graph().link_count(), config_.bandwidth);
  // Pre-bake the per-flat-position halves of the packed attempt key
  // (attempt_kernel.hpp): the bandwidth-adaptive layout packs the
  // wavelength into bit_width(B−1) bits, so narrow-B topologies sort
  // fewer radix bytes. Only built when link ids fit the packed budget —
  // the wide fallback computes its keys inline.
  const unsigned wl_bits =
      std::bit_width(static_cast<std::uint32_t>(config_.bandwidth) - 1u);
  merge_bit_ = std::uint32_t{1} << wl_bits;
  if (collection.graph().link_count() < (EdgeId{1} << 15)) {
    flat_keys_.resize(flat_links_.size());
    for (std::size_t j = 0; j < flat_links_.size(); ++j) {
      const EdgeId link = flat_links_[j];
      const bool merges =
          !link_converts_.empty() && link_converts_[link] != 0;
      flat_keys_[j] =
          (link << (wl_bits + 1)) | (merges ? merge_bit_ : 0u);
    }
  }
  simd_on_ = config_.simd != SimdMode::Off && simd::enabled();
}

bool Simulator::use_sharding(std::span<const LaunchSpec> specs) const {
  if (config_.sharding == PassSharding::Off) return false;
  if (components_->count < 2) return false;
  if (config_.sharding == PassSharding::Auto &&
      (!sharding_env_enabled() || specs.size() < kAutoShardMinSpecs))
    return false;
  return true;
}

bool Simulator::converts_at(NodeId node) const {
  switch (config_.conversion) {
    case ConversionMode::None:
      return false;
    case ConversionMode::Full:
      return true;
    case ConversionMode::Sparse:
      return config_.converters[node] != 0;
  }
  return false;
}

void Simulator::apply_truncation(WormId victim, std::uint32_t cut_link_index,
                                 SimTime now, PassResult& result) {
  Worm& worm = worms_[victim];
  const Path& path = collection_.path(worm.path);
  const SimTime cut_entry = worm.entry_time(cut_link_index);
  OPTO_ASSERT(now > cut_entry);
  // Flits that made it through the cut coupler before `now` survive on
  // this cut's downstream links; the head stream (what can still be
  // delivered) is the minimum across all cuts so far.
  const auto remnant = static_cast<std::uint32_t>(now - cut_entry);
  worm.length = std::min(worm.length, remnant);
  OPTO_ASSERT(worm.length >= 1);
  worm.truncated = true;
  ++result.metrics.truncated;
  const bool convert = config_.conversion != ConversionMode::None;
  const auto victim_wavelength = [&](std::uint32_t i) {
    return convert ? wavelength_history_[victim][i] : worm.wavelength;
  };
  result.trace.record({now, TraceKind::Truncate, victim,
                       path.link(cut_link_index),
                       victim_wavelength(cut_link_index), kInvalidWorm});
  // Shorten the victim's claims from the cut onward: link i now frees at
  // entry_i + remnant. shorten() takes the min with the existing release,
  // so links past an earlier (deeper) cut keep their shorter windows;
  // claims the victim no longer owns are skipped.
  for (std::uint32_t i = cut_link_index; i < worm.head_index; ++i)
    result.metrics.link_busy_steps -=
        static_cast<std::uint64_t>(registry_.shorten(
            path.link(i), victim_wavelength(i), victim,
            worm.entry_time(i) + remnant));
  // If the victim was still draining and the cut pulled its tail's exit
  // from the last link strictly before `now`, its delivery is already in
  // the past: finalize immediately so the drain scan never records a
  // Deliver event behind later-timestamped ones. finish_time keeps the
  // physical drain time; the trace event carries `now` (when the outcome
  // became known) to stay time-monotonic. A tail leaving exactly at `now`
  // is NOT finalized here: that flit is still crossing couplers this
  // step, so a later contention group of the same step may cut it again —
  // this step's drain scan (which runs after every group) finalizes it.
  // Finalized or killed victims can be cut again (their upstream flits
  // keep draining through earlier links) — those keep their existing
  // outcome.
  if (worm.status == WormStatus::Running &&
      worm.head_index == path.length() && !path.empty()) {
    const SimTime done = worm.entry_time(path.length() - 1) + worm.length - 1;
    if (done < now) {
      worm.status = WormStatus::Delivered;
      status_[victim] = WormStatus::Delivered;
      worm.finish_time = done;
      ++result.metrics.truncated_arrivals;  // a cut worm is never intact
      result.trace.record({now, TraceKind::Deliver, victim, kInvalidEdge,
                           worm.wavelength, kInvalidWorm});
    }
  }
}

PassResult Simulator::run(std::span<const LaunchSpec> specs) {
  PassResult result;
  run(specs, result);
  return result;
}

void Simulator::run(std::span<const LaunchSpec> specs, PassResult& result) {
  if (use_sharding(specs))
    run_sharded(specs, result);
  else
    run_pass(specs, result);
}

void Simulator::run_sharded(std::span<const LaunchSpec> specs,
                            PassResult& result) {
  const bool profile = profile_enabled();
  const obs::ScopedTimer obs_timer("sim.pass");
  Timer timer;
  const ComponentDecomposition& dec = *components_;

  // 1. Find the components active in this pass (epoch-stamped: O(specs),
  //    not O(total components)) and their spec counts.
  if (comp_stamp_.size() < dec.count) {
    comp_stamp_.assign(dec.count, 0);
    comp_slot_.resize(dec.count);
    pass_epoch_ = 0;
  }
  if (++pass_epoch_ == 0) {  // stamp wraparound: restamp from scratch
    std::fill(comp_stamp_.begin(), comp_stamp_.end(), 0u);
    pass_epoch_ = 1;
  }
  active_counts_.clear();
  for (const LaunchSpec& spec : specs) {
    OPTO_ASSERT(spec.path < collection_.size());
    const std::uint32_t comp = dec.component_of[spec.path];
    if (comp_stamp_[comp] != pass_epoch_) {
      comp_stamp_[comp] = pass_epoch_;
      comp_slot_[comp] = static_cast<std::uint32_t>(active_counts_.size());
      active_counts_.push_back(0);
    }
    ++active_counts_[comp_slot_[comp]];
  }
  const std::size_t active = active_counts_.size();
  if (active < 2) {  // everything in one component: nothing to shard
    run_pass(specs, result);
    return;
  }

  // 2. Pack active components into ≤ kMaxShards buckets, largest spec
  //    count first onto the least-loaded bucket (deterministic LPT; ties
  //    break to the lower slot/bucket). Disjoint unions of edge-disjoint
  //    components are still edge-disjoint, so buckets stay independent.
  const std::size_t buckets = std::min(kMaxShards, active);
  comp_order_.resize(active);
  std::iota(comp_order_.begin(), comp_order_.end(), 0u);
  std::sort(comp_order_.begin(), comp_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return active_counts_[a] != active_counts_[b]
                         ? active_counts_[a] > active_counts_[b]
                         : a < b;
            });
  bucket_of_slot_.resize(active);
  std::uint64_t bucket_load[kMaxShards] = {};
  for (const std::uint32_t slot : comp_order_) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < buckets; ++b)
      if (bucket_load[b] < bucket_load[best]) best = b;
    bucket_of_slot_[slot] = static_cast<std::uint32_t>(best);
    bucket_load[best] += active_counts_[slot];
  }

  // 3. Scatter the specs (keeping global spec order within each bucket;
  //    a shard's worm ids are indices into its bucket, mapped back to
  //    global spec ids through shard_ids_).
  if (shard_specs_.size() < buckets) {
    shard_specs_.resize(buckets);
    shard_ids_.resize(buckets);
    shard_results_.resize(buckets);
  }
  while (shards_.size() < buckets) {
    SimConfig shard_config = config_;
    shard_config.sharding = PassSharding::Off;
    shard_config.pool = nullptr;
    shard_config.record_trace = false;  // armed per pass below
    shards_.push_back(
        std::make_unique<Simulator>(collection_, std::move(shard_config)));
    shards_.back()->is_shard_ = true;
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    shard_specs_[b].clear();
    shard_ids_[b].clear();
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::size_t b =
        bucket_of_slot_[comp_slot_[dec.component_of[specs[i].path]]];
    shard_specs_[b].push_back(specs[i]);
    shard_ids_[b].push_back(static_cast<WormId>(i));
  }

  // 4. Run every bucket's full pass independently. parallel_for falls
  //    back to inline execution on a single-thread pool or when already
  //    on a worker of this pool (nested inside a parallel trial).
  ThreadPool* pool = config_.pool != nullptr ? config_.pool
                                             : &ThreadPool::global();
  parallel_for(
      0, buckets,
      [this](std::size_t b) {
        Simulator& shard = *shards_[b];
        shard.config_.record_trace = config_.record_trace;
        shard.pinned_ = pinned_;  // re-read per pass: the set is dynamic
        shard.shard_global_ids_ = {shard_ids_[b].data(), shard_ids_[b].size()};
        shard.run_pass({shard_specs_[b].data(), shard_specs_[b].size()},
                       shard_results_[b]);
      },
      pool);

  // 5. Deterministic merge, in bucket order: outcomes scatter back to the
  //    global spec index (witness ids remapped shard-local → global),
  //    metrics sum/max component-wise, and the trace is rebuilt in the
  //    canonical (time, kind, worm, …) order — the same order the
  //    sequential trace canonicalizes to, since the event sets match.
  result.trace.reset(config_.record_trace);
  result.metrics = PassMetrics{};
  result.worms.assign(specs.size(), WormOutcome{});
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::vector<WormId>& ids = shard_ids_[b];
    result.metrics.merge(shard_results_[b].metrics);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      WormOutcome outcome = shard_results_[b].worms[j];
      if (outcome.blocked_by != kInvalidWorm)
        outcome.blocked_by = ids[outcome.blocked_by];
      result.worms[ids[j]] = outcome;
    }
  }
  // Wavelength histories scatter back to global spec order (conversion
  // passes only — shards leave the buffers empty otherwise).
  result.wavelength_offsets.clear();
  result.wavelengths.clear();
  if (config_.conversion != ConversionMode::None) {
    // First pass: per-worm history lengths; second: flatten in global id
    // order so the output is independent of the bucket packing.
    result.wavelength_offsets.assign(specs.size() + 1, 0);
    for (std::size_t b = 0; b < buckets; ++b) {
      const PassResult& shard = shard_results_[b];
      for (std::size_t j = 0; j < shard_ids_[b].size(); ++j)
        result.wavelength_offsets[shard_ids_[b][j] + 1] =
            shard.wavelength_offsets[j + 1] - shard.wavelength_offsets[j];
    }
    for (std::size_t i = 1; i < result.wavelength_offsets.size(); ++i)
      result.wavelength_offsets[i] += result.wavelength_offsets[i - 1];
    result.wavelengths.resize(result.wavelength_offsets.back());
    for (std::size_t b = 0; b < buckets; ++b) {
      const PassResult& shard = shard_results_[b];
      for (std::size_t j = 0; j < shard_ids_[b].size(); ++j) {
        const std::uint32_t begin = shard.wavelength_offsets[j];
        const std::uint32_t end = shard.wavelength_offsets[j + 1];
        std::copy(shard.wavelengths.begin() + begin,
                  shard.wavelengths.begin() + end,
                  result.wavelengths.begin() +
                      result.wavelength_offsets[shard_ids_[b][j]]);
      }
    }
  }
  if (config_.record_trace) {
    trace_merge_.clear();
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::vector<WormId>& ids = shard_ids_[b];
      for (TraceEvent event : shard_results_[b].trace.events()) {
        event.worm = ids[event.worm];
        if (event.other != kInvalidWorm) event.other = ids[event.other];
        trace_merge_.push_back(event);
      }
    }
    std::sort(trace_merge_.begin(), trace_merge_.end(), canonical_less);
    for (const TraceEvent& event : trace_merge_) result.trace.record(event);
  }
  if (profile)
    result.metrics.wall_ns =
        static_cast<std::uint64_t>(timer.elapsed_seconds() * 1e9);
  if (obs::enabled()) {
    record_pass_observation(result.metrics);
    static ShardObsCounters shard_counters;
    shard_counters.sharded_passes.add(1);
    shard_counters.components.add(active);
  }
}

void Simulator::run_pass(std::span<const LaunchSpec> specs,
                         PassResult& result) {
  const bool profile = profile_enabled();
  const obs::ScopedTimer obs_timer(is_shard_ ? "sim.shard_pass" : "sim.pass");
  Timer timer;
  result.trace.reset(config_.record_trace);
  result.metrics = PassMetrics{};
  const auto count = static_cast<WormId>(specs.size());
  result.worms.assign(count, WormOutcome{});
  registry_.clear();
  registry_.reset_stats();
  // Fault injection (sim/faults.hpp). A null or zero-fault plan keeps
  // every branch below dead, so the fault-free engine is untouched.
  const FaultPlan* plan = config_.faults;
  const bool faults_on = plan != nullptr && plan->enabled();
  if (faults_on && plan->has_stuck_wavelengths()) {
    // A stuck wavelength is modelled as a permanent occupant: a sentinel
    // claim (worm = kInvalidWorm, top priority, never released) that the
    // contention resolvers treat as an unbeatable blocker. Serve-first
    // entrants are eliminated; priority entrants cannot truncate it;
    // converting routers see the wavelength as busy and retune around it.
    Claim stuck;
    stuck.worm = kInvalidWorm;
    stuck.priority = std::numeric_limits<std::uint32_t>::max();
    stuck.entry = 0;
    stuck.release = std::numeric_limits<SimTime>::max();
    const EdgeId links = collection_.graph().link_count();
    for (EdgeId link = 0; link < links; ++link)
      for (Wavelength w = 0; w < config_.bandwidth; ++w)
        if (plan->wavelength_stuck(link, w)) registry_.claim(link, w, stuck);
  }
  // Pinned slots (held channels of established connections) are seeded
  // after the stuck-wavelength sentinels, so a pinned slot shadows a
  // stuck fault on the same channel: the engine's holds are the primary
  // occupant, and the attribution of entrant losses follows the claim.
  if (!pinned_.empty()) {
    Claim held;
    held.worm = kPinnedWorm;
    held.priority = std::numeric_limits<std::uint32_t>::max();
    held.entry = 0;
    held.release = std::numeric_limits<SimTime>::max();
    for (const PinnedSlot& slot : pinned_) {
      OPTO_DASSERT(slot.link < collection_.graph().link_count());
      OPTO_DASSERT(slot.wavelength < config_.bandwidth);
      registry_.claim(slot.link, slot.wavelength, held);
    }
  }
  const bool convert = config_.conversion != ConversionMode::None;
  if (convert) {
    if (wavelength_history_.size() < count) wavelength_history_.resize(count);
    for (WormId id = 0; id < count; ++id) wavelength_history_[id].clear();
  }

  // Materialize worm state: the Worm records plus the SoA mirrors the
  // hot loop reads (flat-link cursor, wavelength, status byte).
  worms_.assign(count, Worm{});
  cursor_.resize(count);
  cursor_end_.resize(count);
  wl_.resize(count);
  status_.assign(count, WormStatus::Waiting);
  for (WormId id = 0; id < count; ++id) {
    const LaunchSpec& spec = specs[id];
    OPTO_ASSERT(spec.path < collection_.size());
    OPTO_ASSERT(spec.length >= 1);
    OPTO_ASSERT(spec.wavelength < config_.bandwidth);
    Worm& worm = worms_[id];
    worm.path = spec.path;
    worm.wavelength = spec.wavelength;
    worm.priority = spec.priority;
    worm.start_time = spec.start_time;
    worm.original_length = spec.length;
    worm.length = spec.length;
    cursor_[id] = flat_offsets_[spec.path];
    cursor_end_[id] = flat_offsets_[spec.path + 1];
    wl_[id] = spec.wavelength;
  }

  // Injection order: by start time, ties in worm id (the order a stable
  // sort over the identity permutation would give). Start times fitting in
  // 31 bits — every practical workload — sort as packed (time << 32) | id
  // keys: one flat std::sort over POD integers beats a comparator that
  // chases worms_[] on every compare. Exotic start times fall back to the
  // indirect sort.
  injection_order_.resize(count);
  bool packable = true;
  for (WormId id = 0; id < count; ++id) {
    const SimTime start = worms_[id].start_time;
    if (start < 0 || start >= (SimTime{1} << 31)) {
      packable = false;
      break;
    }
  }
  if (packable) {
    injection_keys_.resize(count);
    for (WormId id = 0; id < count; ++id)
      injection_keys_[id] =
          (static_cast<std::uint64_t>(worms_[id].start_time) << 32) | id;
    std::sort(injection_keys_.begin(), injection_keys_.end());
    for (WormId i = 0; i < count; ++i)
      injection_order_[i] = static_cast<WormId>(injection_keys_[i]);
  } else {
    std::iota(injection_order_.begin(), injection_order_.end(), 0u);
    std::sort(injection_order_.begin(), injection_order_.end(),
              [this](WormId a, WormId b) {
                const SimTime sa = worms_[a].start_time;
                const SimTime sb = worms_[b].start_time;
                return sa != sb ? sa < sb : a < b;
              });
  }

  running_.clear();
  draining_.clear();
  running_.reserve(count);

  std::size_t next_injection = 0;
  SimTime now = count > 0 ? worms_[injection_order_.front()].start_time : 0;

  // Link ids below 2^15 leave room for the bandwidth-adaptive
  // wavelength/merge field (wl_bits + 1 ≤ 17 bits; attempt_kernel.hpp)
  // and a 32-bit worm id in one packed sort key (see step 2 below). Both
  // the id and wavelength fields are packed to their minimum widths so
  // the radix sort touches as few byte-passes as possible.
  const bool packed_attempts = !flat_keys_.empty();
  const unsigned id_bits =
      std::bit_width(std::max<std::uint32_t>(count, 2) - 1);
  const std::uint64_t id_mask = (std::uint64_t{1} << id_bits) - 1;
  const unsigned link_bits = std::bit_width(
      std::max<EdgeId>(collection_.graph().link_count(), 2) - 1);
  const unsigned key_link_shift =
      static_cast<unsigned>(std::countr_zero(merge_bit_)) + 1;
  const unsigned radix_passes =
      (key_link_shift + link_bits + id_bits + 7) / 8;

  const auto finish_kill = [&](WormId id, SimTime t, WormId blocker) {
    Worm& worm = worms_[id];
    worm.status = WormStatus::Killed;
    status_[id] = WormStatus::Killed;
    worm.blocked_at_link = worm.head_index;
    worm.finish_time = t;
    ++result.metrics.killed;
    const Path& path = collection_.path(worm.path);
    result.trace.record({t, TraceKind::Kill, id, path.link(worm.head_index),
                         worm.wavelength, blocker});
    result.worms[id].blocked_by = blocker;
  };

  const auto finish_delivery = [&](WormId id, SimTime t) {
    Worm& worm = worms_[id];
    worm.status = WormStatus::Delivered;
    status_[id] = WormStatus::Delivered;
    worm.finish_time = t;
    if (worm.truncated)
      ++result.metrics.truncated_arrivals;
    else if (worm.corrupted)
      ++result.metrics.corrupted_arrivals;
    else
      ++result.metrics.delivered;
    result.trace.record(
        {t, TraceKind::Deliver, id, kInvalidEdge, worm.wavelength, kInvalidWorm});
  };

  /// Elimination by an injected fault — same mechanics as a serve-first
  /// loss (upstream flits drain, their occupancy stands), but accounted
  /// separately and witness-free: no worm caused it.
  const auto fault_kill = [&](WormId id, EdgeId link, SimTime t) {
    Worm& worm = worms_[id];
    worm.status = WormStatus::Killed;
    status_[id] = WormStatus::Killed;
    worm.fault_killed = true;
    worm.blocked_at_link = worm.head_index;
    worm.finish_time = t;
    ++result.metrics.fault_kills;
    result.trace.record(
        {t, TraceKind::FaultKill, id, link, worm.wavelength, kInvalidWorm});
  };

  /// Elimination by a pinned slot: same drain mechanics as a serve-first
  /// loss, witness-free like a fault kill, but accounted on its own — the
  /// channel is busy, not broken, so the protocol should retry without
  /// backing off.
  const auto pinned_kill = [&](WormId id, EdgeId link, SimTime t) {
    Worm& worm = worms_[id];
    worm.status = WormStatus::Killed;
    status_[id] = WormStatus::Killed;
    worm.pinned_killed = true;
    worm.blocked_at_link = worm.head_index;
    worm.finish_time = t;
    ++result.metrics.pinned_blocks;
    result.trace.record(
        {t, TraceKind::Kill, id, link, worm.wavelength, kInvalidWorm});
  };

  /// Admits `id` onto `link` at wavelength `wl` (its head enters now).
  const auto admit = [&](WormId id, EdgeId link, Wavelength wl, bool retuned) {
    Worm& worm = worms_[id];
    if (convert) {
      wavelength_history_[id].push_back(wl);
      worm.wavelength = wl;
      wl_[id] = wl;
    }
    Claim claim;
    claim.worm = id;
    claim.priority = worm.priority;
    claim.link_index = worm.head_index;
    claim.entry = now;
    claim.release = now + worm.length;
    registry_.claim(link, wl, claim);
    result.trace.record({now, retuned ? TraceKind::Retune : TraceKind::Admit,
                         id, link, wl, kInvalidWorm});
    if (retuned) ++result.metrics.retunes;
    // Flit corruption: the worm keeps travelling (and occupying links) but
    // its payload is void — the destination will reject the delivery.
    // corrupts_flit hashes the worm id, so a shard must query with the
    // pass-global id or its corruption draws would diverge.
    if (faults_on && !worm.corrupted &&
        plan->corrupts_flit(global_worm_id(id), link)) {
      worm.corrupted = true;
      ++result.metrics.corrupted;
      result.trace.record({now, TraceKind::Corrupt, id, link, wl, kInvalidWorm});
    }
    ++worm.head_index;
    ++cursor_[id];
    ++result.metrics.worm_steps;
    result.metrics.link_busy_steps += worm.length;
  };

  /// Conversion-free contention for one (link, wavelength) group.
  const auto resolve_fixed = [&](EdgeId link, Wavelength wl,
                                 std::span<const WormId> group) {
    const Claim* found = registry_.find(link, wl, now);

    // A stuck wavelength's sentinel claim blocks every entrant: a fault
    // loss, not a contention event (there is no worm to blame). A pinned
    // slot blocks the same way but is accounted as a busy held channel.
    if (found != nullptr && found->worm == kInvalidWorm) {
      for (const WormId entrant : group) fault_kill(entrant, link, now);
      return;
    }
    if (found != nullptr && found->worm == kPinnedWorm) {
      for (const WormId entrant : group) pinned_kill(entrant, link, now);
      return;
    }

    // Uncontended fast path: one entrant, free link — the dominant case on
    // sparse workloads. Skips the contender build and the resolver (which
    // would return exactly this admission) without touching any metric.
    if (found == nullptr && group.size() == 1) {
      admit(group.front(), link, wl, /*retuned=*/false);
      return;
    }

    contenders_.clear();
    for (const WormId entrant : group)
      contenders_.push_back({entrant, worms_[entrant].priority});

    std::optional<Contender> occupant_contender;
    // Copy what outlives registry mutation (claim() in admit can rehash).
    WormId occupant_worm = kInvalidWorm;
    std::uint32_t occupant_link_index = 0;
    if (found != nullptr) {
      occupant_contender = Contender{found->worm, found->priority};
      occupant_worm = found->worm;
      occupant_link_index = found->link_index;
    }

    if (found != nullptr || contenders_.size() > 1)
      ++result.metrics.contentions;

    const ContentionOutcome outcome = resolve_contention(
        config_.rule, config_.tie, occupant_contender, contenders_);

    if (outcome.occupant_truncated)
      apply_truncation(occupant_worm, occupant_link_index, now, result);

    for (WormId loser : outcome.eliminated) {
      // Witness (Lemma 2.2): the worm that prevented this one — the
      // occupant, else the admitted worm, else a dead-heat peer.
      WormId blocker = kInvalidWorm;
      if (occupant_worm != kInvalidWorm)
        blocker = occupant_worm;
      else if (outcome.admitted != kInvalidWorm)
        blocker = outcome.admitted;
      else
        blocker = loser == contenders_.front().worm
                      ? contenders_.back().worm
                      : contenders_.front().worm;
      finish_kill(loser, now, blocker);
    }

    if (outcome.admitted != kInvalidWorm)
      admit(outcome.admitted, link, wl, /*retuned=*/false);
  };

  /// Contention for one link at a converting router: entrants may retune
  /// to any free wavelength. Serve-first scans entrants in input-port
  /// (worm id) order; priority scans in descending rank and may steal the
  /// weakest occupant's wavelength when none is free.
  const auto resolve_converting = [&](EdgeId link,
                                      std::span<const WormId> group) {
    const std::uint16_t bandwidth = config_.bandwidth;
    // Live occupants and same-step admissions per wavelength.
    conv_occupant_.assign(bandwidth, std::nullopt);
    conv_admitted_.assign(bandwidth, kInvalidWorm);
    for (Wavelength w = 0; w < bandwidth; ++w)
      conv_occupant_[w] = registry_.occupant(link, w, now);

    conv_order_.assign(group.begin(), group.end());
    if (config_.rule == ContentionRule::Priority) {
      std::sort(conv_order_.begin(), conv_order_.end(),
                [this](WormId a, WormId b) {
                  return worms_[a].priority > worms_[b].priority;
                });
    } else {
      std::sort(conv_order_.begin(), conv_order_.end());
    }

    const auto is_free = [&](Wavelength w) {
      return !conv_occupant_[w].has_value() &&
             conv_admitted_[w] == kInvalidWorm;
    };
    const auto lowest_free = [&]() -> std::int32_t {
      for (Wavelength w = 0; w < bandwidth; ++w)
        if (is_free(w)) return w;
      return -1;
    };

    for (const WormId id : conv_order_) {
      Worm& worm = worms_[id];
      const Wavelength preferred = worm.wavelength;
      if (is_free(preferred)) {
        admit(id, link, preferred, /*retuned=*/false);
        conv_admitted_[preferred] = id;
        continue;
      }
      // Per-event accounting, matching resolve_fixed: every entrant that
      // finds its preferred wavelength taken is one contention event.
      ++result.metrics.contentions;
      if (const std::int32_t w = lowest_free(); w >= 0) {
        admit(id, link, static_cast<Wavelength>(w), /*retuned=*/true);
        conv_admitted_[static_cast<Wavelength>(w)] = id;
        continue;
      }
      if (config_.rule == ContentionRule::Priority) {
        // No free wavelength: challenge the weakest pre-existing occupant
        // (same-step admissions are head-to-head and cannot be cut).
        std::int32_t weakest = -1;
        for (Wavelength w = 0; w < bandwidth; ++w) {
          if (!conv_occupant_[w].has_value()) continue;
          if (weakest < 0 ||
              conv_occupant_[w]->priority <
                  conv_occupant_[static_cast<Wavelength>(weakest)]->priority)
            weakest = w;
        }
        if (weakest >= 0) {
          const auto wl = static_cast<Wavelength>(weakest);
          if (conv_occupant_[wl]->priority < worm.priority) {
            apply_truncation(conv_occupant_[wl]->worm,
                             conv_occupant_[wl]->link_index, now, result);
            admit(id, link, wl, /*retuned=*/wl != preferred);
            conv_admitted_[wl] = id;
            conv_occupant_[wl].reset();
            continue;
          }
        }
      }
      // Eliminated: witness is whoever holds the preferred wavelength. A
      // stuck wavelength's sentinel (worm = kInvalidWorm) has no worm to
      // blame — that elimination is a fault loss; a pinned slot's
      // sentinel (kPinnedWorm) is a busy held channel.
      const WormId blocker = conv_occupant_[preferred].has_value()
                                 ? conv_occupant_[preferred]->worm
                                 : conv_admitted_[preferred];
      if (blocker == kInvalidWorm)
        fault_kill(id, link, now);
      else if (blocker == kPinnedWorm)
        pinned_kill(id, link, now);
      else
        finish_kill(id, now, blocker);
    }
  };

  while (next_injection < count || !running_.empty() || !draining_.empty()) {
    // Fast-forward across idle gaps (large startup-delay ranges leave long
    // stretches with nothing in flight).
    if (running_.empty() && draining_.empty()) {
      OPTO_ASSERT(next_injection < count);
      now = std::max(now, worms_[injection_order_[next_injection]].start_time);
    }
    ++result.metrics.steps;

    // 1. Inject worms whose startup delay expired.
    while (next_injection < count &&
           worms_[injection_order_[next_injection]].start_time <= now) {
      const WormId id = injection_order_[next_injection++];
      Worm& worm = worms_[id];
      OPTO_ASSERT(worm.status == WormStatus::Waiting);
      worm.status = WormStatus::Running;
      status_[id] = WormStatus::Running;
      ++result.metrics.launched;
      const Path& path = collection_.path(worm.path);
      result.trace.record({now, TraceKind::Inject, id,
                           path.empty() ? kInvalidEdge : path.link(0),
                           worm.wavelength, kInvalidWorm});
      if (path.empty()) {
        // Zero-length path: source == destination, no link contention.
        finish_delivery(id, now);
      } else {
        running_.push_back(id);
      }
    }
    result.metrics.peak_inflight =
        std::max<std::uint64_t>(result.metrics.peak_inflight,
                                running_.size() + draining_.size());

    // 2. Collect this step's link-entry attempts. Every running worm's
    //    head enters a link every step (worms never stall). Grouping key:
    //    (link, wavelength) normally; link only at converting routers
    //    (entrants on different wavelengths interact there). When link ids
    //    fit 15 bits (every practical topology), the group key and worm id
    //    pack into one 64-bit integer, so the per-step sort — the hottest
    //    loop in the engine — runs over flat PODs instead of chasing a
    //    two-field comparator; wider graphs take the fallback below.
    // 3. Resolve contention groups in ascending (key, worm) order.
    // A worm whose next link is dark — or whose feeding coupler is down —
    // is eliminated before it can contend, exactly like a serve-first
    // loss: its upstream flits drain and their occupancy stands.
    const auto fault_blocks_entry = [&](EdgeId link) {
      return plan->link_down(link, now) ||
             plan->coupler_down(collection_.graph().source(link), now);
    };
    if (packed_attempts) {
      if (!faults_on) {
        // Fault-free steps build every attempt word in SIMD lanes
        // (attempt_kernel.hpp): one gather of the pre-baked link/merge
        // half plus a masked OR of the wavelength per worm.
        for ([[maybe_unused]] const WormId id : running_) {
          OPTO_DASSERT(status_[id] == WormStatus::Running);
          OPTO_DASSERT(worms_[id].entry_time(worms_[id].head_index) == now);
        }
        attempt_keys_.resize(running_.size());
        attempt::build_keys(running_, cursor_.data(), flat_keys_.data(),
                            wl_.data(), merge_bit_, id_bits, simd_on_,
                            attempt_keys_.data());
      } else {
        attempt_keys_.clear();
        for (WormId id : running_) {
          OPTO_DASSERT(status_[id] == WormStatus::Running);
          OPTO_DASSERT(worms_[id].entry_time(worms_[id].head_index) == now);
          // Fault elimination interleaves with key build, so faulty
          // passes keep the scalar loop (same key formula as the kernel).
          const EdgeId link = flat_links_[cursor_[id]];
          if (fault_blocks_entry(link)) {
            fault_kill(id, link, now);
            continue;
          }
          const std::uint32_t fk = flat_keys_[cursor_[id]];
          const std::uint32_t key =
              fk | ((fk & merge_bit_) != 0 ? 0u : wl_[id]);
          attempt_keys_.push_back((static_cast<std::uint64_t>(key) << id_bits) |
                                  id);
        }
      }
      // Small steps sort faster with introsort; large ones with the
      // byte-wise radix passes (the crossover is broad — anywhere in the
      // low hundreds behaves the same).
      if (attempt_keys_.size() < 128)
        std::sort(attempt_keys_.begin(), attempt_keys_.end());
      else
        radix_sort(attempt_keys_, attempt_keys_scratch_, radix_passes);
      // Pre-screen the sorted words: a singleton fixed-wavelength group
      // whose channel is free in the dense registry admits immediately —
      // no group build, no find(). Runs in every lane mode (the kernel
      // dispatch handles the level), so metrics and traces are identical
      // by construction; see prescan_free_singletons for the legality
      // argument. Faulty passes skip it (stuck sentinels and down links
      // need the resolvers), as do sparse-registry topologies.
      // Below a few dozen attempts the extra pass over the keys costs
      // about what the skipped find() calls save; the gate is a pure
      // throughput heuristic — the mask path and the group path produce
      // identical outcomes, metrics, and traces, so step size can never
      // change results.
      const bool prescan =
          !faults_on && registry_.dense() && attempt_keys_.size() >= 32;
      if (prescan) {
        admit_mask_.resize(attempt_keys_.size());
        attempt::prescan_free_singletons(
            attempt_keys_, id_bits, merge_bit_, config_.bandwidth,
            registry_.dense_epochs(), registry_.epoch(),
            registry_.dense_releases(), now, simd_on_, admit_mask_.data());
      }
      for (std::size_t lo = 0; lo < attempt_keys_.size();) {
        const std::uint64_t key = attempt_keys_[lo] >> id_bits;
        if (prescan && admit_mask_[lo] != 0) {
          // The skipped find() was one dense probe that would have
          // missed; keep the registry stats identical to the slow path.
          registry_.count_external_probe(false);
          admit(static_cast<WormId>(attempt_keys_[lo] & id_mask),
                static_cast<EdgeId>(key >> key_link_shift),
                static_cast<Wavelength>(key & (merge_bit_ - 1)),
                /*retuned=*/false);
          ++lo;
          continue;
        }
        group_worms_.clear();
        std::size_t hi = lo;
        while (hi < attempt_keys_.size() &&
               (attempt_keys_[hi] >> id_bits) == key)
          group_worms_.push_back(
              static_cast<WormId>(attempt_keys_[hi++] & id_mask));
        const auto link = static_cast<EdgeId>(key >> key_link_shift);
        const std::span<const WormId> group{group_worms_};
        if ((key & merge_bit_) != 0)
          resolve_converting(link, group);
        else
          resolve_fixed(link, static_cast<Wavelength>(key & (merge_bit_ - 1)),
                        group);
        lo = hi;
      }
    } else {
      attempts_.clear();
      for (WormId id : running_) {
        OPTO_DASSERT(status_[id] == WormStatus::Running);
        OPTO_DASSERT(worms_[id].entry_time(worms_[id].head_index) == now);
        const EdgeId link = flat_links_[cursor_[id]];
        if (faults_on && fault_blocks_entry(link)) {
          fault_kill(id, link, now);
          continue;
        }
        const bool merge_wavelengths = convert && link_converts_[link] != 0;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(link) << 17) |
            (merge_wavelengths ? 0x10000u : wl_[id]);
        attempts_.push_back({key, id});
      }
      std::sort(attempts_.begin(), attempts_.end(),
                [](const Attempt& a, const Attempt& b) {
                  return a.key != b.key ? a.key < b.key : a.worm < b.worm;
                });
      for (std::size_t lo = 0; lo < attempts_.size();) {
        std::size_t hi = lo;
        group_worms_.clear();
        while (hi < attempts_.size() && attempts_[hi].key == attempts_[lo].key)
          group_worms_.push_back(attempts_[hi++].worm);
        const auto link = static_cast<EdgeId>(attempts_[lo].key >> 17);
        const std::span<const WormId> group{group_worms_};
        if ((attempts_[lo].key & 0x10000u) != 0)
          resolve_converting(link, group);
        else
          resolve_fixed(link,
                        static_cast<Wavelength>(attempts_[lo].key & 0xffffu),
                        group);
        lo = hi;
      }
    }

    // 4. Re-partition the running set: drop kills (and drains finalized
    //    early by a truncation), move finished heads to the draining set.
    std::size_t keep = 0;
    for (WormId id : running_) {
      if (status_[id] != WormStatus::Running) continue;
      OPTO_DASSERT(worms_[id].status == WormStatus::Running);
      if (cursor_[id] == cursor_end_[id])  // head entered its last link
        draining_.push_back(id);
      else
        running_[keep++] = id;
    }
    running_.resize(keep);

    // 5. Finalize drained deliveries. The tail leaves the last link at
    //    entry_last + length − 1; a truncation that pulls that below `now`
    //    finalizes inside apply_truncation, so `done` is never stale here.
    keep = 0;
    for (WormId id : draining_) {
      if (status_[id] != WormStatus::Running) continue;  // finalized early
      Worm& worm = worms_[id];
      const Path& path = collection_.path(worm.path);
      const SimTime done =
          worm.entry_time(path.length() - 1) + worm.length - 1;
      if (now >= done)
        finish_delivery(id, done);
      else
        draining_[keep++] = id;
    }
    draining_.resize(keep);

    // Incremental garbage collection of drained claims keeps the registry
    // proportional to the in-flight worm count on long passes without the
    // old stop-the-world scan every 1024 steps.
    registry_.sweep_step(now, kSweepBudget);

    ++now;
  }

  // Publish per-worm outcomes and the makespan.
  for (WormId id = 0; id < count; ++id) {
    const Worm& worm = worms_[id];
    OPTO_ASSERT(worm.status == WormStatus::Delivered ||
                worm.status == WormStatus::Killed);
    WormOutcome& outcome = result.worms[id];
    outcome.status = worm.status;
    outcome.truncated = worm.truncated;
    outcome.corrupted = worm.corrupted;
    // Attribution mirrors finish_delivery's precedence: a truncated-and-
    // corrupted arrival already failed to contention before the fault
    // could matter.
    outcome.fault_loss =
        worm.fault_killed || (worm.status == WormStatus::Delivered &&
                              worm.corrupted && !worm.truncated);
    outcome.pinned_loss = worm.pinned_killed;
    outcome.finish_time = worm.finish_time;
    outcome.blocked_at_link = worm.blocked_at_link;
    result.metrics.makespan =
        std::max(result.metrics.makespan, worm.finish_time);
  }
  // Flatten per-worm wavelength histories for the caller (the streaming
  // engine pins delivered worms' channels from these). Conversion-free
  // passes skip it: the launch wavelength holds on every link.
  result.wavelength_offsets.clear();
  result.wavelengths.clear();
  if (convert) {
    result.wavelength_offsets.reserve(count + 1);
    result.wavelength_offsets.push_back(0);
    for (WormId id = 0; id < count; ++id) {
      result.wavelengths.insert(result.wavelengths.end(),
                                wavelength_history_[id].begin(),
                                wavelength_history_[id].end());
      result.wavelength_offsets.push_back(
          static_cast<std::uint32_t>(result.wavelengths.size()));
    }
  }
  result.metrics.registry_probes = registry_.stats().probes;
  result.metrics.registry_hits = registry_.stats().hits;
  if (profile)
    result.metrics.wall_ns =
        static_cast<std::uint64_t>(timer.elapsed_seconds() * 1e9);
  // A shard's counters reach obs once, through the parent's merged
  // metrics — recording here too would double-count every pass-level
  // statistic.
  if (obs::enabled() && !is_shard_) record_pass_observation(result.metrics);
}

}  // namespace opto
