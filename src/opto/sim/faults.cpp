#include "opto/sim/faults.hpp"

#include "opto/rng/splitmix64.hpp"
#include "opto/util/assert.hpp"

namespace opto {

FaultPlan::FaultPlan(const FaultConfig& config, std::uint64_t base_seed)
    : config_(config), base_seed_(base_seed) {
  const auto check_rate = [](double rate) {
    OPTO_ASSERT_MSG(rate >= 0.0 && rate <= 1.0,
                    "fault rates are probabilities in [0, 1]");
  };
  check_rate(config_.link_outage_rate);
  check_rate(config_.coupler_outage_rate);
  check_rate(config_.stuck_wavelength_rate);
  check_rate(config_.corruption_rate);
  check_rate(config_.ack_drop_rate);
  OPTO_ASSERT_MSG(config_.outage_period >= 1, "outage period must be >= 1");
  OPTO_ASSERT_MSG(config_.outage_duration >= 0 &&
                      config_.outage_duration <= config_.outage_period,
                  "outage duration must fit inside the period");
  enabled_ = config_.any_fault();
  set_epoch(0);
}

void FaultPlan::set_epoch(std::uint64_t epoch) {
  epoch_ = epoch;
  // Two mixing rounds so nearby (seed, epoch) pairs land in unrelated
  // parts of the key space (same construction as Rng::stream).
  epoch_key_ = splitmix64_once(
      base_seed_ ^ splitmix64_once(epoch + 0x6a09e667f3bcc909ull));
}

std::uint64_t FaultPlan::mix(std::uint64_t domain, std::uint64_t a,
                             std::uint64_t b) const {
  SplitMix64 gen(epoch_key_ ^ (domain * 0x9e3779b97f4a7c15ull));
  const std::uint64_t h = gen.next() ^ (a * 0xbf58476d1ce4e5b9ull);
  return splitmix64_once(h ^ (b * 0x94d049bb133111ebull));
}

double FaultPlan::uniform(std::uint64_t domain, std::uint64_t a,
                          std::uint64_t b) const {
  // 53 high bits -> [0, 1); bit-stable across platforms (IEEE double).
  return static_cast<double>(mix(domain, a, b) >> 11) * 0x1.0p-53;
}

bool FaultPlan::outage_down(std::uint64_t faulty_domain,
                            std::uint64_t phase_domain, std::uint64_t entity,
                            double rate, SimTime now) const {
  if (rate <= 0.0 || config_.outage_duration <= 0) return false;
  if (uniform(faulty_domain, entity) >= rate) return false;
  OPTO_DASSERT(now >= 0);
  const auto period = static_cast<std::uint64_t>(config_.outage_period);
  const std::uint64_t phase = mix(phase_domain, entity, 0) % period;
  const std::uint64_t position =
      (static_cast<std::uint64_t>(now) + phase) % period;
  return position < static_cast<std::uint64_t>(config_.outage_duration);
}

bool FaultPlan::link_down(EdgeId link, SimTime now) const {
  return outage_down(kLinkFaulty, kLinkPhase, link, config_.link_outage_rate,
                     now);
}

bool FaultPlan::coupler_down(NodeId node, SimTime now) const {
  return outage_down(kCouplerFaulty, kCouplerPhase, node,
                     config_.coupler_outage_rate, now);
}

bool FaultPlan::wavelength_stuck(EdgeId link, Wavelength wavelength) const {
  if (config_.stuck_wavelength_rate <= 0.0) return false;
  return uniform(kStuck, link, wavelength) < config_.stuck_wavelength_rate;
}

bool FaultPlan::corrupts_flit(WormId worm, EdgeId link) const {
  if (config_.corruption_rate <= 0.0) return false;
  return uniform(kCorrupt, worm, link) < config_.corruption_rate;
}

bool FaultPlan::drops_ack(PathId path) const {
  if (config_.ack_drop_rate <= 0.0) return false;
  return uniform(kAckDrop, path) < config_.ack_drop_rate;
}

}  // namespace opto
