#include "opto/sim/reference.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

struct RefWorm {
  PathId path = kInvalidPath;
  Wavelength wavelength = 0;  ///< current (retunes update it)
  std::uint32_t priority = 0;
  SimTime start = 0;
  std::uint32_t length = 0;    ///< original flit count
  std::uint32_t entered = 0;   ///< links the head was admitted onto
  std::vector<Wavelength> history;  ///< wavelength per entered link
  bool injected = false;
  bool killed = false;
  std::uint32_t kill_index = 0;
  SimTime kill_time = -1;
  WormId blocker = kInvalidWorm;
  bool pinned = false;  ///< eliminated by a held (pinned) channel
  bool truncated = false;
  /// Priority cuts: (link index, time); flits crossing that coupler at or
  /// after the time are discarded.
  std::vector<std::pair<std::uint32_t, SimTime>> cuts;
  bool finished = false;
  SimTime finish = -1;
};

/// Flits that make it through the coupler at path position `pos`.
std::uint32_t stream_length(const RefWorm& worm, std::uint32_t pos) {
  SimTime limit = worm.length;
  for (const auto& [cut_pos, cut_time] : worm.cuts)
    if (cut_pos <= pos)
      limit = std::min<SimTime>(limit, cut_time - worm.start - cut_pos);
  return static_cast<std::uint32_t>(std::max<SimTime>(0, limit));
}

}  // namespace

PassResult reference_run(const PathCollection& collection,
                         const SimConfig& config,
                         std::span<const LaunchSpec> specs,
                         std::span<const PinnedSlot> pinned) {
  PassResult result;
  result.trace = Trace(false);
  const auto count = static_cast<WormId>(specs.size());
  result.worms.resize(count);

  // Held channels as a dense (link, wavelength) bitmap — the reference
  // counterpart of the fast engine's permanent sentinel claims.
  std::vector<char> pinned_map;
  if (!pinned.empty()) {
    pinned_map.assign(
        static_cast<std::size_t>(collection.graph().link_count()) *
            config.bandwidth,
        0);
    for (const PinnedSlot& slot : pinned) {
      OPTO_ASSERT(slot.link < collection.graph().link_count());
      OPTO_ASSERT(slot.wavelength < config.bandwidth);
      pinned_map[static_cast<std::size_t>(slot.link) * config.bandwidth +
                 slot.wavelength] = 1;
    }
  }
  const auto pinned_at = [&](EdgeId link, Wavelength wavelength) {
    return !pinned_map.empty() &&
           pinned_map[static_cast<std::size_t>(link) * config.bandwidth +
                      wavelength] != 0;
  };

  const auto converts_at = [&config](NodeId node) {
    switch (config.conversion) {
      case ConversionMode::None:
        return false;
      case ConversionMode::Full:
        return true;
      case ConversionMode::Sparse:
        return config.converters[node] != 0;
    }
    return false;
  };

  std::vector<RefWorm> worms(count);
  for (WormId id = 0; id < count; ++id) {
    const LaunchSpec& spec = specs[id];
    OPTO_ASSERT(spec.path < collection.size());
    OPTO_ASSERT(spec.length >= 1);
    OPTO_ASSERT(spec.wavelength < config.bandwidth);
    RefWorm& worm = worms[id];
    worm.path = spec.path;
    worm.wavelength = spec.wavelength;
    worm.priority = spec.priority;
    worm.start = spec.start_time;
    worm.length = spec.length;
  }

  /// Does worm `w` occupy (link, wavelength) at time t? If so, at which
  /// path position?
  const auto occupies = [&](WormId id, EdgeId link, Wavelength wavelength,
                            SimTime t) -> std::optional<std::uint32_t> {
    const RefWorm& worm = worms[id];
    if (!worm.injected) return std::nullopt;
    const Path& path = collection.path(worm.path);
    for (std::uint32_t i = 0; i < worm.entered; ++i) {
      if (path.link(i) != link) continue;
      if (worm.history[i] != wavelength) return std::nullopt;
      const SimTime flit = t - worm.start - static_cast<SimTime>(i);
      if (flit >= 0 && flit < static_cast<SimTime>(stream_length(worm, i)))
        return i;
      return std::nullopt;  // simple paths: one visit per link
    }
    return std::nullopt;
  };

  // Time loop.
  std::vector<WormId> order(count);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&worms](WormId a, WormId b) {
    return worms[a].start < worms[b].start;
  });
  std::size_t next_injection = 0;
  SimTime now = count > 0 ? worms[order.front()].start : 0;

  struct Attempt {
    std::uint64_t key;
    WormId worm;
  };
  std::vector<Attempt> attempts;
  std::vector<Contender> contenders;

  const auto pending_work = [&] {
    if (next_injection < count) return true;
    for (const RefWorm& worm : worms) {
      if (worm.killed || worm.finished) continue;
      return true;
    }
    return false;
  };

  const auto kill = [&](WormId id, WormId blocker) {
    RefWorm& worm = worms[id];
    worm.killed = true;
    worm.kill_index = worm.entered;
    worm.kill_time = now;
    worm.blocker = blocker;
    ++result.metrics.killed;
  };

  const auto pinned_kill = [&](WormId id) {
    RefWorm& worm = worms[id];
    worm.killed = true;
    worm.pinned = true;
    worm.kill_index = worm.entered;
    worm.kill_time = now;
    worm.blocker = kInvalidWorm;
    ++result.metrics.pinned_blocks;
  };

  const auto cut = [&](WormId victim, std::uint32_t pos) {
    RefWorm& worm = worms[victim];
    worm.cuts.emplace_back(pos, now);
    worm.truncated = true;
    ++result.metrics.truncated;
  };

  const auto admit = [&](WormId id, Wavelength wavelength, bool retuned) {
    RefWorm& worm = worms[id];
    worm.history.push_back(wavelength);
    worm.wavelength = wavelength;
    ++worm.entered;
    ++result.metrics.worm_steps;
    if (retuned) ++result.metrics.retunes;
  };

  /// Occupant of (link, wavelength) among non-entrants, with its position.
  const auto find_occupant =
      [&](EdgeId link, Wavelength wavelength,
          std::span<const Attempt> group)
      -> std::optional<std::pair<WormId, std::uint32_t>> {
    std::optional<std::pair<WormId, std::uint32_t>> found;
    for (WormId id = 0; id < count; ++id) {
      bool is_entrant = false;
      for (const Attempt& attempt : group)
        is_entrant |= attempt.worm == id;
      if (is_entrant) continue;
      if (const auto pos = occupies(id, link, wavelength, now)) {
        OPTO_ASSERT_MSG(!found.has_value(),
                        "two occupants on one (link, wavelength)");
        found = {id, *pos};
      }
    }
    return found;
  };

  const auto resolve_fixed = [&](EdgeId link, Wavelength wavelength,
                                 std::span<const Attempt> group) {
    // A pinned channel eliminates every entrant before any contention
    // bookkeeping — mirrors the fast engine's sentinel-claim short-circuit.
    if (pinned_at(link, wavelength)) {
      for (const Attempt& attempt : group) pinned_kill(attempt.worm);
      return;
    }
    contenders.clear();
    for (const Attempt& attempt : group)
      contenders.push_back(
          {attempt.worm, worms[attempt.worm].priority});
    const auto occupant = find_occupant(link, wavelength, group);
    std::optional<Contender> occupant_contender;
    if (occupant.has_value())
      occupant_contender =
          Contender{occupant->first, worms[occupant->first].priority};
    if (occupant.has_value() || contenders.size() > 1)
      ++result.metrics.contentions;

    const ContentionOutcome outcome =
        resolve_contention(config.rule, config.tie, occupant_contender,
                           contenders);
    if (outcome.occupant_truncated) cut(occupant->first, occupant->second);
    for (const WormId loser : outcome.eliminated) {
      WormId blocker = kInvalidWorm;
      if (occupant.has_value())
        blocker = occupant->first;
      else if (outcome.admitted != kInvalidWorm)
        blocker = outcome.admitted;
      else
        blocker = loser == contenders.front().worm
                      ? contenders.back().worm
                      : contenders.front().worm;
      kill(loser, blocker);
    }
    if (outcome.admitted != kInvalidWorm)
      admit(outcome.admitted, wavelength, /*retuned=*/false);
  };

  /// Mirrors Simulator's converting-coupler policy against the reference
  /// occupancy bookkeeping.
  const auto resolve_converting = [&](EdgeId link,
                                      std::span<const Attempt> group) {
    const std::uint16_t bandwidth = config.bandwidth;
    std::vector<std::optional<std::pair<WormId, std::uint32_t>>> occupant(
        bandwidth);
    std::vector<WormId> admitted(bandwidth, kInvalidWorm);
    for (Wavelength w = 0; w < bandwidth; ++w)
      occupant[w] = find_occupant(link, w, group);

    std::vector<WormId> order_ids;
    for (const Attempt& attempt : group) order_ids.push_back(attempt.worm);
    if (config.rule == ContentionRule::Priority) {
      std::sort(order_ids.begin(), order_ids.end(),
                [&worms](WormId a, WormId b) {
                  return worms[a].priority > worms[b].priority;
                });
    } else {
      std::sort(order_ids.begin(), order_ids.end());
    }

    const auto is_free = [&](Wavelength w) {
      return !occupant[w].has_value() && admitted[w] == kInvalidWorm &&
             !pinned_at(link, w);
    };
    const auto lowest_free = [&]() -> std::int32_t {
      for (Wavelength w = 0; w < bandwidth; ++w)
        if (is_free(w)) return w;
      return -1;
    };

    for (const WormId id : order_ids) {
      RefWorm& worm = worms[id];
      const Wavelength preferred = worm.wavelength;
      if (is_free(preferred)) {
        admit(id, preferred, /*retuned=*/false);
        admitted[preferred] = id;
        continue;
      }
      // Per-event accounting, matching resolve_fixed: every entrant that
      // finds its preferred wavelength taken is one contention event.
      ++result.metrics.contentions;
      if (const std::int32_t w = lowest_free(); w >= 0) {
        admit(id, static_cast<Wavelength>(w), /*retuned=*/true);
        admitted[static_cast<Wavelength>(w)] = id;
        continue;
      }
      if (config.rule == ContentionRule::Priority) {
        std::int32_t weakest = -1;
        for (Wavelength w = 0; w < bandwidth; ++w) {
          if (!occupant[w].has_value()) continue;
          if (weakest < 0 ||
              worms[occupant[w]->first].priority <
                  worms[occupant[static_cast<Wavelength>(weakest)]->first]
                      .priority)
            weakest = w;
        }
        if (weakest >= 0) {
          const auto wl = static_cast<Wavelength>(weakest);
          if (worms[occupant[wl]->first].priority < worm.priority) {
            cut(occupant[wl]->first, occupant[wl]->second);
            admit(id, wl, /*retuned=*/wl != preferred);
            admitted[wl] = id;
            occupant[wl].reset();
            continue;
          }
        }
      }
      if (!occupant[preferred].has_value() &&
          admitted[preferred] == kInvalidWorm && pinned_at(link, preferred)) {
        pinned_kill(id);
        continue;
      }
      const WormId blocker = occupant[preferred].has_value()
                                 ? occupant[preferred]->first
                                 : admitted[preferred];
      kill(id, blocker);
    }
  };

  while (pending_work()) {
    // Fast-forward idle gaps.
    bool anything_moving = false;
    for (const RefWorm& worm : worms)
      anything_moving |= worm.injected && !worm.killed && !worm.finished;
    if (!anything_moving && next_injection < count)
      now = std::max(now, worms[order[next_injection]].start);

    // Injections.
    while (next_injection < count &&
           worms[order[next_injection]].start <= now) {
      const WormId id = order[next_injection++];
      RefWorm& worm = worms[id];
      worm.injected = true;
      ++result.metrics.launched;
      if (collection.path(worm.path).empty()) {
        worm.finished = true;
        worm.finish = now;
        ++result.metrics.delivered;
      }
    }

    // Entry attempts: running worms whose head is due now.
    attempts.clear();
    for (WormId id = 0; id < count; ++id) {
      const RefWorm& worm = worms[id];
      if (!worm.injected || worm.killed || worm.finished) continue;
      const Path& path = collection.path(worm.path);
      if (worm.entered >= path.length()) continue;  // draining to delivery
      OPTO_DASSERT(worm.start + worm.entered == now);
      const EdgeId link = path.link(worm.entered);
      const bool merge =
          config.conversion != ConversionMode::None &&
          converts_at(collection.graph().source(link));
      const std::uint64_t key = (static_cast<std::uint64_t>(link) << 17) |
                                (merge ? 0x10000u : worm.wavelength);
      attempts.push_back({key, id});
    }
    std::sort(attempts.begin(), attempts.end(),
              [](const Attempt& a, const Attempt& b) {
                return a.key != b.key ? a.key < b.key : a.worm < b.worm;
              });

    for (std::size_t lo = 0; lo < attempts.size();) {
      std::size_t hi = lo;
      while (hi < attempts.size() && attempts[hi].key == attempts[lo].key)
        ++hi;
      const auto link = static_cast<EdgeId>(attempts[lo].key >> 17);
      const std::span<const Attempt> group{attempts.data() + lo, hi - lo};
      if ((attempts[lo].key & 0x10000u) != 0)
        resolve_converting(link, group);
      else
        resolve_fixed(link,
                      static_cast<Wavelength>(attempts[lo].key & 0xffffu),
                      group);
      lo = hi;
    }

    // Deliveries: tail of the (possibly cut) stream left the last link.
    for (WormId id = 0; id < count; ++id) {
      RefWorm& worm = worms[id];
      if (!worm.injected || worm.killed || worm.finished) continue;
      const Path& path = collection.path(worm.path);
      if (worm.entered < path.length()) continue;
      const std::uint32_t last = path.length() - 1;
      const SimTime done = worm.start + static_cast<SimTime>(last) +
                           stream_length(worm, last) - 1;
      if (now >= done) {
        worm.finished = true;
        worm.finish = done;
        if (worm.truncated)
          ++result.metrics.truncated_arrivals;
        else
          ++result.metrics.delivered;
      }
    }

    ++now;
  }

  for (WormId id = 0; id < count; ++id) {
    const RefWorm& worm = worms[id];
    WormOutcome& outcome = result.worms[id];
    if (worm.killed) {
      outcome.status = WormStatus::Killed;
      outcome.finish_time = worm.kill_time;
      outcome.blocked_at_link = worm.kill_index;
      outcome.blocked_by = worm.blocker;
    } else {
      OPTO_ASSERT(worm.finished);
      outcome.status = WormStatus::Delivered;
      outcome.finish_time = worm.finish;
    }
    outcome.truncated = worm.truncated;
    outcome.pinned_loss = worm.pinned;
    result.metrics.makespan =
        std::max(result.metrics.makespan, outcome.finish_time);
  }
  return result;
}

}  // namespace opto
