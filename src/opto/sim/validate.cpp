#include "opto/sim/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

std::string describe(WormId id, const char* what) {
  std::ostringstream os;
  os << "worm " << id << ": " << what;
  return os.str();
}

/// Index of `link` on the worm's path, or -1.
std::int64_t link_index(const Path& path, EdgeId link) {
  for (std::uint32_t i = 0; i < path.length(); ++i)
    if (path.link(i) == link) return i;
  return -1;
}

}  // namespace

ValidationReport validate_pass(const PathCollection& collection,
                               const SimConfig& config,
                               std::span<const LaunchSpec> specs,
                               const PassResult& result) {
  ValidationReport report;
  const auto complain = [&report](const std::string& message) {
    report.violations.push_back(message);
  };

  if (result.worms.size() != specs.size()) {
    complain("outcome count does not match launch count");
    return report;
  }

  std::uint64_t delivered = 0, killed = 0, truncated_arrivals = 0;
  std::uint64_t fault_kills = 0, pinned_blocks = 0, corrupted_arrivals = 0;
  SimTime makespan = 0;
  for (WormId id = 0; id < specs.size(); ++id) {
    const WormOutcome& outcome = result.worms[id];
    const LaunchSpec& spec = specs[id];
    const Path& path = collection.path(spec.path);
    makespan = std::max(makespan, outcome.finish_time);

    switch (outcome.status) {
      case WormStatus::Delivered: {
        if (outcome.truncated)
          ++truncated_arrivals;
        else if (outcome.corrupted)
          ++corrupted_arrivals;
        else
          ++delivered;
        // A corrupted delivery is a fault loss; any other delivery isn't.
        if (outcome.fault_loss != (outcome.corrupted && !outcome.truncated))
          complain(describe(id, "delivery fault_loss flag inconsistent"));
        if (path.empty()) {
          if (outcome.finish_time != spec.start_time)
            complain(describe(id, "zero-length path finish != start"));
          break;
        }
        const SimTime head_done =
            spec.start_time + static_cast<SimTime>(path.length()) - 1;
        const SimTime full = head_done + spec.length - 1;
        if (outcome.finish_time < head_done || outcome.finish_time > full)
          complain(describe(id, "delivery finish time out of range"));
        if (!outcome.truncated && outcome.finish_time != full)
          complain(describe(id, "intact delivery must take exactly "
                                "start + len(path) + L - 2 steps"));
        break;
      }
      case WormStatus::Killed: {
        if (outcome.blocked_at_link >= path.length()) {
          complain(describe(id, "blocked past the end of the path"));
          break;
        }
        const SimTime blocked_at =
            spec.start_time + outcome.blocked_at_link;
        if (outcome.finish_time != blocked_at)
          complain(describe(id, "kill time != entry time of blocked link"));
        if (outcome.fault_loss) {
          // Fault kills (dark link, failed coupler, stuck wavelength) are
          // witness-free by design: no worm caused them.
          ++fault_kills;
          if (outcome.blocked_by != kInvalidWorm)
            complain(describe(id, "fault kill must not name a witness"));
          break;
        }
        if (outcome.pinned_loss) {
          // Pinned blocks (a channel held by an established connection)
          // are witness-free too: the blocker is not a pass worm.
          ++pinned_blocks;
          if (outcome.blocked_by != kInvalidWorm)
            complain(describe(id, "pinned block must not name a witness"));
          break;
        }
        ++killed;
        const WormId blocker = outcome.blocked_by;
        if (blocker == kInvalidWorm || blocker >= specs.size() ||
            blocker == id) {
          complain(describe(id, "missing or invalid witness"));
          break;
        }
        const EdgeId blocked_link = path.link(outcome.blocked_at_link);
        if (link_index(collection.path(specs[blocker].path), blocked_link) <
            0)
          complain(describe(id, "witness does not use the blocked link"));
        if (config.conversion == ConversionMode::None &&
            specs[id].wavelength != specs[blocker].wavelength)
          complain(describe(id, "witness uses a different wavelength"));
        break;
      }
      default:
        complain(describe(id, "worm left unresolved"));
    }
  }

  if (result.metrics.delivered != delivered)
    complain("metrics.delivered mismatch");
  if (result.metrics.killed != killed)
    complain("metrics.killed mismatch");
  if (result.metrics.fault_kills != fault_kills)
    complain("metrics.fault_kills mismatch");
  if (result.metrics.pinned_blocks != pinned_blocks)
    complain("metrics.pinned_blocks mismatch");
  if (result.metrics.corrupted_arrivals != corrupted_arrivals)
    complain("metrics.corrupted_arrivals mismatch");
  if (result.metrics.truncated_arrivals != truncated_arrivals)
    complain("metrics.truncated_arrivals mismatch");
  if (result.metrics.launched != specs.size())
    complain("metrics.launched mismatch");
  if (!specs.empty() && result.metrics.makespan != makespan)
    complain("metrics.makespan != max finish time");
  return report;
}

ValidationReport validate_occupancy(const PathCollection& collection,
                                    std::span<const LaunchSpec> specs,
                                    const PassResult& result) {
  ValidationReport report;
  if (!result.trace.enabled()) {
    report.violations.push_back(
        "occupancy validation requires record_trace = true");
    return report;
  }

  // Reconstruct per-worm cut lists from Truncate events.
  struct Cut {
    std::uint32_t pos;
    SimTime time;
  };
  std::vector<std::vector<Cut>> cuts(specs.size());
  for (const TraceEvent& event : result.trace.events()) {
    if (event.kind != TraceKind::Truncate) continue;
    const auto idx =
        link_index(collection.path(specs[event.worm].path), event.link);
    if (idx < 0) {
      report.violations.push_back("truncation on a link not on the path");
      continue;
    }
    cuts[event.worm].push_back({static_cast<std::uint32_t>(idx), event.time});
  }
  const auto stream_length = [&](WormId id, std::uint32_t pos) {
    SimTime limit = specs[id].length;
    for (const Cut& cut : cuts[id])
      if (cut.pos <= pos)
        limit = std::min<SimTime>(
            limit, cut.time - specs[id].start_time - cut.pos);
    return std::max<SimTime>(0, limit);
  };

  // Admission windows per (link, wavelength): [entry, entry + stream − 1].
  std::map<std::pair<EdgeId, Wavelength>,
           std::vector<std::pair<SimTime, SimTime>>>
      windows;
  for (const TraceEvent& event : result.trace.events()) {
    if (event.kind != TraceKind::Admit && event.kind != TraceKind::Retune)
      continue;
    const auto idx =
        link_index(collection.path(specs[event.worm].path), event.link);
    if (idx < 0) {
      report.violations.push_back("admission on a link not on the path");
      continue;
    }
    const SimTime stream =
        stream_length(event.worm, static_cast<std::uint32_t>(idx));
    if (stream <= 0) continue;  // fully cut at/before this coupler
    windows[{event.link, event.wavelength}].emplace_back(
        event.time, event.time + stream - 1);
  }
  for (auto& [key, list] : windows) {
    std::sort(list.begin(), list.end());
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i].first <= list[i - 1].second) {
        std::ostringstream os;
        os << "overlapping occupancy on link " << key.first << " wavelength "
           << key.second << ": [" << list[i - 1].first << ","
           << list[i - 1].second << "] vs [" << list[i].first << ","
           << list[i].second << "]";
        report.violations.push_back(os.str());
      }
    }
  }
  return report;
}

}  // namespace opto
