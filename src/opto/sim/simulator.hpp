// Time-stepped wormhole simulation engine — one forward pass.
//
// Model recap (§1.1 of the paper, DESIGN.md "Simulation-model decisions"):
//  * a worm injected at time s enters its path link i at time s+i — worms
//    never stall, they advance or get eliminated;
//  * link i is occupied on the worm's wavelength during
//    [s+i, s+i+ℓ−1] where ℓ is the worm's flit length at that link;
//  * serve-first: an entrant finding its (link, wavelength) occupied is
//    eliminated; its upstream flits drain (their occupancy stands);
//  * priority: the higher rank wins; a losing occupant is truncated at the
//    coupler — the remnant ahead of the cut keeps travelling (and can
//    collide again), flits behind the cut drain;
//  * delivery is *intact* only if the worm was never killed or truncated;
//    a truncated remnant that arrives is a failed delivery (retry).
//
// The engine is deterministic: same collection + launch specs produce the
// same outcome. Contention groups within a step are resolved in ascending
// (link, wavelength) order; within-step truncations cannot free a link for
// the same step (the remnant's tail is still on it), so this order does
// not affect occupancy decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "opto/optical/coupler.hpp"
#include "opto/optical/worm.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/faults.hpp"
#include "opto/sim/metrics.hpp"
#include "opto/sim/occupancy.hpp"
#include "opto/sim/trace.hpp"

namespace opto {

class ThreadPool;

/// Contention-component sharding of a pass (DESIGN.md §7). Paths in
/// different components share no directed link, so their worms can never
/// interact; a sharded pass runs each component group on the thread pool
/// and merges deterministically. Model-level output (worm outcomes, model
/// metrics, the canonical trace) is identical in every mode and invariant
/// across pool widths; only the engine-local instrumentation counters
/// (steps, registry probes, peak_inflight) differ between Off and On.
enum class PassSharding : std::uint8_t {
  Auto,  ///< shard large multi-component passes unless OPTO_PASS_SHARDING=0
  Off,   ///< always the sequential engine
  On,    ///< shard whenever ≥ 2 components are active (ignores the env gate)
};

/// Per-simulator override of the SIMD lane policy (par/simd.hpp). Auto
/// follows the process-wide level (compile-time OPTO_SIMD_LEVEL capped by
/// the OPTO_SIMD env var); Off pins this simulator to the scalar kernels
/// regardless. Lane width never changes any output — worm outcomes, model
/// metrics, instrumentation counters, and the raw trace are byte-identical
/// across modes (the simd-diff CI job and differ stage 5 enforce this) —
/// so Off exists for differential testing, not for correctness.
enum class SimdMode : std::uint8_t { Auto, Off };

/// Wavelength-conversion capability (§4 / the [11] comparator). The paper
/// studies the conversion-free case; Full models converters at every
/// router (Cypher et al.'s setting), Sparse models converters at selected
/// routers only ([23]'s wavelength-convertible networks).
enum class ConversionMode : std::uint8_t { None, Full, Sparse };

const char* to_string(ConversionMode mode);

struct SimConfig {
  ContentionRule rule = ContentionRule::ServeFirst;
  TiePolicy tie = TiePolicy::KillAll;
  std::uint16_t bandwidth = 1;  ///< wavelengths per fiber (B)
  bool record_trace = false;
  ConversionMode conversion = ConversionMode::None;
  /// Per-node converter flags, indexed by NodeId; consulted only in
  /// Sparse mode (Full converts everywhere). The coupler feeding link e
  /// sits at source(e), so that node's flag governs retunes onto e.
  std::vector<char> converters;
  /// Optional fault-injection plan (sim/faults.hpp); must outlive the
  /// simulator. Null — or a disabled zero-fault plan — leaves every code
  /// path and outcome bit-identical to the fault-free engine.
  const FaultPlan* faults = nullptr;
  /// Contention-component parallelism for run(); see PassSharding.
  PassSharding sharding = PassSharding::Auto;
  /// Pool used by sharded passes; null selects ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Lane policy for the packed attempt kernels; see SimdMode.
  SimdMode simd = SimdMode::Auto;
};

/// A (directed link, wavelength) channel held by an established
/// connection — the streaming engine's circuits between protocol passes.
/// Pinned slots enter the occupancy registry as permanent sentinel
/// occupants (worm = kPinnedWorm, top priority, never released): every
/// entrant is eliminated, priority worms cannot truncate them, and
/// converting routers retune around them. Losses are accounted in
/// PassMetrics::pinned_blocks / WormOutcome::pinned_loss, separate from
/// both contention kills and fault kills.
struct PinnedSlot {
  EdgeId link = kInvalidEdge;
  Wavelength wavelength = 0;
};

/// Launch parameters for one worm (chosen by the protocol layer).
struct LaunchSpec {
  PathId path = kInvalidPath;
  SimTime start_time = 0;        ///< injection step (delay already applied)
  Wavelength wavelength = 0;     ///< in [0, bandwidth)
  std::uint32_t priority = 0;    ///< rank for the priority rule
  std::uint32_t length = 1;      ///< worm length L in flits (≥ 1)
};

struct WormOutcome {
  WormStatus status = WormStatus::Waiting;
  bool truncated = false;
  bool corrupted = false;             ///< payload voided by a fault
  /// The worm failed because of an injected fault: fault-killed en route,
  /// or delivered with a corrupted payload. Contention losses keep this
  /// false — the protocol's RetryPolicy backs off only on fault losses.
  bool fault_loss = false;
  /// Eliminated by a pinned slot (a wavelength held by an established
  /// connection). Witness-free like a fault kill, but nothing is broken —
  /// the channel is merely busy, so retrying is the right response.
  bool pinned_loss = false;
  SimTime finish_time = -1;           ///< delivery completion / kill step
  std::uint32_t blocked_at_link = 0;  ///< path position of a fatal block
  WormId blocked_by = kInvalidWorm;   ///< the witnessing blocker, if killed
                                      ///< by contention (fault kills have
                                      ///< no witness)

  bool delivered_intact() const {
    return status == WormStatus::Delivered && !truncated && !corrupted;
  }
};

struct PassResult {
  std::vector<WormOutcome> worms;  ///< parallel to the launch specs
  PassMetrics metrics;
  Trace trace;  ///< populated iff config.record_trace
  /// Per-worm wavelength-per-entered-link histories, flattened; populated
  /// only when conversion is enabled (without conversion the launch
  /// wavelength holds on every link). Worm `id` used wavelengths
  /// [wavelengths.begin() + wavelength_offsets[id],
  ///  wavelengths.begin() + wavelength_offsets[id + 1]), one per link its
  /// head entered. The streaming engine pins delivered worms' channels
  /// from these.
  std::vector<std::uint32_t> wavelength_offsets;
  std::vector<Wavelength> wavelengths;
};

class Simulator {
 public:
  /// The collection must outlive the simulator and must not gain paths
  /// while any simulator built on it is in use (construction snapshots
  /// the collection's flattened-link and component caches).
  Simulator(const PathCollection& collection, SimConfig config);

  /// Simulates one forward pass of all `specs` worms to quiescence.
  PassResult run(std::span<const LaunchSpec> specs);

  /// Allocation-free variant: reuses `result`'s buffers, so a driver that
  /// keeps one PassResult across rounds (TrialAndFailure, benches) does
  /// zero steady-state allocation. `result` is fully overwritten.
  void run(std::span<const LaunchSpec> specs, PassResult& result);

  const SimConfig& config() const { return config_; }

  /// Installs the pinned-slot set consulted by subsequent run() calls
  /// (sim-level substrate of the streaming engine's held connections).
  /// The span must stay valid across those calls; it is re-read at the
  /// top of every pass, so the caller may mutate the underlying vector
  /// between passes. Duplicate slots are allowed (later wins); a pinned
  /// slot shadows a stuck-wavelength fault on the same channel.
  void set_pinned(std::span<const PinnedSlot> pinned) { pinned_ = pinned; }

 private:
  struct Attempt {
    std::uint64_t key;  ///< (link << 17) | wavelength-or-merge, for grouping
    WormId worm;
  };

  void apply_truncation(WormId victim, std::uint32_t cut_link_index,
                        SimTime now, PassResult& result);

  bool converts_at(NodeId node) const;

  /// The sequential engine: one pass over `specs` to quiescence.
  void run_pass(std::span<const LaunchSpec> specs, PassResult& result);

  /// The sharded engine: groups specs by contention component, runs each
  /// group on an independent shard simulator, merges deterministically.
  void run_sharded(std::span<const LaunchSpec> specs, PassResult& result);

  bool use_sharding(std::span<const LaunchSpec> specs) const;

  /// Worm id as the fault plan (and the caller) sees it: shard-local ids
  /// map back through the parent's spec indices.
  WormId global_worm_id(WormId id) const {
    return shard_global_ids_.empty() ? id : shard_global_ids_[id];
  }

  const PathCollection& collection_;
  SimConfig config_;
  OccupancyRegistry registry_;
  std::span<const PinnedSlot> pinned_;  ///< held channels; see set_pinned()

  // Immutable per-collection views, snapshotted at construction (SoA hot
  // path + sharding decisions): the flattened link array, the contention
  // components, and the per-link "source node converts" bitmap.
  std::span<const std::uint32_t> flat_offsets_;
  std::span<const EdgeId> flat_links_;
  const ComponentDecomposition* components_ = nullptr;
  std::vector<char> link_converts_;  ///< sized iff conversion is enabled

  // Packed-attempt key layout (attempt_kernel.hpp), fixed at construction.
  // flat_keys_[j] pre-bakes (link << (wl_bits+1)) | merge_bit for flat
  // position j, so the per-step key build is one lookup + a masked OR of
  // the worm's wavelength; built only when the packed path applies
  // (link ids fit the budget). merge_bit_ = 1 << wl_bits, with
  // wl_bits = bit_width(bandwidth − 1) — the layout adapts to B, keeping
  // radix passes minimal. simd_on_ folds SimConfig::simd into the
  // process-wide lane level once.
  std::vector<std::uint32_t> flat_keys_;
  std::uint32_t merge_bit_ = 0x10000u;
  bool simd_on_ = false;

  // Pass-state scratch, hoisted so repeated run() calls reuse capacity
  // (zero steady-state allocation across protocol rounds). All of it is
  // reinitialized at the top of each pass.
  std::vector<Worm> worms_;
  std::vector<WormId> injection_order_;
  std::vector<std::uint64_t> injection_keys_;  ///< packed (start_time, id)
  std::vector<WormId> running_;   ///< head still has links to enter
  std::vector<WormId> draining_;  ///< head done, tail still arriving
  std::vector<Attempt> attempts_;             ///< wide-key fallback path
  std::vector<std::uint64_t> attempt_keys_;   ///< packed (group key, worm)
  std::vector<std::uint64_t> attempt_keys_scratch_;  ///< radix ping-pong
  std::vector<std::uint8_t> admit_mask_;  ///< free-singleton prescan flags
  std::vector<WormId> group_worms_;           ///< one contention group's ids
  std::vector<Contender> contenders_;
  /// Per-worm wavelength history; populated only when conversion is on.
  std::vector<std::vector<Wavelength>> wavelength_history_;
  // Converting-coupler scratch, sized to config_.bandwidth per group.
  std::vector<std::optional<Claim>> conv_occupant_;
  std::vector<WormId> conv_admitted_;
  std::vector<WormId> conv_order_;

  // SoA per-worm hot-loop state, parallel to worms_: the head's index
  // into flat_links_ (and its one-past-the-end bound), the current
  // wavelength, and the status byte — attempt collection touches only
  // these flat arrays.
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> cursor_end_;
  std::vector<std::uint32_t> wl_;  ///< widened for 32-bit SIMD gathers
  std::vector<WormStatus> status_;

  // Sharded-pass state. The parent keeps a bounded set of shard
  // simulators (≤ kMaxShards, lazily built, reused across passes — zero
  // steady-state allocation); each shard is a plain sequential Simulator
  // whose worm ids are spec indices into its bucket.
  bool is_shard_ = false;
  std::span<const WormId> shard_global_ids_;  ///< set on shards by parent
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::vector<LaunchSpec>> shard_specs_;
  std::vector<std::vector<WormId>> shard_ids_;  ///< bucket → global spec ids
  std::vector<PassResult> shard_results_;
  // Active-component bookkeeping (epoch-stamped so a pass touching few of
  // many components stays O(active), not O(total components)).
  std::vector<std::uint32_t> comp_stamp_;
  std::vector<std::uint32_t> comp_slot_;
  std::uint32_t pass_epoch_ = 0;
  std::vector<std::uint32_t> active_counts_;
  std::vector<std::uint32_t> comp_order_;
  std::vector<std::uint32_t> bucket_of_slot_;
  std::vector<TraceEvent> trace_merge_;
};

}  // namespace opto
