// Flit-level reference engine for differential testing.
//
// The production Simulator tracks occupancy with an incremental claim
// registry; this reference recomputes everything from first principles
// each step, straight from the physics:
//
//   flit f of worm w crosses the coupler of its path link i at time
//   start + i + f, and survives iff it beat every cut at a position ≤ i
//   (cuts are priority truncations and the final serve-first block).
//
// Occupancy, deliveries, and drain windows all derive from that one
// closed form — no shared state with the fast engine beyond the coupler
// decision logic (including the converting-coupler policy, replayed
// against per-link wavelength histories). O(n · L)-ish per step; use only
// in tests.
#pragma once

#include <span>

#include "opto/sim/simulator.hpp"

namespace opto {

/// Runs the reference engine; the result is field-for-field comparable
/// with Simulator::run (statuses, finish times, blockers, metrics).
/// `pinned` mirrors Simulator::set_pinned: held (link, wavelength)
/// channels that eliminate every entrant as a pinned loss.
PassResult reference_run(const PathCollection& collection,
                         const SimConfig& config,
                         std::span<const LaunchSpec> specs,
                         std::span<const PinnedSlot> pinned = {});

}  // namespace opto
