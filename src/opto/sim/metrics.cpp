#include "opto/sim/metrics.hpp"

#include <algorithm>

namespace opto {

void PassMetrics::merge(const PassMetrics& other) {
  launched += other.launched;
  delivered += other.delivered;
  killed += other.killed;
  truncated += other.truncated;
  truncated_arrivals += other.truncated_arrivals;
  contentions += other.contentions;
  retunes += other.retunes;
  fault_kills += other.fault_kills;
  pinned_blocks += other.pinned_blocks;
  corrupted += other.corrupted;
  corrupted_arrivals += other.corrupted_arrivals;
  makespan = std::max(makespan, other.makespan);
  worm_steps += other.worm_steps;
  link_busy_steps += other.link_busy_steps;
  steps += other.steps;
  registry_probes += other.registry_probes;
  registry_hits += other.registry_hits;
  peak_inflight = std::max(peak_inflight, other.peak_inflight);
  wall_ns += other.wall_ns;
}

double PassMetrics::utilization(std::uint64_t link_count,
                                std::uint16_t bandwidth) const {
  if (link_count == 0 || bandwidth == 0 || makespan < 0) return 0.0;
  const double slots = static_cast<double>(link_count) * bandwidth *
                       static_cast<double>(makespan + 1);
  return slots > 0 ? static_cast<double>(link_busy_steps) / slots : 0.0;
}

}  // namespace opto
