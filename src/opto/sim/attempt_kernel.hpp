// Vectorized kernels for the simulator's packed attempt loop — the
// per-step hot path that turns every running worm into a sortable
// (group key, worm id) word and pre-screens the sorted groups against the
// dense occupancy registry (DESIGN.md §9).
//
// Both kernels exist at three lane levels (par/simd.hpp): a scalar
// reference, SSE2, and AVX2. The scalar implementation defines the
// semantics; the vector versions are required to produce byte-identical
// output for every input (tests/test_simd_attempt.cpp fuzzes this, the
// simd-diff CI job enforces it end-to-end). Dispatch is resolved once per
// process from simd::active_level(); the simulator additionally passes
// `allow_simd = false` when its SimConfig::simd override says scalar.
//
// Key layout (bandwidth-adaptive, chosen per simulator):
//   key32  = (link << (wl_bits + 1)) | merge_bit? | wavelength
//   word   = (u64(key32) << id_bits) | worm id
// where merge_bit = 1 << wl_bits marks a converting coupler's link (its
// entrants group by link alone). flat_keys[] pre-bakes the link and merge
// halves per flat-path position, so key build is one gather + a masked OR.
#pragma once

#include <cstdint>
#include <span>

#include "opto/optical/worm.hpp"

namespace opto::attempt {

/// Builds the packed attempt word for every running worm:
///   out[i] = (u64(flat_keys[cursor[ids[i]]]
///             | (merge ? 0 : wl[ids[i]])) << id_bits) | ids[i]
/// where merge = flat_keys[...] & merge_bit. `out` must hold ids.size()
/// words. Fault-free passes only — fault elimination interleaves with key
/// build and stays on the simulator's scalar loop.
void build_keys(std::span<const WormId> ids, const std::uint32_t* cursor,
                const std::uint32_t* flat_keys, const std::uint32_t* wl,
                std::uint32_t merge_bit, unsigned id_bits, bool allow_simd,
                std::uint64_t* out);

/// Flags the sorted attempt words whose group is a singleton on a
/// non-merge key whose channel is free in the dense registry at `now`
/// (epoch mismatch or release ≤ now): mask[i] = 1 exactly for those, else
/// 0. The simulator admits flagged worms in place, skipping the group
/// build and registry find — legal because a same-step truncation can
/// never free a channel at `now` and distinct groups never share one, so
/// a channel free before the step's groups run stays free at the group's
/// turn. `mask` must hold keys.size() bytes.
///
/// Channel index = (key32 >> (wl_bits + 1)) * bandwidth + wavelength,
/// matching OccupancyRegistry's dense layout; wl_bits is implied by
/// merge_bit = 1 << wl_bits.
void prescan_free_singletons(std::span<const std::uint64_t> keys,
                             unsigned id_bits, std::uint32_t merge_bit,
                             std::uint32_t bandwidth,
                             const std::uint32_t* epochs,
                             std::uint32_t current_epoch,
                             const SimTime* releases, SimTime now,
                             bool allow_simd, std::uint8_t* mask);

/// Level-pinned entry points for differential tests: `level` is a
/// simd::kLevel* constant. Levels above simd::cpu_level() (or not compiled
/// in) fall back to scalar; returns the level actually used.
int build_keys_at_level(int level, std::span<const WormId> ids,
                        const std::uint32_t* cursor,
                        const std::uint32_t* flat_keys,
                        const std::uint32_t* wl, std::uint32_t merge_bit,
                        unsigned id_bits, std::uint64_t* out);
int prescan_at_level(int level, std::span<const std::uint64_t> keys,
                     unsigned id_bits, std::uint32_t merge_bit,
                     std::uint32_t bandwidth, const std::uint32_t* epochs,
                     std::uint32_t current_epoch, const SimTime* releases,
                     SimTime now, std::uint8_t* mask);

}  // namespace opto::attempt
