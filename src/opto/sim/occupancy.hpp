// Occupancy registry: who is currently streaming through each
// (directed link, wavelength) pair.
//
// A claim records the occupant worm, its priority, where the link sits on
// the occupant's path, when its head entered, and when the link frees up
// (entry + flit length at that link). Priority truncation shrinks release
// times via shorten(); an admitted winner simply overwrites the key (the
// loser's surviving flits are strictly ahead of the winner's, so the link
// is never double-booked — see the simulator's model notes).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "opto/graph/graph.hpp"
#include "opto/optical/worm.hpp"

namespace opto {

struct Claim {
  WormId worm = kInvalidWorm;
  std::uint32_t priority = 0;
  std::uint32_t link_index = 0;  ///< position of this link on worm's path
  SimTime entry = 0;             ///< head entered the link at this step
  SimTime release = 0;           ///< first step the link is free again
};

class OccupancyRegistry {
 public:
  /// The occupant of (link, wavelength) at time `now`, if any.
  std::optional<Claim> occupant(EdgeId link, Wavelength wavelength,
                                SimTime now) const;

  /// Records/overwrites the claim for (link, wavelength).
  void claim(EdgeId link, Wavelength wavelength, const Claim& claim);

  /// Caps the release time of `worm`'s claim on (link, wavelength) at
  /// `new_release` (no-op if the key is now owned by another worm or the
  /// claim already releases earlier). Returns the busy steps trimmed.
  SimTime shorten(EdgeId link, Wavelength wavelength, WormId worm,
                  SimTime new_release);

  void clear() { claims_.clear(); }
  std::size_t size() const { return claims_.size(); }

  /// Drops claims with release ≤ now (periodic garbage collection).
  void sweep(SimTime now);

 private:
  static std::uint64_t key(EdgeId link, Wavelength wavelength) {
    return (static_cast<std::uint64_t>(link) << 16) | wavelength;
  }

  std::unordered_map<std::uint64_t, Claim> claims_;
};

}  // namespace opto
