// Occupancy registry: who is currently streaming through each
// (directed link, wavelength) pair.
//
// A claim records the occupant worm, its priority, where the link sits on
// the occupant's path, when its head entered, and when the link frees up
// (entry + flit length at that link). Priority truncation shrinks release
// times via shorten(); an admitted winner simply overwrites the key (the
// loser's surviving flits are strictly ahead of the winner's, so the link
// is never double-booked — see the simulator's model notes).
//
// Storage is a flat, open-addressed hash table (linear probing) keyed by
// the packed (link << 16) | wavelength word the simulator already computes
// per attempt. Design notes:
//  * clear() is O(1): slots carry an epoch stamp and a bumped epoch makes
//    every slot read as empty, so per-pass reset costs nothing even when
//    the table grew large on a previous pass.
//  * Probe chains are never broken: swept entries become tombstones (kept
//    non-empty for lookups) and are recycled by later insertions; a live
//    entry whose release is ≤ the inserting claim's entry time is equally
//    recyclable, since occupant() already treats it as absent.
//  * sweep_step() retires expired claims incrementally (a bounded slot
//    window per call) instead of a stop-the-world scan, so long passes pay
//    a constant per-step GC cost with no periodic latency spike.
//  * Lookup probes and hits are counted; the simulator surfaces them in
//    PassMetrics so registry behaviour is visible in BENCH JSON.
//
// A second, dense backend (use_dense) direct-maps the full
// (link, wavelength) channel space into SoA arrays when it is small enough
// — every find/claim/shorten is one array access (probes = 1 per lookup by
// construction), clear() stays O(1) via the same epoch trick, and sweeps
// become no-ops (slots are fixed, expiry is judged at read time). The
// simulator switches a registry to dense per topology; the choice never
// depends on execution mode, so instrumentation stays comparable across
// SIMD/threading knobs (DESIGN.md §9). The release array is exposed
// read-only for the vectorized attempt prescan.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/optical/worm.hpp"
#include "opto/util/assert.hpp"

namespace opto {

struct Claim {
  WormId worm = kInvalidWorm;
  std::uint32_t priority = 0;
  std::uint32_t link_index = 0;  ///< position of this link on worm's path
  SimTime entry = 0;             ///< head entered the link at this step
  SimTime release = 0;           ///< first step the link is free again
};

class OccupancyRegistry {
 public:
  struct Stats {
    std::uint64_t probes = 0;  ///< slots inspected across all lookups
    std::uint64_t hits = 0;    ///< lookups that found a live occupant
  };

  OccupancyRegistry();

  /// Switches to the dense direct-mapped backend over the full channel
  /// space `link_count * bandwidth` (channel = link * bandwidth + λ).
  /// Must be called while empty, before any claim; keys outside the range
  /// are then undefined behaviour (the simulator guarantees both).
  void use_dense(std::size_t link_count, std::uint32_t bandwidth);
  bool dense() const { return bandwidth_ != 0; }

  /// Dense-backend internals for the simulator's vectorized free-channel
  /// prescan (attempt_kernel.cpp): a channel is free at `now` iff its
  /// epoch differs from epoch() or its release is ≤ now. Null/0 under the
  /// hash backend.
  const std::uint32_t* dense_epochs() const {
    return dense() ? d_epoch_.data() : nullptr;
  }
  const SimTime* dense_releases() const {
    return dense() ? d_release_.data() : nullptr;
  }
  std::uint32_t epoch() const { return epoch_; }
  std::uint32_t dense_bandwidth() const { return bandwidth_; }

  /// Accounts a lookup the caller performed against the dense arrays
  /// directly (the prescan), keeping probe/hit stats identical to the
  /// find()-based path.
  void count_external_probe(bool hit) const {
    ++stats_.probes;
    stats_.hits += hit ? 1 : 0;
  }

  /// The live occupant of (link, wavelength) at time `now`, or nullptr.
  /// The pointer is valid until the next claim()/clear() (shorten and
  /// sweep never move slots).
  const Claim* find(EdgeId link, Wavelength wavelength, SimTime now) const;

  /// Copying convenience wrapper over find().
  std::optional<Claim> occupant(EdgeId link, Wavelength wavelength,
                                SimTime now) const;

  /// Records/overwrites the claim for (link, wavelength).
  void claim(EdgeId link, Wavelength wavelength, const Claim& claim);

  /// Caps the release time of `worm`'s claim on (link, wavelength) at
  /// `new_release` (no-op if the key is now owned by another worm or the
  /// claim already releases earlier; a cap below the entry time clamps to
  /// it). Returns the busy steps trimmed.
  SimTime shorten(EdgeId link, Wavelength wavelength, WormId worm,
                  SimTime new_release);

  /// Forgets every claim. O(1): bumps the slot epoch.
  void clear();

  /// Stored claims (live entries, expired-but-unswept included; under the
  /// dense backend: slots claimed since the last clear, expired included).
  std::size_t size() const { return live_; }
  std::size_t capacity() const {
    return dense() ? d_claim_.size() : slots_.size();
  }

  /// Drops every claim with release ≤ now (full garbage collection).
  void sweep(SimTime now);

  /// Incremental variant: examines at most `budget` slots, resuming where
  /// the previous call left off. Claims it skips are still invisible to
  /// find()/occupant(), so sweep scheduling never affects outcomes.
  void sweep_step(SimTime now, std::size_t budget);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Claim claim;
    std::uint32_t epoch = 0;  ///< in use iff equal to the registry epoch
    bool dead = false;        ///< swept tombstone (keeps chains intact)
  };

  static std::uint64_t pack(EdgeId link, Wavelength wavelength) {
    return (static_cast<std::uint64_t>(link) << 16) | wavelength;
  }

  std::size_t bucket(std::uint64_t key) const {
    // Fibonacci multiplicative hash; the packed key is highly regular.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  /// The live slot holding `key`, or nullptr.
  Slot* locate(std::uint64_t key);

  void grow();

  std::size_t dense_index(EdgeId link, Wavelength wavelength) const {
    const std::size_t idx =
        static_cast<std::size_t>(link) * bandwidth_ + wavelength;
    OPTO_DASSERT(idx < d_claim_.size());
    return idx;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;      ///< live entries (what size() reports)
  std::size_t used_ = 0;      ///< live + tombstones (load-factor input)
  std::uint32_t epoch_ = 1;
  std::size_t sweep_cursor_ = 0;
  mutable Stats stats_;

  // Dense backend (active iff bandwidth_ != 0). d_release_ mirrors
  // d_claim_[i].release in a contiguous array the SIMD prescan can gather
  // from; claim()/shorten() keep the two in sync.
  std::uint32_t bandwidth_ = 0;
  std::vector<std::uint32_t> d_epoch_;
  std::vector<SimTime> d_release_;
  std::vector<Claim> d_claim_;
};

}  // namespace opto
