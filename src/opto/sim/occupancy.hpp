// Occupancy registry: who is currently streaming through each
// (directed link, wavelength) pair.
//
// A claim records the occupant worm, its priority, where the link sits on
// the occupant's path, when its head entered, and when the link frees up
// (entry + flit length at that link). Priority truncation shrinks release
// times via shorten(); an admitted winner simply overwrites the key (the
// loser's surviving flits are strictly ahead of the winner's, so the link
// is never double-booked — see the simulator's model notes).
//
// Storage is a flat, open-addressed hash table (linear probing) keyed by
// the packed (link << 16) | wavelength word the simulator already computes
// per attempt. Design notes:
//  * clear() is O(1): slots carry an epoch stamp and a bumped epoch makes
//    every slot read as empty, so per-pass reset costs nothing even when
//    the table grew large on a previous pass.
//  * Probe chains are never broken: swept entries become tombstones (kept
//    non-empty for lookups) and are recycled by later insertions; a live
//    entry whose release is ≤ the inserting claim's entry time is equally
//    recyclable, since occupant() already treats it as absent.
//  * sweep_step() retires expired claims incrementally (a bounded slot
//    window per call) instead of a stop-the-world scan, so long passes pay
//    a constant per-step GC cost with no periodic latency spike.
//  * Lookup probes and hits are counted; the simulator surfaces them in
//    PassMetrics so registry behaviour is visible in BENCH JSON.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/optical/worm.hpp"

namespace opto {

struct Claim {
  WormId worm = kInvalidWorm;
  std::uint32_t priority = 0;
  std::uint32_t link_index = 0;  ///< position of this link on worm's path
  SimTime entry = 0;             ///< head entered the link at this step
  SimTime release = 0;           ///< first step the link is free again
};

class OccupancyRegistry {
 public:
  struct Stats {
    std::uint64_t probes = 0;  ///< slots inspected across all lookups
    std::uint64_t hits = 0;    ///< lookups that found a live occupant
  };

  OccupancyRegistry();

  /// The live occupant of (link, wavelength) at time `now`, or nullptr.
  /// The pointer is valid until the next claim()/clear() (shorten and
  /// sweep never move slots).
  const Claim* find(EdgeId link, Wavelength wavelength, SimTime now) const;

  /// Copying convenience wrapper over find().
  std::optional<Claim> occupant(EdgeId link, Wavelength wavelength,
                                SimTime now) const;

  /// Records/overwrites the claim for (link, wavelength).
  void claim(EdgeId link, Wavelength wavelength, const Claim& claim);

  /// Caps the release time of `worm`'s claim on (link, wavelength) at
  /// `new_release` (no-op if the key is now owned by another worm or the
  /// claim already releases earlier; a cap below the entry time clamps to
  /// it). Returns the busy steps trimmed.
  SimTime shorten(EdgeId link, Wavelength wavelength, WormId worm,
                  SimTime new_release);

  /// Forgets every claim. O(1): bumps the slot epoch.
  void clear();

  /// Stored claims (live entries, expired-but-unswept included).
  std::size_t size() const { return live_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Drops every claim with release ≤ now (full garbage collection).
  void sweep(SimTime now);

  /// Incremental variant: examines at most `budget` slots, resuming where
  /// the previous call left off. Claims it skips are still invisible to
  /// find()/occupant(), so sweep scheduling never affects outcomes.
  void sweep_step(SimTime now, std::size_t budget);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Claim claim;
    std::uint32_t epoch = 0;  ///< in use iff equal to the registry epoch
    bool dead = false;        ///< swept tombstone (keeps chains intact)
  };

  static std::uint64_t pack(EdgeId link, Wavelength wavelength) {
    return (static_cast<std::uint64_t>(link) << 16) | wavelength;
  }

  std::size_t bucket(std::uint64_t key) const {
    // Fibonacci multiplicative hash; the packed key is highly regular.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  /// The live slot holding `key`, or nullptr.
  Slot* locate(std::uint64_t key);

  void grow();

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;      ///< live entries (what size() reports)
  std::size_t used_ = 0;      ///< live + tombstones (load-factor input)
  std::uint32_t epoch_ = 1;
  std::size_t sweep_cursor_ = 0;
  mutable Stats stats_;
};

}  // namespace opto
