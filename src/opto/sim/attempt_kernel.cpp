#include "opto/sim/attempt_kernel.hpp"

#include <bit>

#include "opto/par/simd.hpp"

#if OPTO_SIMD_LEVEL >= 1 && (defined(__x86_64__) || defined(_M_X64))
#define OPTO_ATTEMPT_X86 1
#include <immintrin.h>
#else
#define OPTO_ATTEMPT_X86 0
#endif

namespace opto::attempt {

namespace {

/// Lane dispatch floor for the auto (allow_simd) entry points: below this
/// many elements the vector setup — gathers warming up, boundary lanes
/// delegated to scalar — costs more than it saves, so small steps run the
/// scalar reference outright. Purely a throughput heuristic: every level
/// produces identical bytes, so the cutover can never change results.
/// The level-pinned *_at_level entry points ignore it (differential tests
/// must exercise the vector paths at every size).
constexpr std::size_t kMinLaneElements = 512;

// --- Scalar reference (the semantics; every lane level must match it) ---

void build_keys_scalar(std::span<const WormId> ids,
                       const std::uint32_t* cursor,
                       const std::uint32_t* flat_keys,
                       const std::uint32_t* wl, std::uint32_t merge_bit,
                       unsigned id_bits, std::uint64_t* out) {
  const std::size_t n = ids.size();
  for (std::size_t i = 0; i < n; ++i) {
    const WormId id = ids[i];
    const std::uint32_t fk = flat_keys[cursor[id]];
    const std::uint32_t key = fk | ((fk & merge_bit) != 0 ? 0u : wl[id]);
    out[i] = (static_cast<std::uint64_t>(key) << id_bits) | id;
  }
}

/// The scalar body over global positions [lo, hi) of the full key array —
/// neighbor lookups stay global, so vector kernels can delegate their
/// boundary lanes and tails without corrupting the singleton test at the
/// sub-range edges.
void prescan_scalar_range(std::span<const std::uint64_t> keys,
                          std::size_t lo, std::size_t hi, unsigned id_bits,
                          std::uint32_t merge_bit, std::uint32_t bandwidth,
                          const std::uint32_t* epochs,
                          std::uint32_t current_epoch,
                          const SimTime* releases, SimTime now,
                          std::uint8_t* mask) {
  const std::size_t n = keys.size();
  const std::uint64_t wl_mask = merge_bit - 1;
  const unsigned link_shift =
      static_cast<unsigned>(std::countr_zero(merge_bit)) + 1;
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint64_t k = keys[i] >> id_bits;
    const bool singleton = (i == 0 || (keys[i - 1] >> id_bits) != k) &&
                           (i + 1 == n || (keys[i + 1] >> id_bits) != k);
    std::uint8_t flag = 0;
    if (singleton && (k & merge_bit) == 0) {
      const std::size_t channel =
          static_cast<std::size_t>(k >> link_shift) * bandwidth +
          static_cast<std::size_t>(k & wl_mask);
      flag = (epochs[channel] != current_epoch || releases[channel] <= now)
                 ? 1
                 : 0;
    }
    mask[i] = flag;
  }
}

void prescan_scalar(std::span<const std::uint64_t> keys, unsigned id_bits,
                    std::uint32_t merge_bit, std::uint32_t bandwidth,
                    const std::uint32_t* epochs, std::uint32_t current_epoch,
                    const SimTime* releases, SimTime now,
                    std::uint8_t* mask) {
  prescan_scalar_range(keys, 0, keys.size(), id_bits, merge_bit, bandwidth,
                       epochs, current_epoch, releases, now, mask);
}

#if OPTO_ATTEMPT_X86

// --- SSE2 ---------------------------------------------------------------
// Baseline x86-64 has no gathers and no 64-bit compares, so these kernels
// vectorize the arithmetic over scalar-gathered lanes (build) and the
// neighbor equality over loaded lanes (prescan); the registry check stays
// scalar per candidate. The win is modest by design — AVX2 below is the
// fast path — but the code path is distinct, which is what the lane-width
// differential tests exercise.

void build_keys_sse2(std::span<const WormId> ids, const std::uint32_t* cursor,
                     const std::uint32_t* flat_keys, const std::uint32_t* wl,
                     std::uint32_t merge_bit, unsigned id_bits,
                     std::uint64_t* out) {
  const std::size_t n = ids.size();
  const __m128i vmerge = _mm_set1_epi32(static_cast<int>(merge_bit));
  const __m128i vzero = _mm_setzero_si128();
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(id_bits));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids.data() + i));
    const __m128i vfk =
        _mm_set_epi32(static_cast<int>(flat_keys[cursor[ids[i + 3]]]),
                      static_cast<int>(flat_keys[cursor[ids[i + 2]]]),
                      static_cast<int>(flat_keys[cursor[ids[i + 1]]]),
                      static_cast<int>(flat_keys[cursor[ids[i]]]));
    const __m128i vwl = _mm_set_epi32(static_cast<int>(wl[ids[i + 3]]),
                                      static_cast<int>(wl[ids[i + 2]]),
                                      static_cast<int>(wl[ids[i + 1]]),
                                      static_cast<int>(wl[ids[i]]));
    const __m128i keep_wl =
        _mm_cmpeq_epi32(_mm_and_si128(vfk, vmerge), vzero);
    const __m128i vkey = _mm_or_si128(vfk, _mm_and_si128(vwl, keep_wl));
    // Widen the 4 x u32 (key, id) pairs to u64 words: interleave with
    // zeros for the unsigned extension, shift keys into place, OR ids.
    const __m128i key_lo = _mm_unpacklo_epi32(vkey, vzero);
    const __m128i key_hi = _mm_unpackhi_epi32(vkey, vzero);
    const __m128i id_lo = _mm_unpacklo_epi32(vids, vzero);
    const __m128i id_hi = _mm_unpackhi_epi32(vids, vzero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(_mm_sll_epi64(key_lo, shift), id_lo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2),
                     _mm_or_si128(_mm_sll_epi64(key_hi, shift), id_hi));
  }
  if (i < n)
    build_keys_scalar(ids.subspan(i), cursor, flat_keys, wl, merge_bit,
                      id_bits, out + i);
}

/// 64-bit lane equality out of SSE2's 32-bit compare: both halves must
/// match.
inline __m128i eq64_sse2(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(
      eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

void prescan_sse2(std::span<const std::uint64_t> keys, unsigned id_bits,
                  std::uint32_t merge_bit, std::uint32_t bandwidth,
                  const std::uint32_t* epochs, std::uint32_t current_epoch,
                  const SimTime* releases, SimTime now, std::uint8_t* mask) {
  const std::size_t n = keys.size();
  if (n < 4) {
    prescan_scalar(keys, id_bits, merge_bit, bandwidth, epochs,
                   current_epoch, releases, now, mask);
    return;
  }
  const std::uint64_t wl_mask = merge_bit - 1;
  const unsigned link_shift =
      static_cast<unsigned>(std::countr_zero(merge_bit)) + 1;
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(id_bits));
  const __m128i vmerge =
      _mm_set1_epi64x(static_cast<long long>(merge_bit));
  const __m128i vzero = _mm_setzero_si128();
  const auto check_free = [&](std::uint64_t k) -> std::uint8_t {
    const std::size_t channel =
        static_cast<std::size_t>(k >> link_shift) * bandwidth +
        static_cast<std::size_t>(k & wl_mask);
    return (epochs[channel] != current_epoch || releases[channel] <= now)
               ? 1
               : 0;
  };
  // Lane 0 and the tail (which needs keys[i+1] past the block) go scalar.
  prescan_scalar_range(keys, 0, 1, id_bits, merge_bit, bandwidth, epochs,
                       current_epoch, releases, now, mask);
  std::size_t i = 1;
  for (; i + 2 <= n - 1; i += 2) {
    const __m128i prev = _mm_srl_epi64(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(keys.data() + i - 1)),
        shift);
    const __m128i cur = _mm_srl_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys.data() + i)),
        shift);
    const __m128i next = _mm_srl_epi64(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(keys.data() + i + 1)),
        shift);
    const __m128i repeated =
        _mm_or_si128(eq64_sse2(cur, prev), eq64_sse2(cur, next));
    const __m128i fixed =
        eq64_sse2(_mm_and_si128(cur, vmerge), vzero);  // merge bit clear
    const __m128i candidate = _mm_andnot_si128(repeated, fixed);
    const int mm = _mm_movemask_pd(_mm_castsi128_pd(candidate));
    mask[i] = (mm & 1) != 0 ? check_free(keys[i] >> id_bits) : 0;
    mask[i + 1] =
        (mm & 2) != 0 ? check_free(keys[i + 1] >> id_bits) : 0;
  }
  prescan_scalar_range(keys, i, n, id_bits, merge_bit, bandwidth, epochs,
                       current_epoch, releases, now, mask);
}

// --- AVX2 ---------------------------------------------------------------
// Compiled with a target attribute so default (no -march) builds still
// carry it; dispatch guards on simd::cpu_level().

__attribute__((target("avx2"))) void build_keys_avx2(
    std::span<const WormId> ids, const std::uint32_t* cursor,
    const std::uint32_t* flat_keys, const std::uint32_t* wl,
    std::uint32_t merge_bit, unsigned id_bits, std::uint64_t* out) {
  const std::size_t n = ids.size();
  const __m256i vmerge = _mm256_set1_epi32(static_cast<int>(merge_bit));
  const __m256i vzero = _mm256_setzero_si256();
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(id_bits));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vids = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ids.data() + i));
    const __m256i vcur = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(cursor), vids, 4);
    const __m256i vfk = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(flat_keys), vcur, 4);
    const __m256i vwl =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(wl), vids, 4);
    const __m256i keep_wl =
        _mm256_cmpeq_epi32(_mm256_and_si256(vfk, vmerge), vzero);
    const __m256i vkey =
        _mm256_or_si256(vfk, _mm256_and_si256(vwl, keep_wl));
    const __m256i key_lo =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(vkey));
    const __m256i key_hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(vkey, 1));
    const __m256i id_lo =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(vids));
    const __m256i id_hi =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(vids, 1));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_or_si256(_mm256_sll_epi64(key_lo, shift), id_lo));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i + 4),
        _mm256_or_si256(_mm256_sll_epi64(key_hi, shift), id_hi));
  }
  if (i < n)
    build_keys_scalar(ids.subspan(i), cursor, flat_keys, wl, merge_bit,
                      id_bits, out + i);
}

__attribute__((target("avx2"))) void prescan_avx2(
    std::span<const std::uint64_t> keys, unsigned id_bits,
    std::uint32_t merge_bit, std::uint32_t bandwidth,
    const std::uint32_t* epochs, std::uint32_t current_epoch,
    const SimTime* releases, SimTime now, std::uint8_t* mask) {
  const std::size_t n = keys.size();
  if (n < 6) {
    prescan_scalar(keys, id_bits, merge_bit, bandwidth, epochs,
                   current_epoch, releases, now, mask);
    return;
  }
  const unsigned link_shift =
      static_cast<unsigned>(std::countr_zero(merge_bit)) + 1;
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(id_bits));
  const __m128i wl_shift = _mm_cvtsi32_si128(static_cast<int>(link_shift));
  const __m256i vmerge =
      _mm256_set1_epi64x(static_cast<long long>(merge_bit));
  const __m256i vwl_mask =
      _mm256_set1_epi64x(static_cast<long long>(merge_bit) - 1);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vepoch =
      _mm256_set1_epi64x(static_cast<long long>(current_epoch));
  const __m256i vnow = _mm256_set1_epi64x(static_cast<long long>(now));
  const __m256i vbw = _mm256_set1_epi64x(static_cast<long long>(bandwidth));
  // Lane 0 and the tail (whose lookahead would run off the array) go
  // scalar; the vector body covers i ∈ [1, n−1) four lanes at a time.
  prescan_scalar_range(keys, 0, 1, id_bits, merge_bit, bandwidth, epochs,
                       current_epoch, releases, now, mask);
  std::size_t i = 1;
  for (; i + 4 <= n - 1; i += 4) {
    const __m256i prev = _mm256_srl_epi64(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(keys.data() + i - 1)),
        shift);
    const __m256i cur = _mm256_srl_epi64(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(keys.data() + i)),
        shift);
    const __m256i next = _mm256_srl_epi64(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(keys.data() + i + 1)),
        shift);
    const __m256i repeated = _mm256_or_si256(_mm256_cmpeq_epi64(cur, prev),
                                             _mm256_cmpeq_epi64(cur, next));
    const __m256i fixed =
        _mm256_cmpeq_epi64(_mm256_and_si256(cur, vmerge), vzero);
    const __m256i candidate = _mm256_andnot_si256(repeated, fixed);
    // Channel = link * bandwidth + wavelength. Every lane's key is real,
    // so the index is in bounds whether or not the lane is a candidate —
    // the gathers can run unmasked.
    const __m256i channel = _mm256_add_epi64(
        _mm256_mul_epu32(_mm256_srl_epi64(cur, wl_shift), vbw),
        _mm256_and_si256(cur, vwl_mask));
    const __m128i ep32 = _mm256_i64gather_epi32(
        reinterpret_cast<const int*>(epochs), channel, 4);
    const __m256i rel = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(releases), channel, 8);
    const __m256i occupied = _mm256_and_si256(
        _mm256_cmpeq_epi64(_mm256_cvtepu32_epi64(ep32), vepoch),
        _mm256_cmpgt_epi64(rel, vnow));
    const __m256i admit = _mm256_andnot_si256(occupied, candidate);
    const int mm = _mm256_movemask_pd(_mm256_castsi256_pd(admit));
    mask[i] = static_cast<std::uint8_t>(mm & 1);
    mask[i + 1] = static_cast<std::uint8_t>((mm >> 1) & 1);
    mask[i + 2] = static_cast<std::uint8_t>((mm >> 2) & 1);
    mask[i + 3] = static_cast<std::uint8_t>((mm >> 3) & 1);
  }
  prescan_scalar_range(keys, i, n, id_bits, merge_bit, bandwidth, epochs,
                       current_epoch, releases, now, mask);
}

#endif  // OPTO_ATTEMPT_X86

}  // namespace

int build_keys_at_level(int level, std::span<const WormId> ids,
                        const std::uint32_t* cursor,
                        const std::uint32_t* flat_keys,
                        const std::uint32_t* wl, std::uint32_t merge_bit,
                        unsigned id_bits, std::uint64_t* out) {
#if OPTO_ATTEMPT_X86
  if (level >= simd::kLevelAvx2 && simd::cpu_level() >= simd::kLevelAvx2) {
    build_keys_avx2(ids, cursor, flat_keys, wl, merge_bit, id_bits, out);
    return simd::kLevelAvx2;
  }
  if (level >= simd::kLevelSse2) {
    build_keys_sse2(ids, cursor, flat_keys, wl, merge_bit, id_bits, out);
    return simd::kLevelSse2;
  }
#else
  (void)level;
#endif
  build_keys_scalar(ids, cursor, flat_keys, wl, merge_bit, id_bits, out);
  return simd::kLevelScalar;
}

int prescan_at_level(int level, std::span<const std::uint64_t> keys,
                     unsigned id_bits, std::uint32_t merge_bit,
                     std::uint32_t bandwidth, const std::uint32_t* epochs,
                     std::uint32_t current_epoch, const SimTime* releases,
                     SimTime now, std::uint8_t* mask) {
#if OPTO_ATTEMPT_X86
  if (level >= simd::kLevelAvx2 && simd::cpu_level() >= simd::kLevelAvx2) {
    prescan_avx2(keys, id_bits, merge_bit, bandwidth, epochs, current_epoch,
                 releases, now, mask);
    return simd::kLevelAvx2;
  }
  if (level >= simd::kLevelSse2) {
    prescan_sse2(keys, id_bits, merge_bit, bandwidth, epochs, current_epoch,
                 releases, now, mask);
    return simd::kLevelSse2;
  }
#else
  (void)level;
#endif
  prescan_scalar(keys, id_bits, merge_bit, bandwidth, epochs, current_epoch,
                 releases, now, mask);
  return simd::kLevelScalar;
}

void build_keys(std::span<const WormId> ids, const std::uint32_t* cursor,
                const std::uint32_t* flat_keys, const std::uint32_t* wl,
                std::uint32_t merge_bit, unsigned id_bits, bool allow_simd,
                std::uint64_t* out) {
  const bool lanes = allow_simd && ids.size() >= kMinLaneElements;
  build_keys_at_level(lanes ? simd::active_level() : simd::kLevelScalar, ids,
                      cursor, flat_keys, wl, merge_bit, id_bits, out);
}

void prescan_free_singletons(std::span<const std::uint64_t> keys,
                             unsigned id_bits, std::uint32_t merge_bit,
                             std::uint32_t bandwidth,
                             const std::uint32_t* epochs,
                             std::uint32_t current_epoch,
                             const SimTime* releases, SimTime now,
                             bool allow_simd, std::uint8_t* mask) {
  const bool lanes = allow_simd && keys.size() >= kMinLaneElements;
  prescan_at_level(lanes ? simd::active_level() : simd::kLevelScalar, keys,
                   id_bits, merge_bit, bandwidth, epochs, current_epoch,
                   releases, now, mask);
}

}  // namespace opto::attempt
