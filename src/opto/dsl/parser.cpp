// Recursive-descent parser for the `.opto` grammar (ast.hpp).
#include <cstddef>

#include "opto/dsl/ast.hpp"

namespace opto::dsl {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string file, ScenarioAst& ast,
         DslError& error)
      : tokens_(std::move(tokens)), file_(std::move(file)), ast_(ast),
        error_(error) {}

  bool run() {
    ast_.file = file_;
    if (!expect_ident("scenario", "a scenario starts with 'scenario'"))
      return false;
    ast_.loc = tokens_[pos_ - 1].loc;
    if (peek().kind != TokenKind::String)
      return fail(peek().loc, "expected scenario name string, got " +
                                  peek().describe());
    ast_.name = take().text;
    if (!expect(TokenKind::LBrace, "after the scenario name")) return false;
    while (peek().kind != TokenKind::RBrace) {
      if (peek().kind == TokenKind::End)
        return fail(peek().loc, "expected '}' closing the scenario, got " +
                                    peek().describe());
      if (!item()) return false;
    }
    take();  // '}'
    if (peek().kind != TokenKind::End)
      return fail(peek().loc, "expected end of file after the scenario, got " +
                                  peek().describe());
    return true;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& take() { return tokens_[pos_++]; }

  bool fail(SourceLoc loc, std::string message) {
    error_ = DslError{file_, loc, std::move(message)};
    return false;
  }

  bool expect(TokenKind kind, const std::string& context) {
    if (peek().kind == kind) {
      take();
      return true;
    }
    return fail(peek().loc, "expected " + describe(kind) + " " + context +
                                ", got " + peek().describe());
  }

  bool expect_ident(const std::string& word, const std::string& message) {
    if (peek().kind == TokenKind::Ident && peek().text == word) {
      take();
      return true;
    }
    return fail(peek().loc, message + ", got " + peek().describe());
  }

  /// One scenario body item: `key value;` or `keyword [tag] { … }`.
  bool item() {
    if (peek().kind != TokenKind::Ident)
      return fail(peek().loc, "expected a setting or section name, got " +
                                  peek().describe());
    const bool is_section =
        peek(1).kind == TokenKind::LBrace ||
        (peek(1).kind == TokenKind::Ident &&
         peek(2).kind == TokenKind::LBrace);
    if (is_section) return section();
    Setting setting;
    if (!parse_setting(setting)) return false;
    ast_.settings.push_back(std::move(setting));
    return true;
  }

  bool section() {
    Section section;
    const Token& keyword = take();
    section.keyword = keyword.text;
    section.loc = keyword.loc;
    if (peek().kind == TokenKind::Ident) {
      const Token& tag = take();
      section.variant = tag.text;
      section.variant_loc = tag.loc;
    }
    for (const Section& prior : ast_.sections) {
      if (prior.keyword == section.keyword)
        return fail(section.loc,
                    "duplicate '" + section.keyword + "' section (first at " +
                        "line " + std::to_string(prior.loc.line) + ")");
    }
    take();  // '{' (guaranteed by the lookahead in item())
    while (peek().kind != TokenKind::RBrace) {
      if (peek().kind == TokenKind::End)
        return fail(peek().loc, "expected '}' closing section '" +
                                    section.keyword + "', got " +
                                    peek().describe());
      Setting setting;
      if (!parse_setting(setting)) return false;
      section.settings.push_back(std::move(setting));
    }
    take();  // '}'
    ast_.sections.push_back(std::move(section));
    return true;
  }

  bool parse_setting(Setting& setting) {
    if (peek().kind != TokenKind::Ident)
      return fail(peek().loc,
                  "expected a setting name, got " + peek().describe());
    const Token& key = take();
    setting.key = key.text;
    setting.loc = key.loc;
    if (!parse_value(setting.value, 0)) return false;
    return expect(TokenKind::Semi, "after setting '" + setting.key + "'");
  }

  bool parse_value(Value& value, int depth) {
    const Token& token = peek();
    value.loc = token.loc;
    switch (token.kind) {
      case TokenKind::Number:
        value.kind = Value::Kind::Number;
        value.text = take().text;
        return true;
      case TokenKind::String:
        value.kind = Value::Kind::String;
        value.text = take().text;
        return true;
      case TokenKind::Ident:
        value.kind = Value::Kind::Ident;
        value.text = take().text;
        return true;
      case TokenKind::LBracket: {
        if (depth >= kMaxListDepth)
          return fail(token.loc, "list nesting deeper than " +
                                     std::to_string(kMaxListDepth) +
                                     " levels");
        take();  // '['
        value.kind = Value::Kind::List;
        value.text.clear();
        if (peek().kind == TokenKind::RBracket) {
          take();
          return true;
        }
        while (true) {
          Value item;
          if (!parse_value(item, depth + 1)) return false;
          value.items.push_back(std::move(item));
          if (peek().kind == TokenKind::Comma) {
            take();
            continue;
          }
          return expect(TokenKind::RBracket, "closing the list");
        }
      }
      default:
        return fail(token.loc,
                    "expected a value (number, string, identifier, or "
                    "list), got " + token.describe());
    }
  }

  std::vector<Token> tokens_;
  std::string file_;
  std::size_t pos_ = 0;
  ScenarioAst& ast_;
  DslError& error_;
};

}  // namespace

bool parse_program(std::string_view source, const std::string& file,
                   ScenarioAst& ast, DslError& error) {
  ast = ScenarioAst{};
  std::vector<Token> tokens;
  if (!lex(source, file, tokens, error)) return false;
  Parser parser(std::move(tokens), file, ast, error);
  return parser.run();
}

}  // namespace opto::dsl
