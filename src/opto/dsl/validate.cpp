#include "opto/dsl/validate.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "opto/dsl/canonical.hpp"
#include "opto/util/json_parse.hpp"

namespace opto::dsl {

const char* to_string(ScenarioMode mode) {
  switch (mode) {
    case ScenarioMode::Trials: return "trials";
    case ScenarioMode::Engine: return "engine";
    case ScenarioMode::Pass: return "pass";
  }
  return "trials";
}

namespace {

std::string value_desc(const Value& value) {
  switch (value.kind) {
    case Value::Kind::Number: return "number '" + value.text + "'";
    case Value::Kind::String: return "string \"" + value.text + "\"";
    case Value::Kind::Ident: return "identifier '" + value.text + "'";
    case Value::Kind::List: return "a list";
  }
  return "a value";
}

std::string join_options(const std::vector<std::string>& options) {
  std::string out;
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (i > 0) out += i + 1 == options.size() ? " or " : ", ";
    out += options[i];
  }
  return out;
}

std::string slugify(const std::string& name) {
  std::string slug;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "scenario" : slug;
}

/// Expected node count of a topology — converter lists are per-node.
std::uint64_t topology_nodes(const TopologySpec& topo) {
  if (topo.family == "butterfly")
    return static_cast<std::uint64_t>(topo.dim + 1) << topo.dim;
  if (topo.family == "mesh")
    return static_cast<std::uint64_t>(topo.side) * topo.side;
  if (topo.family == "hypercube") return std::uint64_t{1} << topo.dim;
  if (topo.family == "single_link") return 2;
  if (topo.family == "fattree") {
    const std::uint64_t half = topo.radix / 2;
    // cores + (agg + edge per pod) + hosts
    return half * half + static_cast<std::uint64_t>(topo.radix) * topo.radix +
           half * half * topo.radix;
  }
  if (topo.family == "bcube") {
    std::uint64_t servers = 1;
    for (std::uint32_t l = 0; l < topo.levels; ++l) servers *= topo.ports;
    return servers + static_cast<std::uint64_t>(topo.levels) *
                         (servers / topo.ports);
  }
  return topo.nodes;  // ring, complete, explicit
}

class Validator {
 public:
  Validator(const ScenarioAst& ast, ScenarioSpec& spec, DslError& error)
      : ast_(ast), spec_(spec), error_(error) {}

  bool run() {
    spec_ = ScenarioSpec{};
    spec_.name = ast_.name;
    if (!top_level()) return false;
    for (const Section& section : ast_.sections) {
      if (!dispatch(section)) return false;
    }
    return finish();
  }

 private:
  bool fail(SourceLoc loc, std::string message) {
    error_ = DslError{ast_.file, loc, std::move(message)};
    return false;
  }

  // ---- typed extraction -------------------------------------------------

  bool get_u64(const Setting& s, std::uint64_t lo, std::uint64_t hi,
               std::uint64_t& out) {
    return u64_from(s.value, "setting '" + s.key + "'", lo, hi, out);
  }

  bool u64_from(const Value& v, const std::string& what, std::uint64_t lo,
                std::uint64_t hi, std::uint64_t& out) {
    if (v.kind != Value::Kind::Number)
      return fail(v.loc,
                  "expected an integer for " + what + ", got " + value_desc(v));
    if (v.text.find_first_of(".eE") != std::string::npos)
      return fail(v.loc,
                  "expected an integer for " + what + ", got " + value_desc(v));
    if (v.text[0] == '-')
      return fail(v.loc, "expected a non-negative integer for " + what +
                             ", got " + value_desc(v));
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v.text.c_str(), &end, 10);
    const bool overflow = errno == ERANGE || *end != '\0';
    out = static_cast<std::uint64_t>(parsed);
    if (overflow || out < lo || out > hi)
      return fail(v.loc, what + " out of range: got " + v.text +
                             ", expected " + std::to_string(lo) + ".." +
                             std::to_string(hi));
    return true;
  }

  bool get_u32(const Setting& s, std::uint64_t lo, std::uint64_t hi,
               std::uint32_t& out) {
    std::uint64_t wide = 0;
    if (!get_u64(s, lo, hi, wide)) return false;
    out = static_cast<std::uint32_t>(wide);
    return true;
  }

  bool get_double(const Setting& s, double lo, double hi,
                  const std::string& range, double& out,
                  bool lo_exclusive = false) {
    const Value& v = s.value;
    if (v.kind != Value::Kind::Number)
      return fail(v.loc, "expected a number for setting '" + s.key +
                             "', got " + value_desc(v));
    errno = 0;
    out = std::strtod(v.text.c_str(), nullptr);
    const bool below = lo_exclusive ? out <= lo : out < lo;
    if (errno == ERANGE || below || out > hi)
      return fail(v.loc, "setting '" + s.key + "' out of range: got " +
                             v.text + ", expected " + range);
    return true;
  }

  bool get_string(const Setting& s, std::string& out) {
    if (s.value.kind != Value::Kind::String)
      return fail(s.value.loc, "expected a string for setting '" + s.key +
                                   "', got " + value_desc(s.value));
    out = s.value.text;
    return true;
  }

  bool get_enum(const Setting& s, const std::vector<std::string>& options,
                std::string& out) {
    if (s.value.kind != Value::Kind::Ident)
      return fail(s.value.loc, "expected an identifier for setting '" +
                                   s.key + "', got " + value_desc(s.value));
    for (const std::string& option : options) {
      if (s.value.text == option) {
        out = option;
        return true;
      }
    }
    return fail(s.value.loc, "unknown value '" + s.value.text +
                                 "' for setting '" + s.key + "' (expected " +
                                 join_options(options) + ")");
  }

  bool get_bool(const Setting& s, bool& out) {
    std::string word;
    if (!get_enum(s, {"true", "false"}, word)) return false;
    out = word == "true";
    return true;
  }

  bool get_list(const Setting& s, const Value*& out) {
    if (s.value.kind != Value::Kind::List)
      return fail(s.value.loc, "expected a list for setting '" + s.key +
                                   "', got " + value_desc(s.value));
    out = &s.value;
    return true;
  }

  /// `[[a, b], …]` — fixed-arity integer tuples (edges, pinned, launches).
  bool get_tuple_list(
      const Setting& s, std::size_t arity, const std::string& what,
      std::vector<std::vector<std::uint64_t>>& out) {
    const Value* list = nullptr;
    if (!get_list(s, list)) return false;
    out.clear();
    for (const Value& item : list->items) {
      if (item.kind != Value::Kind::List)
        return fail(item.loc, "expected a " + what + " list [" +
                                  std::to_string(arity) + " integers], got " +
                                  value_desc(item));
      if (item.items.size() != arity)
        return fail(item.loc, "expected " + std::to_string(arity) +
                                  " integers in a " + what + " entry, got " +
                                  std::to_string(item.items.size()));
      std::vector<std::uint64_t> tuple;
      for (const Value& field : item.items) {
        std::uint64_t v = 0;
        if (!u64_from(field, "a " + what + " entry", 0,
                      std::uint64_t{1} << 53, v))
          return false;
        tuple.push_back(v);
      }
      out.push_back(std::move(tuple));
    }
    return true;
  }

  // ---- duplicate / unknown-setting walk ---------------------------------

  template <typename Handler>
  bool walk(const std::vector<Setting>& settings, const std::string& scope,
            Handler&& handler) {
    std::vector<const std::string*> seen;
    for (const Setting& s : settings) {
      for (const std::string* prior : seen) {
        if (*prior == s.key)
          return fail(s.loc, "duplicate setting '" + s.key + "' in " + scope);
      }
      seen.push_back(&s.key);
      int status = handler(s);  // 1 handled, 0 unknown, -1 error
      if (status < 0) return false;
      if (status == 0)
        return fail(s.loc, "unknown setting '" + s.key + "' in " + scope);
    }
    return true;
  }

  // ---- top level ---------------------------------------------------------

  bool top_level() {
    bool saw_mode = false;
    const bool ok = walk(ast_.settings, "the scenario", [&](const Setting& s) {
      if (s.key == "mode") {
        std::string word;
        if (!get_enum(s, {"trials", "engine", "pass"}, word)) return -1;
        spec_.mode = word == "engine"  ? ScenarioMode::Engine
                     : word == "pass" ? ScenarioMode::Pass
                                      : ScenarioMode::Trials;
        saw_mode = true;
        mode_loc_ = s.loc;
        return 1;
      }
      if (s.key == "seed") return get_u64(s, 0, ~std::uint64_t{0}, spec_.seed)
                                      ? 1 : -1;
      if (s.key == "label") return get_string(s, spec_.label) ? 1 : -1;
      if (s.key == "trials") {
        trials_loc_ = s.loc;
        saw_trials_ = true;
        return get_u64(s, 1, std::uint64_t{1} << 20, spec_.trials) ? 1 : -1;
      }
      return 0;
    });
    if (!ok) return false;
    if (!saw_mode) return fail(ast_.loc, "missing required setting 'mode'");
    return true;
  }

  // ---- sections ----------------------------------------------------------

  bool dispatch(const Section& section) {
    if (section.keyword == "topology") return topology(section);
    if (section.keyword == "paths") return paths(section);
    if (section.keyword == "protocol") return protocol(section);
    if (section.keyword == "strategy") return strategy(section);
    if (section.keyword == "schedule") return schedule(section);
    if (section.keyword == "faults") return faults(section);
    if (section.keyword == "engine") return engine(section);
    if (section.keyword == "case") return case_section(section);
    return fail(section.loc, "unknown section '" + section.keyword + "'");
  }

  bool only_in(const Section& section, ScenarioMode mode) {
    if (spec_.mode == mode) return true;
    return fail(section.loc, "section '" + section.keyword +
                                 "' is only valid in " +
                                 std::string(to_string(mode)) + " mode");
  }

  bool topology(const Section& section) {
    saw_topology_ = true;
    TopologySpec& topo = spec_.topology;
    if (section.variant.empty())
      return fail(section.loc,
                  "topology section needs a family tag, e.g. 'topology ring "
                  "{ nodes 8; }'");
    topo.family = section.variant;
    const std::string scope = "topology " + topo.family;
    bool saw_dim = false, saw_side = false, saw_nodes = false,
         saw_edges = false, saw_radix = false, saw_ports = false,
         saw_levels = false;
    SourceLoc radix_loc;
    const auto handler = [&](const Setting& s) {
      if (s.key == "radix" && topo.family == "fattree") {
        saw_radix = true;
        radix_loc = s.value.loc;
        return get_u32(s, 2, 32, topo.radix) ? 1 : -1;
      }
      if (s.key == "ports" && topo.family == "bcube") {
        saw_ports = true;
        return get_u32(s, 2, 16, topo.ports) ? 1 : -1;
      }
      if (s.key == "levels" && topo.family == "bcube") {
        saw_levels = true;
        return get_u32(s, 1, 8, topo.levels) ? 1 : -1;
      }
      if (s.key == "dim" &&
          (topo.family == "butterfly" || topo.family == "hypercube")) {
        saw_dim = true;
        const std::uint64_t hi = topo.family == "butterfly" ? 16 : 20;
        return get_u32(s, 1, hi, topo.dim) ? 1 : -1;
      }
      if (s.key == "side" && topo.family == "mesh") {
        saw_side = true;
        return get_u32(s, 2, 1024, topo.side) ? 1 : -1;
      }
      if (s.key == "nodes" && (topo.family == "ring" ||
                               topo.family == "complete" ||
                               topo.family == "explicit")) {
        saw_nodes = true;
        const std::uint64_t lo = topo.family == "ring" ? 3 : 2;
        return get_u32(s, lo, std::uint64_t{1} << 16, topo.nodes) ? 1 : -1;
      }
      if (s.key == "edges" && topo.family == "explicit") {
        saw_edges = true;
        std::vector<std::vector<std::uint64_t>> tuples;
        if (!get_tuple_list(s, 2, "edge", tuples)) return -1;
        for (std::size_t i = 0; i < tuples.size(); ++i)
          topo.edges.emplace_back(static_cast<std::uint32_t>(tuples[i][0]),
                                  static_cast<std::uint32_t>(tuples[i][1]));
        edges_loc_ = s.value.loc;
        return 1;
      }
      return 0;
    };
    if (topo.family == "butterfly" || topo.family == "mesh" ||
        topo.family == "ring" || topo.family == "hypercube" ||
        topo.family == "complete" || topo.family == "single_link" ||
        topo.family == "fattree" || topo.family == "bcube" ||
        topo.family == "explicit") {
      if (!walk(section.settings, scope, handler)) return false;
    } else {
      return fail(section.variant_loc,
                  "unknown topology family '" + topo.family + "'");
    }
    if ((topo.family == "butterfly" || topo.family == "hypercube") &&
        !saw_dim)
      return fail(section.loc,
                  "missing required setting 'dim' in " + scope);
    if (topo.family == "mesh" && !saw_side)
      return fail(section.loc,
                  "missing required setting 'side' in " + scope);
    if ((topo.family == "ring" || topo.family == "complete" ||
         topo.family == "explicit") && !saw_nodes)
      return fail(section.loc,
                  "missing required setting 'nodes' in " + scope);
    if (topo.family == "fattree") {
      if (!saw_radix)
        return fail(section.loc,
                    "missing required setting 'radix' in " + scope);
      if (topo.radix % 2 != 0)
        return fail(radix_loc, "fat-tree radix must be even, got " +
                                   std::to_string(topo.radix));
    }
    if (topo.family == "bcube") {
      if (!saw_ports)
        return fail(section.loc,
                    "missing required setting 'ports' in " + scope);
      if (!saw_levels)
        return fail(section.loc,
                    "missing required setting 'levels' in " + scope);
      if (topology_nodes(topo) > (std::uint64_t{1} << 16))
        return fail(section.loc,
                    "bcube is too large: got " +
                        std::to_string(topology_nodes(topo)) +
                        " nodes, the cap is 65536");
    }
    if (topo.family == "explicit") {
      if (!saw_edges)
        return fail(section.loc,
                    "missing required setting 'edges' in " + scope);
      for (const auto& [u, v] : topo.edges) {
        if (u >= topo.nodes || v >= topo.nodes)
          return fail(edges_loc_, "edge endpoint " +
                                      std::to_string(u >= topo.nodes ? u : v) +
                                      " out of range for " +
                                      std::to_string(topo.nodes) + " nodes");
        if (u == v)
          return fail(edges_loc_,
                      "self-edge " + std::to_string(u) + " is not allowed");
      }
    }
    return true;
  }

  bool paths(const Section& section) {
    saw_paths_ = true;
    paths_loc_ = section.loc;
    PathsSpec& paths = spec_.paths;
    if (section.variant.empty())
      return fail(section.loc,
                  "paths section needs a system tag, e.g. 'paths bfs { "
                  "workload permutation; }'");
    paths.system = section.variant;
    if (paths.system != "butterfly_io" &&
        paths.system != "mesh_dimension_order" && paths.system != "bfs" &&
        paths.system != "explicit")
      return fail(section.variant_loc,
                  "unknown path system '" + paths.system + "'");
    const std::string scope = "paths " + paths.system;
    bool saw_workload = false, saw_routes = false;
    const bool ok = walk(section.settings, scope, [&](const Setting& s) {
      if (s.key == "workload" && paths.system != "explicit") {
        saw_workload = true;
        return get_enum(s, {"permutation", "random_function"}, paths.workload)
                   ? 1 : -1;
      }
      if (s.key == "routes" && paths.system == "explicit") {
        saw_routes = true;
        routes_loc_ = s.value.loc;
        const Value* list = nullptr;
        if (!get_list(s, list)) return -1;
        for (const Value& route : list->items) {
          if (route.kind != Value::Kind::List) {
            fail(route.loc,
                 "expected a route list of node ids, got " + value_desc(route));
            return -1;
          }
          std::vector<std::uint32_t> nodes;
          for (const Value& node : route.items) {
            std::uint64_t id = 0;
            if (!u64_from(node, "a route node", 0, std::uint64_t{1} << 32,
                          id))
              return -1;
            nodes.push_back(static_cast<std::uint32_t>(id));
          }
          paths.routes.push_back(std::move(nodes));
        }
        return 1;
      }
      return 0;
    });
    if (!ok) return false;
    if (paths.system != "explicit" && !saw_workload)
      return fail(section.loc,
                  "missing required setting 'workload' in " + scope);
    if (paths.system == "explicit" && !saw_routes)
      return fail(section.loc,
                  "missing required setting 'routes' in " + scope);
    return true;
  }

  bool protocol(const Section& section) {
    ProtocolSpec& proto = spec_.protocol;
    const bool ok = walk(section.settings, "protocol", [&](const Setting& s) {
      if (s.key == "rule")
        return get_enum(s, {"serve_first", "priority"}, proto.rule) ? 1 : -1;
      if (s.key == "tie")
        return get_enum(s, {"kill_all", "first_wins"}, proto.tie) ? 1 : -1;
      if (s.key == "bandwidth")
        return get_u32(s, 1, 65535, proto.bandwidth) ? 1 : -1;
      if (s.key == "worm_length")
        return get_u32(s, 1, std::uint64_t{1} << 20, proto.worm_length)
                   ? 1 : -1;
      if (s.key == "max_rounds")
        return get_u32(s, 1, std::uint64_t{1} << 20, proto.max_rounds)
                   ? 1 : -1;
      if (s.key == "ack")
        return get_enum(s, {"ideal", "simulated"}, proto.ack) ? 1 : -1;
      if (s.key == "ack_length")
        return get_u32(s, 1, std::uint64_t{1} << 20, proto.ack_length)
                   ? 1 : -1;
      if (s.key == "conversion") {
        conversion_loc_ = s.loc;
        return get_enum(s, {"none", "full", "sparse"}, proto.conversion)
                   ? 1 : -1;
      }
      if (s.key == "converters") {
        converters_loc_ = s.value.loc;
        const Value* list = nullptr;
        if (!get_list(s, list)) return -1;
        for (const Value& flag : list->items) {
          std::uint64_t v = 0;
          if (!u64_from(flag, "a converter flag", 0, 1, v)) return -1;
          proto.converters.push_back(static_cast<std::uint32_t>(v));
        }
        return 1;
      }
      return 0;
    });
    if (!ok) return false;
    if (proto.conversion == "sparse" && proto.converters.empty())
      return fail(section.loc,
                  "sparse conversion requires a 'converters' flag list");
    if (proto.conversion != "sparse" && !proto.converters.empty())
      return fail(converters_loc_,
                  "'converters' is only valid with sparse conversion");
    return true;
  }

  bool strategy(const Section& section) {
    if (!only_in(section, ScenarioMode::Trials)) return false;
    saw_strategy_ = true;
    strategy_loc_ = section.loc;
    StrategySpec& strat = spec_.strategy;
    strat.declared = true;
    if (section.variant.empty())
      return fail(section.loc,
                  "strategy section needs a kind tag, e.g. 'strategy "
                  "first_fit { k 3; }'");
    strat.kind = section.variant;
    if (strat.kind != "first_fit" && strat.kind != "least_used" &&
        strat.kind != "random_fit" && strat.kind != "multipath" &&
        strat.kind != "valiant")
      return fail(section.variant_loc,
                  "unknown strategy kind '" + strat.kind + "'");
    const std::string scope = "strategy " + strat.kind;
    SourceLoc split_loc;
    bool saw_split = false;
    const bool ok = walk(section.settings, scope, [&](const Setting& s) {
      if (s.key == "k")
        return get_u32(s, 1, 16, strat.candidates) ? 1 : -1;
      if (s.key == "split") {
        saw_split = true;
        split_loc = s.loc;
        return get_u32(s, 1, 8, strat.split_ways) ? 1 : -1;
      }
      return 0;
    });
    if (!ok) return false;
    // 'split' names the multipath stripe width; pairing it with a
    // single-route assignment is a conflicting-keys error, not a knob.
    if (saw_split && strat.kind != "multipath")
      return fail(split_loc, "setting 'split' conflicts with strategy '" +
                                 strat.kind +
                                 "' (only multipath stripes requests)");
    return true;
  }

  bool schedule(const Section& section) {
    if (!only_in(section, ScenarioMode::Trials)) return false;
    ScheduleSpec& sched = spec_.schedule;
    if (section.variant.empty())
      return fail(section.loc,
                  "schedule section needs a kind tag, e.g. 'schedule paper "
                  "{ }'");
    sched.kind = section.variant;
    if (sched.kind != "paper" && sched.kind != "fixed" &&
        sched.kind != "nodelay" && sched.kind != "adaptive")
      return fail(section.variant_loc,
                  "unknown schedule kind '" + sched.kind + "'");
    const std::string scope = "schedule " + sched.kind;
    bool saw_delta = false, saw_initial = false;
    const bool ok = walk(section.settings, scope, [&](const Setting& s) {
      if (s.key == "congestion_factor" && sched.kind == "paper")
        return get_double(s, 0.0, 1e6, "(0..1000000]",
                          sched.congestion_factor, true) ? 1 : -1;
      if (s.key == "log_floor_factor" && sched.kind == "paper")
        return get_double(s, 0.0, 1e6, "(0..1000000]",
                          sched.log_floor_factor, true) ? 1 : -1;
      if (s.key == "delta" && sched.kind == "fixed") {
        saw_delta = true;
        return get_u64(s, 1, kMaxDelta, sched.delta) ? 1 : -1;
      }
      if (s.key == "initial" && sched.kind == "adaptive") {
        saw_initial = true;
        return get_u64(s, 1, kMaxDelta, sched.initial) ? 1 : -1;
      }
      return 0;
    });
    if (!ok) return false;
    if (sched.kind == "fixed" && !saw_delta)
      return fail(section.loc,
                  "missing required setting 'delta' in " + scope);
    if (sched.kind == "adaptive" && !saw_initial)
      return fail(section.loc,
                  "missing required setting 'initial' in " + scope);
    return true;
  }

  bool faults(const Section& section) {
    FaultSpec& f = spec_.faults;
    f.declared = true;
    const auto rate = [&](const Setting& s, double& out) {
      return get_double(s, 0.0, 1.0, "0..1", out) ? 1 : -1;
    };
    return walk(section.settings, "faults", [&](const Setting& s) {
      if (s.key == "link_outage_rate") return rate(s, f.link_outage_rate);
      if (s.key == "coupler_outage_rate")
        return rate(s, f.coupler_outage_rate);
      if (s.key == "stuck_wavelength_rate")
        return rate(s, f.stuck_wavelength_rate);
      if (s.key == "corruption_rate") return rate(s, f.corruption_rate);
      if (s.key == "ack_drop_rate") return rate(s, f.ack_drop_rate);
      if (s.key == "outage_period")
        return get_u64(s, 1, std::uint64_t{1} << 20, f.outage_period)
                   ? 1 : -1;
      if (s.key == "outage_duration")
        return get_u64(s, 1, std::uint64_t{1} << 20, f.outage_duration)
                   ? 1 : -1;
      if (s.key == "seed" && spec_.mode == ScenarioMode::Pass)
        return get_u64(s, 0, ~std::uint64_t{0}, f.seed) ? 1 : -1;
      if (s.key == "epoch" && spec_.mode == ScenarioMode::Pass)
        return get_u64(s, 0, ~std::uint64_t{0} >> 12, f.epoch) ? 1 : -1;
      return 0;
    });
  }

  bool engine(const Section& section) {
    if (!only_in(section, ScenarioMode::Engine)) return false;
    EngineSpec& eng = spec_.engine;
    const bool ok = walk(section.settings, "engine", [&](const Setting& s) {
      if (s.key == "process")
        return get_enum(s, {"poisson", "mmpp", "trace"}, eng.process)
                   ? 1 : -1;
      if (s.key == "rate")
        return get_double(s, 0.0, 1e9, "(0..1e9]", eng.rate, true) ? 1 : -1;
      if (s.key == "mmpp_burst")
        return get_double(s, 0.0, 1e6, "(0..1000000]", eng.mmpp_burst, true)
                   ? 1 : -1;
      if (s.key == "mmpp_calm")
        return get_double(s, 0.0, 1e6, "(0..1000000]", eng.mmpp_calm, true)
                   ? 1 : -1;
      if (s.key == "mmpp_mean_dwell")
        return get_double(s, 0.0, 1e9, "(0..1e9]", eng.mmpp_mean_dwell, true)
                   ? 1 : -1;
      if (s.key == "trace") {
        const Value* list = nullptr;
        if (!get_list(s, list)) return -1;
        for (const Value& gap : list->items) {
          if (gap.kind != Value::Kind::Number) {
            fail(gap.loc, "expected a number in the trace list, got " +
                              value_desc(gap));
            return -1;
          }
          const double g = std::strtod(gap.text.c_str(), nullptr);
          if (g <= 0.0) {
            fail(gap.loc, "trace gaps must be positive, got " + gap.text);
            return -1;
          }
          eng.trace.push_back(g);
        }
        return 1;
      }
      if (s.key == "holding_time")
        return get_double(s, 0.0, 1e9, "(0..1e9]", eng.holding_time, true)
                   ? 1 : -1;
      if (s.key == "round_interval")
        return get_double(s, 0.0, 1e9, "(0..1e9]", eng.round_interval, true)
                   ? 1 : -1;
      if (s.key == "round_delta")
        return get_u64(s, 1, kMaxDelta, eng.round_delta) ? 1 : -1;
      if (s.key == "max_setup_rounds")
        return get_u32(s, 1, std::uint64_t{1} << 20, eng.max_setup_rounds)
                   ? 1 : -1;
      if (s.key == "arrivals")
        return get_u64(s, 1, std::uint64_t{1} << 40, eng.arrivals) ? 1 : -1;
      if (s.key == "warmup_divisor")
        return get_u32(s, 1, std::uint64_t{1} << 20, eng.warmup_divisor)
                   ? 1 : -1;
      if (s.key == "fit")
        return get_enum(s, {"first_fit", "random_fit"}, eng.fit) ? 1 : -1;
      if (s.key == "record") return get_bool(s, eng.record) ? 1 : -1;
      return 0;
    });
    if (!ok) return false;
    if (eng.process == "trace" && eng.trace.empty())
      return fail(section.loc,
                  "trace arrivals require a non-empty 'trace' list");
    if (eng.process != "trace" && !eng.trace.empty())
      return fail(section.loc,
                  "'trace' is only valid with the trace process");
    return true;
  }

  bool case_section(const Section& section) {
    if (!only_in(section, ScenarioMode::Pass)) return false;
    saw_case_ = true;
    bool saw_launches = false;
    const bool ok = walk(section.settings, "case", [&](const Setting& s) {
      if (s.key == "seed")
        return get_u64(s, 0, ~std::uint64_t{0}, spec_.case_seed) ? 1 : -1;
      if (s.key == "index")
        return get_u64(s, 0, ~std::uint64_t{0} >> 12, spec_.case_index)
                   ? 1 : -1;
      if (s.key == "launches") {
        saw_launches = true;
        launches_loc_ = s.value.loc;
        std::vector<std::vector<std::uint64_t>> tuples;
        if (!get_tuple_list(s, 5, "launch", tuples)) return -1;
        for (const auto& t : tuples) {
          LaunchSpecLine line;
          line.path = static_cast<std::uint32_t>(t[0]);
          line.start = t[1];
          line.wavelength = static_cast<std::uint32_t>(t[2]);
          line.priority = static_cast<std::uint32_t>(t[3]);
          line.length = static_cast<std::uint32_t>(t[4]);
          if (line.length == 0) {
            fail(s.value.loc, "launch lengths must be at least 1");
            return -1;
          }
          spec_.launches.push_back(line);
        }
        return 1;
      }
      if (s.key == "pinned") {
        std::vector<std::vector<std::uint64_t>> tuples;
        if (!get_tuple_list(s, 2, "pinned-slot", tuples)) return -1;
        for (const auto& t : tuples)
          spec_.pinned.emplace_back(static_cast<std::uint32_t>(t[0]),
                                    static_cast<std::uint32_t>(t[1]));
        return 1;
      }
      return 0;
    });
    if (!ok) return false;
    if (!saw_launches)
      return fail(section.loc, "missing required setting 'launches' in case");
    return true;
  }

  // ---- cross-section / mode checks ---------------------------------------

  bool finish() {
    if (!saw_topology_)
      return fail(ast_.loc, "missing required section 'topology'");
    if (spec_.label.empty()) spec_.label = slugify(spec_.name);

    if (spec_.mode == ScenarioMode::Trials || spec_.mode == ScenarioMode::Pass) {
      if (!saw_paths_)
        return fail(ast_.loc, "missing required section 'paths'");
    }
    if (spec_.mode == ScenarioMode::Engine && saw_paths_)
      return fail(paths_loc_,
                  "section 'paths' is not valid in engine mode (the engine "
                  "builds its own BFS routes)");
    if (saw_trials_ && spec_.mode != ScenarioMode::Trials)
      return fail(trials_loc_,
                  "setting 'trials' is only valid in trials mode");

    const std::string& system = spec_.paths.system;
    if (saw_paths_) {
      if (system == "butterfly_io" && spec_.topology.family != "butterfly")
        return fail(paths_loc_, "path system 'butterfly_io' requires a "
                                    "butterfly topology (got '" +
                                    spec_.topology.family + "')");
      if (system == "mesh_dimension_order" && spec_.topology.family != "mesh")
        return fail(paths_loc_, "path system 'mesh_dimension_order' requires "
                                    "a mesh topology (got '" +
                                    spec_.topology.family + "')");
    }
    if (saw_strategy_ && saw_paths_ && system != "bfs")
      return fail(strategy_loc_,
                  "strategy blocks require the bfs path system (strategies "
                  "choose their own routes; paths supply the workload)");

    if (spec_.mode == ScenarioMode::Pass) {
      if (spec_.topology.family != "explicit")
        return fail(ast_.loc, "pass mode requires an explicit topology");
      if (system != "explicit")
        return fail(paths_loc_, "pass mode requires explicit paths");
      if (!saw_case_)
        return fail(ast_.loc, "missing required section 'case'");
      for (const auto& route : spec_.paths.routes) {
        for (const std::uint32_t node : route) {
          if (node >= spec_.topology.nodes)
            return fail(routes_loc_,
                        "route node " + std::to_string(node) +
                            " out of range for " +
                            std::to_string(spec_.topology.nodes) + " nodes");
        }
      }
      const std::uint64_t links = 2 * spec_.topology.edges.size();
      for (const LaunchSpecLine& line : spec_.launches) {
        if (line.path >= spec_.paths.routes.size())
          return fail(launches_loc_,
                      "launch path " + std::to_string(line.path) +
                          " out of range for " +
                          std::to_string(spec_.paths.routes.size()) +
                          " routes");
        if (line.wavelength >= spec_.protocol.bandwidth)
          return fail(launches_loc_,
                      "launch wavelength " + std::to_string(line.wavelength) +
                          " out of range for bandwidth " +
                          std::to_string(spec_.protocol.bandwidth));
      }
      for (const auto& [link, wavelength] : spec_.pinned) {
        if (link >= links)
          return fail(ast_.loc, "pinned link " + std::to_string(link) +
                                    " out of range for " +
                                    std::to_string(links) +
                                    " directed links");
        if (wavelength >= spec_.protocol.bandwidth)
          return fail(ast_.loc,
                      "pinned wavelength " + std::to_string(wavelength) +
                          " out of range for bandwidth " +
                          std::to_string(spec_.protocol.bandwidth));
      }
    }

    if (spec_.protocol.conversion == "sparse") {
      const std::uint64_t nodes = topology_nodes(spec_.topology);
      if (spec_.protocol.converters.size() != nodes)
        return fail(converters_loc_,
                    "'converters' needs one flag per node: got " +
                        std::to_string(spec_.protocol.converters.size()) +
                        ", topology has " + std::to_string(nodes) + " nodes");
    }
    return true;
  }

  const ScenarioAst& ast_;
  ScenarioSpec& spec_;
  DslError& error_;

  bool saw_topology_ = false;
  bool saw_paths_ = false;
  bool saw_case_ = false;
  bool saw_trials_ = false;
  bool saw_strategy_ = false;
  SourceLoc strategy_loc_;
  SourceLoc mode_loc_;
  SourceLoc trials_loc_;
  SourceLoc paths_loc_;
  SourceLoc routes_loc_;
  SourceLoc edges_loc_;
  SourceLoc launches_loc_;
  SourceLoc conversion_loc_;
  SourceLoc converters_loc_;
};

}  // namespace

bool validate(const ScenarioAst& ast, ScenarioSpec& spec, DslError& error) {
  return Validator(ast, spec, error).run();
}

bool load_opto_text(std::string_view source, const std::string& file,
                    ScenarioSpec& spec, DslError& error) {
  ScenarioAst ast;
  if (!parse_program(source, file, ast, error)) return false;
  return validate(ast, spec, error);
}

bool load_scenario_text(std::string_view source, const std::string& file,
                        ScenarioSpec& spec, DslError& error) {
  std::size_t i = 0;
  while (i < source.size() &&
         std::isspace(static_cast<unsigned char>(source[i])))
    ++i;
  if (i < source.size() && source[i] == '{') {
    std::string json_error;
    const auto doc = parse_json(source, &json_error);
    if (!doc) {
      error = DslError{file, SourceLoc{}, "invalid JSON: " + json_error};
      return false;
    }
    return from_canonical_json(*doc, file, spec, error);
  }
  return load_opto_text(source, file, spec, error);
}

}  // namespace opto::dsl
