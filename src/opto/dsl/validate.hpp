// AST → ScenarioSpec validation, and the one-call text loaders.
//
// Validation is where meaning lives: section/setting names, enum
// spellings, numeric ranges, and mode compatibility are all checked
// here, each failure reported as a DslError anchored at the offending
// token (`file:line:col: message`). The golden diagnostic tests pin
// these messages byte-for-byte, so treat message text as API.
#pragma once

#include <string>
#include <string_view>

#include "opto/dsl/ast.hpp"
#include "opto/dsl/spec.hpp"

namespace opto::dsl {

/// Fixed-schedule / engine Δ range; the "out-of-range Δ" diagnostic.
inline constexpr std::uint64_t kMaxDelta = 1u << 24;

/// Validates a parsed program into a fully-materialized spec. On failure
/// returns false with a source-located `error`.
bool validate(const ScenarioAst& ast, ScenarioSpec& spec, DslError& error);

/// Parses + validates `.opto` source in one step.
bool load_opto_text(std::string_view source, const std::string& file,
                    ScenarioSpec& spec, DslError& error);

/// Loads either form: canonical JSON (first non-space byte '{') or
/// `.opto` source. JSON errors carry no useful line/col (the JSON parser
/// reports byte offsets in its message instead).
bool load_scenario_text(std::string_view source, const std::string& file,
                        ScenarioSpec& spec, DslError& error);

}  // namespace opto::dsl
