#include "opto/dsl/run_core.hpp"

#include <utility>

#include "opto/obs/obs.hpp"
#include "opto/util/stats.hpp"

namespace opto::dsl::detail {

namespace {

constexpr const char* kResultSchema = "opto.scenario.result";
constexpr int kResultSchemaVersion = 1;

JsonValue num(std::uint64_t value) {
  return JsonValue::of(static_cast<double>(value));
}

JsonValue result_root(const std::string& label, const char* mode,
                      std::uint64_t seed) {
  JsonValue root = JsonValue::make_object();
  root.add_member("schema", JsonValue::of(kResultSchema));
  root.add_member("schema_version",
                  JsonValue::of(static_cast<double>(kResultSchemaVersion)));
  root.add_member("label", JsonValue::of(label));
  root.add_member("mode", JsonValue::of(mode));
  root.add_member("seed", JsonValue::of(std::to_string(seed)));
  return root;
}

JsonValue sample_json(const SampleSet& samples) {
  JsonValue out = JsonValue::make_object();
  out.add_member("count", num(samples.count()));
  if (samples.count() > 0) {
    out.add_member("mean", JsonValue::of(samples.mean()));
    out.add_member("min", JsonValue::of(samples.min()));
    out.add_member("max", JsonValue::of(samples.max()));
    out.add_member("p50", JsonValue::of(samples.quantile(0.5)));
    out.add_member("p95", JsonValue::of(samples.quantile(0.95)));
  }
  return out;
}

}  // namespace

JsonValue run_closed(const CollectionFactory& factory,
                     const ScheduleFactory& schedule_factory,
                     const ProtocolConfig& config, std::size_t base_trials,
                     std::uint64_t seed, const std::string& label) {
  const std::size_t trials = scaled_trials(base_trials);
  const TrialAggregate aggregate =
      run_trials(factory, schedule_factory, config, trials, seed);

  obs::annotate("scenario", label);
  obs::set_metric("success_rate", aggregate.success_rate());
  obs::set_metric("failures", static_cast<double>(aggregate.failures));
  if (aggregate.rounds.count() > 0)
    obs::set_metric("rounds_mean", aggregate.rounds.mean());
  if (aggregate.charged_time.count() > 0)
    obs::set_metric("charged_time_mean", aggregate.charged_time.mean());

  JsonValue root = result_root(label, "trials", seed);
  root.add_member("trials", num(aggregate.trials));
  root.add_member("failures", num(aggregate.failures));
  root.add_member("success_rate", JsonValue::of(aggregate.success_rate()));
  root.add_member("ack_drops", num(aggregate.ack_drops));
  root.add_member("duplicates", num(aggregate.duplicates));
  root.add_member("rounds", sample_json(aggregate.rounds));
  root.add_member("charged_time", sample_json(aggregate.charged_time));
  root.add_member("actual_time", sample_json(aggregate.actual_time));
  root.add_member("path_congestion", sample_json(aggregate.path_congestion));
  root.add_member("dilation", sample_json(aggregate.dilation));
  root.add_member("fault_losses", sample_json(aggregate.fault_losses));
  root.add_member("contention_losses",
                  sample_json(aggregate.contention_losses));
  return root;
}

JsonValue run_strategy_closed(const rwa::InstanceFactory& factory,
                              rwa::StrategyKind kind,
                              const rwa::StrategyScheduleConfig& config,
                              std::size_t base_trials, std::uint64_t seed,
                              const std::string& label) {
  const std::size_t trials = scaled_trials(base_trials);
  const rwa::StrategyAggregate aggregate =
      rwa::run_strategy_trials(factory, kind, config, trials, seed);

  obs::annotate("scenario", label);
  obs::annotate("strategy", rwa::to_string(kind));
  obs::set_metric("success_rate", aggregate.success_rate());
  obs::set_metric("failures", static_cast<double>(aggregate.failures));
  if (aggregate.blocking.count() > 0)
    obs::set_metric("blocking_mean", aggregate.blocking.mean());
  if (aggregate.rounds.count() > 0)
    obs::set_metric("rounds_mean", aggregate.rounds.mean());
  if (aggregate.makespan.count() > 0)
    obs::set_metric("makespan_mean", aggregate.makespan.mean());

  JsonValue root = result_root(label, "trials", seed);
  root.add_member("strategy", JsonValue::of(rwa::to_string(kind)));
  root.add_member("trials", num(aggregate.trials));
  root.add_member("failures", num(aggregate.failures));
  root.add_member("success_rate", JsonValue::of(aggregate.success_rate()));
  root.add_member("blocking", sample_json(aggregate.blocking));
  root.add_member("rounds", sample_json(aggregate.rounds));
  root.add_member("makespan", sample_json(aggregate.makespan));
  root.add_member("colors", sample_json(aggregate.colors));
  return root;
}

JsonValue run_engine(std::shared_ptr<const Graph> graph,
                     const EngineConfig& config, std::uint64_t seed,
                     const std::string& label) {
  obs::annotate("scenario", label);
  Engine engine(std::move(graph), config, seed);
  const EngineResult result = engine.run();

  JsonValue root = result_root(label, "engine", seed);
  root.add_member("offered", num(result.offered));
  root.add_member("admitted", num(result.admitted));
  root.add_member("blocked", num(result.blocked));
  root.add_member("expired", num(result.expired));
  root.add_member("conflict_readmits", num(result.conflict_readmits));
  root.add_member("duplicate_deliveries", num(result.duplicate_deliveries));
  root.add_member("rounds", num(result.rounds));
  root.add_member("peak_active", num(result.peak_active));
  root.add_member("blocking_probability",
                  JsonValue::of(result.blocking_probability));
  root.add_member("mean_setup_rounds", JsonValue::of(result.mean_setup_rounds));
  root.add_member("p50_setup_rounds", JsonValue::of(result.p50_setup_rounds));
  root.add_member("p99_setup_rounds", JsonValue::of(result.p99_setup_rounds));
  root.add_member("sim_duration", JsonValue::of(result.sim_duration));
  // p50/p99_setup_wall_ns and requests_per_s are wall-clock-dependent and
  // deliberately never enter the model result.
  return root;
}

JsonValue run_pass(const testlib::FuzzCase& fuzz, const std::string& label) {
  obs::annotate("scenario", label);
  const auto built = testlib::build_case(fuzz);
  Simulator simulator(built->collection, built->config);
  if (!fuzz.pinned.empty())
    simulator.set_pinned({fuzz.pinned.data(), fuzz.pinned.size()});
  const PassResult pass =
      simulator.run({fuzz.specs.data(), fuzz.specs.size()});

  JsonValue root = result_root(label, "pass", fuzz.seed);
  JsonValue metrics = JsonValue::make_object();
  const PassMetrics& m = pass.metrics;
  metrics.add_member("launched", num(m.launched));
  metrics.add_member("delivered", num(m.delivered));
  metrics.add_member("killed", num(m.killed));
  metrics.add_member("truncated", num(m.truncated));
  metrics.add_member("truncated_arrivals", num(m.truncated_arrivals));
  metrics.add_member("contentions", num(m.contentions));
  metrics.add_member("retunes", num(m.retunes));
  metrics.add_member("fault_kills", num(m.fault_kills));
  metrics.add_member("pinned_blocks", num(m.pinned_blocks));
  metrics.add_member("corrupted", num(m.corrupted));
  metrics.add_member("corrupted_arrivals", num(m.corrupted_arrivals));
  metrics.add_member("makespan", num(static_cast<std::uint64_t>(m.makespan)));
  metrics.add_member("worm_steps", num(m.worm_steps));
  metrics.add_member("link_busy_steps", num(m.link_busy_steps));
  root.add_member("metrics", std::move(metrics));

  JsonValue outcomes = JsonValue::make_array();
  for (const WormOutcome& worm : pass.worms) {
    JsonValue entry = JsonValue::make_array();
    entry.items.push_back(
        num(static_cast<std::uint64_t>(static_cast<std::uint8_t>(worm.status))));
    entry.items.push_back(num(worm.truncated ? 1 : 0));
    entry.items.push_back(num(worm.corrupted ? 1 : 0));
    entry.items.push_back(num(worm.fault_loss ? 1 : 0));
    entry.items.push_back(num(worm.pinned_loss ? 1 : 0));
    entry.items.push_back(JsonValue::of(static_cast<double>(worm.finish_time)));
    outcomes.items.push_back(std::move(entry));
  }
  root.add_member("outcomes", std::move(outcomes));
  return root;
}

}  // namespace opto::dsl::detail
