// Raw syntax tree of one `.opto` scenario — shape only, no meaning.
//
// The parser produces this; validate.hpp turns it into the typed
// ScenarioSpec. Keeping the two apart lets parse errors and semantic
// errors carry equally precise source locations, and gives the grammar
// fuzzer a stable intermediate to round-trip through.
//
// Grammar (full EBNF in DESIGN.md §10):
//   program  := "scenario" STRING "{" item* "}"
//   item     := section | setting
//   section  := IDENT [IDENT] "{" setting* "}"
//   setting  := IDENT value ";"
//   value    := NUMBER | STRING | IDENT | "[" [value {"," value}] "]"
#pragma once

#include <string>
#include <vector>

#include "opto/dsl/lexer.hpp"

namespace opto::dsl {

/// Maximum list-in-list depth the parser accepts. Scenario data needs
/// two levels (routes, launches); the cap exists so hostile inputs
/// cannot recurse the parser off the stack.
inline constexpr int kMaxListDepth = 8;

struct Value {
  enum class Kind : std::uint8_t { Number, String, Ident, List };

  Kind kind = Kind::Number;
  std::string text;          ///< number spelling / string payload / ident
  std::vector<Value> items;  ///< Kind::List payload
  SourceLoc loc;
};

struct Setting {
  std::string key;
  SourceLoc loc;       ///< of the key
  Value value;
};

struct Section {
  std::string keyword;       ///< "topology", "protocol", …
  SourceLoc loc;
  std::string variant;       ///< optional tag: `topology butterfly { … }`
  SourceLoc variant_loc;
  std::vector<Setting> settings;
};

struct ScenarioAst {
  std::string file;          ///< for diagnostics
  std::string name;          ///< the quoted scenario name
  SourceLoc loc;             ///< of the `scenario` keyword
  std::vector<Setting> settings;   ///< top-level `key value;` items
  std::vector<Section> sections;   ///< in declaration order
};

/// Parses one program. On failure returns false and fills `error` with a
/// source-located message; duplicate sections are rejected here (the
/// location names the second occurrence).
bool parse_program(std::string_view source, const std::string& file,
                   ScenarioAst& ast, DslError& error);

}  // namespace opto::dsl
