// Canonical JSON form of a ScenarioSpec — schema "opto.scenario/1".
//
// The dump is byte-stable: object keys sort lexicographically
// (util/json_parse's sorted writer), 64-bit seeds serialize as decimal
// strings (JSON numbers are doubles and would round them), defaults are
// materialized, and mode-irrelevant sections are omitted entirely. The
// loader is strict — unknown keys are errors — so
// parse → dump → parse → dump is a byte-exact fixed point, which the
// scenario-smoke CI job and test_dsl_canonical enforce.
#pragma once

#include <string>

#include "opto/dsl/lexer.hpp"
#include "opto/dsl/spec.hpp"
#include "opto/util/json_parse.hpp"

namespace opto::dsl {

inline constexpr const char* kScenarioSchema = "opto.scenario";
inline constexpr int kScenarioSchemaVersion = 1;

JsonValue to_canonical_json(const ScenarioSpec& spec);

/// Sorted keys plus one trailing newline — the bytes committed as
/// examples/golden/*.json.
std::string canonical_text(const ScenarioSpec& spec);

/// Strict inverse of to_canonical_json (any key order accepted; unknown
/// keys rejected). `file` only labels the error.
bool from_canonical_json(const JsonValue& doc, const std::string& file,
                         ScenarioSpec& spec, DslError& error);

}  // namespace opto::dsl
