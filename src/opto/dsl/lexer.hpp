// Lexer for the `.opto` scenario language (DESIGN.md §10).
//
// The token stream is deliberately small — identifiers, numbers, strings,
// six punctuators — because every scenario construct is spelled as
// `key value;` settings inside `section { … }` blocks. Numbers keep
// their raw spelling so 64-bit seeds survive untruncated (JSON-style
// doubles would round them) and so diagnostics can echo exactly what the
// author wrote. Every token carries a 1-based line:column source
// location; all downstream errors (parse and validation alike) format as
// `file:line:col: message`, which the golden diagnostic tests pin
// byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace opto::dsl {

struct SourceLoc {
  std::uint32_t line = 1;
  std::uint32_t col = 1;
};

/// A lexing/parsing/validation diagnostic: one source-located message.
struct DslError {
  std::string file;
  SourceLoc loc;
  std::string message;

  /// `file:line:col: message` — the format every .opto consumer prints.
  std::string format() const;
};

enum class TokenKind : std::uint8_t {
  Ident,     ///< [A-Za-z_][A-Za-z0-9_]*
  Number,    ///< raw spelling kept in `text`
  String,    ///< unescaped payload in `text`
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  End,       ///< end of input
};

/// Human-readable token description for "expected X, got Y" messages.
std::string describe(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;  ///< identifier spelling, number spelling, string payload
  SourceLoc loc;

  /// What this token looks like in a diagnostic ("identifier 'mesh'",
  /// "number '42'", "'{'", "end of file").
  std::string describe() const;
};

/// Tokenizes a whole program. Comments run `#` or `//` to end of line.
/// On failure returns false and fills `error`; `tokens` always ends with
/// an End token on success.
bool lex(std::string_view source, const std::string& file,
         std::vector<Token>& tokens, DslError& error);

}  // namespace opto::dsl
