#include "opto/dsl/lexer.hpp"

#include <cctype>

namespace opto::dsl {

std::string DslError::format() const {
  return file + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.col) +
         ": " + message;
}

std::string describe(TokenKind kind) {
  switch (kind) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::String: return "string";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semi: return "';'";
    case TokenKind::End: return "end of file";
  }
  return "token";
}

std::string Token::describe() const {
  switch (kind) {
    case TokenKind::Ident: return "identifier '" + text + "'";
    case TokenKind::Number: return "number '" + text + "'";
    case TokenKind::String: return "string \"" + text + "\"";
    default: return dsl::describe(kind);
  }
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Cursor {
 public:
  explicit Cursor(std::string_view source) : source_(source) {}

  bool done() const { return pos_ >= source_.size(); }
  char peek() const { return source_[pos_]; }
  char peek2() const {
    return pos_ + 1 < source_.size() ? source_[pos_ + 1] : '\0';
  }
  SourceLoc loc() const { return loc_; }

  char take() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.col = 1;
    } else {
      ++loc_.col;
    }
    return c;
  }

 private:
  std::string_view source_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

}  // namespace

bool lex(std::string_view source, const std::string& file,
         std::vector<Token>& tokens, DslError& error) {
  tokens.clear();
  Cursor cur(source);
  const auto fail = [&](SourceLoc at, std::string message) {
    error = DslError{file, at, std::move(message)};
    return false;
  };

  while (!cur.done()) {
    const char c = cur.peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.take();
      continue;
    }
    if (c == '#' || (c == '/' && cur.peek2() == '/')) {
      while (!cur.done() && cur.peek() != '\n') cur.take();
      continue;
    }
    const SourceLoc at = cur.loc();
    if (ident_start(c)) {
      std::string text;
      while (!cur.done() && ident_char(cur.peek())) text.push_back(cur.take());
      tokens.push_back(Token{TokenKind::Ident, std::move(text), at});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') &&
         std::isdigit(static_cast<unsigned char>(cur.peek2())))) {
      std::string text;
      text.push_back(cur.take());  // sign or first digit
      bool seen_dot = false;
      bool seen_exp = false;
      while (!cur.done()) {
        const char d = cur.peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          text.push_back(cur.take());
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          text.push_back(cur.take());
        } else if ((d == 'e' || d == 'E') && !seen_exp) {
          seen_exp = true;
          text.push_back(cur.take());
          if (!cur.done() && (cur.peek() == '+' || cur.peek() == '-'))
            text.push_back(cur.take());
        } else if (ident_char(d) || d == '.') {
          // 1.2.3, 0x1f, 12abc … — reject with the full bad spelling.
          while (!cur.done() && (ident_char(cur.peek()) || cur.peek() == '.'))
            text.push_back(cur.take());
          return fail(at, "malformed number '" + text + "'");
        } else {
          break;
        }
      }
      const char last = text.back();
      if (!std::isdigit(static_cast<unsigned char>(last)))
        return fail(at, "malformed number '" + text + "'");
      tokens.push_back(Token{TokenKind::Number, std::move(text), at});
      continue;
    }
    if (c == '"') {
      cur.take();
      std::string text;
      bool closed = false;
      while (!cur.done()) {
        const char d = cur.take();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\n') break;  // strings are single-line
        if (d == '\\') {
          if (cur.done()) break;
          const char e = cur.take();
          switch (e) {
            case '"': text.push_back('"'); break;
            case '\\': text.push_back('\\'); break;
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            default:
              return fail(at, std::string("unknown escape '\\") + e +
                                  "' in string");
          }
          continue;
        }
        text.push_back(d);
      }
      if (!closed) return fail(at, "unterminated string");
      tokens.push_back(Token{TokenKind::String, std::move(text), at});
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '{': kind = TokenKind::LBrace; break;
      case '}': kind = TokenKind::RBrace; break;
      case '[': kind = TokenKind::LBracket; break;
      case ']': kind = TokenKind::RBracket; break;
      case ',': kind = TokenKind::Comma; break;
      case ';': kind = TokenKind::Semi; break;
      default:
        return fail(at, std::string("unexpected character '") + c + "'");
    }
    cur.take();
    tokens.push_back(Token{kind, std::string(1, c), at});
  }
  tokens.push_back(Token{TokenKind::End, "", cur.loc()});
  return true;
}

}  // namespace opto::dsl
