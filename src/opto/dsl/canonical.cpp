#include "opto/dsl/canonical.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "opto/dsl/validate.hpp"

namespace opto::dsl {

namespace {

JsonValue dec(std::uint64_t value) {
  return JsonValue::of(std::to_string(value));
}

JsonValue num(std::uint64_t value) {
  return JsonValue::of(static_cast<double>(value));
}

JsonValue tuple2(std::uint64_t a, std::uint64_t b) {
  JsonValue pair = JsonValue::make_array();
  pair.items.push_back(num(a));
  pair.items.push_back(num(b));
  return pair;
}

JsonValue topology_json(const TopologySpec& topo) {
  JsonValue out = JsonValue::make_object();
  out.add_member("family", JsonValue::of(topo.family));
  if (topo.family == "butterfly" || topo.family == "hypercube")
    out.add_member("dim", num(topo.dim));
  if (topo.family == "mesh") out.add_member("side", num(topo.side));
  if (topo.family == "ring" || topo.family == "complete" ||
      topo.family == "explicit")
    out.add_member("nodes", num(topo.nodes));
  if (topo.family == "fattree") out.add_member("radix", num(topo.radix));
  if (topo.family == "bcube") {
    out.add_member("ports", num(topo.ports));
    out.add_member("levels", num(topo.levels));
  }
  if (topo.family == "explicit") {
    JsonValue edges = JsonValue::make_array();
    for (const auto& [u, v] : topo.edges) edges.items.push_back(tuple2(u, v));
    out.add_member("edges", std::move(edges));
  }
  return out;
}

JsonValue paths_json(const PathsSpec& paths) {
  JsonValue out = JsonValue::make_object();
  out.add_member("system", JsonValue::of(paths.system));
  if (paths.system == "explicit") {
    JsonValue routes = JsonValue::make_array();
    for (const auto& route : paths.routes) {
      JsonValue nodes = JsonValue::make_array();
      for (const std::uint32_t node : route) nodes.items.push_back(num(node));
      routes.items.push_back(std::move(nodes));
    }
    out.add_member("routes", std::move(routes));
  } else {
    out.add_member("workload", JsonValue::of(paths.workload));
  }
  return out;
}

JsonValue protocol_json(const ProtocolSpec& proto) {
  JsonValue out = JsonValue::make_object();
  out.add_member("rule", JsonValue::of(proto.rule));
  out.add_member("tie", JsonValue::of(proto.tie));
  out.add_member("bandwidth", num(proto.bandwidth));
  out.add_member("worm_length", num(proto.worm_length));
  out.add_member("max_rounds", num(proto.max_rounds));
  out.add_member("ack", JsonValue::of(proto.ack));
  out.add_member("ack_length", num(proto.ack_length));
  out.add_member("conversion", JsonValue::of(proto.conversion));
  if (proto.conversion == "sparse") {
    JsonValue flags = JsonValue::make_array();
    for (const std::uint32_t flag : proto.converters)
      flags.items.push_back(num(flag));
    out.add_member("converters", std::move(flags));
  }
  return out;
}

JsonValue strategy_json(const StrategySpec& strat) {
  JsonValue out = JsonValue::make_object();
  out.add_member("kind", JsonValue::of(strat.kind));
  out.add_member("k", num(strat.candidates));
  if (strat.kind == "multipath") out.add_member("split", num(strat.split_ways));
  return out;
}

JsonValue schedule_json(const ScheduleSpec& sched) {
  JsonValue out = JsonValue::make_object();
  out.add_member("kind", JsonValue::of(sched.kind));
  if (sched.kind == "paper") {
    out.add_member("congestion_factor", JsonValue::of(sched.congestion_factor));
    out.add_member("log_floor_factor", JsonValue::of(sched.log_floor_factor));
  }
  if (sched.kind == "fixed") out.add_member("delta", num(sched.delta));
  if (sched.kind == "adaptive") out.add_member("initial", num(sched.initial));
  return out;
}

JsonValue faults_json(const FaultSpec& faults, ScenarioMode mode) {
  JsonValue out = JsonValue::make_object();
  out.add_member("link_outage_rate", JsonValue::of(faults.link_outage_rate));
  out.add_member("coupler_outage_rate",
                 JsonValue::of(faults.coupler_outage_rate));
  out.add_member("outage_period", num(faults.outage_period));
  out.add_member("outage_duration", num(faults.outage_duration));
  out.add_member("stuck_wavelength_rate",
                 JsonValue::of(faults.stuck_wavelength_rate));
  out.add_member("corruption_rate", JsonValue::of(faults.corruption_rate));
  out.add_member("ack_drop_rate", JsonValue::of(faults.ack_drop_rate));
  if (mode == ScenarioMode::Pass) {
    out.add_member("seed", dec(faults.seed));
    out.add_member("epoch", dec(faults.epoch));
  }
  return out;
}

JsonValue engine_json(const EngineSpec& eng) {
  JsonValue out = JsonValue::make_object();
  out.add_member("process", JsonValue::of(eng.process));
  out.add_member("rate", JsonValue::of(eng.rate));
  if (eng.process == "mmpp") {
    out.add_member("mmpp_burst", JsonValue::of(eng.mmpp_burst));
    out.add_member("mmpp_calm", JsonValue::of(eng.mmpp_calm));
    out.add_member("mmpp_mean_dwell", JsonValue::of(eng.mmpp_mean_dwell));
  }
  if (eng.process == "trace") {
    JsonValue gaps = JsonValue::make_array();
    for (const double gap : eng.trace)
      gaps.items.push_back(JsonValue::of(gap));
    out.add_member("trace", std::move(gaps));
  }
  out.add_member("holding_time", JsonValue::of(eng.holding_time));
  out.add_member("round_interval", JsonValue::of(eng.round_interval));
  out.add_member("round_delta", num(eng.round_delta));
  out.add_member("max_setup_rounds", num(eng.max_setup_rounds));
  out.add_member("arrivals", num(eng.arrivals));
  out.add_member("warmup_divisor", num(eng.warmup_divisor));
  out.add_member("fit", JsonValue::of(eng.fit));
  out.add_member("record", JsonValue::of(eng.record));
  return out;
}

JsonValue case_json(const ScenarioSpec& spec) {
  JsonValue out = JsonValue::make_object();
  out.add_member("seed", dec(spec.case_seed));
  out.add_member("index", num(spec.case_index));
  JsonValue launches = JsonValue::make_array();
  for (const LaunchSpecLine& line : spec.launches) {
    JsonValue entry = JsonValue::make_array();
    entry.items.push_back(num(line.path));
    entry.items.push_back(num(line.start));
    entry.items.push_back(num(line.wavelength));
    entry.items.push_back(num(line.priority));
    entry.items.push_back(num(line.length));
    launches.items.push_back(std::move(entry));
  }
  out.add_member("launches", std::move(launches));
  if (!spec.pinned.empty()) {
    JsonValue pinned = JsonValue::make_array();
    for (const auto& [link, wavelength] : spec.pinned)
      pinned.items.push_back(tuple2(link, wavelength));
    out.add_member("pinned", std::move(pinned));
  }
  return out;
}

}  // namespace

JsonValue to_canonical_json(const ScenarioSpec& spec) {
  JsonValue root = JsonValue::make_object();
  root.add_member("schema", JsonValue::of(kScenarioSchema));
  root.add_member("schema_version",
                  JsonValue::of(static_cast<double>(kScenarioSchemaVersion)));
  root.add_member("name", JsonValue::of(spec.name));
  root.add_member("mode", JsonValue::of(to_string(spec.mode)));
  root.add_member("seed", dec(spec.seed));
  root.add_member("label", JsonValue::of(spec.label));
  root.add_member("topology", topology_json(spec.topology));
  root.add_member("protocol", protocol_json(spec.protocol));
  if (spec.mode == ScenarioMode::Trials) {
    root.add_member("trials", num(spec.trials));
    root.add_member("schedule", schedule_json(spec.schedule));
    if (spec.strategy.declared)
      root.add_member("strategy", strategy_json(spec.strategy));
  }
  if (spec.mode != ScenarioMode::Engine)
    root.add_member("paths", paths_json(spec.paths));
  if (spec.mode == ScenarioMode::Engine)
    root.add_member("engine", engine_json(spec.engine));
  if (spec.faults.declared)
    root.add_member("faults", faults_json(spec.faults, spec.mode));
  if (spec.mode == ScenarioMode::Pass)
    root.add_member("case", case_json(spec));
  return root;
}

std::string canonical_text(const ScenarioSpec& spec) {
  std::ostringstream os;
  write_json(os, to_canonical_json(spec), /*sorted_keys=*/true);
  os << '\n';
  return os.str();
}

// ---- strict loader --------------------------------------------------------

namespace {

/// Mirrors the .opto validator but over JSON values; errors name the key
/// path instead of a line/col (JSON inputs are machine-written).
class JsonLoader {
 public:
  JsonLoader(const std::string& file, ScenarioSpec& spec, DslError& error)
      : file_(file), spec_(spec), error_(error) {}

  bool run(const JsonValue& doc) {
    spec_ = ScenarioSpec{};
    if (!doc.is_object()) return fail("the document is not a JSON object");
    if (doc.string_at("schema") != kScenarioSchema)
      return fail("expected schema \"" + std::string(kScenarioSchema) +
                  "\", got \"" + doc.string_at("schema") + "\"");
    if (doc.number_at("schema_version") != kScenarioSchemaVersion)
      return fail("unsupported schema_version");

    const std::string mode = doc.string_at("mode");
    if (mode == "trials") spec_.mode = ScenarioMode::Trials;
    else if (mode == "engine") spec_.mode = ScenarioMode::Engine;
    else if (mode == "pass") spec_.mode = ScenarioMode::Pass;
    else return fail("unknown mode '" + mode + "'");

    for (const auto& [key, value] : doc.members) {
      if (key == "schema" || key == "schema_version" || key == "mode")
        continue;
      if (key == "name") spec_.name = value.as_string();
      else if (key == "label") spec_.label = value.as_string();
      else if (key == "seed") {
        if (!read_seed(value, "seed", spec_.seed)) return false;
      } else if (key == "trials") {
        if (spec_.mode != ScenarioMode::Trials)
          return fail("'trials' is only valid in trials mode");
        if (!read_u64(value, "trials", 1, std::uint64_t{1} << 20,
                      spec_.trials))
          return false;
      } else if (key == "topology") {
        if (!topology(value)) return false;
      } else if (key == "paths") {
        if (spec_.mode == ScenarioMode::Engine)
          return fail("'paths' is not valid in engine mode");
        if (!paths(value)) return false;
      } else if (key == "protocol") {
        if (!protocol(value)) return false;
      } else if (key == "schedule") {
        if (spec_.mode != ScenarioMode::Trials)
          return fail("'schedule' is only valid in trials mode");
        if (!schedule(value)) return false;
      } else if (key == "strategy") {
        if (spec_.mode != ScenarioMode::Trials)
          return fail("'strategy' is only valid in trials mode");
        if (!strategy(value)) return false;
      } else if (key == "faults") {
        if (!faults(value)) return false;
      } else if (key == "engine") {
        if (spec_.mode != ScenarioMode::Engine)
          return fail("'engine' is only valid in engine mode");
        if (!engine(value)) return false;
      } else if (key == "case") {
        if (spec_.mode != ScenarioMode::Pass)
          return fail("'case' is only valid in pass mode");
        if (!case_object(value)) return false;
      } else {
        return fail("unknown key '" + key + "'");
      }
    }

    if (spec_.topology.family.empty()) return fail("missing 'topology'");
    if (spec_.mode != ScenarioMode::Engine && spec_.paths.system.empty())
      return fail("missing 'paths'");
    if (spec_.mode == ScenarioMode::Pass && !saw_case_)
      return fail("missing 'case'");
    if (spec_.label.empty()) return fail("missing 'label'");
    return true;
  }

 private:
  bool fail(std::string message) {
    error_ = DslError{file_, SourceLoc{}, std::move(message)};
    return false;
  }

  bool read_seed(const JsonValue& value, const std::string& key,
                 std::uint64_t& out) {
    if (!value.is_string())
      return fail("'" + key + "' must be a decimal string");
    errno = 0;
    char* end = nullptr;
    out = std::strtoull(value.text.c_str(), &end, 10);
    if (value.text.empty() || *end != '\0' || errno == ERANGE)
      return fail("'" + key + "' is not a decimal: \"" + value.text + "\"");
    return true;
  }

  bool read_u64(const JsonValue& value, const std::string& key,
                std::uint64_t lo, std::uint64_t hi, std::uint64_t& out) {
    if (!value.is_number() || value.number < 0 ||
        value.number != static_cast<double>(
                            static_cast<std::uint64_t>(value.number)))
      return fail("'" + key + "' must be a non-negative integer");
    out = static_cast<std::uint64_t>(value.number);
    if (out < lo || out > hi)
      return fail("'" + key + "' out of range: expected " +
                  std::to_string(lo) + ".." + std::to_string(hi));
    return true;
  }

  bool read_u32(const JsonValue& value, const std::string& key,
                std::uint64_t lo, std::uint64_t hi, std::uint32_t& out) {
    std::uint64_t wide = 0;
    if (!read_u64(value, key, lo, hi, wide)) return false;
    out = static_cast<std::uint32_t>(wide);
    return true;
  }

  bool read_double(const JsonValue& value, const std::string& key, double lo,
                   double hi, double& out, bool lo_exclusive = false) {
    if (!value.is_number()) return fail("'" + key + "' must be a number");
    out = value.number;
    const bool below = lo_exclusive ? out <= lo : out < lo;
    if (below || out > hi) return fail("'" + key + "' out of range");
    return true;
  }

  bool read_enum(const JsonValue& value, const std::string& key,
                 const std::vector<std::string>& options, std::string& out) {
    if (!value.is_string()) return fail("'" + key + "' must be a string");
    for (const std::string& option : options) {
      if (value.text == option) {
        out = option;
        return true;
      }
    }
    return fail("unknown value '" + value.text + "' for '" + key + "'");
  }

  bool read_tuples(const JsonValue& value, const std::string& key,
                   std::size_t arity,
                   std::vector<std::vector<std::uint64_t>>& out) {
    if (!value.is_array()) return fail("'" + key + "' must be an array");
    for (const JsonValue& item : value.items) {
      if (!item.is_array() || item.items.size() != arity)
        return fail("'" + key + "' entries must be arrays of " +
                    std::to_string(arity) + " integers");
      std::vector<std::uint64_t> tuple;
      for (const JsonValue& field : item.items) {
        std::uint64_t v = 0;
        if (!read_u64(field, key, 0, std::uint64_t{1} << 53, v)) return false;
        tuple.push_back(v);
      }
      out.push_back(std::move(tuple));
    }
    return true;
  }

  bool topology(const JsonValue& object) {
    TopologySpec& topo = spec_.topology;
    if (!object.is_object()) return fail("'topology' must be an object");
    const JsonValue* edges_value = nullptr;
    topo.family = object.string_at("family");
    if (topo.family != "butterfly" && topo.family != "mesh" &&
        topo.family != "ring" && topo.family != "hypercube" &&
        topo.family != "complete" && topo.family != "single_link" &&
        topo.family != "fattree" && topo.family != "bcube" &&
        topo.family != "explicit")
      return fail("unknown topology family '" + topo.family + "'");
    for (const auto& [key, value] : object.members) {
      if (key == "family") continue;
      if (key == "dim" &&
          (topo.family == "butterfly" || topo.family == "hypercube")) {
        if (!read_u32(value, "dim", 1, topo.family == "butterfly" ? 16 : 20,
                      topo.dim))
          return false;
      } else if (key == "side" && topo.family == "mesh") {
        if (!read_u32(value, "side", 2, 1024, topo.side)) return false;
      } else if (key == "nodes" &&
                 (topo.family == "ring" || topo.family == "complete" ||
                  topo.family == "explicit")) {
        if (!read_u32(value, "nodes", topo.family == "ring" ? 3 : 2,
                      std::uint64_t{1} << 16, topo.nodes))
          return false;
      } else if (key == "radix" && topo.family == "fattree") {
        if (!read_u32(value, "radix", 2, 32, topo.radix)) return false;
        if (topo.radix % 2 != 0)
          return fail("fat-tree radix must be even");
      } else if (key == "ports" && topo.family == "bcube") {
        if (!read_u32(value, "ports", 2, 16, topo.ports)) return false;
      } else if (key == "levels" && topo.family == "bcube") {
        if (!read_u32(value, "levels", 1, 8, topo.levels)) return false;
      } else if (key == "edges" && topo.family == "explicit") {
        // Sorted keys put "edges" before "nodes"; defer the range check
        // until the whole object is read.
        edges_value = &value;
      } else {
        return fail("unknown key '" + key + "' in topology");
      }
    }
    if ((topo.family == "butterfly" || topo.family == "hypercube") &&
        topo.dim == 0)
      return fail("missing 'dim' in topology");
    if (topo.family == "mesh" && topo.side == 0)
      return fail("missing 'side' in topology");
    if ((topo.family == "ring" || topo.family == "complete" ||
         topo.family == "explicit") && topo.nodes == 0)
      return fail("missing 'nodes' in topology");
    if (topo.family == "fattree" && topo.radix == 0)
      return fail("missing 'radix' in topology");
    if (topo.family == "bcube" && (topo.ports == 0 || topo.levels == 0))
      return fail("missing 'ports' or 'levels' in topology");
    if (edges_value != nullptr) {
      std::vector<std::vector<std::uint64_t>> tuples;
      if (!read_tuples(*edges_value, "edges", 2, tuples)) return false;
      for (const auto& t : tuples) {
        if (t[0] >= topo.nodes || t[1] >= topo.nodes || t[0] == t[1])
          return fail("invalid edge in 'edges'");
        topo.edges.emplace_back(static_cast<std::uint32_t>(t[0]),
                                static_cast<std::uint32_t>(t[1]));
      }
    } else if (topo.family == "explicit") {
      return fail("missing 'edges' in topology");
    }
    return true;
  }

  bool paths(const JsonValue& object) {
    PathsSpec& paths = spec_.paths;
    if (!object.is_object()) return fail("'paths' must be an object");
    paths.system = object.string_at("system");
    if (paths.system != "butterfly_io" &&
        paths.system != "mesh_dimension_order" && paths.system != "bfs" &&
        paths.system != "explicit")
      return fail("unknown path system '" + paths.system + "'");
    for (const auto& [key, value] : object.members) {
      if (key == "system") continue;
      if (key == "workload" && paths.system != "explicit") {
        if (!read_enum(value, "workload", {"permutation", "random_function"},
                       paths.workload))
          return false;
      } else if (key == "routes" && paths.system == "explicit") {
        if (!value.is_array()) return fail("'routes' must be an array");
        for (const JsonValue& route : value.items) {
          if (!route.is_array())
            return fail("'routes' entries must be arrays");
          std::vector<std::uint32_t> nodes;
          for (const JsonValue& node : route.items) {
            std::uint64_t id = 0;
            if (!read_u64(node, "routes", 0, std::uint64_t{1} << 32, id))
              return false;
            nodes.push_back(static_cast<std::uint32_t>(id));
          }
          paths.routes.push_back(std::move(nodes));
        }
      } else {
        return fail("unknown key '" + key + "' in paths");
      }
    }
    if (paths.system != "explicit" && paths.workload.empty())
      return fail("missing 'workload' in paths");
    return true;
  }

  bool protocol(const JsonValue& object) {
    ProtocolSpec& proto = spec_.protocol;
    if (!object.is_object()) return fail("'protocol' must be an object");
    for (const auto& [key, value] : object.members) {
      if (key == "rule") {
        if (!read_enum(value, "rule", {"serve_first", "priority"},
                       proto.rule))
          return false;
      } else if (key == "tie") {
        if (!read_enum(value, "tie", {"kill_all", "first_wins"}, proto.tie))
          return false;
      } else if (key == "bandwidth") {
        if (!read_u32(value, "bandwidth", 1, 65535, proto.bandwidth))
          return false;
      } else if (key == "worm_length") {
        if (!read_u32(value, "worm_length", 1, std::uint64_t{1} << 20,
                      proto.worm_length))
          return false;
      } else if (key == "max_rounds") {
        if (!read_u32(value, "max_rounds", 1, std::uint64_t{1} << 20,
                      proto.max_rounds))
          return false;
      } else if (key == "ack") {
        if (!read_enum(value, "ack", {"ideal", "simulated"}, proto.ack))
          return false;
      } else if (key == "ack_length") {
        if (!read_u32(value, "ack_length", 1, std::uint64_t{1} << 20,
                      proto.ack_length))
          return false;
      } else if (key == "conversion") {
        if (!read_enum(value, "conversion", {"none", "full", "sparse"},
                       proto.conversion))
          return false;
      } else if (key == "converters") {
        if (!value.is_array()) return fail("'converters' must be an array");
        for (const JsonValue& flag : value.items) {
          std::uint64_t v = 0;
          if (!read_u64(flag, "converters", 0, 1, v)) return false;
          proto.converters.push_back(static_cast<std::uint32_t>(v));
        }
      } else {
        return fail("unknown key '" + key + "' in protocol");
      }
    }
    if (proto.conversion == "sparse" && proto.converters.empty())
      return fail("sparse conversion requires 'converters'");
    if (proto.conversion != "sparse" && !proto.converters.empty())
      return fail("'converters' is only valid with sparse conversion");
    return true;
  }

  bool schedule(const JsonValue& object) {
    ScheduleSpec& sched = spec_.schedule;
    if (!object.is_object()) return fail("'schedule' must be an object");
    sched.kind = object.string_at("kind");
    if (sched.kind != "paper" && sched.kind != "fixed" &&
        sched.kind != "nodelay" && sched.kind != "adaptive")
      return fail("unknown schedule kind '" + sched.kind + "'");
    for (const auto& [key, value] : object.members) {
      if (key == "kind") continue;
      if (key == "congestion_factor" && sched.kind == "paper") {
        if (!read_double(value, "congestion_factor", 0.0, 1e6,
                         sched.congestion_factor, true))
          return false;
      } else if (key == "log_floor_factor" && sched.kind == "paper") {
        if (!read_double(value, "log_floor_factor", 0.0, 1e6,
                         sched.log_floor_factor, true))
          return false;
      } else if (key == "delta" && sched.kind == "fixed") {
        if (!read_u64(value, "delta", 1, kMaxDelta, sched.delta))
          return false;
      } else if (key == "initial" && sched.kind == "adaptive") {
        if (!read_u64(value, "initial", 1, kMaxDelta, sched.initial))
          return false;
      } else {
        return fail("unknown key '" + key + "' in schedule");
      }
    }
    return true;
  }

  bool strategy(const JsonValue& object) {
    StrategySpec& strat = spec_.strategy;
    strat.declared = true;
    if (!object.is_object()) return fail("'strategy' must be an object");
    strat.kind = object.string_at("kind");
    if (strat.kind != "first_fit" && strat.kind != "least_used" &&
        strat.kind != "random_fit" && strat.kind != "multipath" &&
        strat.kind != "valiant")
      return fail("unknown strategy kind '" + strat.kind + "'");
    for (const auto& [key, value] : object.members) {
      if (key == "kind") continue;
      if (key == "k") {
        if (!read_u32(value, "k", 1, 16, strat.candidates)) return false;
      } else if (key == "split" && strat.kind == "multipath") {
        if (!read_u32(value, "split", 1, 8, strat.split_ways)) return false;
      } else {
        return fail("unknown key '" + key + "' in strategy");
      }
    }
    return true;
  }

  bool faults(const JsonValue& object) {
    FaultSpec& f = spec_.faults;
    f.declared = true;
    if (!object.is_object()) return fail("'faults' must be an object");
    for (const auto& [key, value] : object.members) {
      if (key == "link_outage_rate") {
        if (!read_double(value, key, 0.0, 1.0, f.link_outage_rate))
          return false;
      } else if (key == "coupler_outage_rate") {
        if (!read_double(value, key, 0.0, 1.0, f.coupler_outage_rate))
          return false;
      } else if (key == "stuck_wavelength_rate") {
        if (!read_double(value, key, 0.0, 1.0, f.stuck_wavelength_rate))
          return false;
      } else if (key == "corruption_rate") {
        if (!read_double(value, key, 0.0, 1.0, f.corruption_rate))
          return false;
      } else if (key == "ack_drop_rate") {
        if (!read_double(value, key, 0.0, 1.0, f.ack_drop_rate))
          return false;
      } else if (key == "outage_period") {
        if (!read_u64(value, key, 1, std::uint64_t{1} << 20, f.outage_period))
          return false;
      } else if (key == "outage_duration") {
        if (!read_u64(value, key, 1, std::uint64_t{1} << 20,
                      f.outage_duration))
          return false;
      } else if (key == "seed" && spec_.mode == ScenarioMode::Pass) {
        if (!read_seed(value, "faults.seed", f.seed)) return false;
      } else if (key == "epoch" && spec_.mode == ScenarioMode::Pass) {
        if (!read_seed(value, "faults.epoch", f.epoch)) return false;
      } else {
        return fail("unknown key '" + key + "' in faults");
      }
    }
    return true;
  }

  bool engine(const JsonValue& object) {
    EngineSpec& eng = spec_.engine;
    if (!object.is_object()) return fail("'engine' must be an object");
    eng.process = object.string_at("process", eng.process);
    for (const auto& [key, value] : object.members) {
      if (key == "process") {
        if (!read_enum(value, "process", {"poisson", "mmpp", "trace"},
                       eng.process))
          return false;
      } else if (key == "rate") {
        if (!read_double(value, "rate", 0.0, 1e9, eng.rate, true))
          return false;
      } else if (key == "mmpp_burst" && eng.process == "mmpp") {
        if (!read_double(value, key, 0.0, 1e6, eng.mmpp_burst, true))
          return false;
      } else if (key == "mmpp_calm" && eng.process == "mmpp") {
        if (!read_double(value, key, 0.0, 1e6, eng.mmpp_calm, true))
          return false;
      } else if (key == "mmpp_mean_dwell" && eng.process == "mmpp") {
        if (!read_double(value, key, 0.0, 1e9, eng.mmpp_mean_dwell, true))
          return false;
      } else if (key == "trace" && eng.process == "trace") {
        if (!value.is_array()) return fail("'trace' must be an array");
        for (const JsonValue& gap : value.items) {
          if (!gap.is_number() || gap.number <= 0.0)
            return fail("trace gaps must be positive numbers");
          eng.trace.push_back(gap.number);
        }
        if (eng.trace.empty()) return fail("'trace' must be non-empty");
      } else if (key == "holding_time") {
        if (!read_double(value, key, 0.0, 1e9, eng.holding_time, true))
          return false;
      } else if (key == "round_interval") {
        if (!read_double(value, key, 0.0, 1e9, eng.round_interval, true))
          return false;
      } else if (key == "round_delta") {
        if (!read_u64(value, key, 1, kMaxDelta, eng.round_delta))
          return false;
      } else if (key == "max_setup_rounds") {
        if (!read_u32(value, key, 1, std::uint64_t{1} << 20,
                      eng.max_setup_rounds))
          return false;
      } else if (key == "arrivals") {
        if (!read_u64(value, key, 1, std::uint64_t{1} << 40, eng.arrivals))
          return false;
      } else if (key == "warmup_divisor") {
        if (!read_u32(value, key, 1, std::uint64_t{1} << 20,
                      eng.warmup_divisor))
          return false;
      } else if (key == "fit") {
        if (!read_enum(value, "fit", {"first_fit", "random_fit"}, eng.fit))
          return false;
      } else if (key == "record") {
        if (value.kind != JsonValue::Kind::Bool)
          return fail("'record' must be a boolean");
        eng.record = value.boolean;
      } else {
        return fail("unknown key '" + key + "' in engine");
      }
    }
    return true;
  }

  bool case_object(const JsonValue& object) {
    saw_case_ = true;
    if (!object.is_object()) return fail("'case' must be an object");
    for (const auto& [key, value] : object.members) {
      if (key == "seed") {
        if (!read_seed(value, "case.seed", spec_.case_seed)) return false;
      } else if (key == "index") {
        if (!read_u64(value, "index", 0, ~std::uint64_t{0} >> 12,
                      spec_.case_index))
          return false;
      } else if (key == "launches") {
        std::vector<std::vector<std::uint64_t>> tuples;
        if (!read_tuples(value, "launches", 5, tuples)) return false;
        for (const auto& t : tuples) {
          LaunchSpecLine line;
          line.path = static_cast<std::uint32_t>(t[0]);
          line.start = t[1];
          line.wavelength = static_cast<std::uint32_t>(t[2]);
          line.priority = static_cast<std::uint32_t>(t[3]);
          line.length = static_cast<std::uint32_t>(t[4]);
          if (line.length == 0) return fail("launch lengths must be >= 1");
          spec_.launches.push_back(line);
        }
      } else if (key == "pinned") {
        std::vector<std::vector<std::uint64_t>> tuples;
        if (!read_tuples(value, "pinned", 2, tuples)) return false;
        for (const auto& t : tuples)
          spec_.pinned.emplace_back(static_cast<std::uint32_t>(t[0]),
                                    static_cast<std::uint32_t>(t[1]));
      } else {
        return fail("unknown key '" + key + "' in case");
      }
    }
    return true;
  }

  const std::string& file_;
  ScenarioSpec& spec_;
  DslError& error_;
  bool saw_case_ = false;
};

}  // namespace

bool from_canonical_json(const JsonValue& doc, const std::string& file,
                         ScenarioSpec& spec, DslError& error) {
  return JsonLoader(file, spec, error).run(doc);
}

}  // namespace opto::dsl
