// DSL front-end of the shared run core: ScenarioSpec → native objects.
//
// The factory lambdas here deliberately mirror the bench binaries'
// hand-written factories call for call (same topology construction, same
// Rng draw order) — that is what makes the byte-equivalence against the
// hand-coded builtins a meaningful proof rather than a tautology.
#include "opto/dsl/runner.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "opto/dsl/run_core.hpp"
#include "opto/graph/bcube.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/complete.hpp"
#include "opto/graph/fattree.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"
#include "opto/paths/bfs_shortest.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rwa/schedule.hpp"

namespace opto::dsl {

namespace {

std::shared_ptr<const Graph> build_graph(const TopologySpec& topo) {
  if (topo.family == "butterfly")
    return std::make_shared<Graph>(std::move(make_butterfly(topo.dim).graph));
  if (topo.family == "mesh")
    return std::make_shared<Graph>(
        std::move(make_mesh({topo.side, topo.side}).graph));
  if (topo.family == "ring")
    return std::make_shared<Graph>(make_ring(topo.nodes));
  if (topo.family == "hypercube")
    return std::make_shared<Graph>(make_hypercube(topo.dim));
  if (topo.family == "complete")
    return std::make_shared<Graph>(make_complete(topo.nodes));
  if (topo.family == "single_link") {
    auto graph = std::make_shared<Graph>(2, "single-link");
    graph->add_edge(0, 1);
    return graph;
  }
  if (topo.family == "fattree")
    return std::make_shared<Graph>(
        std::move(make_fat_tree(topo.radix).graph));
  if (topo.family == "bcube")
    return std::make_shared<Graph>(
        std::move(make_bcube(topo.ports, topo.levels).graph));
  auto graph = std::make_shared<Graph>(topo.nodes, "explicit");
  for (const auto& [u, v] : topo.edges) graph->add_edge(u, v);
  return graph;
}

/// Request list for the declared workload, drawing from `rng` exactly
/// like the bench factories do (permutation: one random_permutation
/// call; random_function: one random_function call).
std::vector<std::pair<NodeId, NodeId>> workload_requests(
    const std::string& workload, std::uint32_t n, Rng& rng) {
  if (workload == "permutation") {
    const auto perm = random_permutation(n, rng);
    std::vector<std::pair<NodeId, NodeId>> requests;
    for (std::uint32_t i = 0; i < n; ++i) requests.emplace_back(i, perm[i]);
    return requests;
  }
  return function_requests(random_function(n, rng));
}

CollectionFactory make_factory(const ScenarioSpec& spec) {
  const TopologySpec topo = spec.topology;
  const PathsSpec paths = spec.paths;

  if (paths.system == "explicit") {
    auto graph = build_graph(topo);
    std::vector<std::vector<NodeId>> routes(paths.routes.begin(),
                                            paths.routes.end());
    return [graph, routes](std::uint64_t) {
      return collection_from_node_lists(graph, routes);
    };
  }
  if (paths.system == "butterfly_io") {
    const std::uint32_t dim = topo.dim;
    const std::string workload = paths.workload;
    return [dim, workload](std::uint64_t seed) {
      auto bf = std::make_shared<ButterflyTopology>(make_butterfly(dim));
      Rng rng(seed);
      const auto requests = workload_requests(workload, bf->rows(), rng);
      return butterfly_io_collection(bf, requests);
    };
  }
  if (paths.system == "mesh_dimension_order") {
    const std::uint32_t side = topo.side;
    const std::string workload = paths.workload;
    return [side, workload](std::uint64_t seed) {
      auto mesh = std::make_shared<MeshTopology>(make_mesh({side, side}));
      Rng rng(seed);
      if (workload == "random_function") return mesh_random_function(mesh, rng);
      const auto requests =
          workload_requests(workload, mesh->graph.node_count(), rng);
      return mesh_collection(mesh, requests);
    };
  }
  // bfs: shortest paths over the plain graph of any family.
  auto graph = build_graph(topo);
  const std::string workload = paths.workload;
  return [graph, workload](std::uint64_t seed) {
    Rng rng(seed);
    return workload == "permutation" ? bfs_random_permutation(graph, rng)
                                     : bfs_random_function(graph, rng);
  };
}

/// Strategy-mode instance factory: the graph is fixed, the request list
/// redraws per trial from the declared workload with the same Rng
/// sequence the bfs path factory uses — trial t of a strategy run and
/// trial t of a Trial-and-Failure run see the same request multiset.
rwa::InstanceFactory make_instance_factory(const ScenarioSpec& spec) {
  auto graph = build_graph(spec.topology);
  const std::string workload = spec.paths.workload;
  return [graph, workload](std::uint64_t seed) {
    Rng rng(seed);
    const auto pairs = workload_requests(
        workload, static_cast<std::uint32_t>(graph->node_count()), rng);
    std::vector<rwa::RwaRequest> requests;
    requests.reserve(pairs.size());
    for (const auto& [source, destination] : pairs)
      requests.push_back(rwa::RwaRequest{source, destination});
    return std::make_pair(graph, std::move(requests));
  };
}

ScheduleFactory make_schedule(const ScenarioSpec& spec) {
  const ScheduleSpec sched = spec.schedule;
  if (sched.kind == "paper") {
    PaperSchedule::Constants constants;
    constants.congestion_factor = sched.congestion_factor;
    constants.log_floor_factor = sched.log_floor_factor;
    return paper_schedule_factory(spec.protocol.worm_length,
                                  static_cast<std::uint16_t>(
                                      spec.protocol.bandwidth),
                                  constants);
  }
  if (sched.kind == "fixed") {
    const SimTime delta = static_cast<SimTime>(sched.delta);
    return [delta](const PathCollection&) {
      return std::make_unique<FixedSchedule>(delta);
    };
  }
  if (sched.kind == "nodelay") {
    return [](const PathCollection&) {
      return std::make_unique<NoDelaySchedule>();
    };
  }
  const SimTime initial = static_cast<SimTime>(sched.initial);
  return [initial](const PathCollection&) {
    return std::make_unique<AdaptiveSchedule>(initial);
  };
}

FaultConfig make_faults(const FaultSpec& spec) {
  FaultConfig config;
  config.link_outage_rate = spec.link_outage_rate;
  config.coupler_outage_rate = spec.coupler_outage_rate;
  config.outage_period = static_cast<SimTime>(spec.outage_period);
  config.outage_duration = static_cast<SimTime>(spec.outage_duration);
  config.stuck_wavelength_rate = spec.stuck_wavelength_rate;
  config.corruption_rate = spec.corruption_rate;
  config.ack_drop_rate = spec.ack_drop_rate;
  return config;
}

ProtocolConfig make_protocol(const ScenarioSpec& spec) {
  const ProtocolSpec& proto = spec.protocol;
  ProtocolConfig config;
  config.rule = proto.rule == "priority" ? ContentionRule::Priority
                                         : ContentionRule::ServeFirst;
  config.tie = proto.tie == "first_wins" ? TiePolicy::FirstWins
                                         : TiePolicy::KillAll;
  config.bandwidth = static_cast<std::uint16_t>(proto.bandwidth);
  config.worm_length = proto.worm_length;
  config.max_rounds = proto.max_rounds;
  config.ack_mode =
      proto.ack == "simulated" ? AckMode::Simulated : AckMode::Ideal;
  config.ack_length = proto.ack_length;
  config.conversion = proto.conversion == "full"     ? ConversionMode::Full
                      : proto.conversion == "sparse" ? ConversionMode::Sparse
                                                     : ConversionMode::None;
  config.converters.assign(proto.converters.begin(), proto.converters.end());
  if (spec.faults.declared) config.faults = make_faults(spec.faults);
  return config;
}

EngineConfig make_engine_config(const ScenarioSpec& spec) {
  const EngineSpec& eng = spec.engine;
  EngineConfig config;
  config.protocol = make_protocol(spec);
  config.traffic.process = eng.process == "mmpp"    ? ArrivalProcess::Mmpp
                           : eng.process == "trace" ? ArrivalProcess::Trace
                                                    : ArrivalProcess::Poisson;
  config.traffic.rate = eng.rate;
  config.traffic.mmpp_burst = eng.mmpp_burst;
  config.traffic.mmpp_calm = eng.mmpp_calm;
  config.traffic.mmpp_mean_dwell = eng.mmpp_mean_dwell;
  config.traffic.trace = eng.trace;
  config.mean_holding_time = eng.holding_time;
  config.round_interval = eng.round_interval;
  config.round_delta = static_cast<SimTime>(eng.round_delta);
  config.max_setup_rounds = eng.max_setup_rounds;
  config.arrivals = scaled_trials(static_cast<std::size_t>(eng.arrivals));
  config.warmup = config.arrivals / eng.warmup_divisor;
  config.fit = eng.fit == "random_fit" ? WavelengthFit::RandomFit
                                       : WavelengthFit::FirstFit;
  config.record = eng.record;
  return config;
}

}  // namespace

testlib::FuzzCase to_fuzz_case(const ScenarioSpec& spec) {
  testlib::FuzzCase fuzz;
  fuzz.seed = spec.case_seed;
  fuzz.index = spec.case_index;
  fuzz.node_count = spec.topology.nodes;
  for (const auto& [u, v] : spec.topology.edges) fuzz.edges.emplace_back(u, v);
  for (const auto& route : spec.paths.routes)
    fuzz.paths.emplace_back(route.begin(), route.end());
  fuzz.rule = spec.protocol.rule == "priority" ? ContentionRule::Priority
                                               : ContentionRule::ServeFirst;
  fuzz.tie = spec.protocol.tie == "first_wins" ? TiePolicy::FirstWins
                                               : TiePolicy::KillAll;
  fuzz.bandwidth = static_cast<std::uint16_t>(spec.protocol.bandwidth);
  fuzz.conversion = spec.protocol.conversion == "full" ? ConversionMode::Full
                    : spec.protocol.conversion == "sparse"
                        ? ConversionMode::Sparse
                        : ConversionMode::None;
  fuzz.converters.assign(spec.protocol.converters.begin(),
                         spec.protocol.converters.end());
  if (spec.faults.declared) {
    fuzz.has_faults = true;
    fuzz.faults = make_faults(spec.faults);
    fuzz.fault_seed = spec.faults.seed;
    fuzz.fault_epoch = spec.faults.epoch;
  }
  for (const auto& [link, wavelength] : spec.pinned)
    fuzz.pinned.push_back(
        PinnedSlot{link, static_cast<Wavelength>(wavelength)});
  for (const LaunchSpecLine& line : spec.launches) {
    LaunchSpec launch;
    launch.path = line.path;
    launch.start_time = static_cast<SimTime>(line.start);
    launch.wavelength = line.wavelength;
    launch.priority = line.priority;
    launch.length = line.length;
    fuzz.specs.push_back(launch);
  }
  return fuzz;
}

bool run_scenario(const ScenarioSpec& spec, JsonValue& result,
                  std::string& error) {
  if (spec.mode == ScenarioMode::Pass) {
    const testlib::FuzzCase fuzz = to_fuzz_case(spec);
    if (!testlib::well_formed(fuzz, &error)) return false;
    result = detail::run_pass(fuzz, spec.label);
    return true;
  }
  if (spec.mode == ScenarioMode::Engine) {
    result = detail::run_engine(build_graph(spec.topology),
                                make_engine_config(spec), spec.seed,
                                spec.label);
    return true;
  }
  if (spec.strategy.declared) {
    const auto kind = rwa::parse_strategy_kind(spec.strategy.kind);
    if (!kind) {
      error = "unknown strategy kind '" + spec.strategy.kind + "'";
      return false;
    }
    rwa::StrategyScheduleConfig config;
    config.rwa.bandwidth = static_cast<std::uint16_t>(spec.protocol.bandwidth);
    config.rwa.candidates = spec.strategy.candidates;
    config.rwa.split_ways = spec.strategy.split_ways;
    config.worm_length = spec.protocol.worm_length;
    config.max_rounds = spec.protocol.max_rounds;
    result = detail::run_strategy_closed(
        make_instance_factory(spec), *kind, config,
        static_cast<std::size_t>(spec.trials), spec.seed, spec.label);
    return true;
  }
  result = detail::run_closed(make_factory(spec), make_schedule(spec),
                              make_protocol(spec),
                              static_cast<std::size_t>(spec.trials),
                              spec.seed, spec.label);
  return true;
}

std::string result_text(const JsonValue& result) {
  std::ostringstream os;
  write_json(os, result, /*sorted_keys=*/true);
  os << '\n';
  return os.str();
}

}  // namespace opto::dsl
