// ScenarioSpec — the validated, fully-typed form of one `.opto` scenario.
//
// Every field is materialized (defaults filled in), so a spec has exactly
// one canonical JSON serialization (canonical.hpp, schema
// "opto.scenario/1") and parse → dump → parse is a byte-exact fixed
// point. Three scenario modes cover the repo's workloads:
//
//   trials — closed experiment: build a (possibly random) PathCollection
//            per trial, run Trial-and-Failure to completion, aggregate
//            over `trials` runs (benchsupport/experiment.hpp).
//   engine — streaming traffic: open arrivals over rolling protocol
//            batches (engine/engine.hpp).
//   pass   — one raw simulator pass over an explicit topology, path list,
//            and launch schedule; interconvertible with the fuzzer's
//            FuzzCase ("opto.fuzz.case/1"), which is how distilled fuzz
//            anchors and bug repros become human-readable .opto files.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "opto/core/trial_and_failure.hpp"
#include "opto/engine/engine.hpp"

namespace opto::dsl {

enum class ScenarioMode : std::uint8_t { Trials, Engine, Pass };

const char* to_string(ScenarioMode mode);

/// Topology family + parameters. Exactly the fields of the declared
/// family are meaningful; the rest stay at their defaults.
struct TopologySpec {
  std::string family;  ///< butterfly | mesh | ring | hypercube | complete |
                       ///< single_link | fattree | bcube | explicit
  std::uint32_t dim = 0;    ///< butterfly, hypercube
  std::uint32_t side = 0;   ///< mesh (square)
  std::uint32_t nodes = 0;  ///< ring, complete, explicit
  std::uint32_t radix = 0;  ///< fattree (even k)
  std::uint32_t ports = 0;  ///< bcube (n)
  std::uint32_t levels = 0;  ///< bcube
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  ///< explicit
};

/// Path-system generator (trials mode) or explicit routes (pass mode).
struct PathsSpec {
  std::string system;    ///< butterfly_io | mesh_dimension_order | bfs |
                         ///< explicit
  std::string workload;  ///< permutation | random_function ('' for explicit)
  std::vector<std::vector<std::uint32_t>> routes;  ///< explicit node lists
};

/// Protocol knobs (core/trial_and_failure.hpp ProtocolConfig subset).
struct ProtocolSpec {
  std::string rule = "serve_first";   ///< serve_first | priority
  std::string tie = "kill_all";       ///< kill_all | first_wins
  std::uint32_t bandwidth = 1;
  std::uint32_t worm_length = 1;
  std::uint32_t max_rounds = 128;
  std::string ack = "ideal";          ///< ideal | simulated
  std::uint32_t ack_length = 1;
  std::string conversion = "none";    ///< none | full | sparse
  std::vector<std::uint32_t> converters;  ///< 0/1 per node, sparse only
};

/// RWA strategy block (trials mode): replaces the Trial-and-Failure
/// protocol with a static strategy round driver (rwa/schedule.hpp).
/// Bandwidth, worm length, and round cap come from the protocol block.
struct StrategySpec {
  bool declared = false;  ///< a `strategy <kind> { … }` section was present
  std::string kind;       ///< first_fit | least_used | random_fit |
                          ///< multipath | valiant
  std::uint32_t candidates = 3;  ///< k candidate routes per request
  std::uint32_t split_ways = 2;  ///< multipath stripe width
};

/// Δ-schedule for the trials mode.
struct ScheduleSpec {
  std::string kind = "paper";  ///< paper | fixed | nodelay | adaptive
  double congestion_factor = 4.0;  ///< paper
  double log_floor_factor = 2.0;   ///< paper
  std::uint64_t delta = 8;         ///< fixed
  std::uint64_t initial = 8;       ///< adaptive
};

/// Fault plan (sim/faults.hpp FaultConfig + pass-mode keying).
struct FaultSpec {
  bool declared = false;  ///< a `faults { … }` section was present
  double link_outage_rate = 0.0;
  double coupler_outage_rate = 0.0;
  std::uint64_t outage_period = 64;
  std::uint64_t outage_duration = 16;
  double stuck_wavelength_rate = 0.0;
  double corruption_rate = 0.0;
  double ack_drop_rate = 0.0;
  std::uint64_t seed = 0;   ///< pass mode: FaultPlan base seed
  std::uint64_t epoch = 0;  ///< pass mode: FaultPlan epoch
};

/// Streaming-engine knobs (engine/engine.hpp EngineConfig subset).
struct EngineSpec {
  std::string process = "poisson";  ///< poisson | mmpp | trace
  double rate = 1.0;
  double mmpp_burst = 4.0;
  double mmpp_calm = 0.25;
  double mmpp_mean_dwell = 16.0;
  std::vector<double> trace;        ///< inter-arrival gaps, trace process
  double holding_time = 1.0;
  double round_interval = 0.05;
  std::uint64_t round_delta = 8;
  std::uint32_t max_setup_rounds = 32;
  std::uint64_t arrivals = 100000;  ///< base count, scaled by REPRO_SCALE
  std::uint32_t warmup_divisor = 10;  ///< warmup = arrivals / divisor
  std::string fit = "first_fit";    ///< first_fit | random_fit
  bool record = true;  ///< publish result gauges into the BenchRecord
};

/// One pass-mode launch: (path, start, wavelength, priority, length) —
/// the order the `launches [[…]]` lists use.
struct LaunchSpecLine {
  std::uint32_t path = 0;
  std::uint64_t start = 0;
  std::uint32_t wavelength = 0;
  std::uint32_t priority = 0;
  std::uint32_t length = 1;
};

struct ScenarioSpec {
  std::string name;
  ScenarioMode mode = ScenarioMode::Trials;
  std::uint64_t seed = 1;
  std::string label;        ///< BenchRecord label (default: slug of name)
  std::uint64_t trials = 1; ///< trials mode: base count, REPRO_SCALE applies

  TopologySpec topology;
  PathsSpec paths;
  ProtocolSpec protocol;
  StrategySpec strategy;
  ScheduleSpec schedule;
  FaultSpec faults;
  EngineSpec engine;

  // Pass mode extras.
  std::uint64_t case_seed = 0;   ///< FuzzCase provenance
  std::uint64_t case_index = 0;
  std::vector<LaunchSpecLine> launches;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pinned;  ///< (link, λ)
};

}  // namespace opto::dsl
