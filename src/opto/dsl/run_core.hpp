// Shared run core behind both scenario front-ends.
//
// The DSL runner (runner.cpp) builds factories/configs from a
// ScenarioSpec; the hand-coded builtins (builtins.cpp) construct the
// same objects in plain C++, mirroring the bench binaries line for
// line. Both feed these three functions, so a byte-compare of the
// returned model-result JSON proves the DSL front-end equivalent to the
// hand-coded path — the run core cannot diverge with itself.
//
// The result document ("opto.scenario.result/1") contains only
// deterministic model-level values: no wall-clock fields, no engine
// instrumentation counters (those differ across PassSharding modes by
// the DESIGN.md §7 contract).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "opto/benchsupport/experiment.hpp"
#include "opto/engine/engine.hpp"
#include "opto/rwa/schedule.hpp"
#include "opto/testlib/fuzz_case.hpp"
#include "opto/util/json_parse.hpp"

namespace opto::dsl::detail {

/// Closed experiment: REPRO_SCALE-scaled trials of Trial-and-Failure
/// over factory-built collections (benchsupport run_trials semantics,
/// including its per-trial seed derivation).
JsonValue run_closed(const CollectionFactory& factory,
                     const ScheduleFactory& schedule_factory,
                     const ProtocolConfig& config, std::size_t base_trials,
                     std::uint64_t seed, const std::string& label);

/// Closed experiment over a static RWA strategy instead of the
/// Trial-and-Failure protocol (rwa/schedule.hpp round driver, same
/// per-trial seed derivation as run_closed).
JsonValue run_strategy_closed(const rwa::InstanceFactory& factory,
                              rwa::StrategyKind kind,
                              const rwa::StrategyScheduleConfig& config,
                              std::size_t base_trials, std::uint64_t seed,
                              const std::string& label);

/// Streaming engine run; `config.arrivals`/`warmup` must already be
/// scaled by the caller (both front-ends call scaled_trials the same
/// way the E17 bench does).
JsonValue run_engine(std::shared_ptr<const Graph> graph,
                     const EngineConfig& config, std::uint64_t seed,
                     const std::string& label);

/// One raw simulator pass over a well-formed FuzzCase.
JsonValue run_pass(const testlib::FuzzCase& fuzz, const std::string& label);

}  // namespace opto::dsl::detail
