// Scenario execution: ScenarioSpec in, model-result JSON out.
//
// run_scenario builds the repo's native objects (CollectionFactory /
// EngineConfig / FuzzCase) from a validated spec and feeds the shared
// run core (run_core.hpp). run_builtin runs one of the hand-coded C++
// equivalents of the committed example scenarios through the same core;
// the scenario-smoke CI job byte-compares the two outputs, which is the
// DSL's end-to-end equivalence proof.
#pragma once

#include <string>
#include <vector>

#include "opto/dsl/spec.hpp"
#include "opto/testlib/fuzz_case.hpp"
#include "opto/util/json_parse.hpp"

namespace opto::dsl {

/// Runs a validated scenario. Returns false (with `error`) only for
/// semantic problems validation cannot see statically — e.g. pass-mode
/// routes whose consecutive nodes are not adjacent.
bool run_scenario(const ScenarioSpec& spec, JsonValue& result,
                  std::string& error);

/// Sorted-key serialization of a result document plus trailing newline —
/// the bytes the equivalence gate compares.
std::string result_text(const JsonValue& result);

/// Pass-mode spec → the fuzzer's FuzzCase. For a spec loaded from an
/// examples/repros/*.opto file, testlib::canonical_json(to_fuzz_case(s))
/// byte-equals the committed tests/corpus/*.json anchor.
testlib::FuzzCase to_fuzz_case(const ScenarioSpec& spec);

/// Hand-coded scenario equivalents, keyed by name.
std::vector<std::string> builtin_names();
bool run_builtin(const std::string& name, JsonValue& result,
                 std::string& error);

}  // namespace opto::dsl
