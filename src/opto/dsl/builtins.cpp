// Hand-coded C++ equivalents of the committed example scenarios.
//
// Each builtin constructs its factories and configs in plain C++ exactly
// the way the corresponding bench binary does (bench_e1_leveled_upper,
// bench_e15_fault_resilience, bench_e17_streaming_engine) — no DSL code
// anywhere on this path — and feeds the shared run core. The
// scenario-smoke CI job runs `opto_run --run examples/<name>.opto` and
// `opto_run --builtin <name>` and byte-compares the two result files;
// any drift between the DSL front-end and the native object model shows
// up as a diff, not as silently different science.
#include <memory>
#include <utility>
#include <vector>

#include "opto/dsl/run_core.hpp"
#include "opto/dsl/runner.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/fattree.hpp"
#include "opto/graph/ring.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/workloads.hpp"

namespace opto::dsl {

namespace {

/// Mirrors bench_e1_leveled_upper.cpp's factory at dim 6 (and
/// bench_e15_fault_resilience.cpp's butterfly_factory).
CollectionFactory butterfly_permutation_factory(std::uint32_t dim) {
  return [dim](std::uint64_t seed) {
    auto topo = std::make_shared<ButterflyTopology>(make_butterfly(dim));
    Rng rng(seed);
    const auto perm = random_permutation(topo->rows(), rng);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
    for (std::uint32_t r = 0; r < topo->rows(); ++r)
      requests.emplace_back(r, perm[r]);
    return butterfly_io_collection(topo, requests);
  };
}

/// E1 at the dim-6, B=4, L=8 operating point.
JsonValue builtin_e1() {
  ProtocolConfig config;
  config.bandwidth = 4;
  config.worm_length = 8;
  config.max_rounds = 2000;
  return detail::run_closed(butterfly_permutation_factory(6),
                            paper_schedule_factory(8, 4), config, 30, 11,
                            "e1-leveled-upper");
}

/// E15's resilience curve at link-fault rate 0.4 (butterfly dim 6).
JsonValue builtin_e15() {
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 16;
  config.faults.link_outage_rate = 0.4;
  config.faults.outage_period = 64;
  config.faults.outage_duration = 32;
  return detail::run_closed(
      butterfly_permutation_factory(6),
      paper_schedule_factory(config.worm_length, config.bandwidth), config,
      30, 151, "e15-fault-resilience");
}

/// E17's recorded ring-8 operating point (rate 32, B=4).
JsonValue builtin_e17() {
  auto ring = std::make_shared<Graph>(make_ring(8));
  EngineConfig config;
  config.protocol.bandwidth = 4;
  config.traffic.rate = 32.0;
  config.round_interval = 0.02;
  config.arrivals = scaled_trials(60000);
  config.warmup = config.arrivals / 10;
  config.record = true;
  return detail::run_engine(std::move(ring), config, 99,
                            "e17-streaming-engine");
}

/// E19's committed operating point: Least-Used over k=3 shortest-path
/// candidates on a radix-4 fat tree, permutation workload, B=2, L=4
/// (one cell of bench_e19_strategy_zoo's head-to-head grid; the tight
/// band keeps round-1 blocking non-zero).
JsonValue builtin_e19() {
  std::shared_ptr<const Graph> graph =
      std::make_shared<Graph>(std::move(make_fat_tree(4).graph));
  const rwa::InstanceFactory factory = [graph](std::uint64_t seed) {
    Rng rng(seed);
    const auto perm = random_permutation(
        static_cast<std::uint32_t>(graph->node_count()), rng);
    std::vector<rwa::RwaRequest> requests;
    requests.reserve(perm.size());
    for (std::uint32_t i = 0; i < perm.size(); ++i)
      requests.push_back(rwa::RwaRequest{i, perm[i]});
    return std::make_pair(graph, std::move(requests));
  };
  rwa::StrategyScheduleConfig config;
  config.rwa.bandwidth = 2;
  config.rwa.candidates = 3;
  config.worm_length = 4;
  config.max_rounds = 64;
  return detail::run_strategy_closed(factory, rwa::StrategyKind::LeastUsed,
                                     config, 30, 19, "e19-strategy-zoo");
}

}  // namespace

std::vector<std::string> builtin_names() {
  return {"e1-leveled-upper", "e15-fault-resilience", "e17-streaming-engine",
          "e19-strategy-zoo"};
}

bool run_builtin(const std::string& name, JsonValue& result,
                 std::string& error) {
  if (name == "e1-leveled-upper") {
    result = builtin_e1();
    return true;
  }
  if (name == "e15-fault-resilience") {
    result = builtin_e15();
    return true;
  }
  if (name == "e17-streaming-engine") {
    result = builtin_e17();
    return true;
  }
  if (name == "e19-strategy-zoo") {
    result = builtin_e19();
    return true;
  }
  error = "unknown builtin '" + name + "'";
  return false;
}

}  // namespace opto::dsl
