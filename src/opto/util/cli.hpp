// Tiny declarative command-line parser for examples and benches.
//
//   CliParser cli("quickstart", "Route a permutation on a torus");
//   auto side = cli.add_int("side", 8, "torus side length");
//   auto rule = cli.add_string("rule", "serve-first", "contention rule");
//   if (!cli.parse(argc, argv)) return 1;   // prints usage on --help/error
//   use(*side, *rule);
//
// Flags are --name=value or --name value. Unknown flags are errors.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace opto {

class CliParser {
 public:
  CliParser(std::string program, std::string description);
  ~CliParser();  // out-of-line: Option is incomplete here

  /// The returned pointers stay valid for the parser's lifetime and hold
  /// the default until parse() overwrites them.
  const long long* add_int(const std::string& name, long long default_value,
                           const std::string& help);
  const double* add_double(const std::string& name, double default_value,
                           const std::string& help);
  const std::string* add_string(const std::string& name,
                                std::string default_value,
                                const std::string& help);
  const bool* add_flag(const std::string& name, const std::string& help);

  /// Returns false if parsing failed or --help was requested (usage is
  /// printed either way).
  bool parse(int argc, const char* const* argv);

  void print_usage() const;

 private:
  struct Option;
  Option* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Option>> options_;
};

}  // namespace opto
