// Small string helpers shared by the CLI parser and table output.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace opto {

/// Splits on a delimiter; empty pieces are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

std::optional<long long> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Lowercases and collapses non-alphanumerics to single dashes — file-name
/// safe labels for tables and bench records ("E7: mesh" -> "e7-mesh").
/// Empty or all-symbol input yields "table".
std::string slugify(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace opto
