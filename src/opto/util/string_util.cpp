#include "opto/util/string_util.hpp"

#include <cctype>
#include <charconv>

namespace opto {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  long long value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || text.empty()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars<double> is not universally available; strtod via a
  // bounded copy keeps this portable.
  std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

std::string slugify(std::string_view text) {
  std::string slug;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug += '-';
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace opto
