// Minimal leveled logger writing to stderr.
//
// The library itself logs nothing by default (level = Warn); benches and
// examples raise the level for progress reporting. Thread-safe: each log
// call formats into a local buffer and issues a single write.
#pragma once

#include <sstream>
#include <string>

namespace opto {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one log line (appends '\n'). Prefer the OPTO_LOG_* macros.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace opto

#define OPTO_LOG(level)                         \
  if (::opto::log_level() <= (level))           \
  ::opto::detail::LogLine(level)

#define OPTO_LOG_DEBUG OPTO_LOG(::opto::LogLevel::Debug)
#define OPTO_LOG_INFO OPTO_LOG(::opto::LogLevel::Info)
#define OPTO_LOG_WARN OPTO_LOG(::opto::LogLevel::Warn)
#define OPTO_LOG_ERROR OPTO_LOG(::opto::LogLevel::Error)
