#include "opto/util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "opto/util/assert.hpp"
#include "opto/util/json.hpp"

namespace opto {

void Table::set_header(std::vector<std::string> header) {
  OPTO_ASSERT_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  OPTO_ASSERT_MSG(header_.empty() || row.size() == header_.size(),
                  "row width does not match header");
  rows_.push_back(std::move(row));
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

Table::RowBuilder& Table::RowBuilder::cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const char* value) {
  cells_.emplace_back(value);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value) {
  cells_.push_back(format_number(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(unsigned long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

std::string Table::format_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << "| " << cell;
      for (std::size_t pad = cell.size(); pad < widths[i]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  auto print_rule = [&]() {
    for (std::size_t w : widths) {
      os << '+';
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    }
    os << "+\n";
  };
  if (!header_.empty()) {
    print_rule();
    print_row(header_);
  }
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  JsonWriter json(os);
  json.begin_object();
  json.key("title");
  json.value(title_);
  json.key("header");
  json.begin_array();
  for (const auto& cell : header_) json.value(cell);
  json.end_array();
  json.key("rows");
  json.begin_array();
  for (const auto& row : rows_) {
    json.begin_array();
    for (const auto& cell : row) json.value(cell);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace opto
