#include "opto/util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace opto {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[opto %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace opto
