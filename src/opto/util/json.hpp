// Minimal streaming JSON writer (no parsing): correct string escaping,
// automatic comma placement, nesting validation. Used to persist
// experiment tables for scripting (OPTO_RESULTS_DIR).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace opto {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value (or container).
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool boolean);
  void null();

  /// Whole-document helpers.
  static std::string escape(std::string_view text);

 private:
  enum class Scope : std::uint8_t { Object, Array };
  void separator();

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace opto
