#include "opto/util/json.hpp"

#include <cmath>
#include <cstdio>

#include "opto/util/assert.hpp"

namespace opto {

JsonWriter::~JsonWriter() {
  OPTO_ASSERT_MSG(stack_.empty(), "unbalanced JSON scopes at destruction");
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (stack_.empty()) return;
  if (pending_key_) {
    pending_key_ = false;
    return;  // value right after its key: no comma
  }
  OPTO_ASSERT_MSG(stack_.back() == Scope::Array,
                  "object members need a key first");
  if (!first_in_scope_.back()) os_ << ',';
  first_in_scope_.back() = false;
}

void JsonWriter::begin_object() {
  separator();
  os_ << '{';
  stack_.push_back(Scope::Object);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  OPTO_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
  OPTO_ASSERT_MSG(!pending_key_, "dangling key");
  os_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
}

void JsonWriter::begin_array() {
  separator();
  os_ << '[';
  stack_.push_back(Scope::Array);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  OPTO_ASSERT(!stack_.empty() && stack_.back() == Scope::Array);
  os_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  OPTO_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
  OPTO_ASSERT_MSG(!pending_key_, "two keys in a row");
  if (!first_in_scope_.back()) os_ << ',';
  first_in_scope_.back() = false;
  os_ << '"' << escape(name) << "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  separator();
  os_ << '"' << escape(text) << '"';
}

void JsonWriter::value(double number) {
  separator();
  if (!std::isfinite(number)) {
    os_ << "null";  // JSON has no inf/nan
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", number);
  os_ << buf;
}

void JsonWriter::value(std::int64_t number) {
  separator();
  os_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  separator();
  os_ << number;
}

void JsonWriter::value(bool boolean) {
  separator();
  os_ << (boolean ? "true" : "false");
}

void JsonWriter::null() {
  separator();
  os_ << "null";
}

}  // namespace opto
