// Recursive-descent JSON parser and value tree — the read side of
// util/json.hpp's streaming writer. Used by the bench-compare tooling to
// consume BenchRecord files; strict (no comments, no trailing commas),
// with a nesting-depth bound so hostile inputs cannot blow the stack.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace opto {

struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;                       ///< Kind::String payload
  std::vector<JsonValue> items;           ///< Kind::Array payload
  /// Kind::Object payload, in document order (duplicate keys keep the
  /// last occurrence on lookup, as most parsers do).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors with fallback defaults.
  double as_number(double fallback = 0.0) const;
  std::string as_string(std::string fallback = {}) const;

  /// Member shorthand: number/string at `key`, or the fallback.
  double number_at(std::string_view key, double fallback = 0.0) const;
  std::string string_at(std::string_view key,
                        std::string fallback = {}) const;

  static JsonValue make_object();
  static JsonValue make_array();
  static JsonValue of(double number);
  static JsonValue of(std::string_view text);
  /// Disambiguates literals (const char* would otherwise prefer bool).
  static JsonValue of(const char* text) { return of(std::string_view(text)); }
  static JsonValue of(bool boolean);

  /// Appends (or does not deduplicate) an object member.
  JsonValue& add_member(std::string_view key, JsonValue value);
};

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). On failure returns nullopt and, when `error` is
/// non-null, a byte-offset-annotated message.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

/// Serializes a value tree. `sorted_keys` emits object members in
/// lexicographic key order — the canonical form the determinism CI job
/// byte-compares. Numbers print like Table::format_number (%.17g for
/// non-integers, plain digits for integral values).
void write_json(std::ostream& os, const JsonValue& value,
                bool sorted_keys = false);

}  // namespace opto
