#include "opto/util/cli.hpp"

#include <cstdio>

#include "opto/util/string_util.hpp"

namespace opto {

struct CliParser::Option {
  enum class Kind { Int, Double, String, Flag };

  std::string name;
  std::string help;
  Kind kind;
  long long int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  bool flag_value = false;

  std::string default_description() const {
    switch (kind) {
      case Kind::Int:
        return std::to_string(int_value);
      case Kind::Double:
        return std::to_string(double_value);
      case Kind::String:
        return string_value;
      case Kind::Flag:
        return "false";
    }
    return {};
  }

  bool assign(std::string_view text) {
    switch (kind) {
      case Kind::Int: {
        auto v = parse_int(text);
        if (!v) return false;
        int_value = *v;
        return true;
      }
      case Kind::Double: {
        auto v = parse_double(text);
        if (!v) return false;
        double_value = *v;
        return true;
      }
      case Kind::String:
        string_value = std::string(text);
        return true;
      case Kind::Flag:
        if (text == "true" || text == "1") {
          flag_value = true;
          return true;
        }
        if (text == "false" || text == "0") {
          flag_value = false;
          return true;
        }
        return false;
    }
    return false;
  }
};

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser::~CliParser() = default;

const long long* CliParser::add_int(const std::string& name,
                                    long long default_value,
                                    const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::Int;
  opt->int_value = default_value;
  const long long* handle = &opt->int_value;
  options_.push_back(std::move(opt));
  return handle;
}

const double* CliParser::add_double(const std::string& name,
                                    double default_value,
                                    const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::Double;
  opt->double_value = default_value;
  const double* handle = &opt->double_value;
  options_.push_back(std::move(opt));
  return handle;
}

const std::string* CliParser::add_string(const std::string& name,
                                         std::string default_value,
                                         const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::String;
  opt->string_value = std::move(default_value);
  const std::string* handle = &opt->string_value;
  options_.push_back(std::move(opt));
  return handle;
}

const bool* CliParser::add_flag(const std::string& name,
                                const std::string& help) {
  auto opt = std::make_unique<Option>();
  opt->name = name;
  opt->help = help;
  opt->kind = Option::Kind::Flag;
  const bool* handle = &opt->flag_value;
  options_.push_back(std::move(opt));
  return handle;
}

CliParser::Option* CliParser::find(const std::string& name) {
  for (auto& opt : options_)
    if (opt->name == name) return opt.get();
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(),
                   std::string(arg).c_str());
      print_usage();
      return false;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string_view value;
    bool have_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = std::string(arg);
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown flag '--%s'\n", program_.c_str(),
                   name.c_str());
      print_usage();
      return false;
    }
    if (!have_value) {
      if (opt->kind == Option::Kind::Flag) {
        opt->flag_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--%s' needs a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!opt->assign(value)) {
      std::fprintf(stderr, "%s: bad value '%s' for flag '--%s'\n",
                   program_.c_str(), std::string(value).c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

void CliParser::print_usage() const {
  std::fprintf(stderr, "%s — %s\n\nFlags:\n", program_.c_str(),
               description_.c_str());
  for (const auto& opt : options_) {
    std::fprintf(stderr, "  --%-18s %s (default: %s)\n", opt->name.c_str(),
                 opt->help.c_str(), opt->default_description().c_str());
  }
}

}  // namespace opto
