// Lightweight assertion macros used across the library.
//
// OPTO_ASSERT is enabled in all build types: the simulator's correctness
// invariants are cheap relative to the surrounding work and catching a
// violated invariant in a Release benchmark run is worth the cost.
// OPTO_DASSERT compiles away outside of Debug builds and is meant for
// hot-loop checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace opto {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "optoroute assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace opto

#define OPTO_ASSERT(expr)                                        \
  do {                                                           \
    if (!(expr)) ::opto::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define OPTO_ASSERT_MSG(expr, msg)                               \
  do {                                                           \
    if (!(expr)) ::opto::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)

#ifndef NDEBUG
#define OPTO_DASSERT(expr) OPTO_ASSERT(expr)
#else
#define OPTO_DASSERT(expr) \
  do {                     \
  } while (false)
#endif
