#include "opto/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "opto/util/assert.hpp"

namespace opto {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_.clear();
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleSet::quantile(double q) const {
  OPTO_ASSERT_MSG(!samples_.empty(), "quantile of empty SampleSet");
  OPTO_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void SampleSet::ensure_sorted() const {
  if (sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  OPTO_ASSERT(buckets > 0);
  OPTO_ASSERT(hi > lo);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  OPTO_ASSERT(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace opto
