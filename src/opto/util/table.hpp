// Aligned text tables and CSV output for benches and examples.
//
// Every experiment binary prints its series through a Table so the output
// format is uniform across the repo (and greppable: header row prefixed by
// the table title, one data row per parameter point).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace opto {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set column headers. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell; numbers use %g-style formatting.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(const std::string& value);
    RowBuilder& cell(const char* value);
    RowBuilder& cell(double value);
    RowBuilder& cell(long long value);
    RowBuilder& cell(unsigned long long value);
    RowBuilder& cell(int value) { return cell(static_cast<long long>(value)); }
    RowBuilder& cell(long value) { return cell(static_cast<long long>(value)); }
    RowBuilder& cell(unsigned value) {
      return cell(static_cast<unsigned long long>(value));
    }
    RowBuilder& cell(std::size_t value) {
      return cell(static_cast<unsigned long long>(value));
    }

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  const std::string& title() const { return title_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Renders an aligned, boxed text table.
  void print(std::ostream& os) const;
  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;
  /// Renders {"title":…, "header":[…], "rows":[[…]]}.
  void print_json(std::ostream& os) const;

  /// Format a double compactly (trims trailing zeros, %.6g).
  static std::string format_number(double value);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opto
