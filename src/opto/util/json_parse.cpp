#include "opto/util/json_parse.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "opto/util/json.hpp"

namespace opto {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members)
    if (name == key) found = &value;
  return found;
}

double JsonValue::as_number(double fallback) const {
  return kind == Kind::Number ? number : fallback;
}

std::string JsonValue::as_string(std::string fallback) const {
  return kind == Kind::String ? text : fallback;
}

double JsonValue::number_at(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr ? member->as_number(fallback) : fallback;
}

std::string JsonValue::string_at(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr ? member->as_string(std::move(fallback)) : fallback;
}

JsonValue JsonValue::make_object() {
  JsonValue value;
  value.kind = Kind::Object;
  return value;
}

JsonValue JsonValue::make_array() {
  JsonValue value;
  value.kind = Kind::Array;
  return value;
}

JsonValue JsonValue::of(double number) {
  JsonValue value;
  value.kind = Kind::Number;
  value.number = number;
  return value;
}

JsonValue JsonValue::of(std::string_view text) {
  JsonValue value;
  value.kind = Kind::String;
  value.text = std::string(text);
  return value;
}

JsonValue JsonValue::of(bool boolean) {
  JsonValue value;
  value.kind = Kind::Bool;
  value.boolean = boolean;
  return value;
}

JsonValue& JsonValue::add_member(std::string_view key, JsonValue value) {
  members.emplace_back(std::string(key), std::move(value));
  return *this;
}

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value, 0)) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "JSON parse error at byte " + std::to_string(pos_) + ": " +
                message;
    }
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* message) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return fail(message);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.text);
      case 't':
      case 'f':
        return parse_keyword(out);
      case 'n':
        return parse_keyword(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_keyword(JsonValue& out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.substr(0, 4) == "true") {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (rest.substr(0, 5) == "false") {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (rest.substr(0, 4) == "null") {
      out.kind = JsonValue::Kind::Null;
      pos_ += 4;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::Number;
    out.number = value;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected '\"'")) return false;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = 0;
          if (!parse_hex4(code)) return false;
          // Surrogate pair handling for characters beyond the BMP.
          if (code >= 0xd800 && code <= 0xdbff) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              std::uint32_t low = 0;
              if (!parse_hex4(low)) return false;
              if (low >= 0xdc00 && low <= 0xdfff)
                code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
              else
                return fail("invalid low surrogate");
            } else {
              return fail("lone high surrogate");
            }
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    if (!consume('{', "expected '{'")) return false;
    out.kind = JsonValue::Kind::Object;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':', "expected ':'")) return false;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    if (!consume('[', "expected '['")) return false;
    out.kind = JsonValue::Kind::Array;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items.push_back(std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void write_number(std::ostream& os, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    os << buffer;
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

void write_value(std::ostream& os, const JsonValue& value, bool sorted_keys) {
  switch (value.kind) {
    case JsonValue::Kind::Null:
      os << "null";
      return;
    case JsonValue::Kind::Bool:
      os << (value.boolean ? "true" : "false");
      return;
    case JsonValue::Kind::Number:
      write_number(os, value.number);
      return;
    case JsonValue::Kind::String:
      os << '"' << JsonWriter::escape(value.text) << '"';
      return;
    case JsonValue::Kind::Array: {
      os << '[';
      for (std::size_t i = 0; i < value.items.size(); ++i) {
        if (i > 0) os << ',';
        write_value(os, value.items[i], sorted_keys);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::Object: {
      os << '{';
      if (sorted_keys) {
        std::vector<const std::pair<std::string, JsonValue>*> order;
        order.reserve(value.members.size());
        for (const auto& member : value.members) order.push_back(&member);
        std::stable_sort(order.begin(), order.end(),
                         [](const auto* a, const auto* b) {
                           return a->first < b->first;
                         });
        for (std::size_t i = 0; i < order.size(); ++i) {
          if (i > 0) os << ',';
          os << '"' << JsonWriter::escape(order[i]->first) << "\":";
          write_value(os, order[i]->second, sorted_keys);
        }
      } else {
        for (std::size_t i = 0; i < value.members.size(); ++i) {
          if (i > 0) os << ',';
          os << '"' << JsonWriter::escape(value.members[i].first) << "\":";
          write_value(os, value.members[i].second, sorted_keys);
        }
      }
      os << '}';
      return;
    }
  }
}

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  return parser.run();
}

void write_json(std::ostream& os, const JsonValue& value, bool sorted_keys) {
  write_value(os, value, sorted_keys);
}

}  // namespace opto
