// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opto {

/// Welford-style online accumulator for mean and variance.
class OnlineStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction).
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with quantiles. Stores all samples; fine for the
/// trial counts used in experiments (hundreds to thousands).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void merge(const SampleSet& other);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated quantile, q in [0,1]. Requires a nonempty set.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  /// Sorts lazily; mutable cache keeps the public API const.
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used by benches to show round-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Least-squares fit of y = a + b*x. Used by benches to report empirical
/// growth rates (e.g. rounds vs sqrt(log n)).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace opto
