// splitmix64 — used only for seeding xoshiro streams.
// Reference algorithm by Sebastiano Vigna (public domain).
#pragma once

#include <cstdint>

namespace opto {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot mix; handy for hashing (seed, stream-id) pairs into sub-seeds.
inline std::uint64_t splitmix64_once(std::uint64_t x) {
  return SplitMix64(x).next();
}

}  // namespace opto
