// Philox4x32-10 — a counter-based random-number generator (Salmon et al.,
// "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11).
//
// Unlike the sequential xoshiro streams (rng.hpp), a counter-based
// generator is a pure function block(key, counter) -> 128 random bits:
// any sample in any stream is computable directly, with no state to
// advance and no dependence on the order in which other samples are
// drawn. The protocol layer keys its per-round draws by
// (trial seed, round) and counters by (worm, draw slot), which makes a
// round's launch randomness a pure function of worm identity — invariant
// under member reordering, trial batching, lane width, and thread count
// (DESIGN.md §9).
//
// The implementation is the reference algorithm: 10 rounds of the 4x32
// Feistel-like multiply/xor network with the published multipliers
// (0xD2511F53, 0xCD9E8D57) and Weyl key schedule (0x9E3779B9,
// 0xBB67AE85). Verified against the Random123 known-answer vector for
// the zero key/counter in tests/test_rng_counter.cpp.
#pragma once

#include <array>
#include <cstdint>

namespace opto {

/// Name of the protocol layer's draw backend, logged into BenchRecord
/// env blocks so perf/fuzz artifacts are attributable across PRs.
inline constexpr const char* kProtocolRngBackend = "philox4x32-10";

class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;

  /// One 128-bit block: ten rounds over `ctr` under the 64-bit key.
  static Counter block(std::uint64_t key, Counter ctr) {
    auto k0 = static_cast<std::uint32_t>(key);
    auto k1 = static_cast<std::uint32_t>(key >> 32);
    for (int round = 0; round < 10; ++round) {
      const std::uint64_t p0 = std::uint64_t{0xD2511F53u} * ctr[0];
      const std::uint64_t p1 = std::uint64_t{0xCD9E8D57u} * ctr[2];
      ctr = Counter{static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ k0,
                    static_cast<std::uint32_t>(p1),
                    static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ k1,
                    static_cast<std::uint32_t>(p0)};
      k0 += 0x9E3779B9u;  // Weyl sequence key schedule
      k1 += 0xBB67AE85u;
    }
    return ctr;
  }
};

/// Keyed facade over Philox for one protocol round: constructed from
/// (seed, round), every draw is addressed by (worm, slot) where `slot`
/// names the quantity being drawn (start delay, wavelength, ...). Draws
/// are stateless — calling in any order, from any thread, any number of
/// times, yields the same values.
class CounterRng {
 public:
  // Draw-slot names used by the protocol layer. Keeping them centralized
  // documents the full keying surface of a round.
  enum Slot : std::uint32_t {
    kSlotPriority = 0,       ///< rank key for RandomPermutation
    kSlotStartDelay = 1,     ///< launch delay in [Δ_t]
    kSlotWavelength = 2,     ///< forward wavelength in [B]
    kSlotAckWavelength = 3,  ///< simulated-ack wavelength in [B]
  };

  CounterRng(std::uint64_t seed, std::uint32_t round)
      : key_(seed), round_(round) {}

  /// 64 random bits for (worm, slot).
  std::uint64_t at(std::uint32_t worm, std::uint32_t slot) const {
    const Philox4x32::Counter out =
        Philox4x32::block(key_, {slot, worm, round_, kDomain});
    return (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
  }

  /// Uniform in [0, bound), bound > 0. Fixed consumption (one block, no
  /// rejection loop — a counter-based draw must not depend on other
  /// draws), via the multiply-shift map; the bias is < bound / 2^64,
  /// unobservable for the protocol's bounds (Δ_t, B ≪ 2^32).
  std::uint64_t below(std::uint64_t bound, std::uint32_t worm,
                      std::uint32_t slot) const {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(at(worm, slot)) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  /// Domain-separation constant: keeps protocol draws disjoint from any
  /// future Philox user that picks different counter conventions.
  static constexpr std::uint32_t kDomain = 0x6F70746Fu;  // "opto"

  std::uint64_t key_;
  std::uint32_t round_;
};

}  // namespace opto
