// Deterministic random-number facade used everywhere in the library.
//
// Two requirements drove this design:
//   1. Reproducibility across platforms: std::uniform_int_distribution is
//      implementation-defined, so all distributions here are hand-rolled
//      (Lemire's unbiased bounded-integer method).
//   2. Stream independence: a simulation trial, a worm, or a thread can
//      each get its own statistically independent stream derived from
//      (seed, stream-id) without coordination.
#pragma once

#include <cstdint>
#include <vector>

#include "opto/rng/xoshiro256.hpp"

namespace opto {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Derives an independent stream. Deterministic in (this seed, id).
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  std::uint64_t next_u64() { return gen_.next(); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p.
  bool next_bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  Xoshiro256 gen_;
};

}  // namespace opto
