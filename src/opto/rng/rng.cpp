#include "opto/rng/rng.hpp"

#include <numeric>

#include "opto/rng/splitmix64.hpp"
#include "opto/util/assert.hpp"

namespace opto {

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Mix the pair through two splitmix rounds so nearby (seed, id) pairs
  // land in unrelated parts of the state space.
  const std::uint64_t mixed =
      splitmix64_once(seed ^ splitmix64_once(stream_id + 0x51ed270b4d2f6ea1ull));
  return Rng(mixed);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  OPTO_ASSERT(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  OPTO_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = span == 0 ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::next_double() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  shuffle(perm);
  return perm;
}

}  // namespace opto
