// xoshiro256** — the library's base generator.
// Reference algorithm by Blackman & Vigna (public domain). Chosen for
// speed, quality, and a cheap jump-free way to derive independent streams
// (seed each stream from splitmix64 of (seed, stream-id)).
#pragma once

#include <cstdint>

#include "opto/rng/splitmix64.hpp"

namespace opto {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace opto
