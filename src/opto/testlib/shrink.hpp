// Greedy case minimization: starting from a case that exhibits some
// property (a differential mismatch, usually), repeatedly apply
// shrinking passes — drop worms, drop and truncate paths, shorten worm
// lengths, flatten start times, reduce bandwidth, strip conversion and
// faults, compact the graph — keeping each candidate only if the
// property still holds, until a full round makes no progress or the
// check budget runs out.
//
// The predicate is arbitrary, so the same machinery minimizes real
// divergences (predicate: "diff_case() reports issues") and distills
// behavioral regression anchors for the corpus (predicate: "a worm is
// truncated and a retune happens").
#pragma once

#include <cstdint>
#include <functional>

#include "opto/testlib/fuzz_case.hpp"

namespace opto::testlib {

using CasePredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkOptions {
  /// Budget of predicate evaluations; each is roughly two simulator
  /// passes plus a reference pass, so the default keeps a shrink in the
  /// hundreds of milliseconds for generator-sized cases.
  std::uint32_t max_checks = 4000;
  std::uint32_t max_rounds = 24;
};

struct ShrinkStats {
  std::uint32_t checks = 0;        ///< predicate evaluations spent
  std::uint32_t improvements = 0;  ///< candidates accepted
  std::uint32_t rounds = 0;        ///< full pass sweeps
};

/// Minimizes `failing` under `still_interesting`. Requires
/// still_interesting(failing) (asserted); the result satisfies the
/// predicate and is structurally well-formed.
FuzzCase shrink_case(FuzzCase failing,
                     const CasePredicate& still_interesting,
                     const ShrinkOptions& options = {},
                     ShrinkStats* stats = nullptr);

}  // namespace opto::testlib
