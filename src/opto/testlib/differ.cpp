#include "opto/testlib/differ.hpp"

#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <sstream>
#include <utility>

#include "opto/rwa/schedule.hpp"
#include "opto/rwa/strategy.hpp"
#include "opto/sim/reference.hpp"
#include "opto/sim/validate.hpp"

namespace opto::testlib {
namespace {

void report_worm(std::vector<std::string>* issues, const char* source,
                 WormId id, const char* field, long long fast,
                 long long other) {
  std::ostringstream os;
  os << "[" << source << "] worm " << id << ": " << field
     << " mismatch (engine " << fast << " vs " << other << ")";
  issues->push_back(os.str());
}

void report_metric(std::vector<std::string>* issues, const char* source,
                   const char* name, std::uint64_t fast, std::uint64_t other) {
  std::ostringstream os;
  os << "[" << source << "] metrics." << name << " mismatch (engine " << fast
     << " vs " << other << ")";
  issues->push_back(os.str());
}

/// Field-for-field comparison against the reference engine: everything
/// the flit-level model defines (statuses, times, witnesses, and the
/// model-level counters; the fast engine's instrumentation counters —
/// probes, steps, peak_inflight — have no reference analogue).
void compare_to_reference(const PassResult& fast, const PassResult& ref,
                          std::vector<std::string>* issues) {
  const char* src = "reference";
  for (WormId id = 0; id < fast.worms.size(); ++id) {
    const WormOutcome& a = fast.worms[id];
    const WormOutcome& b = ref.worms[id];
    if (a.status != b.status) {
      std::ostringstream os;
      os << "[" << src << "] worm " << id << ": status mismatch (engine "
         << to_string(a.status) << " vs " << to_string(b.status) << ")";
      issues->push_back(os.str());
      continue;  // downstream fields are defined relative to the status
    }
    if (a.finish_time != b.finish_time)
      report_worm(issues, src, id, "finish_time", a.finish_time,
                  b.finish_time);
    if (a.truncated != b.truncated)
      report_worm(issues, src, id, "truncated", a.truncated, b.truncated);
    if (a.pinned_loss != b.pinned_loss)
      report_worm(issues, src, id, "pinned_loss", a.pinned_loss,
                  b.pinned_loss);
    if (a.status == WormStatus::Killed) {
      if (a.blocked_by != b.blocked_by)
        report_worm(issues, src, id, "blocked_by", a.blocked_by, b.blocked_by);
      if (a.blocked_at_link != b.blocked_at_link)
        report_worm(issues, src, id, "blocked_at_link", a.blocked_at_link,
                    b.blocked_at_link);
    }
  }
  const PassMetrics& m = fast.metrics;
  const PassMetrics& r = ref.metrics;
  if (m.launched != r.launched)
    report_metric(issues, src, "launched", m.launched, r.launched);
  if (m.delivered != r.delivered)
    report_metric(issues, src, "delivered", m.delivered, r.delivered);
  if (m.killed != r.killed)
    report_metric(issues, src, "killed", m.killed, r.killed);
  if (m.truncated != r.truncated)
    report_metric(issues, src, "truncated", m.truncated, r.truncated);
  if (m.truncated_arrivals != r.truncated_arrivals)
    report_metric(issues, src, "truncated_arrivals", m.truncated_arrivals,
                  r.truncated_arrivals);
  if (m.contentions != r.contentions)
    report_metric(issues, src, "contentions", m.contentions, r.contentions);
  if (m.retunes != r.retunes)
    report_metric(issues, src, "retunes", m.retunes, r.retunes);
  if (m.pinned_blocks != r.pinned_blocks)
    report_metric(issues, src, "pinned_blocks", m.pinned_blocks,
                  r.pinned_blocks);
  if (m.worm_steps != r.worm_steps)
    report_metric(issues, src, "worm_steps", m.worm_steps, r.worm_steps);
  if (static_cast<std::uint64_t>(m.makespan) !=
      static_cast<std::uint64_t>(r.makespan))
    report_metric(issues, src, "makespan",
                  static_cast<std::uint64_t>(m.makespan),
                  static_cast<std::uint64_t>(r.makespan));
}

/// Exact comparison between two runs of the production engine that must
/// agree on every field, instrumentation included (wall_ns excluded: it
/// is real time, not model time). Used by the determinism stage (two
/// identical runs) and the SIMD stage (scalar kernels vs lane kernels,
/// which the attempt_kernel contract requires to be byte-identical).
void compare_runs(const PassResult& a, const PassResult& b,
                  std::vector<std::string>* issues, const char* src) {
  for (WormId id = 0; id < a.worms.size(); ++id) {
    const WormOutcome& x = a.worms[id];
    const WormOutcome& y = b.worms[id];
    if (x.status != y.status)
      report_worm(issues, src, id, "status", static_cast<long long>(x.status),
                  static_cast<long long>(y.status));
    if (x.truncated != y.truncated)
      report_worm(issues, src, id, "truncated", x.truncated, y.truncated);
    if (x.corrupted != y.corrupted)
      report_worm(issues, src, id, "corrupted", x.corrupted, y.corrupted);
    if (x.fault_loss != y.fault_loss)
      report_worm(issues, src, id, "fault_loss", x.fault_loss, y.fault_loss);
    if (x.pinned_loss != y.pinned_loss)
      report_worm(issues, src, id, "pinned_loss", x.pinned_loss,
                  y.pinned_loss);
    if (x.finish_time != y.finish_time)
      report_worm(issues, src, id, "finish_time", x.finish_time,
                  y.finish_time);
    if (x.blocked_at_link != y.blocked_at_link)
      report_worm(issues, src, id, "blocked_at_link", x.blocked_at_link,
                  y.blocked_at_link);
    if (x.blocked_by != y.blocked_by)
      report_worm(issues, src, id, "blocked_by", x.blocked_by, y.blocked_by);
  }
  const PassMetrics& m = a.metrics;
  const PassMetrics& n = b.metrics;
  const auto check = [issues, src](const char* name, std::uint64_t x,
                                   std::uint64_t y) {
    if (x != y) report_metric(issues, src, name, x, y);
  };
  check("launched", m.launched, n.launched);
  check("delivered", m.delivered, n.delivered);
  check("killed", m.killed, n.killed);
  check("truncated", m.truncated, n.truncated);
  check("truncated_arrivals", m.truncated_arrivals, n.truncated_arrivals);
  check("contentions", m.contentions, n.contentions);
  check("retunes", m.retunes, n.retunes);
  check("fault_kills", m.fault_kills, n.fault_kills);
  check("pinned_blocks", m.pinned_blocks, n.pinned_blocks);
  check("corrupted", m.corrupted, n.corrupted);
  check("corrupted_arrivals", m.corrupted_arrivals, n.corrupted_arrivals);
  check("makespan", static_cast<std::uint64_t>(m.makespan),
        static_cast<std::uint64_t>(n.makespan));
  check("worm_steps", m.worm_steps, n.worm_steps);
  check("link_busy_steps", m.link_busy_steps, n.link_busy_steps);
  check("steps", m.steps, n.steps);
  check("registry_probes", m.registry_probes, n.registry_probes);
  check("registry_hits", m.registry_hits, n.registry_hits);
  check("peak_inflight", m.peak_inflight, n.peak_inflight);
}

/// Raw (non-canonical) trace equality: lane width must not even reorder
/// events within a timestamp, so the SIMD stage compares the recorded
/// stream as-is rather than the canonical ordering.
void compare_traces_exact(const PassResult& a, const PassResult& b,
                          std::vector<std::string>* issues, const char* src) {
  const auto& x = a.trace.events();
  const auto& y = b.trace.events();
  if (x.size() != y.size()) {
    std::ostringstream os;
    os << "[" << src << "] raw trace size mismatch (" << x.size() << " vs "
       << y.size() << " events)";
    issues->push_back(os.str());
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == y[i]) continue;
    std::ostringstream os;
    os << "[" << src << "] raw trace diverges at event " << i << " (\""
       << Trace::describe(x[i]) << "\" vs \"" << Trace::describe(y[i])
       << "\")";
    issues->push_back(os.str());
    return;  // one divergence is enough; later events usually cascade
  }
}

/// Sequential-vs-sharded engine comparison: every model-level output —
/// worm outcomes, model metrics, the canonical trace — must match
/// exactly. The engine-local instrumentation counters (steps, registry
/// probes/hits, peak_inflight) are excluded by contract: a sharded pass
/// sums them over per-component registries and time loops (DESIGN.md §7).
void compare_sharded(const PassResult& seq, const PassResult& shard,
                     std::vector<std::string>* issues) {
  const char* src = "sharded";
  for (WormId id = 0; id < seq.worms.size(); ++id) {
    const WormOutcome& x = seq.worms[id];
    const WormOutcome& y = shard.worms[id];
    if (x.status != y.status)
      report_worm(issues, src, id, "status", static_cast<long long>(x.status),
                  static_cast<long long>(y.status));
    if (x.truncated != y.truncated)
      report_worm(issues, src, id, "truncated", x.truncated, y.truncated);
    if (x.corrupted != y.corrupted)
      report_worm(issues, src, id, "corrupted", x.corrupted, y.corrupted);
    if (x.fault_loss != y.fault_loss)
      report_worm(issues, src, id, "fault_loss", x.fault_loss, y.fault_loss);
    if (x.pinned_loss != y.pinned_loss)
      report_worm(issues, src, id, "pinned_loss", x.pinned_loss,
                  y.pinned_loss);
    if (x.finish_time != y.finish_time)
      report_worm(issues, src, id, "finish_time", x.finish_time,
                  y.finish_time);
    if (x.blocked_at_link != y.blocked_at_link)
      report_worm(issues, src, id, "blocked_at_link", x.blocked_at_link,
                  y.blocked_at_link);
    if (x.blocked_by != y.blocked_by)
      report_worm(issues, src, id, "blocked_by", x.blocked_by, y.blocked_by);
  }
  const PassMetrics& m = seq.metrics;
  const PassMetrics& n = shard.metrics;
  const auto check = [issues, src](const char* name, std::uint64_t x,
                                   std::uint64_t y) {
    if (x != y) report_metric(issues, src, name, x, y);
  };
  check("launched", m.launched, n.launched);
  check("delivered", m.delivered, n.delivered);
  check("killed", m.killed, n.killed);
  check("truncated", m.truncated, n.truncated);
  check("truncated_arrivals", m.truncated_arrivals, n.truncated_arrivals);
  check("contentions", m.contentions, n.contentions);
  check("retunes", m.retunes, n.retunes);
  check("fault_kills", m.fault_kills, n.fault_kills);
  check("pinned_blocks", m.pinned_blocks, n.pinned_blocks);
  check("corrupted", m.corrupted, n.corrupted);
  check("corrupted_arrivals", m.corrupted_arrivals, n.corrupted_arrivals);
  check("makespan", static_cast<std::uint64_t>(m.makespan),
        static_cast<std::uint64_t>(n.makespan));
  check("worm_steps", m.worm_steps, n.worm_steps);
  check("link_busy_steps", m.link_busy_steps, n.link_busy_steps);

  const std::vector<TraceEvent> a = canonical_events(seq.trace);
  const std::vector<TraceEvent> b = canonical_events(shard.trace);
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "[" << src << "] trace size mismatch (sequential " << a.size()
       << " events vs sharded " << b.size() << ")";
    issues->push_back(os.str());
    return;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    std::ostringstream os;
    os << "[" << src << "] canonical trace diverges at event " << i
       << " (sequential \"" << Trace::describe(a[i]) << "\" vs sharded \""
       << Trace::describe(b[i]) << "\")";
    issues->push_back(os.str());
    return;  // one divergence is enough; later events usually cascade
  }
}

/// Manual replay of one strategy over the full round loop, checking the
/// decisions themselves (run_strategy_schedule proves collision-freedom
/// indirectly through a simulated pass, but its OPTO_ASSERT would abort
/// the fuzzer instead of producing a shrinkable issue — so the differ
/// re-derives the invariants from the decisions and reports). Returns
/// the round-1 blocked count, or nullopt if any invariant broke.
std::optional<std::uint64_t> replay_strategy(
    const Graph& graph, std::span<const rwa::RwaRequest> requests,
    rwa::StrategyKind kind, const rwa::StrategyScheduleConfig& config,
    std::vector<std::string>* issues) {
  const std::size_t before = issues->size();
  const auto strategy = rwa::make_strategy(kind);
  const char* name = rwa::to_string(kind);
  const auto complain = [&](std::uint32_t round, std::uint32_t uid,
                            const std::string& what) {
    std::ostringstream os;
    os << "[rwa] " << name << " round " << round << " request " << uid << ": "
       << what;
    issues->push_back(os.str());
  };

  std::uint64_t blocked_first_round = 0;
  std::vector<std::uint32_t> pending(requests.size());
  std::iota(pending.begin(), pending.end(), 0);
  for (std::uint32_t round = 1;
       round <= config.max_rounds && !pending.empty(); ++round) {
    strategy->begin(graph, config.rwa, round);
    std::set<std::pair<EdgeId, Wavelength>> claimed;
    std::vector<std::uint32_t> still_pending;
    for (const std::uint32_t uid : pending) {
      const rwa::RwaDecision decision =
          strategy->assign(requests[uid], uid);
      if (!decision.accepted) {
        still_pending.push_back(uid);
        if (round == 1) ++blocked_first_round;
        continue;
      }
      if (decision.routes.empty() ||
          decision.routes.size() != decision.lambdas.size()) {
        complain(round, uid, "accepted with mismatched routes/lambdas");
        continue;
      }
      for (std::size_t i = 0; i < decision.routes.size(); ++i) {
        const Path& route = decision.routes[i];
        const Wavelength lambda = decision.lambdas[i];
        if (route.source() != requests[uid].source ||
            route.destination() != requests[uid].destination) {
          complain(round, uid, "route does not connect the request's "
                               "source to its destination");
          continue;
        }
        if (lambda >= config.rwa.bandwidth) {
          std::ostringstream os;
          os << "wavelength " << lambda << " outside the band [0, "
             << config.rwa.bandwidth << ")";
          complain(round, uid, os.str());
          continue;
        }
        for (const EdgeId link : route.links()) {
          if (!claimed.insert({link, lambda}).second) {
            std::ostringstream os;
            os << "channel (link " << link << ", lambda " << lambda
               << ") claimed twice in one round";
            complain(round, uid, os.str());
          }
        }
      }
    }
    pending = std::move(still_pending);
  }
  if (issues->size() != before) return std::nullopt;
  return blocked_first_round;
}

/// Stage 7: every RWA strategy over the case's path endpoints — decision
/// invariants via the manual replay, then two independent scheduled runs
/// that must agree field-for-field (counter-based RNG determinism).
void diff_rwa(std::shared_ptr<const Graph> graph, const FuzzCase& fuzz,
              DiffReport* report) {
  std::vector<rwa::RwaRequest> requests;
  requests.reserve(fuzz.paths.size());
  for (const auto& nodes : fuzz.paths)
    requests.push_back(rwa::RwaRequest{nodes.front(), nodes.back()});
  if (requests.empty()) return;
  report->rwa_requests = requests.size();

  rwa::StrategyScheduleConfig config;
  config.rwa.bandwidth = fuzz.bandwidth;
  config.rwa.candidates = 2;
  config.rwa.split_ways = 2;
  config.rwa.seed = fuzz.seed ^ (fuzz.index * 0x9e3779b97f4a7c15ull);
  config.worm_length = 2;
  config.max_rounds = 4;

  for (const rwa::StrategyKind kind : rwa::all_strategy_kinds()) {
    const auto blocked = replay_strategy(*graph, requests, kind, config,
                                         &report->issues);
    // An invalid assignment would trip run_strategy_schedule's own
    // collision assert; the replay already reported it, so stop here.
    if (!blocked) continue;

    const auto run_once = [&] {
      const auto strategy = rwa::make_strategy(kind);
      return rwa::run_strategy_schedule(graph, requests, *strategy, config);
    };
    const rwa::StrategyRunResult a = run_once();
    const rwa::StrategyRunResult b = run_once();
    const char* name = rwa::to_string(kind);
    const auto check = [&](const char* field, std::uint64_t x,
                           std::uint64_t y) {
      if (x == y) return;
      std::ostringstream os;
      os << "[rwa] " << name << ": " << field << " differs between two "
         << "identical runs (" << x << " vs " << y << ")";
      report->issues.push_back(os.str());
    };
    check("success", a.success, b.success);
    check("rounds", a.rounds, b.rounds);
    check("blocked_first_round", a.blocked_first_round,
          b.blocked_first_round);
    check("colors", a.colors, b.colors);
    check("makespan", static_cast<std::uint64_t>(a.makespan),
          static_cast<std::uint64_t>(b.makespan));
    check("worm_steps", a.worm_steps, b.worm_steps);
    // The replay and the scheduled run walk the same decision sequence;
    // their round-1 blocked counts tie the two views together.
    check("blocked_first_round (replay vs scheduled run)", *blocked,
          a.blocked_first_round);
    report->rwa_blocked += a.blocked_first_round;
  }
}

}  // namespace

std::string DiffReport::summary(std::size_t max_items) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < issues.size() && i < max_items; ++i)
    os << (i > 0 ? "\n" : "") << issues[i];
  if (issues.size() > max_items)
    os << "\n... (" << issues.size() - max_items << " more)";
  return os.str();
}

DiffReport diff_case(const FuzzCase& fuzz) {
  DiffReport report;
  std::string shape_error;
  if (!well_formed(fuzz, &shape_error)) {
    report.issues.push_back("[case] " + shape_error);
    return report;
  }

  const auto built = build_case(fuzz);
  SimConfig config = built->config;  // plan pointer stays valid: same scope
  config.record_trace = true;        // validate_occupancy needs the trace

  const std::span<const PinnedSlot> pinned{fuzz.pinned.data(),
                                           fuzz.pinned.size()};
  Simulator first(built->collection, config);
  first.set_pinned(pinned);
  const PassResult fast = first.run(fuzz.specs);
  report.metrics = fast.metrics;

  // A fresh engine instance must reproduce the pass bit-for-bit; this is
  // the property --replay and the corpus rest on.
  Simulator second(built->collection, config);
  second.set_pinned(pinned);
  const PassResult again = second.run(fuzz.specs);
  compare_runs(fast, again, &report.issues, "determinism");

  // SIMD lane-width cross-check: the scalar kernels, forced through the
  // per-instance SimConfig::simd override (the OPTO_SIMD env cap is read
  // once per process, so an env round-trip is not testable in-process),
  // must reproduce the lane run bit-for-bit — instrumentation counters
  // and the raw, non-canonical trace order included. In a scalar build
  // (OPTO_SIMD_LEVEL=0) or under OPTO_SIMD=0 both runs use the scalar
  // kernels and the stage degenerates to a determinism check.
  SimConfig scalar_config = config;
  scalar_config.simd = SimdMode::Off;
  Simulator scalar_sim(built->collection, scalar_config);
  scalar_sim.set_pinned(pinned);
  const PassResult scalar = scalar_sim.run(fuzz.specs);
  compare_runs(fast, scalar, &report.issues, "simd");
  compare_traces_exact(fast, scalar, &report.issues, "simd");

  const ValidationReport pass_report =
      validate_pass(built->collection, config, fuzz.specs, fast);
  for (const std::string& violation : pass_report.violations)
    report.issues.push_back("[validate] " + violation);
  const ValidationReport occupancy_report =
      validate_occupancy(built->collection, fuzz.specs, fast);
  for (const std::string& violation : occupancy_report.violations)
    report.issues.push_back("[occupancy] " + violation);

  // Sharded-engine cross-check: force component sharding On (bypassing
  // Auto's size floor and the env gate) so even tiny cases exercise the
  // decomposition, scatter, and merge machinery. Single-component cases
  // degenerate to the sequential engine inside run(), which makes this a
  // (cheap) tautology there — the generator's disjoint/hub families keep
  // the multi-component rate up.
  SimConfig sharded_config = config;
  sharded_config.sharding = PassSharding::On;
  Simulator sharded(built->collection, sharded_config);
  sharded.set_pinned(pinned);
  const PassResult shard_pass = sharded.run(fuzz.specs);
  compare_sharded(fast, shard_pass, &report.issues);

  const bool faults_active =
      config.faults != nullptr && config.faults->enabled();
  if (!faults_active) {
    const PassResult ref =
        reference_run(built->collection, config, fuzz.specs, pinned);
    compare_to_reference(fast, ref, &report.issues);
  }

  diff_rwa(built->graph, fuzz, &report);
  return report;
}

}  // namespace opto::testlib
