// Pure-(seed,index) scenario-DSL program generator and mutator.
//
// generate_program emits a *valid* .opto program: it draws every choice
// from Rng::stream(seed, index) and respects all of the validator's
// cross-section rules (path system vs topology family, sparse
// converters sized to the node count, mmpp/trace fields gated on the
// arrival process, pass-mode launch ranges). The fuzz harness asserts
// each one parses, validates, and canonical-dumps to a fixed point.
//
// mutate_program corrupts the same program at the token/char level
// (byte flips, span deletions/duplications, keyword injections,
// truncation) — most results are invalid; the harness asserts the
// parser rejects them with a diagnostic instead of crashing, hanging,
// or leaking.
//
// Text-only on purpose: this header depends on nothing from
// src/opto/dsl, so testlib (which dsl links for FuzzCase) never forms a
// library cycle.
#pragma once

#include <cstdint>
#include <string>

namespace opto::testlib {

/// Deterministically generates valid .opto program `index` of stream
/// `seed`.
std::string generate_program(std::uint64_t seed, std::uint64_t index);

/// generate_program(seed, index) with 1..4 deterministic corruptions
/// applied on top (drawn from an independent stream of the same seed).
std::string mutate_program(std::uint64_t seed, std::uint64_t index);

}  // namespace opto::testlib
