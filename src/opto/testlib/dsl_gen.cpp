#include "opto/testlib/dsl_gen.hpp"

#include <cstddef>
#include <iterator>
#include <sstream>
#include <utility>
#include <vector>

#include "opto/rng/rng.hpp"

namespace opto::testlib {

namespace {

/// Doubles are emitted from fixed spellings so the generated text, its
/// canonical %.17g dump, and the re-parsed value never disagree.
const char* const kRateTable[] = {"0", "0.125", "0.25", "0.5", "0.75", "1"};
const char* const kPositiveTable[] = {"0.25", "0.5", "1", "2", "4", "8"};

const char* pick(Rng& rng, const char* const* table, std::size_t size) {
  return table[rng.next_below(size)];
}

std::uint64_t in(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng.next_below(hi - lo + 1);
}

struct Topology {
  std::string family;
  std::uint64_t nodes = 0;  ///< validator's topology_nodes()
  std::uint64_t dim = 0, side = 0, declared_nodes = 0;
  std::uint64_t radix = 0, ports = 0, levels = 0;  // fattree / bcube
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;  // explicit
};

/// Draws a small topology. `need_explicit` forces the explicit family
/// (pass mode requires it).
Topology draw_topology(Rng& rng, bool need_explicit) {
  Topology topo;
  const std::uint64_t family =
      need_explicit ? 6 : rng.next_below(9);
  switch (family) {
    case 0:
      topo.family = "ring";
      topo.declared_nodes = in(rng, 3, 10);
      topo.nodes = topo.declared_nodes;
      break;
    case 1:
      topo.family = "hypercube";
      topo.dim = in(rng, 1, 4);
      topo.nodes = std::uint64_t{1} << topo.dim;
      break;
    case 2:
      topo.family = "complete";
      topo.declared_nodes = in(rng, 2, 8);
      topo.nodes = topo.declared_nodes;
      break;
    case 3:
      topo.family = "mesh";
      topo.side = in(rng, 2, 4);
      topo.nodes = topo.side * topo.side;
      break;
    case 4:
      topo.family = "butterfly";
      topo.dim = in(rng, 1, 3);
      topo.nodes = (topo.dim + 1) << topo.dim;
      break;
    case 5:
      topo.family = "single_link";
      topo.nodes = 2;
      break;
    case 7: {
      topo.family = "fattree";
      topo.radix = 2 * in(rng, 1, 2);  // even by construction
      const std::uint64_t half = topo.radix / 2;
      topo.nodes =
          half * half + topo.radix * topo.radix + half * half * topo.radix;
      break;
    }
    case 8: {
      topo.family = "bcube";
      topo.ports = in(rng, 2, 4);
      topo.levels = in(rng, 1, 2);
      std::uint64_t servers = 1;
      for (std::uint64_t l = 0; l < topo.levels; ++l) servers *= topo.ports;
      topo.nodes = servers + topo.levels * (servers / topo.ports);
      break;
    }
    default: {
      topo.family = "explicit";
      topo.declared_nodes = in(rng, 2, 8);
      topo.nodes = topo.declared_nodes;
      // A chain keeps every node reachable; chords add branching.
      for (std::uint64_t i = 0; i + 1 < topo.nodes; ++i)
        topo.edges.emplace_back(i, i + 1);
      const std::uint64_t chords = rng.next_below(3);
      for (std::uint64_t c = 0; c < chords && topo.nodes >= 3; ++c) {
        const std::uint64_t u = rng.next_below(topo.nodes);
        const std::uint64_t v = rng.next_below(topo.nodes);
        if (u != v) topo.edges.emplace_back(u, v);
      }
      break;
    }
  }
  return topo;
}

void emit_topology(std::ostringstream& os, const Topology& topo) {
  os << "  topology " << topo.family << " {";
  if (topo.family == "butterfly" || topo.family == "hypercube")
    os << " dim " << topo.dim << ";";
  if (topo.family == "mesh") os << " side " << topo.side << ";";
  if (topo.family == "fattree") os << " radix " << topo.radix << ";";
  if (topo.family == "bcube")
    os << " ports " << topo.ports << "; levels " << topo.levels << ";";
  if (topo.family == "ring" || topo.family == "complete" ||
      topo.family == "explicit")
    os << " nodes " << topo.declared_nodes << ";";
  if (topo.family == "explicit") {
    os << " edges [";
    for (std::size_t i = 0; i < topo.edges.size(); ++i) {
      if (i) os << ", ";
      os << "[" << topo.edges[i].first << ", " << topo.edges[i].second << "]";
    }
    os << "];";
  }
  os << " }\n";
}

/// Protocol section; returns the bandwidth so pass-mode launches can
/// stay inside it.
std::uint64_t emit_protocol(std::ostringstream& os, Rng& rng,
                            std::uint64_t node_count) {
  const std::uint64_t bandwidth = in(rng, 1, 4);
  os << "  protocol {\n";
  if (rng.next_bernoulli(0.5))
    os << "    rule " << (rng.next_bernoulli(0.5) ? "priority" : "serve_first")
       << ";\n";
  if (rng.next_bernoulli(0.5))
    os << "    tie " << (rng.next_bernoulli(0.5) ? "first_wins" : "kill_all")
       << ";\n";
  os << "    bandwidth " << bandwidth << ";\n";
  if (rng.next_bernoulli(0.7))
    os << "    worm_length " << in(rng, 1, 8) << ";\n";
  if (rng.next_bernoulli(0.7))
    os << "    max_rounds " << in(rng, 1, 64) << ";\n";
  if (rng.next_bernoulli(0.3)) {
    os << "    ack simulated;\n";
    os << "    ack_length " << in(rng, 1, 4) << ";\n";
  }
  const std::uint64_t conversion = rng.next_below(3);
  if (conversion == 1) {
    os << "    conversion full;\n";
  } else if (conversion == 2) {
    os << "    conversion sparse;\n    converters [";
    for (std::uint64_t i = 0; i < node_count; ++i) {
      if (i) os << ", ";
      os << rng.next_below(2);
    }
    os << "];\n";
  }
  os << "  }\n";
  return bandwidth;
}

void emit_faults(std::ostringstream& os, Rng& rng, bool pass_mode) {
  os << "  faults {\n";
  if (rng.next_bernoulli(0.7))
    os << "    link_outage_rate " << pick(rng, kRateTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    coupler_outage_rate " << pick(rng, kRateTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    stuck_wavelength_rate " << pick(rng, kRateTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    corruption_rate " << pick(rng, kRateTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    ack_drop_rate " << pick(rng, kRateTable, 6) << ";\n";
  if (rng.next_bernoulli(0.5)) {
    os << "    outage_period " << in(rng, 1, 128) << ";\n";
    os << "    outage_duration " << in(rng, 1, 128) << ";\n";
  }
  if (pass_mode && rng.next_bernoulli(0.5)) {
    os << "    seed " << rng.next_below(1000) << ";\n";
    os << "    epoch " << rng.next_below(64) << ";\n";
  }
  os << "  }\n";
}

void emit_schedule(std::ostringstream& os, Rng& rng) {
  switch (rng.next_below(4)) {
    case 0:
      os << "  schedule paper {";
      if (rng.next_bernoulli(0.4))
        os << " congestion_factor " << pick(rng, kPositiveTable, 6) << ";";
      if (rng.next_bernoulli(0.4))
        os << " log_floor_factor " << pick(rng, kPositiveTable, 6) << ";";
      os << " }\n";
      break;
    case 1:
      os << "  schedule fixed { delta " << in(rng, 1, 32) << "; }\n";
      break;
    case 2:
      os << "  schedule nodelay { }\n";
      break;
    default:
      os << "  schedule adaptive { initial " << in(rng, 1, 32) << "; }\n";
      break;
  }
}

void emit_engine(std::ostringstream& os, Rng& rng) {
  os << "  engine {\n";
  const std::uint64_t process = rng.next_below(3);
  if (process == 1) {
    os << "    process mmpp;\n";
    if (rng.next_bernoulli(0.5))
      os << "    mmpp_burst " << pick(rng, kPositiveTable, 6) << ";\n";
    if (rng.next_bernoulli(0.5))
      os << "    mmpp_calm " << pick(rng, kPositiveTable, 6) << ";\n";
    if (rng.next_bernoulli(0.5))
      os << "    mmpp_mean_dwell " << pick(rng, kPositiveTable, 6) << ";\n";
  } else if (process == 2) {
    os << "    process trace;\n    trace [";
    const std::uint64_t gaps = in(rng, 1, 6);
    for (std::uint64_t i = 0; i < gaps; ++i) {
      if (i) os << ", ";
      os << pick(rng, kPositiveTable, 6);
    }
    os << "];\n";
  } else if (rng.next_bernoulli(0.5)) {
    os << "    process poisson;\n";
  }
  if (rng.next_bernoulli(0.6))
    os << "    rate " << pick(rng, kPositiveTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    holding_time " << pick(rng, kPositiveTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    round_interval " << pick(rng, kPositiveTable, 6) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    round_delta " << in(rng, 1, 32) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    max_setup_rounds " << in(rng, 1, 32) << ";\n";
  if (rng.next_bernoulli(0.6))
    os << "    arrivals " << in(rng, 10, 300) << ";\n";
  if (rng.next_bernoulli(0.4))
    os << "    warmup_divisor " << in(rng, 2, 10) << ";\n";
  if (rng.next_bernoulli(0.3)) os << "    fit random_fit;\n";
  if (rng.next_bernoulli(0.3))
    os << "    record " << (rng.next_bernoulli(0.5) ? "true" : "false")
       << ";\n";
  os << "  }\n";
}

/// Routes for pass mode: simple walks along the explicit chain, so the
/// scenario is not just parseable but runnable.
std::vector<std::vector<std::uint64_t>> draw_routes(Rng& rng,
                                                    std::uint64_t nodes) {
  std::vector<std::vector<std::uint64_t>> routes;
  const std::uint64_t count = in(rng, 1, 4);
  for (std::uint64_t r = 0; r < count; ++r) {
    const std::uint64_t start = rng.next_below(nodes);
    const std::uint64_t span = rng.next_below(nodes - start) + 1;
    std::vector<std::uint64_t> route;
    for (std::uint64_t i = 0; i < span; ++i) route.push_back(start + i);
    if (span >= 2 && rng.next_bernoulli(0.3)) {
      // Walk back down without repeating the apex node.
      for (std::uint64_t i = span - 1; i-- > 0;) route.push_back(start + i);
    }
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace

std::string generate_program(std::uint64_t seed, std::uint64_t index) {
  Rng rng = Rng::stream(seed, index);
  std::ostringstream os;
  const std::uint64_t mode = rng.next_below(3);
  const bool pass = mode == 2;

  os << "scenario \"gen-" << index << "\" {\n";
  os << "  mode " << (mode == 0 ? "trials" : mode == 1 ? "engine" : "pass")
     << ";\n";
  if (rng.next_bernoulli(0.7)) os << "  seed " << rng.next_below(10000)
                                  << ";\n";
  if (rng.next_bernoulli(0.3))
    os << "  label \"case-" << rng.next_below(100) << "\";\n";
  if (mode == 0 && rng.next_bernoulli(0.6))
    os << "  trials " << in(rng, 1, 8) << ";\n";

  const Topology topo = draw_topology(rng, pass);
  emit_topology(os, topo);

  std::vector<std::vector<std::uint64_t>> routes;
  bool bfs_paths = false;
  if (mode != 1) {
    if (pass || topo.family == "explicit") {
      routes = draw_routes(rng, topo.nodes);
      os << "  paths explicit { routes [";
      for (std::size_t r = 0; r < routes.size(); ++r) {
        if (r) os << ", ";
        os << "[";
        for (std::size_t i = 0; i < routes[r].size(); ++i) {
          if (i) os << ", ";
          os << routes[r][i];
        }
        os << "]";
      }
      os << "]; }\n";
    } else {
      std::string system = "bfs";
      if (topo.family == "butterfly" && rng.next_bernoulli(0.6))
        system = "butterfly_io";
      if (topo.family == "mesh" && rng.next_bernoulli(0.6))
        system = "mesh_dimension_order";
      bfs_paths = system == "bfs";
      os << "  paths " << system << " { workload "
         << (rng.next_bernoulli(0.5) ? "permutation" : "random_function")
         << "; }\n";
    }
  }

  const std::uint64_t bandwidth = emit_protocol(os, rng, topo.nodes);
  if (mode == 0 && rng.next_bernoulli(0.8)) emit_schedule(os, rng);
  // Strategy blocks are trials-only and require the bfs path system
  // (validator cross-checks); split is multipath-only.
  if (mode == 0 && bfs_paths && rng.next_bernoulli(0.4)) {
    const char* const kKinds[] = {"first_fit", "least_used", "random_fit",
                                  "multipath", "valiant"};
    const std::uint64_t kind = rng.next_below(std::size(kKinds));
    os << "  strategy " << kKinds[kind] << " {";
    if (rng.next_bernoulli(0.6)) os << " k " << in(rng, 1, 16) << ";";
    if (kKinds[kind] == std::string("multipath") && rng.next_bernoulli(0.6))
      os << " split " << in(rng, 1, 8) << ";";
    os << " }\n";
  }
  if (mode == 1 && rng.next_bernoulli(0.9)) emit_engine(os, rng);
  if (rng.next_bernoulli(0.3)) emit_faults(os, rng, pass);

  if (pass) {
    os << "  case {\n";
    if (rng.next_bernoulli(0.7)) os << "    seed " << rng.next_below(1000)
                                    << ";\n";
    if (rng.next_bernoulli(0.3)) os << "    index " << rng.next_below(64)
                                    << ";\n";
    os << "    launches [";
    const std::uint64_t launches = in(rng, 1, 5);
    for (std::uint64_t i = 0; i < launches; ++i) {
      if (i) os << ", ";
      os << "[" << rng.next_below(routes.size()) << ", " << rng.next_below(11)
         << ", " << rng.next_below(bandwidth) << ", " << rng.next_below(4)
         << ", " << in(rng, 1, 8) << "]";
    }
    os << "];\n";
    if (!topo.edges.empty() && rng.next_bernoulli(0.3)) {
      os << "    pinned [";
      const std::uint64_t pins = in(rng, 1, 3);
      for (std::uint64_t i = 0; i < pins; ++i) {
        if (i) os << ", ";
        os << "[" << rng.next_below(2 * topo.edges.size()) << ", "
           << rng.next_below(bandwidth) << "]";
      }
      os << "];\n";
    }
    os << "  }\n";
  }

  os << "}\n";
  return os.str();
}

std::string mutate_program(std::uint64_t seed, std::uint64_t index) {
  std::string text = generate_program(seed, index);
  // Independent stream: mutation choices never perturb generation.
  Rng rng = Rng::stream(seed ^ 0x6d75746174655f5full, index);
  const char* const kInjections[] = {
      "{",        "}",      ";",        "[",       "]",    "\"",
      "scenario", "topology", "mode",   "0x10",    "1e999", "-",
      "999999999999999999999999999999", "#", "//", "\\",   "\x01", "\xff"};
  const std::uint64_t mutations = in(rng, 1, 4);
  for (std::uint64_t m = 0; m < mutations && !text.empty(); ++m) {
    switch (rng.next_below(5)) {
      case 0: {  // flip one byte to an arbitrary value (NUL included)
        const std::size_t at = rng.next_below(text.size());
        text[at] = static_cast<char>(rng.next_below(256));
        break;
      }
      case 1: {  // delete a short span
        const std::size_t at = rng.next_below(text.size());
        const std::size_t len = 1 + rng.next_below(8);
        text.erase(at, len);
        break;
      }
      case 2: {  // inject a structural token / hostile literal
        const std::size_t at = rng.next_below(text.size() + 1);
        text.insert(at, kInjections[rng.next_below(std::size(kInjections))]);
        break;
      }
      case 3: {  // duplicate a span (duplicate-section / deep-nesting fodder)
        const std::size_t at = rng.next_below(text.size());
        const std::size_t len = 1 + rng.next_below(32);
        text.insert(at, text.substr(at, len));
        break;
      }
      default:  // truncate (unterminated strings / unexpected EOF)
        text.resize(rng.next_below(text.size() + 1));
        break;
    }
  }
  return text;
}

}  // namespace opto::testlib
