#include "opto/testlib/fuzz_case.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "opto/util/assert.hpp"

namespace opto::testlib {
namespace {

constexpr std::string_view kSchema = "opto.fuzz.case/1";

// Sanity caps: a fuzz case is a minimized unit-test-sized input, and the
// parser accepts untrusted files, so every count is bounded well below
// anything that could exhaust memory.
constexpr NodeId kMaxNodes = 1u << 18;
constexpr std::size_t kMaxEdges = 1u << 20;
constexpr std::size_t kMaxPaths = 1u << 20;
constexpr std::size_t kMaxSpecs = 1u << 20;
constexpr std::uint16_t kMaxBandwidth = 1024;
constexpr std::uint32_t kMaxWormLength = 1u << 20;
constexpr SimTime kMaxStartTime = SimTime{1} << 33;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::uint64_t normalized_edge(NodeId u, NodeId v) {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

// --- JSON helpers -------------------------------------------------------

bool read_u64(const JsonValue& object, std::string_view key,
              std::uint64_t max, std::uint64_t* out, std::string* error) {
  const JsonValue* field = object.find(key);
  if (field == nullptr || !field->is_number())
    return fail(error, "missing numeric field '" + std::string(key) + "'");
  const double v = field->number;
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint64_t>(v)) ||
      static_cast<std::uint64_t>(v) > max)
    return fail(error, "field '" + std::string(key) + "' out of range");
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool read_seed_string(const JsonValue& object, std::string_view key,
                      std::uint64_t* out, std::string* error) {
  const JsonValue* field = object.find(key);
  if (field == nullptr || !field->is_string())
    return fail(error, "missing seed string '" + std::string(key) + "'");
  const std::string& text = field->text;
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos)
    return fail(error, "field '" + std::string(key) + "' is not a decimal");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size())
    return fail(error, "field '" + std::string(key) + "' overflows uint64");
  *out = value;
  return true;
}

bool read_rate(const JsonValue& object, std::string_view key, double* out,
               std::string* error) {
  const JsonValue* field = object.find(key);
  if (field == nullptr || !field->is_number())
    return fail(error, "missing fault rate '" + std::string(key) + "'");
  if (field->number < 0.0 || field->number > 1.0)
    return fail(error, "fault rate '" + std::string(key) + "' not in [0, 1]");
  *out = field->number;
  return true;
}

std::string seed_string(std::uint64_t value) { return std::to_string(value); }

}  // namespace

bool well_formed(const FuzzCase& fuzz, std::string* error) {
  if (fuzz.node_count < 1 || fuzz.node_count > kMaxNodes)
    return fail(error, "node count out of range");
  if (fuzz.edges.size() > kMaxEdges) return fail(error, "too many edges");
  if (fuzz.paths.size() > kMaxPaths) return fail(error, "too many paths");
  if (fuzz.specs.size() > kMaxSpecs) return fail(error, "too many specs");

  std::set<std::uint64_t> edge_set;
  for (const auto& [u, v] : fuzz.edges) {
    if (u >= fuzz.node_count || v >= fuzz.node_count)
      return fail(error, "edge endpoint outside the graph");
    if (u == v) return fail(error, "self-loop edge");
    if (!edge_set.insert(normalized_edge(u, v)).second)
      return fail(error, "duplicate undirected edge");
  }

  for (std::size_t p = 0; p < fuzz.paths.size(); ++p) {
    const auto& nodes = fuzz.paths[p];
    const std::string where = "path " + std::to_string(p);
    if (nodes.empty()) return fail(error, where + " has no nodes");
    std::set<NodeId> seen;
    for (const NodeId node : nodes) {
      if (node >= fuzz.node_count)
        return fail(error, where + " visits a node outside the graph");
      if (!seen.insert(node).second)
        return fail(error, where + " revisits a node (paths must be simple)");
    }
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
      if (edge_set.count(normalized_edge(nodes[i], nodes[i + 1])) == 0)
        return fail(error, where + " uses a non-edge");
  }

  if (fuzz.bandwidth < 1 || fuzz.bandwidth > kMaxBandwidth)
    return fail(error, "bandwidth out of range");
  if (fuzz.conversion == ConversionMode::Sparse) {
    if (fuzz.converters.size() != fuzz.node_count)
      return fail(error, "sparse conversion needs one flag per node");
  } else if (!fuzz.converters.empty()) {
    return fail(error, "converter flags given without sparse conversion");
  }

  if (fuzz.has_faults) {
    const FaultConfig& f = fuzz.faults;
    for (const double rate :
         {f.link_outage_rate, f.coupler_outage_rate, f.stuck_wavelength_rate,
          f.corruption_rate, f.ack_drop_rate})
      if (rate < 0.0 || rate > 1.0)
        return fail(error, "fault rate not in [0, 1]");
    if (f.outage_period < 1) return fail(error, "outage period must be >= 1");
    if (f.outage_duration < 0 || f.outage_duration > f.outage_period)
      return fail(error, "outage duration must fit inside the period");
  }

  if (fuzz.pinned.size() > kMaxSpecs)
    return fail(error, "too many pinned slots");
  for (std::size_t i = 0; i < fuzz.pinned.size(); ++i) {
    const PinnedSlot& slot = fuzz.pinned[i];
    const std::string where = "pinned slot " + std::to_string(i);
    if (slot.link >= 2 * fuzz.edges.size())
      return fail(error, where + " references a missing link");
    if (slot.wavelength >= fuzz.bandwidth)
      return fail(error, where + " wavelength outside the bandwidth");
  }

  std::set<std::uint32_t> priorities;
  for (std::size_t i = 0; i < fuzz.specs.size(); ++i) {
    const LaunchSpec& spec = fuzz.specs[i];
    const std::string where = "spec " + std::to_string(i);
    if (spec.path >= fuzz.paths.size())
      return fail(error, where + " references a missing path");
    if (spec.length < 1 || spec.length > kMaxWormLength)
      return fail(error, where + " worm length out of range");
    if (spec.wavelength >= fuzz.bandwidth)
      return fail(error, where + " wavelength outside the bandwidth");
    if (spec.start_time < 0 || spec.start_time > kMaxStartTime)
      return fail(error, where + " start time out of range");
    if (fuzz.rule == ContentionRule::Priority &&
        !priorities.insert(spec.priority).second)
      return fail(error,
                  where + " duplicates a priority rank (the priority rule "
                          "requires pairwise-distinct ranks)");
  }
  return true;
}

std::unique_ptr<BuiltCase> build_case(const FuzzCase& fuzz) {
  std::string error;
  OPTO_ASSERT_MSG(well_formed(fuzz, &error), error.c_str());

  auto built = std::make_unique<BuiltCase>();
  auto graph = std::make_shared<Graph>(fuzz.node_count, "fuzz");
  for (const auto& [u, v] : fuzz.edges) graph->add_edge(u, v);
  built->graph = graph;
  built->collection = collection_from_node_lists(built->graph, fuzz.paths);

  built->config.rule = fuzz.rule;
  built->config.tie = fuzz.tie;
  built->config.bandwidth = fuzz.bandwidth;
  built->config.conversion = fuzz.conversion;
  built->config.converters.assign(fuzz.converters.begin(),
                                  fuzz.converters.end());
  if (fuzz.has_faults) {
    built->plan = FaultPlan(fuzz.faults, fuzz.fault_seed);
    built->plan.set_epoch(fuzz.fault_epoch);
    built->config.faults = &built->plan;
  }
  return built;
}

JsonValue case_to_json(const FuzzCase& fuzz) {
  JsonValue root = JsonValue::make_object();
  root.add_member("schema", JsonValue::of(kSchema));
  root.add_member("seed", JsonValue::of(seed_string(fuzz.seed)));
  root.add_member("index", JsonValue::of(static_cast<double>(fuzz.index)));

  JsonValue graph = JsonValue::make_object();
  graph.add_member("nodes", JsonValue::of(static_cast<double>(fuzz.node_count)));
  JsonValue edges = JsonValue::make_array();
  for (const auto& [u, v] : fuzz.edges) {
    JsonValue pair = JsonValue::make_array();
    pair.items.push_back(JsonValue::of(static_cast<double>(u)));
    pair.items.push_back(JsonValue::of(static_cast<double>(v)));
    edges.items.push_back(std::move(pair));
  }
  graph.add_member("edges", std::move(edges));
  root.add_member("graph", std::move(graph));

  JsonValue paths = JsonValue::make_array();
  for (const auto& nodes : fuzz.paths) {
    JsonValue list = JsonValue::make_array();
    for (const NodeId node : nodes)
      list.items.push_back(JsonValue::of(static_cast<double>(node)));
    paths.items.push_back(std::move(list));
  }
  root.add_member("paths", std::move(paths));

  JsonValue config = JsonValue::make_object();
  config.add_member("rule", JsonValue::of(to_string(fuzz.rule)));
  config.add_member("tie", JsonValue::of(to_string(fuzz.tie)));
  config.add_member("bandwidth",
                    JsonValue::of(static_cast<double>(fuzz.bandwidth)));
  config.add_member("conversion", JsonValue::of(to_string(fuzz.conversion)));
  if (fuzz.conversion == ConversionMode::Sparse) {
    JsonValue flags = JsonValue::make_array();
    for (const char flag : fuzz.converters)
      flags.items.push_back(JsonValue::of(static_cast<double>(flag != 0)));
    config.add_member("converters", std::move(flags));
  }
  root.add_member("config", std::move(config));

  if (fuzz.has_faults) {
    JsonValue faults = JsonValue::make_object();
    faults.add_member("link_outage_rate",
                      JsonValue::of(fuzz.faults.link_outage_rate));
    faults.add_member("coupler_outage_rate",
                      JsonValue::of(fuzz.faults.coupler_outage_rate));
    faults.add_member("stuck_wavelength_rate",
                      JsonValue::of(fuzz.faults.stuck_wavelength_rate));
    faults.add_member("corruption_rate",
                      JsonValue::of(fuzz.faults.corruption_rate));
    faults.add_member("ack_drop_rate",
                      JsonValue::of(fuzz.faults.ack_drop_rate));
    faults.add_member(
        "outage_period",
        JsonValue::of(static_cast<double>(fuzz.faults.outage_period)));
    faults.add_member(
        "outage_duration",
        JsonValue::of(static_cast<double>(fuzz.faults.outage_duration)));
    faults.add_member("seed", JsonValue::of(seed_string(fuzz.fault_seed)));
    faults.add_member("epoch",
                      JsonValue::of(static_cast<double>(fuzz.fault_epoch)));
    root.add_member("faults", std::move(faults));
  }

  if (!fuzz.pinned.empty()) {
    JsonValue pinned = JsonValue::make_array();
    for (const PinnedSlot& slot : fuzz.pinned) {
      JsonValue entry = JsonValue::make_object();
      entry.add_member("link", JsonValue::of(static_cast<double>(slot.link)));
      entry.add_member("wavelength",
                       JsonValue::of(static_cast<double>(slot.wavelength)));
      pinned.items.push_back(std::move(entry));
    }
    root.add_member("pinned", std::move(pinned));
  }

  JsonValue specs = JsonValue::make_array();
  for (const LaunchSpec& spec : fuzz.specs) {
    JsonValue entry = JsonValue::make_object();
    entry.add_member("path", JsonValue::of(static_cast<double>(spec.path)));
    entry.add_member("start",
                     JsonValue::of(static_cast<double>(spec.start_time)));
    entry.add_member("wavelength",
                     JsonValue::of(static_cast<double>(spec.wavelength)));
    entry.add_member("priority",
                     JsonValue::of(static_cast<double>(spec.priority)));
    entry.add_member("length",
                     JsonValue::of(static_cast<double>(spec.length)));
    specs.items.push_back(std::move(entry));
  }
  root.add_member("specs", std::move(specs));
  return root;
}

std::optional<FuzzCase> case_from_json(const JsonValue& value,
                                       std::string* error) {
  const auto bad = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  if (!value.is_object()) return bad("case document must be an object");
  if (value.string_at("schema") != kSchema)
    return bad("unknown or missing schema (want '" + std::string(kSchema) +
               "')");

  FuzzCase fuzz;
  std::string field_error;
  if (!read_seed_string(value, "seed", &fuzz.seed, &field_error))
    return bad(field_error);
  std::uint64_t index = 0;
  if (!read_u64(value, "index", ~std::uint64_t{0} >> 12, &index, &field_error))
    return bad(field_error);
  fuzz.index = index;

  const JsonValue* graph = value.find("graph");
  if (graph == nullptr || !graph->is_object())
    return bad("missing 'graph' object");
  std::uint64_t nodes = 0;
  if (!read_u64(*graph, "nodes", kMaxNodes, &nodes, &field_error))
    return bad(field_error);
  fuzz.node_count = static_cast<NodeId>(nodes);
  const JsonValue* edges = graph->find("edges");
  if (edges == nullptr || !edges->is_array())
    return bad("missing 'graph.edges' array");
  for (const JsonValue& pair : edges->items) {
    if (!pair.is_array() || pair.items.size() != 2 ||
        !pair.items[0].is_number() || !pair.items[1].is_number())
      return bad("graph edge must be a [u, v] pair");
    const double u = pair.items[0].number;
    const double v = pair.items[1].number;
    if (u < 0 || v < 0 || u != std::floor(u) || v != std::floor(v))
      return bad("graph edge endpoints must be non-negative integers");
    fuzz.edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }

  const JsonValue* paths = value.find("paths");
  if (paths == nullptr || !paths->is_array())
    return bad("missing 'paths' array");
  for (const JsonValue& list : paths->items) {
    if (!list.is_array()) return bad("each path must be a node array");
    std::vector<NodeId> nodes_list;
    for (const JsonValue& node : list.items) {
      if (!node.is_number() || node.number < 0 ||
          node.number != std::floor(node.number))
        return bad("path nodes must be non-negative integers");
      nodes_list.push_back(static_cast<NodeId>(node.number));
    }
    fuzz.paths.push_back(std::move(nodes_list));
  }

  const JsonValue* config = value.find("config");
  if (config == nullptr || !config->is_object())
    return bad("missing 'config' object");
  const std::string rule = config->string_at("rule");
  if (rule == "serve-first")
    fuzz.rule = ContentionRule::ServeFirst;
  else if (rule == "priority")
    fuzz.rule = ContentionRule::Priority;
  else
    return bad("config.rule must be 'serve-first' or 'priority'");
  const std::string tie = config->string_at("tie");
  if (tie == "kill-all")
    fuzz.tie = TiePolicy::KillAll;
  else if (tie == "first-wins")
    fuzz.tie = TiePolicy::FirstWins;
  else
    return bad("config.tie must be 'kill-all' or 'first-wins'");
  std::uint64_t bandwidth = 0;
  if (!read_u64(*config, "bandwidth", kMaxBandwidth, &bandwidth, &field_error))
    return bad(field_error);
  fuzz.bandwidth = static_cast<std::uint16_t>(bandwidth);
  const std::string conversion = config->string_at("conversion");
  if (conversion == "none")
    fuzz.conversion = ConversionMode::None;
  else if (conversion == "full")
    fuzz.conversion = ConversionMode::Full;
  else if (conversion == "sparse")
    fuzz.conversion = ConversionMode::Sparse;
  else
    return bad("config.conversion must be 'none', 'full', or 'sparse'");
  if (fuzz.conversion == ConversionMode::Sparse) {
    const JsonValue* flags = config->find("converters");
    if (flags == nullptr || !flags->is_array())
      return bad("sparse conversion needs a 'config.converters' array");
    for (const JsonValue& flag : flags->items) {
      if (!flag.is_number() || (flag.number != 0.0 && flag.number != 1.0))
        return bad("converter flags must be 0 or 1");
      fuzz.converters.push_back(flag.number != 0.0 ? 1 : 0);
    }
  }

  if (const JsonValue* faults = value.find("faults"); faults != nullptr) {
    if (!faults->is_object()) return bad("'faults' must be an object");
    fuzz.has_faults = true;
    if (!read_rate(*faults, "link_outage_rate",
                   &fuzz.faults.link_outage_rate, &field_error) ||
        !read_rate(*faults, "coupler_outage_rate",
                   &fuzz.faults.coupler_outage_rate, &field_error) ||
        !read_rate(*faults, "stuck_wavelength_rate",
                   &fuzz.faults.stuck_wavelength_rate, &field_error) ||
        !read_rate(*faults, "corruption_rate", &fuzz.faults.corruption_rate,
                   &field_error) ||
        !read_rate(*faults, "ack_drop_rate", &fuzz.faults.ack_drop_rate,
                   &field_error))
      return bad(field_error);
    std::uint64_t period = 0, duration = 0, epoch = 0;
    if (!read_u64(*faults, "outage_period", 1u << 20, &period, &field_error) ||
        !read_u64(*faults, "outage_duration", 1u << 20, &duration,
                  &field_error) ||
        !read_u64(*faults, "epoch", ~std::uint64_t{0} >> 12, &epoch,
                  &field_error) ||
        !read_seed_string(*faults, "seed", &fuzz.fault_seed, &field_error))
      return bad(field_error);
    fuzz.faults.outage_period = static_cast<SimTime>(period);
    fuzz.faults.outage_duration = static_cast<SimTime>(duration);
    fuzz.fault_epoch = epoch;
  }

  // Optional: absent in pre-engine corpus files, which keep parsing.
  if (const JsonValue* pinned = value.find("pinned"); pinned != nullptr) {
    if (!pinned->is_array()) return bad("'pinned' must be an array");
    for (const JsonValue& entry : pinned->items) {
      if (!entry.is_object()) return bad("each pinned slot must be an object");
      std::uint64_t link = 0, wavelength = 0;
      if (!read_u64(entry, "link", 2 * kMaxEdges, &link, &field_error) ||
          !read_u64(entry, "wavelength", kMaxBandwidth, &wavelength,
                    &field_error))
        return bad(field_error);
      PinnedSlot slot;
      slot.link = static_cast<EdgeId>(link);
      slot.wavelength = static_cast<Wavelength>(wavelength);
      fuzz.pinned.push_back(slot);
    }
  }

  const JsonValue* specs = value.find("specs");
  if (specs == nullptr || !specs->is_array())
    return bad("missing 'specs' array");
  for (const JsonValue& entry : specs->items) {
    if (!entry.is_object()) return bad("each spec must be an object");
    LaunchSpec spec;
    std::uint64_t path = 0, start = 0, wavelength = 0, priority = 0,
                  length = 0;
    if (!read_u64(entry, "path", kMaxPaths, &path, &field_error) ||
        !read_u64(entry, "start", static_cast<std::uint64_t>(kMaxStartTime),
                  &start, &field_error) ||
        !read_u64(entry, "wavelength", kMaxBandwidth, &wavelength,
                  &field_error) ||
        !read_u64(entry, "priority", ~std::uint32_t{0}, &priority,
                  &field_error) ||
        !read_u64(entry, "length", kMaxWormLength, &length, &field_error))
      return bad(field_error);
    spec.path = static_cast<PathId>(path);
    spec.start_time = static_cast<SimTime>(start);
    spec.wavelength = static_cast<Wavelength>(wavelength);
    spec.priority = static_cast<std::uint32_t>(priority);
    spec.length = static_cast<std::uint32_t>(length);
    fuzz.specs.push_back(spec);
  }

  std::string shape_error;
  if (!well_formed(fuzz, &shape_error)) return bad(shape_error);
  return fuzz;
}

std::string canonical_json(const FuzzCase& fuzz) {
  std::ostringstream os;
  write_json(os, case_to_json(fuzz), /*sorted_keys=*/true);
  os << '\n';
  return os.str();
}

std::optional<FuzzCase> parse_case(std::string_view text, std::string* error) {
  const auto document = parse_json(text, error);
  if (!document.has_value()) return std::nullopt;
  return case_from_json(*document, error);
}

}  // namespace opto::testlib
