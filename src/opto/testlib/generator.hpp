// Seeded case generator for the differential fuzzer.
//
// generate_case(seed, index) is a pure function: it draws everything
// from Rng::stream(seed, index) and touches no global state (threads,
// time, environment), so the same (seed, index) produces a byte-
// identical canonical_json() on every platform, thread setting, and
// process run — the property the determinism tests and the replayable
// corpus rest on.
//
// Coverage strategy: each case draws a topology family (chain, ring,
// star, clique, random tree + chords, bridged double clique, disjoint
// chain segments, hubs + private tails — the last two aimed at multi-
// component and all-singleton contention decompositions), a path
// mix (BFS shortest paths, random simple walks, duplicated hot paths,
// zero-length paths), and a config mix across contention rules, tie
// policies, bandwidths, conversion modes, and optional fault plans —
// with occasional extremes (2^31 start times to force the simulator's
// unpacked injection sort, dense same-step launches for maximal
// contention).
#pragma once

#include <cstdint>

#include "opto/testlib/fuzz_case.hpp"

namespace opto::testlib {

/// Knobs bounding the generated cases. Defaults are sized for tens of
/// microseconds per differential check so CI can afford hundreds of
/// cases and a nightly run tens of thousands.
struct GenOptions {
  NodeId max_nodes = 20;
  std::uint32_t max_extra_edges = 12;   ///< chords beyond the family's base
  std::uint32_t max_paths = 16;
  std::uint32_t max_extra_specs = 12;   ///< worms beyond one per path
  std::uint16_t max_bandwidth = 4;
  std::uint32_t max_length = 9;         ///< worm flits
  std::uint32_t max_walk_links = 10;    ///< random-walk path length bound
  SimTime max_start_spread = 10;
  double fault_probability = 0.25;
  double conversion_probability = 0.45; ///< Full or Sparse, combined
  double pinned_probability = 0.25;     ///< case carries held channels
  std::uint32_t max_pinned = 6;         ///< pinned slots per case
};

/// Deterministically generates case `index` of stream `seed`.
FuzzCase generate_case(std::uint64_t seed, std::uint64_t index,
                       const GenOptions& options = {});

}  // namespace opto::testlib
