#include "opto/testlib/shrink.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "opto/util/assert.hpp"

namespace opto::testlib {
namespace {

std::uint64_t normalized_edge(NodeId u, NodeId v) {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

class Shrinker {
 public:
  Shrinker(FuzzCase start, const CasePredicate& predicate,
           const ShrinkOptions& options, ShrinkStats* stats)
      : current_(std::move(start)),
        predicate_(predicate),
        options_(options),
        stats_(stats) {}

  FuzzCase run() {
    bool progress = true;
    std::uint32_t rounds = 0;
    while (progress && rounds < options_.max_rounds && !exhausted()) {
      progress = false;
      progress |= drop_spec_chunks();
      progress |= drop_pinned();
      progress |= drop_unused_paths();
      progress |= truncate_paths();
      progress |= shorten_worms();
      progress |= flatten_starts();
      progress |= reduce_bandwidth();
      progress |= simplify_config();
      progress |= compact_graph();
      progress |= normalize_priorities();
      ++rounds;
    }
    if (stats_ != nullptr) stats_->rounds = rounds;
    return std::move(current_);
  }

 private:
  bool exhausted() const { return checks_ >= options_.max_checks; }

  /// Accepts `candidate` as the new current case iff it is well-formed
  /// and still interesting. One predicate evaluation per call.
  bool attempt(FuzzCase candidate) {
    if (exhausted()) return false;
    if (!well_formed(candidate)) return false;
    ++checks_;
    if (stats_ != nullptr) stats_->checks = checks_;
    if (!predicate_(candidate)) return false;
    current_ = std::move(candidate);
    if (stats_ != nullptr) ++stats_->improvements;
    return true;
  }

  /// ddmin-style worm removal: contiguous chunks, halving the chunk
  /// size; by far the biggest lever, so it runs first each round.
  bool drop_spec_chunks() {
    bool progress = false;
    for (std::size_t chunk = std::max<std::size_t>(current_.specs.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0;
           !exhausted() && start < current_.specs.size();) {
        if (chunk > current_.specs.size()) break;
        FuzzCase candidate = current_;
        const auto first =
            candidate.specs.begin() + static_cast<std::ptrdiff_t>(start);
        const auto last =
            first + static_cast<std::ptrdiff_t>(
                        std::min(chunk, candidate.specs.size() - start));
        candidate.specs.erase(first, last);
        if (attempt(std::move(candidate)))
          progress = true;  // stay at `start`: the next chunk slid here
        else
          start += chunk;
      }
      if (chunk == 1) break;
    }
    return progress;
  }

  /// Drops pinned slots: all at once first, then one at a time.
  bool drop_pinned() {
    bool progress = false;
    if (current_.pinned.size() > 1) {
      FuzzCase candidate = current_;
      candidate.pinned.clear();
      progress |= attempt(std::move(candidate));
    }
    for (std::size_t i = 0; !exhausted() && i < current_.pinned.size();) {
      FuzzCase candidate = current_;
      candidate.pinned.erase(candidate.pinned.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (attempt(std::move(candidate)))
        progress = true;  // stay at `i`: the next slot slid here
      else
        ++i;
    }
    return progress;
  }

  bool drop_unused_paths() {
    std::vector<char> used(current_.paths.size(), 0);
    for (const LaunchSpec& spec : current_.specs) used[spec.path] = 1;
    if (std::all_of(used.begin(), used.end(), [](char u) { return u != 0; }))
      return false;  // nothing unused (also covers zero paths)
    FuzzCase candidate = current_;
    std::vector<PathId> remap(current_.paths.size(), kInvalidPath);
    candidate.paths.clear();
    for (PathId p = 0; p < current_.paths.size(); ++p) {
      if (used[p] == 0) continue;
      remap[p] = static_cast<PathId>(candidate.paths.size());
      candidate.paths.push_back(current_.paths[p]);
    }
    for (LaunchSpec& spec : candidate.specs) spec.path = remap[spec.path];
    return attempt(std::move(candidate));
  }

  bool truncate_paths() {
    bool progress = false;
    for (std::size_t p = 0; !exhausted() && p < current_.paths.size(); ++p) {
      if (current_.paths[p].size() <= 1) continue;
      {  // halve the tail
        FuzzCase candidate = current_;
        candidate.paths[p].resize((candidate.paths[p].size() + 1) / 2);
        if (attempt(std::move(candidate))) progress = true;
      }
      if (current_.paths[p].size() > 1) {  // drop the last link
        FuzzCase candidate = current_;
        candidate.paths[p].pop_back();
        if (attempt(std::move(candidate))) progress = true;
      }
    }
    return progress;
  }

  bool shorten_worms() {
    bool progress = false;
    for (std::size_t i = 0; !exhausted() && i < current_.specs.size(); ++i) {
      if (current_.specs[i].length <= 1) continue;
      {
        FuzzCase candidate = current_;
        candidate.specs[i].length = 1;
        if (attempt(std::move(candidate))) {
          progress = true;
          continue;
        }
      }
      if (current_.specs[i].length > 2) {
        FuzzCase candidate = current_;
        candidate.specs[i].length /= 2;
        if (attempt(std::move(candidate))) progress = true;
      }
    }
    return progress;
  }

  bool flatten_starts() {
    bool progress = false;
    if (std::any_of(current_.specs.begin(), current_.specs.end(),
                    [](const LaunchSpec& s) { return s.start_time > 0; })) {
      FuzzCase candidate = current_;
      for (LaunchSpec& spec : candidate.specs) spec.start_time = 0;
      if (attempt(std::move(candidate))) return true;
      // Shift the whole schedule so the earliest worm starts at 0.
      const SimTime base =
          std::accumulate(current_.specs.begin(), current_.specs.end(),
                          std::numeric_limits<SimTime>::max(),
                          [](SimTime acc, const LaunchSpec& s) {
                            return std::min(acc, s.start_time);
                          });
      if (base > 0) {
        candidate = current_;
        for (LaunchSpec& spec : candidate.specs) spec.start_time -= base;
        if (attempt(std::move(candidate))) progress = true;
      }
    }
    for (std::size_t i = 0; !exhausted() && i < current_.specs.size(); ++i) {
      if (current_.specs[i].start_time == 0) continue;
      FuzzCase candidate = current_;
      candidate.specs[i].start_time = 0;
      if (attempt(std::move(candidate))) {
        progress = true;
        continue;
      }
      candidate = current_;
      candidate.specs[i].start_time /= 2;
      if (attempt(std::move(candidate))) progress = true;
    }
    return progress;
  }

  bool reduce_bandwidth() {
    bool progress = false;
    Wavelength max_used = 0;
    for (const LaunchSpec& spec : current_.specs)
      max_used = std::max(max_used, spec.wavelength);
    if (current_.bandwidth > max_used + 1) {
      FuzzCase candidate = current_;
      candidate.bandwidth = static_cast<std::uint16_t>(max_used + 1);
      if (attempt(std::move(candidate))) progress = true;
    }
    for (std::size_t i = 0; !exhausted() && i < current_.specs.size(); ++i) {
      if (current_.specs[i].wavelength == 0) continue;
      FuzzCase candidate = current_;
      candidate.specs[i].wavelength = 0;
      if (attempt(std::move(candidate))) progress = true;
    }
    return progress;
  }

  bool simplify_config() {
    bool progress = false;
    if (current_.conversion != ConversionMode::None) {
      FuzzCase candidate = current_;
      candidate.conversion = ConversionMode::None;
      candidate.converters.clear();
      if (attempt(std::move(candidate))) progress = true;
    }
    if (current_.has_faults) {
      FuzzCase candidate = current_;
      candidate.has_faults = false;
      candidate.faults = FaultConfig{};
      candidate.fault_seed = 0;
      candidate.fault_epoch = 0;
      if (attempt(std::move(candidate))) progress = true;
    }
    if (current_.tie != TiePolicy::KillAll) {
      FuzzCase candidate = current_;
      candidate.tie = TiePolicy::KillAll;
      if (attempt(std::move(candidate))) progress = true;
    }
    if (current_.rule != ContentionRule::ServeFirst) {
      FuzzCase candidate = current_;
      candidate.rule = ContentionRule::ServeFirst;
      if (attempt(std::move(candidate))) progress = true;
    }
    return progress;
  }

  /// Drops edges no path crosses, then renumbers nodes so only visited
  /// ones remain — the minimized topology is exactly the repro's
  /// footprint.
  bool compact_graph() {
    std::set<std::uint64_t> used_edges;
    std::set<NodeId> used_nodes;
    for (const auto& nodes : current_.paths) {
      for (const NodeId node : nodes) used_nodes.insert(node);
      for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
        used_edges.insert(normalized_edge(nodes[i], nodes[i + 1]));
    }
    if (used_nodes.empty()) used_nodes.insert(0);
    if (used_edges.size() == current_.edges.size() &&
        used_nodes.size() == current_.node_count)
      return false;

    FuzzCase candidate = current_;
    std::map<NodeId, NodeId> remap;
    for (const NodeId node : used_nodes)
      remap.emplace(node, static_cast<NodeId>(remap.size()));
    candidate.node_count = static_cast<NodeId>(remap.size());
    candidate.edges.clear();
    for (const auto& [u, v] : current_.edges)
      if (used_edges.count(normalized_edge(u, v)) != 0)
        candidate.edges.emplace_back(remap.at(u), remap.at(v));
    for (auto& nodes : candidate.paths)
      for (NodeId& node : nodes) node = remap.at(node);
    if (current_.conversion == ConversionMode::Sparse) {
      candidate.converters.assign(candidate.node_count, 0);
      for (const auto& [old_id, new_id] : remap)
        candidate.converters[new_id] = current_.converters[old_id];
    }
    return attempt(std::move(candidate));
  }

  bool normalize_priorities() {
    if (current_.specs.empty()) return false;
    std::vector<std::size_t> order(current_.specs.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return current_.specs[a].priority <
                              current_.specs[b].priority;
                     });
    FuzzCase candidate = current_;
    bool changed = false;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      if (candidate.specs[order[rank]].priority !=
          static_cast<std::uint32_t>(rank))
        changed = true;
      candidate.specs[order[rank]].priority =
          static_cast<std::uint32_t>(rank);
    }
    if (!changed) return false;
    return attempt(std::move(candidate));
  }

  FuzzCase current_;
  const CasePredicate& predicate_;
  ShrinkOptions options_;
  ShrinkStats* stats_;
  std::uint32_t checks_ = 0;
};

}  // namespace

FuzzCase shrink_case(FuzzCase failing, const CasePredicate& still_interesting,
                     const ShrinkOptions& options, ShrinkStats* stats) {
  OPTO_ASSERT_MSG(still_interesting(failing),
                  "shrink_case needs a case the predicate accepts");
  std::string error;
  OPTO_ASSERT_MSG(well_formed(failing, &error), error.c_str());
  Shrinker shrinker(std::move(failing), still_interesting, options, stats);
  return shrinker.run();
}

}  // namespace opto::testlib
