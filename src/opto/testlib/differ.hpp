// Differential driver: one fuzz case in, a list of disagreements out.
//
// Every case gets, in order:
//  1. a structural well-formedness check (hostile repro files fail here
//     with a message instead of tripping an engine assert);
//  2. two independent production Simulator runs, compared bit-for-bit —
//     the engine must be deterministic for replay to mean anything;
//  3. a scalar-vs-SIMD comparison (SimConfig::simd = Off forced against
//     the process default), compared bit-for-bit including the engine's
//     instrumentation counters and the raw trace order — lane width must
//     never change a single byte (attempt_kernel.hpp contract);
//  4. the validate.hpp invariant checkers (conservation, finish-time
//     windows, witnesses, trace-based occupancy disjointness);
//  5. a sequential-vs-sharded engine comparison (PassSharding::On forced)
//     over every model-level output — worm outcomes, model metrics, and
//     the canonical trace ordering (engine-local instrumentation counters
//     are excluded by the DESIGN.md §7 contract);
//  6. when the case carries no *enabled* fault plan: a field-for-field
//     comparison against the first-principles reference engine
//     (reference_run models no faults, so faulty cases stop at 2–5 —
//     a case whose fault plan has all-zero rates still reaches 6,
//     which pins the "disabled plan is bit-identical to no plan"
//     contract);
//  7. an RWA strategy stage: the case's path endpoints become requests
//     and every rwa/ strategy routes them — a manual replay checks each
//     accepted decision (routes connect source to destination, every λ
//     is inside the band, no two accepted routes share a (link, λ)
//     channel in a round), then two independent run_strategy_schedule
//     runs must agree on every result field (the DESIGN.md §11
//     counter-based-RNG determinism contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "opto/testlib/fuzz_case.hpp"

namespace opto::testlib {

struct DiffReport {
  /// Human-readable disagreements, each prefixed with its source: [case],
  /// [determinism], [simd], [validate], [occupancy], [sharded],
  /// [reference], or [rwa].
  std::vector<std::string> issues;
  /// Production-engine metrics of the run (zeroed when the case never
  /// built); lets callers select cases by behavior without re-running.
  PassMetrics metrics;
  /// RWA-stage tallies: requests the stage derived from the case's paths
  /// (0 = stage skipped) and first-round blocked requests summed over
  /// all strategies — the fuzz driver's coverage counters and the
  /// --distill rwa predicate read these.
  std::uint64_t rwa_requests = 0;
  std::uint64_t rwa_blocked = 0;

  bool ok() const { return issues.empty(); }
  std::string summary(std::size_t max_items = 8) const;
};

DiffReport diff_case(const FuzzCase& fuzz);

}  // namespace opto::testlib
