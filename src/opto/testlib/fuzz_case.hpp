// FuzzCase — a fully self-contained, serializable description of one
// differential-fuzzing input: topology, path collection, simulator
// configuration (including converting couplers and an optional fault
// plan), and the launch schedule.
//
// The canonical JSON form (sorted keys, trailing newline; written and
// read with util/json_parse) is the interchange format of the whole
// fuzzing pipeline: the generator's output, opto_fuzz's minimized repro
// files, and the committed tests/corpus/ regression cases are all this
// one schema ("opto.fuzz.case/1"). 64-bit seeds are serialized as
// decimal strings — JSON numbers are doubles and would silently round
// them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "opto/paths/path_collection.hpp"
#include "opto/sim/faults.hpp"
#include "opto/sim/simulator.hpp"
#include "opto/util/json_parse.hpp"

namespace opto::testlib {

struct FuzzCase {
  // Provenance: which generator stream produced this case. Replayed
  // repro files keep these so a minimized case still names its origin.
  std::uint64_t seed = 0;
  std::uint64_t index = 0;

  // Topology: node count plus undirected edges (each becomes the usual
  // pair of directed optical links).
  NodeId node_count = 1;
  std::vector<std::pair<NodeId, NodeId>> edges;

  // Paths as node sequences (simple; consecutive nodes adjacent).
  std::vector<std::vector<NodeId>> paths;

  ContentionRule rule = ContentionRule::ServeFirst;
  TiePolicy tie = TiePolicy::KillAll;
  std::uint16_t bandwidth = 1;
  ConversionMode conversion = ConversionMode::None;
  std::vector<char> converters;  ///< per-node flags; Sparse mode only

  // Optional fault plan, keyed exactly like sim/faults.hpp.
  bool has_faults = false;
  FaultConfig faults;
  std::uint64_t fault_seed = 0;
  std::uint64_t fault_epoch = 0;

  /// Held (link, wavelength) channels, fed to Simulator::set_pinned and
  /// reference_run — the streaming engine's established connections as
  /// the fuzzer exercises them. Links are directed ids (2 per edge).
  std::vector<PinnedSlot> pinned;

  std::vector<LaunchSpec> specs;
};

/// Structural validity: everything build_case() (or the simulator)
/// would otherwise OPTO_ASSERT on, checked up front so hostile or
/// hand-edited repro files fail with a message instead of an abort.
/// On failure returns false and, when `error` is non-null, names the
/// first violation.
bool well_formed(const FuzzCase& fuzz, std::string* error = nullptr);

/// A materialized case. `config.faults` points at `plan` (when the case
/// carries faults), so the struct is non-copyable and lives on the heap.
struct BuiltCase {
  std::shared_ptr<const Graph> graph;
  PathCollection collection;
  FaultPlan plan;
  SimConfig config;

  BuiltCase() = default;
  BuiltCase(const BuiltCase&) = delete;
  BuiltCase& operator=(const BuiltCase&) = delete;
};

/// Materializes a well-formed case (asserts well_formed()).
std::unique_ptr<BuiltCase> build_case(const FuzzCase& fuzz);

JsonValue case_to_json(const FuzzCase& fuzz);
std::optional<FuzzCase> case_from_json(const JsonValue& value,
                                       std::string* error = nullptr);

/// Canonical serialization: sorted object keys, one trailing newline.
/// Byte-stable across platforms and runs; the corpus replay test and
/// the generator-determinism test compare these bytes directly.
std::string canonical_json(const FuzzCase& fuzz);

/// Parses a case document (the inverse of canonical_json, though any
/// key order is accepted on input).
std::optional<FuzzCase> parse_case(std::string_view text,
                                   std::string* error = nullptr);

}  // namespace opto::testlib
