#include "opto/testlib/generator.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "opto/rng/rng.hpp"
#include "opto/util/assert.hpp"

namespace opto::testlib {
namespace {

/// Undirected edge accumulator with the same rejection rules as
/// Graph::add_edge (no self-loops, no duplicates), so the emitted case
/// is well-formed by construction.
class EdgeSet {
 public:
  bool add(NodeId u, NodeId v) {
    if (u == v) return false;
    const NodeId lo = std::min(u, v);
    const NodeId hi = std::max(u, v);
    if (!seen_.insert((static_cast<std::uint64_t>(lo) << 32) | hi).second)
      return false;
    edges_.emplace_back(u, v);
    return true;
  }

  std::vector<std::pair<NodeId, NodeId>> take() { return std::move(edges_); }

 private:
  std::set<std::uint64_t> seen_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// Parent-pointer BFS from `source` in discovery order (adjacency lists
/// are scanned in insertion order, so the result is deterministic).
/// Returns the node sequence source → destination, or empty when
/// unreachable.
std::vector<NodeId> bfs_path(const Graph& graph, NodeId source,
                             NodeId destination) {
  std::vector<NodeId> parent(graph.node_count(), kInvalidNode);
  std::queue<NodeId> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty() && parent[destination] == kInvalidNode) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const EdgeId link : graph.out_links(u)) {
      const NodeId v = graph.target(link);
      if (parent[v] != kInvalidNode) continue;
      parent[v] = u;
      frontier.push(v);
    }
  }
  if (parent[destination] == kInvalidNode) return {};
  std::vector<NodeId> nodes{destination};
  while (nodes.back() != source) nodes.push_back(parent[nodes.back()]);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

/// Random simple walk of at most `max_links` links.
std::vector<NodeId> random_walk(const Graph& graph, NodeId start,
                                std::uint32_t max_links, Rng& rng) {
  std::vector<NodeId> nodes{start};
  std::vector<char> visited(graph.node_count(), 0);
  visited[start] = 1;
  std::vector<NodeId> candidates;
  for (std::uint32_t step = 0; step < max_links; ++step) {
    candidates.clear();
    for (const EdgeId link : graph.out_links(nodes.back())) {
      const NodeId v = graph.target(link);
      if (visited[v] == 0) candidates.push_back(v);
    }
    if (candidates.empty()) break;
    const NodeId next = candidates[rng.next_below(candidates.size())];
    visited[next] = 1;
    nodes.push_back(next);
  }
  return nodes;
}

double small_rate(Rng& rng) {
  if (!rng.next_bernoulli(0.5)) return 0.0;
  constexpr double kRates[] = {0.05, 0.15, 0.35};
  return kRates[rng.next_below(3)];
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, std::uint64_t index,
                       const GenOptions& options) {
  Rng rng = Rng::stream(seed, index);
  FuzzCase fuzz;
  fuzz.seed = seed;
  fuzz.index = index;

  // --- Topology ---------------------------------------------------------
  OPTO_ASSERT(options.max_nodes >= 2);
  NodeId n = 2 + static_cast<NodeId>(rng.next_below(options.max_nodes - 1));
  const std::uint64_t family = rng.next_below(8);
  EdgeSet edges;
  switch (family) {
    case 0:  // chain — the lower-bound structures' contention shape
      for (NodeId i = 0; i + 1 < n; ++i) edges.add(i, i + 1);
      break;
    case 1:  // ring
      for (NodeId i = 0; i + 1 < n; ++i) edges.add(i, i + 1);
      if (n >= 3) edges.add(n - 1, 0);
      break;
    case 2:  // star — every path crosses the hub
      for (NodeId i = 1; i < n; ++i) edges.add(0, i);
      break;
    case 3:  // clique (capped: quadratic edges)
      n = std::min<NodeId>(n, 7);
      for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v) edges.add(u, v);
      break;
    case 4:  // random tree plus chords
      for (NodeId i = 1; i < n; ++i)
        edges.add(static_cast<NodeId>(rng.next_below(i)), i);
      break;
    case 5: {  // two cliques joined by one bridge edge — a hotspot
      n = std::min<NodeId>(n, 12);
      const NodeId half = std::max<NodeId>(1, n / 2);
      for (NodeId u = 0; u < half; ++u)
        for (NodeId v = u + 1; v < half; ++v) edges.add(u, v);
      for (NodeId u = half; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v) edges.add(u, v);
      if (half < n) edges.add(0, half);
      break;
    }
    case 6: {  // disjoint chain segments — many edge-disjoint paths, so
               // cases decompose into k components (all-singleton when
               // every path lands in its own segment)
      const NodeId segments = 2 + static_cast<NodeId>(rng.next_below(4));
      const NodeId segment = std::max<NodeId>(2, n / segments);
      for (NodeId i = 0; i + 1 < n; ++i)
        if ((i + 1) % segment != 0) edges.add(i, i + 1);
      break;
    }
    case 7: {  // few shared hubs, many private tails: BFS paths funnel
               // through the hub edges while walks stay inside one tail —
               // a mix of one big component and private singletons
      const NodeId hubs =
          1 + static_cast<NodeId>(rng.next_below(std::min<NodeId>(2, n - 1)));
      for (NodeId h = 1; h < hubs; ++h) edges.add(h - 1, h);
      for (NodeId i = hubs; i < n; ++i) {
        if (i == hubs || rng.next_bernoulli(0.35))
          edges.add(static_cast<NodeId>(rng.next_below(hubs)), i);  // new tail
        else
          edges.add(i - 1, i);  // extend the previous tail
      }
      break;
    }
  }
  fuzz.node_count = n;
  // Random chords would reconnect family 6's segments (and blur family
  // 7's hub/tail split), defeating their multi-component purpose — the
  // decomposition families keep their structure chord-free.
  if (family != 3 && family != 5 && family < 6 && rng.next_bernoulli(0.5)) {
    const std::uint64_t chords = rng.next_below(options.max_extra_edges + 1);
    for (std::uint64_t c = 0; c < chords; ++c)
      edges.add(static_cast<NodeId>(rng.next_below(n)),
                static_cast<NodeId>(rng.next_below(n)));
  }
  fuzz.edges = edges.take();

  Graph graph(n, "gen");
  for (const auto& [u, v] : fuzz.edges) graph.add_edge(u, v);

  // --- Paths ------------------------------------------------------------
  const std::uint32_t path_count =
      1 + static_cast<std::uint32_t>(rng.next_below(options.max_paths));
  for (std::uint32_t p = 0; p < path_count; ++p) {
    const std::uint64_t kind = rng.next_below(8);
    std::vector<NodeId> nodes;
    if (kind == 7 && !fuzz.paths.empty()) {
      // Duplicate an earlier path: identical worms in full contention.
      nodes = fuzz.paths[rng.next_below(fuzz.paths.size())];
    } else if (kind >= 5) {
      nodes = random_walk(
          graph, static_cast<NodeId>(rng.next_below(n)),
          1 + static_cast<std::uint32_t>(
                  rng.next_below(options.max_walk_links)),
          rng);
    } else if (kind >= 1) {
      const NodeId s = static_cast<NodeId>(rng.next_below(n));
      const NodeId t = static_cast<NodeId>(rng.next_below(n));
      nodes = bfs_path(graph, s, t);
      if (nodes.empty()) nodes = {s};  // unreachable: zero-length path
    } else {
      // Zero-length path: source == destination, delivered on injection.
      nodes = {static_cast<NodeId>(rng.next_below(n))};
    }
    fuzz.paths.push_back(std::move(nodes));
  }

  // --- Config -----------------------------------------------------------
  fuzz.rule = rng.next_bernoulli(0.5) ? ContentionRule::Priority
                                      : ContentionRule::ServeFirst;
  fuzz.tie =
      rng.next_bernoulli(0.5) ? TiePolicy::FirstWins : TiePolicy::KillAll;
  fuzz.bandwidth =
      1 + static_cast<std::uint16_t>(rng.next_below(options.max_bandwidth));
  if (rng.next_bernoulli(options.conversion_probability)) {
    if (rng.next_bernoulli(0.5)) {
      fuzz.conversion = ConversionMode::Full;
    } else {
      fuzz.conversion = ConversionMode::Sparse;
      fuzz.converters.resize(n);
      for (NodeId node = 0; node < n; ++node)
        fuzz.converters[node] = rng.next_bernoulli(0.5) ? 1 : 0;
    }
  }

  if (rng.next_bernoulli(options.fault_probability)) {
    fuzz.has_faults = true;
    fuzz.faults.link_outage_rate = small_rate(rng);
    fuzz.faults.coupler_outage_rate = small_rate(rng);
    fuzz.faults.stuck_wavelength_rate = small_rate(rng);
    fuzz.faults.corruption_rate = small_rate(rng);
    fuzz.faults.ack_drop_rate = 0.0;  // protocol-level; inert in one pass
    fuzz.faults.outage_period = 4 + static_cast<SimTime>(rng.next_below(61));
    fuzz.faults.outage_duration =
        1 + static_cast<SimTime>(rng.next_below(
                static_cast<std::uint64_t>(fuzz.faults.outage_period)));
    fuzz.fault_seed = rng.next_u64();
    fuzz.fault_epoch = rng.next_below(4);
  }

  // Pinned slots (held channels of the streaming engine): draw a few
  // random directed (link, wavelength) pairs. Duplicates are allowed —
  // the registry treats them as one claim.
  const std::size_t link_count = 2 * fuzz.edges.size();
  if (link_count > 0 && options.max_pinned > 0 &&
      rng.next_bernoulli(options.pinned_probability)) {
    const std::uint64_t slots = 1 + rng.next_below(options.max_pinned);
    for (std::uint64_t s = 0; s < slots; ++s) {
      PinnedSlot slot;
      slot.link = static_cast<EdgeId>(rng.next_below(link_count));
      slot.wavelength =
          static_cast<Wavelength>(rng.next_below(fuzz.bandwidth));
      fuzz.pinned.push_back(slot);
    }
  }

  // --- Launch schedule --------------------------------------------------
  std::uint32_t spec_count =
      path_count + static_cast<std::uint32_t>(
                       rng.next_below(options.max_extra_specs + 1));
  if (rng.next_below(16) == 0)  // rare: fewer worms than paths, possibly 0
    spec_count = static_cast<std::uint32_t>(rng.next_below(path_count + 1));
  const auto ranks = rng.permutation(spec_count);
  // Occasionally launch everything at t = 0: the densest contention step.
  const SimTime spread =
      rng.next_below(8) == 0
          ? 1
          : 1 + static_cast<SimTime>(rng.next_below(
                    static_cast<std::uint64_t>(options.max_start_spread)));
  for (std::uint32_t i = 0; i < spec_count; ++i) {
    LaunchSpec spec;
    spec.path = i < path_count
                    ? i
                    : static_cast<PathId>(rng.next_below(path_count));
    spec.start_time =
        static_cast<SimTime>(rng.next_below(static_cast<std::uint64_t>(spread)));
    spec.wavelength = static_cast<Wavelength>(rng.next_below(fuzz.bandwidth));
    spec.priority = ranks[i];
    spec.length =
        1 + static_cast<std::uint32_t>(rng.next_below(options.max_length));
    fuzz.specs.push_back(spec);
  }
  // Rare extreme: one start time past 2^31 forces the simulator off its
  // packed injection-sort fast path (and exercises idle fast-forward).
  if (!fuzz.specs.empty() && rng.next_below(128) == 0) {
    LaunchSpec& spec = fuzz.specs[rng.next_below(fuzz.specs.size())];
    spec.start_time = (SimTime{1} << 31) + static_cast<SimTime>(rng.next_below(3));
  }

  std::string error;
  OPTO_ASSERT_MSG(well_formed(fuzz, &error), error.c_str());
  return fuzz;
}

}  // namespace opto::testlib
