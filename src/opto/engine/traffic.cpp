#include "opto/engine/traffic.hpp"

#include <cmath>

#include "opto/util/assert.hpp"

namespace opto {

namespace {

double exponential(Rng& rng, double mean) {
  // Inverse CDF; 1 − U in (0, 1].
  return -mean * std::log(1.0 - rng.next_double());
}

}  // namespace

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::Mmpp: return "mmpp";
    case ArrivalProcess::Trace: return "trace";
  }
  return "?";
}

double mean_arrival_rate(const TrafficConfig& config) {
  switch (config.process) {
    case ArrivalProcess::Poisson:
      return config.rate;
    case ArrivalProcess::Mmpp:
      // Equal mean dwells → the chain spends half its time in each state.
      return config.rate * (config.mmpp_burst + config.mmpp_calm) / 2.0;
    case ArrivalProcess::Trace: {
      double total = 0.0;
      for (const double gap : config.trace) total += gap;
      return total > 0.0
                 ? static_cast<double>(config.trace.size()) / total
                 : 0.0;
    }
  }
  return 0.0;
}

ArrivalGenerator::ArrivalGenerator(const TrafficConfig& config,
                                   std::uint64_t seed)
    : config_(config), rng_(Rng::stream(seed, 0x7261FF1Cull)) {
  if (config_.process == ArrivalProcess::Trace) {
    OPTO_ASSERT_MSG(!config_.trace.empty(), "trace process needs gaps");
    for (const double gap : config_.trace)
      OPTO_ASSERT_MSG(gap > 0.0, "trace gaps must be > 0");
  } else {
    OPTO_ASSERT(config_.rate > 0.0);
  }
  if (config_.process == ArrivalProcess::Mmpp) {
    OPTO_ASSERT(config_.mmpp_burst > 0.0 && config_.mmpp_calm > 0.0 &&
                config_.mmpp_mean_dwell > 0.0);
    dwell_left_ = exponential(rng_, config_.mmpp_mean_dwell);
  }
}

double ArrivalGenerator::next_gap() {
  switch (config_.process) {
    case ArrivalProcess::Poisson:
      return exponential(rng_, 1.0 / config_.rate);
    case ArrivalProcess::Trace: {
      const double gap = config_.trace[trace_index_];
      trace_index_ = (trace_index_ + 1) % config_.trace.size();
      return gap;
    }
    case ArrivalProcess::Mmpp: {
      // Memorylessness lets the candidate gap be redrawn from scratch in
      // the new state at each flip; only the elapsed dwell carries over.
      double gap = 0.0;
      while (true) {
        const double rate =
            config_.rate * (burst_ ? config_.mmpp_burst : config_.mmpp_calm);
        const double candidate = exponential(rng_, 1.0 / rate);
        if (candidate <= dwell_left_) {
          dwell_left_ -= candidate;
          return gap + candidate;
        }
        gap += dwell_left_;
        burst_ = !burst_;
        dwell_left_ = exponential(rng_, config_.mmpp_mean_dwell);
      }
    }
  }
  OPTO_ASSERT_MSG(false, "unreachable");
  return 0.0;
}

}  // namespace opto
