// Streaming traffic engine — open connection arrivals served by rolling
// Trial-and-Failure batches.
//
// The closed experiments hand the protocol a fixed path collection and
// run it to empty. Here the workload is open: requests arrive over
// traffic time (engine/traffic.hpp), join the *current* protocol batch,
// and a ProtocolSession round runs every `round_interval` of traffic
// time. An acknowledged setup converts into a held circuit — its
// (link, wavelength) channels become pinned slots that later passes
// treat as busy — for an exponential holding time, then tears down.
//
// Admission is loss-call-cleared (the Erlang/teletraffic convention): a
// request whose route has no launchable wavelength at its first decision
// round is blocked and leaves. A request that *was* launched but lost
// its worm to contention retries in the next round — capacity existed,
// it only lost a race. `max_setup_rounds` bounds retries as a livelock
// safety net.
//
// Two clocks: traffic time (double; arrivals, holding, teardown) and the
// simulator's integer step time inside each pass. One round is a single
// pass; events at equal traffic time apply as departures ≤ round <
// arrivals, so freed channels are visible to the round that starts at
// the same instant, and a request arriving exactly at a round boundary
// waits for the next round.
//
// Determinism: the trajectory is a pure function of (graph, config,
// seed) — traffic, protocol, and holding-time draws live on distinct
// Rng streams, and nothing depends on wall clock or thread count. Wall
// time appears only in the `*_wall_ns` / `*_per_s` metrics, which
// bench_compare --normalize strips.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "opto/core/trial_and_failure.hpp"
#include "opto/engine/traffic.hpp"
#include "opto/graph/graph.hpp"

namespace opto {

/// Wavelength selection for a setup attempt, over the channels not held
/// by established circuits. FirstFit is the classic dynamic-RWA policy;
/// RandomFit spreads concurrent setups to cut same-round collisions.
enum class WavelengthFit : std::uint8_t { FirstFit, RandomFit };

const char* to_string(WavelengthFit fit);

struct EngineConfig {
  /// Protocol knobs for the setup passes (bandwidth, contention rule,
  /// conversion…). Multi-connection batches need a strategy with
  /// pairwise-distinct ranks — keep the default RandomPermutation.
  ProtocolConfig protocol;
  TrafficConfig traffic;
  double mean_holding_time = 1.0;   ///< exponential circuit lifetime
  double round_interval = 0.05;     ///< traffic time between rounds
  /// Startup-delay range Δ within each setup pass (simulator steps).
  SimTime round_delta = 8;
  std::uint32_t max_setup_rounds = 32;  ///< retry cap (livelock net)
  std::uint64_t arrivals = 100000;  ///< requests to generate
  std::uint64_t warmup = 10000;     ///< arrivals excluded from metrics
  WavelengthFit fit = WavelengthFit::FirstFit;
  /// Publish the result as obs gauges (obs::set_metric) for the
  /// BenchRecord; deterministic names plain, wall-clock names stripped
  /// by --normalize.
  bool record = false;
};

struct EngineResult {
  std::uint64_t offered = 0;    ///< measured (post-warmup) arrivals
  std::uint64_t admitted = 0;   ///< measured circuits established
  std::uint64_t blocked = 0;    ///< measured losses (no capacity/expired)
  std::uint64_t expired = 0;    ///< of blocked: hit max_setup_rounds
  /// Setups re-entered because a completed worm's channels were claimed
  /// by an earlier completion of the same round (transient worm claims
  /// can double-book a hold; the engine confirms before pinning).
  std::uint64_t conflict_readmits = 0;
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t rounds = 0;         ///< protocol rounds executed
  std::uint64_t peak_active = 0;    ///< connection-table high-water mark
  double blocking_probability = 0.0;
  double mean_setup_rounds = 0.0;   ///< over measured admissions
  double p50_setup_rounds = 0.0;
  double p99_setup_rounds = 0.0;
  double p50_setup_wall_ns = 0.0;   ///< arrival→established, wall clock
  double p99_setup_wall_ns = 0.0;
  double requests_per_s = 0.0;      ///< arrivals over run wall time
  double sim_duration = 0.0;        ///< traffic time simulated
};

class Engine {
 public:
  /// Builds the canonical BFS route table (one path per ordered pair) on
  /// `graph`, which must be connected with ≥ 2 nodes.
  Engine(std::shared_ptr<const Graph> graph, EngineConfig config,
         std::uint64_t seed);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the event loop over `config.arrivals` requests plus the drain
  /// of in-flight setups. One call per engine instance.
  EngineResult run();

  const PathCollection& routes() const { return routes_; }

 private:
  struct Connection;

  std::uint32_t acquire_connection(PathId path, bool measured);
  void release_connection(std::uint32_t id);
  std::optional<Wavelength> choose_wavelength(PathId path, std::uint64_t tag);
  void claim_channel(std::uint32_t id, EdgeId link, Wavelength wavelength);
  void release_channels(std::uint32_t id);
  void run_round();
  void finish(std::uint32_t id, const ProtocolSession::Completion& done);
  void record_result() const;

  std::shared_ptr<const Graph> graph_;
  EngineConfig config_;
  std::uint64_t seed_;

  PathCollection routes_;
  std::vector<PathId> pair_path_;  ///< src·n + dst → PathId (diag invalid)

  FixedSchedule schedule_;
  std::optional<ProtocolSession> session_;  ///< built after the routes
  Rng traffic_pairs_;  ///< src/dst draws (arrival order)
  Rng holding_;        ///< lifetime draws (establishment order)
  Rng fit_;            ///< RandomFit draws (decision order)
  ArrivalGenerator arrivals_;

  // Held circuits: one pinned slot per (link, wavelength) a circuit
  // holds, fed to the session's forward passes. Slot release is O(1)
  // swap-remove; pin_owner_ (parallel to pinned_) points back to the
  // owning connection's slot list so moved slots can be re-indexed.
  struct PinOwner {
    std::uint32_t connection = 0;
    std::uint32_t position = 0;  ///< index into Connection::slots
  };
  std::vector<PinnedSlot> pinned_;
  std::vector<PinOwner> pin_owner_;
  std::vector<char> channel_busy_;  ///< link·B + w, held circuits only

  // Connection table, ids recycled through a free list so its size is
  // the peak number of concurrent connections, not total arrivals.
  std::vector<Connection> connections_;
  std::vector<std::uint32_t> free_ids_;

  struct Departure {
    double time = 0.0;
    std::uint32_t connection = 0;
    // Strict weak order with an id tiebreaker (same fix as
    // core/dynamic_traffic.cpp): pop order must not depend on heap
    // internals.
    bool operator>(const Departure& other) const {
      if (time != other.time) return time > other.time;
      return connection > other.connection;
    }
  };
  std::vector<Departure> departures_;  ///< min-heap via std::*_heap

  // Round-scoped scratch (hoisted: steady state allocates nothing).
  // Tags whose chooser found every wavelength busy this round; removed
  // as blocked after the round (loss-call-cleared).
  std::vector<std::uint64_t> no_capacity_;

  EngineResult result_;
  double now_ = 0.0;
  std::uint64_t rounds_run_ = 0;
  bool ran_ = false;

  // Latency accounting: exact histogram over setup rounds (bounded by
  // max_setup_rounds) and a log-bucketed histogram over wall ns (4
  // sub-buckets per octave, ≤ ~19% quantile error) — both O(1) memory
  // regardless of arrival count.
  std::vector<std::uint64_t> rounds_histogram_;
  std::vector<std::uint64_t> wall_histogram_;
  double setup_rounds_total_ = 0.0;
};

}  // namespace opto
