#include "opto/engine/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

#include "opto/obs/obs.hpp"
#include "opto/paths/bfs_shortest.hpp"
#include "opto/util/assert.hpp"

namespace opto {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

double exponential(Rng& rng, double mean) {
  // Inverse CDF; 1 − U in (0, 1].
  return -mean * std::log(1.0 - rng.next_double());
}

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Log-bucketed wall-latency histogram: exact below 4 ns, then 4 buckets
// per octave (top two mantissa bits), ≤ ~19% representative error.
constexpr std::size_t kWallBuckets = 256;

std::size_t wall_bucket(std::uint64_t ns) {
  if (ns < 4) return static_cast<std::size_t>(ns);
  const int exponent = std::bit_width(ns) - 1;  // ≥ 2
  const std::uint64_t sub = (ns >> (exponent - 2)) & 3;
  return static_cast<std::size_t>(exponent) * 4 +
         static_cast<std::size_t>(sub) - 4;
}

double wall_bucket_value(std::size_t bucket) {
  if (bucket < 4) return static_cast<double>(bucket);
  const int exponent = static_cast<int>(bucket / 4) + 1;
  const std::uint64_t sub = bucket % 4;
  const double low =
      static_cast<double>((4 + sub) << 1) * std::ldexp(1.0, exponent - 3);
  const double width = std::ldexp(1.0, exponent - 2);
  return low + width / 2.0;
}

/// Smallest bucket at which the cumulative count reaches q of the total.
double histogram_quantile(const std::vector<std::uint64_t>& histogram,
                          double q, double (*value_of)(std::size_t)) {
  std::uint64_t total = 0;
  for (const std::uint64_t count : histogram) total += count;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    cumulative += histogram[b];
    if (static_cast<double>(cumulative) >= target && histogram[b] > 0)
      return value_of(b);
  }
  return value_of(histogram.size() - 1);
}

double rounds_bucket_value(std::size_t bucket) {
  return static_cast<double>(bucket);
}

}  // namespace

const char* to_string(WavelengthFit fit) {
  return fit == WavelengthFit::FirstFit ? "first-fit" : "random-fit";
}

struct Engine::Connection {
  PathId path = kInvalidPath;
  std::uint64_t wall_start = 0;      ///< ns at admission
  std::uint32_t rounds_total = 0;    ///< setup rounds incl. readmissions
  bool measured = false;
  std::vector<std::uint32_t> slots;  ///< indices into pinned_ while held
};

namespace {

/// All ordered (src, dst) pairs in row-major order — the engine's route
/// table indexing (pair_path_).
std::vector<std::pair<NodeId, NodeId>> all_ordered_pairs(NodeId nodes) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(static_cast<std::size_t>(nodes) * (nodes - 1));
  for (NodeId src = 0; src < nodes; ++src)
    for (NodeId dst = 0; dst < nodes; ++dst)
      if (src != dst) pairs.emplace_back(src, dst);
  return pairs;
}

}  // namespace

Engine::Engine(std::shared_ptr<const Graph> graph, EngineConfig config,
               std::uint64_t seed)
    : graph_(std::move(graph)),
      config_(std::move(config)),
      seed_(seed),
      schedule_(config_.round_delta),
      traffic_pairs_(Rng::stream(seed, 0xE9612E01ull)),
      holding_(Rng::stream(seed, 0xE9612E02ull)),
      fit_(Rng::stream(seed, 0xE9612E03ull)),
      arrivals_(config_.traffic, seed) {
  OPTO_ASSERT(graph_ != nullptr && graph_->node_count() >= 2);
  OPTO_ASSERT(config_.mean_holding_time > 0.0);
  OPTO_ASSERT(config_.round_interval > 0.0);
  OPTO_ASSERT(config_.max_setup_rounds >= 1);
  OPTO_ASSERT(config_.arrivals > config_.warmup);
  OPTO_ASSERT_MSG(
      config_.protocol.priorities == PriorityStrategy::RandomPermutation,
      "engine batches admit one path many times; only RandomPermutation "
      "guarantees pairwise-distinct ranks");

  const NodeId nodes = graph_->node_count();
  const auto pairs = all_ordered_pairs(nodes);
  routes_ = bfs_collection(graph_, pairs);
  pair_path_.assign(static_cast<std::size_t>(nodes) * nodes, kInvalidPath);
  for (PathId id = 0; id < routes_.size(); ++id)
    pair_path_[static_cast<std::size_t>(pairs[id].first) * nodes +
               pairs[id].second] = id;

  session_.emplace(routes_, config_.protocol, schedule_, seed);
  session_->set_wavelength_chooser(
      [this](PathId path, std::uint64_t tag) {
        return choose_wavelength(path, tag);
      });

  channel_busy_.assign(static_cast<std::size_t>(graph_->link_count()) *
                           config_.protocol.bandwidth,
                       0);
  rounds_histogram_.assign(
      static_cast<std::size_t>(config_.max_setup_rounds) * 4 + 2, 0);
  wall_histogram_.assign(kWallBuckets, 0);
}

Engine::~Engine() = default;

std::uint32_t Engine::acquire_connection(PathId path, bool measured) {
  std::uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(connections_.size());
    connections_.emplace_back();
  }
  Connection& connection = connections_[id];
  connection.path = path;
  connection.wall_start = wall_now_ns();
  connection.rounds_total = 0;
  connection.measured = measured;
  connection.slots.clear();
  result_.peak_active =
      std::max(result_.peak_active,
               static_cast<std::uint64_t>(connections_.size()) -
                   static_cast<std::uint64_t>(free_ids_.size()));
  return id;
}

void Engine::release_connection(std::uint32_t id) {
  release_channels(id);
  free_ids_.push_back(id);
}

std::optional<Wavelength> Engine::choose_wavelength(PathId path,
                                                    std::uint64_t tag) {
  const auto links = routes_.path(path).links();
  const std::uint16_t bandwidth = config_.protocol.bandwidth;
  const auto busy = [&](EdgeId link, Wavelength w) {
    return channel_busy_[static_cast<std::size_t>(link) * bandwidth + w] != 0;
  };

  if (config_.protocol.conversion != ConversionMode::None) {
    // Converting routers only need SOME free wavelength per link; the
    // pass retunes. Launch on a free wavelength of the first link.
    for (const EdgeId link : links) {
      bool any = false;
      for (Wavelength w = 0; w < bandwidth && !any; ++w)
        any = !busy(link, w);
      if (!any) {
        no_capacity_.push_back(tag);
        return std::nullopt;
      }
    }
    std::uint32_t free_count = 0;
    Wavelength first = 0;
    for (Wavelength w = bandwidth; w-- > 0;)
      if (!busy(links[0], w)) {
        ++free_count;
        first = w;
      }
    if (config_.fit == WavelengthFit::FirstFit) return first;
    std::uint64_t pick = fit_.next_below(free_count);
    for (Wavelength w = first;; ++w)
      if (!busy(links[0], w) && pick-- == 0) return w;
  }

  // Wavelength continuity: one wavelength free on EVERY link.
  std::uint32_t free_count = 0;
  Wavelength first = 0;  // overwritten on the first free hit
  for (Wavelength w = 0; w < bandwidth; ++w) {
    bool free = true;
    for (const EdgeId link : links)
      if (busy(link, w)) {
        free = false;
        break;
      }
    if (!free) continue;
    if (free_count == 0) first = w;
    ++free_count;
    if (config_.fit == WavelengthFit::FirstFit) return w;
  }
  if (free_count == 0) {
    no_capacity_.push_back(tag);
    return std::nullopt;
  }
  std::uint64_t pick = fit_.next_below(free_count);
  for (Wavelength w = first;; ++w) {
    bool free = true;
    for (const EdgeId link : links)
      if (busy(link, w)) {
        free = false;
        break;
      }
    if (free && pick-- == 0) return w;
  }
}

void Engine::claim_channel(std::uint32_t id, EdgeId link,
                           Wavelength wavelength) {
  Connection& connection = connections_[id];
  const auto slot = static_cast<std::uint32_t>(pinned_.size());
  pinned_.push_back({link, wavelength});
  pin_owner_.push_back(
      {id, static_cast<std::uint32_t>(connection.slots.size())});
  connection.slots.push_back(slot);
  channel_busy_[static_cast<std::size_t>(link) *
                    config_.protocol.bandwidth +
                wavelength] = 1;
}

void Engine::release_channels(std::uint32_t id) {
  Connection& connection = connections_[id];
  for (std::size_t k = 0; k < connection.slots.size(); ++k) {
    const std::uint32_t slot = connection.slots[k];
    const PinnedSlot& held = pinned_[slot];
    channel_busy_[static_cast<std::size_t>(held.link) *
                      config_.protocol.bandwidth +
                  held.wavelength] = 0;
    const std::uint32_t last = static_cast<std::uint32_t>(pinned_.size()) - 1;
    if (slot != last) {
      // Swap-remove; re-point the moved slot's owner. A moved slot of
      // THIS connection always sits at a not-yet-released position
      // (released ones are already gone from pinned_).
      pinned_[slot] = pinned_[last];
      const PinOwner owner = pin_owner_[last];
      pin_owner_[slot] = owner;
      connections_[owner.connection].slots[owner.position] = slot;
    }
    pinned_.pop_back();
    pin_owner_.pop_back();
  }
  connection.slots.clear();
}

void Engine::finish(std::uint32_t id,
                    const ProtocolSession::Completion& done) {
  Connection& connection = connections_[id];
  connection.rounds_total += done.attempts;

  const auto links = routes_.path(connection.path).links();
  const auto history = session_->wavelength_history();
  const bool converted = done.history_end > done.history_begin;
  OPTO_DASSERT(!converted ||
               done.history_end - done.history_begin == links.size());
  const auto wavelength_on = [&](std::size_t k) {
    return converted ? history[done.history_begin + k] : done.wavelength;
  };

  // Worm claims are transient, so two same-round completions can have
  // crossed the same channel at different pass times — a hold would
  // double-book. Confirm against committed holds (including this
  // round's earlier completions) and re-admit on conflict.
  for (std::size_t k = 0; k < links.size(); ++k) {
    if (channel_busy_[static_cast<std::size_t>(links[k]) *
                          config_.protocol.bandwidth +
                      wavelength_on(k)] == 0)
      continue;
    ++result_.conflict_readmits;
    session_->admit(connection.path, id);
    return;
  }
  for (std::size_t k = 0; k < links.size(); ++k)
    claim_channel(id, links[k], wavelength_on(k));

  const double hold = exponential(holding_, config_.mean_holding_time);
  departures_.push_back({now_ + hold, id});
  std::push_heap(departures_.begin(), departures_.end(),
                 std::greater<>{});

  if (connection.measured) {
    ++result_.admitted;
    setup_rounds_total_ += static_cast<double>(connection.rounds_total);
    const std::size_t bucket =
        std::min<std::size_t>(connection.rounds_total,
                              rounds_histogram_.size() - 1);
    ++rounds_histogram_[bucket];
    ++wall_histogram_[wall_bucket(wall_now_ns() - connection.wall_start)];
  }
}

void Engine::run_round() {
  no_capacity_.clear();
  session_->set_pinned({pinned_.data(), pinned_.size()});
  const RoundReport& report = session_->step();
  ++rounds_run_;
  (void)report;

  for (const ProtocolSession::Completion& done : session_->completed())
    finish(static_cast<std::uint32_t>(done.tag), done);

  // Loss-call-cleared: requests that saw zero launchable wavelengths at
  // this decision round leave blocked.
  if (!no_capacity_.empty()) {
    std::sort(no_capacity_.begin(), no_capacity_.end());
    for (const ProtocolSession::Completion& gone : session_->remove_if(
             [this](std::uint64_t tag, std::uint32_t) {
               return std::binary_search(no_capacity_.begin(),
                                         no_capacity_.end(), tag);
             })) {
      const auto id = static_cast<std::uint32_t>(gone.tag);
      if (connections_[id].measured) ++result_.blocked;
      free_ids_.push_back(id);
    }
  }

  // Livelock safety net: contention-racing setups that somehow never won
  // a round are dropped after max_setup_rounds attempts.
  for (const ProtocolSession::Completion& gone :
       session_->expire(config_.max_setup_rounds)) {
    const auto id = static_cast<std::uint32_t>(gone.tag);
    if (connections_[id].measured) {
      ++result_.blocked;
      ++result_.expired;
    }
    free_ids_.push_back(id);
  }
}

EngineResult Engine::run() {
  OPTO_ASSERT_MSG(!ran_, "Engine::run is one-shot");
  ran_ = true;
  const obs::ScopedTimer obs_timer("engine.run");
  const std::uint64_t wall_start = wall_now_ns();

  const NodeId nodes = graph_->node_count();
  const double interval = config_.round_interval;
  std::uint64_t generated = 0;
  double next_arrival = arrivals_.next_gap();
  double next_round = kNever;  ///< armed while setups are pending

  while (generated < config_.arrivals || session_->active_count() > 0) {
    const double t_departure =
        departures_.empty() ? kNever : departures_.front().time;
    const double t_round =
        session_->active_count() > 0 ? next_round : kNever;
    const double t_arrival =
        generated < config_.arrivals ? next_arrival : kNever;

    // Tie order: departures ≤ round < arrivals.
    if (t_departure <= t_round && t_departure <= t_arrival) {
      now_ = t_departure;
      const std::uint32_t id = departures_.front().connection;
      std::pop_heap(departures_.begin(), departures_.end(),
                    std::greater<>{});
      departures_.pop_back();
      release_connection(id);
    } else if (t_round <= t_arrival) {
      now_ = t_round;
      run_round();
      next_round = session_->active_count() > 0 ? t_round + interval : kNever;
    } else {
      now_ = t_arrival;
      const auto source =
          static_cast<NodeId>(traffic_pairs_.next_below(nodes));
      auto destination =
          static_cast<NodeId>(traffic_pairs_.next_below(nodes - 1));
      if (destination >= source) ++destination;
      const PathId path =
          pair_path_[static_cast<std::size_t>(source) * nodes + destination];
      const bool measured = generated >= config_.warmup;
      if (measured) ++result_.offered;
      const std::uint32_t id = acquire_connection(path, measured);
      if (session_->active_count() == 0)
        next_round =
            (std::floor(now_ / interval) + 1.0) * interval;
      session_->admit(path, id);
      ++generated;
      next_arrival = now_ + arrivals_.next_gap();
    }
  }

  result_.rounds = rounds_run_;
  result_.duplicate_deliveries = session_->duplicate_deliveries();
  result_.sim_duration = now_;
  result_.blocking_probability =
      result_.offered > 0
          ? static_cast<double>(result_.blocked) /
                static_cast<double>(result_.offered)
          : 0.0;
  result_.mean_setup_rounds =
      result_.admitted > 0
          ? setup_rounds_total_ / static_cast<double>(result_.admitted)
          : 0.0;
  result_.p50_setup_rounds =
      histogram_quantile(rounds_histogram_, 0.50, &rounds_bucket_value);
  result_.p99_setup_rounds =
      histogram_quantile(rounds_histogram_, 0.99, &rounds_bucket_value);
  result_.p50_setup_wall_ns =
      histogram_quantile(wall_histogram_, 0.50, &wall_bucket_value);
  result_.p99_setup_wall_ns =
      histogram_quantile(wall_histogram_, 0.99, &wall_bucket_value);
  const double wall_s =
      static_cast<double>(wall_now_ns() - wall_start) * 1e-9;
  result_.requests_per_s =
      wall_s > 0.0 ? static_cast<double>(config_.arrivals) / wall_s : 0.0;

  if (config_.record) record_result();
  return result_;
}

void Engine::record_result() const {
  if (!obs::enabled()) return;
  // Deterministic gauges: plain names, byte-stable across runs/threads.
  obs::set_metric("engine_offered", static_cast<double>(result_.offered));
  obs::set_metric("engine_admitted", static_cast<double>(result_.admitted));
  obs::set_metric("engine_blocked", static_cast<double>(result_.blocked));
  obs::set_metric("engine_blocking_probability",
                  result_.blocking_probability);
  obs::set_metric("engine_conflict_readmits",
                  static_cast<double>(result_.conflict_readmits));
  obs::set_metric("engine_rounds", static_cast<double>(result_.rounds));
  obs::set_metric("engine_peak_active",
                  static_cast<double>(result_.peak_active));
  obs::set_metric("engine_mean_setup_rounds", result_.mean_setup_rounds);
  obs::set_metric("engine_p50_setup_rounds", result_.p50_setup_rounds);
  obs::set_metric("engine_p99_setup_rounds", result_.p99_setup_rounds);
  obs::set_metric("engine_sim_duration", result_.sim_duration);
  // Wall-clock gauges: names follow the compare.cpp normalization rules
  // (`_per_s` suffix / `wall_ns` substring) so --normalize strips them.
  obs::set_metric("engine_requests_per_s", result_.requests_per_s);
  obs::set_metric("engine_setup_p50_wall_ns", result_.p50_setup_wall_ns);
  obs::set_metric("engine_setup_p99_wall_ns", result_.p99_setup_wall_ns);
}

}  // namespace opto
