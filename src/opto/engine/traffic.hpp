// Arrival-time processes for the streaming engine: when does the next
// connection request reach the network?
//
// Three generators, all on the deterministic Rng stream facade so an
// engine run is a pure function of its seed:
//   * Poisson    — memoryless arrivals at a constant rate (the classic
//                  teletraffic model; Erlang-B applies on one link).
//   * Mmpp       — a 2-state Markov-modulated Poisson process: the rate
//                  switches between a calm and a burst multiplier with
//                  exponentially distributed dwell times. Models the
//                  bursty sources of the light-trail / optical-router
//                  queueing literature (PAPERS.md).
//   * Trace      — replays a caller-supplied inter-arrival sequence
//                  cyclically (measured traffic, adversarial patterns).
#pragma once

#include <cstdint>
#include <vector>

#include "opto/rng/rng.hpp"

namespace opto {

enum class ArrivalProcess : std::uint8_t { Poisson, Mmpp, Trace };

const char* to_string(ArrivalProcess process);

struct TrafficConfig {
  ArrivalProcess process = ArrivalProcess::Poisson;
  /// Base arrival rate λ (requests per unit traffic time). For Mmpp the
  /// instantaneous rate is λ·mmpp_burst or λ·mmpp_calm; with equal mean
  /// dwells the long-run rate is λ·(mmpp_burst + mmpp_calm)/2. Ignored
  /// by Trace.
  double rate = 1.0;
  double mmpp_burst = 4.0;       ///< burst-state rate multiplier
  double mmpp_calm = 0.25;       ///< calm-state rate multiplier
  double mmpp_mean_dwell = 16.0; ///< mean time in each state
  /// Inter-arrival times (strictly positive), replayed cyclically.
  std::vector<double> trace;
};

/// Long-run mean arrival rate of the configured process (trace mean for
/// Trace). Used to convert a target offered load into a rate and back.
double mean_arrival_rate(const TrafficConfig& config);

/// Stateful generator of inter-arrival gaps. Deterministic in
/// (config, seed); one instance drives one engine run.
class ArrivalGenerator {
 public:
  ArrivalGenerator(const TrafficConfig& config, std::uint64_t seed);

  /// Time from the previous arrival to the next one (> 0).
  double next_gap();

 private:
  TrafficConfig config_;
  Rng rng_;
  bool burst_ = false;       ///< Mmpp state
  double dwell_left_ = 0.0;  ///< Mmpp time until the next state flip
  std::size_t trace_index_ = 0;
};

}  // namespace opto
