// A routing path: the fixed sequence of directed optical links a worm
// traverses from its source to its destination.
//
// Paths are simple (no repeated node): the paper's collections are; its
// open problems explicitly leave non-simple paths out of scope.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

using PathId = std::uint32_t;
inline constexpr PathId kInvalidPath = ~PathId{0};

class Path {
 public:
  Path() = default;

  /// Builds a path from a node sequence; every consecutive pair must be an
  /// edge of `graph` and nodes must be distinct. A single-node sequence
  /// gives a zero-length path (source == destination).
  static Path from_nodes(const Graph& graph, std::span<const NodeId> nodes);

  /// Builds directly from directed link ids (must be consecutive).
  static Path from_links(const Graph& graph, std::vector<EdgeId> links);

  NodeId source() const { return source_; }
  NodeId destination() const { return destination_; }

  /// Number of links (the paper's path length; dilation contributes this).
  std::uint32_t length() const {
    return static_cast<std::uint32_t>(links_.size());
  }
  bool empty() const { return links_.empty(); }

  std::span<const EdgeId> links() const { return {links_.data(), links_.size()}; }
  EdgeId link(std::uint32_t i) const { return links_[i]; }

  /// Reconstructs the node sequence (length() + 1 nodes).
  std::vector<NodeId> nodes(const Graph& graph) const;

  /// The reverse path (acknowledgement route).
  Path reversed() const;

  bool operator==(const Path&) const = default;

 private:
  NodeId source_ = kInvalidNode;
  NodeId destination_ = kInvalidNode;
  std::vector<EdgeId> links_;
};

}  // namespace opto
