// Lightpath layouts on the chain — the virtual-path-layout substrate of
// the related work (Gerstel–Zaks [13,14]; Kranakis–Krizanc–Pelc [22]'s
// hop-congestion trade-off).
//
// A layout keeps a set of *lightpaths* (all-optical tunnels) permanently
// lit; a message hops between lightpaths, converting to electronics at
// every hop. The classic chain layout with base b keeps, per level
// ℓ = 0..levels−1, the tunnels [k·bˡ, (k+1)·bˡ] (and their reverses).
// Routing i→j greedily rides the largest aligned tunnel. The trade-off:
//
//   wavelengths per fiber needed  = levels           ≈ log_b n
//   worst-case hops               ≤ 2(b−1)·levels    ≈ 2(b−1)·log_b n
//
// Sweeping b traces the [22] curve: few wavelengths ↔ many hops.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/paths/path.hpp"
#include "opto/paths/path_collection.hpp"

namespace opto {

namespace layout_detail {

/// One greedy tunnel ride along a 1-D coordinate (shared by the chain,
/// mesh, and tree layouts).
struct TunnelStep {
  std::uint32_t start = 0;  ///< aligned tunnel start (smaller endpoint)
  std::uint32_t span = 1;
  bool forward = true;  ///< travelling start → start+span?
};

/// Greedy decomposition of a 1-D move from → to: at every position take
/// the largest aligned tunnel that does not overshoot.
std::vector<TunnelStep> greedy_steps(std::uint32_t from, std::uint32_t to,
                                     const std::vector<std::uint32_t>& spans);

/// Powers of `base` up to `extent` (the tunnel span ladder).
std::vector<std::uint32_t> span_ladder(std::uint32_t extent,
                                       std::uint32_t base);

}  // namespace layout_detail

struct ChainLayout {
  std::shared_ptr<const Graph> graph;  ///< the physical chain 0-1-…-(n−1)
  std::uint32_t nodes = 0;
  std::uint32_t base = 2;
  std::uint32_t levels = 1;
  /// Spans bˡ per level.
  std::vector<std::uint32_t> spans;
};

/// Builds the base-b layout for a fresh physical chain of `nodes` nodes.
/// nodes ≥ 2, base ≥ 2.
ChainLayout make_chain_layout(std::uint32_t nodes, std::uint32_t base);

/// The lightpath (as a physical path) of level ℓ starting at position
/// k·span; valid iff the full span fits in the chain.
Path layout_lightpath(const ChainLayout& layout, std::uint32_t level,
                      std::uint32_t start);

/// Greedy route src→dst as a chain of lightpaths (largest aligned tunnel
/// first). Every consecutive pair chains; an empty result means
/// src == dst.
std::vector<Path> layout_route(const ChainLayout& layout, NodeId src,
                               NodeId dst);

/// All lightpaths of the layout (both directions), as a collection —
/// e.g. to verify the wavelengths needed via assign_wavelengths.
PathCollection layout_lightpaths(const ChainLayout& layout);

/// Max number of lightpaths over any directed physical link (== the
/// wavelengths needed to keep the whole layout lit).
std::uint32_t layout_wavelength_congestion(const ChainLayout& layout);

/// Exact worst-case hop count over all (src, dst) pairs.
std::uint32_t layout_max_hops(const ChainLayout& layout);

/// Mean hop count over all ordered pairs.
double layout_mean_hops(const ChainLayout& layout);

/// 2-D mesh layout: every row and every column carries an independent
/// chain layout of the same base. A message routes dimension-order over
/// lightpaths — row tunnels first, then column tunnels — so
///
///   wavelengths per fiber ≈ log_b side    (one tunnel set per level,
///                                          rows and columns use
///                                          disjoint fibers)
///   worst-case hops       ≈ 2 × chain worst case.
///
/// This is the mesh entry of the Gerstel–Zaks / Kranakis et al. layout
/// family.
struct MeshLayout {
  std::shared_ptr<const Graph> graph;  ///< fresh side×side mesh
  std::uint32_t side = 0;
  std::uint32_t base = 2;
  std::uint32_t levels = 1;
  std::vector<std::uint32_t> spans;

  NodeId node_at(std::uint32_t x, std::uint32_t y) const {
    return static_cast<NodeId>(x * side + y);
  }
};

/// side ≥ 2, base ≥ 2.
MeshLayout make_mesh_layout(std::uint32_t side, std::uint32_t base);

/// Greedy dimension-order lightpath route (x first, then y).
std::vector<Path> mesh_layout_route(const MeshLayout& layout, NodeId src,
                                    NodeId dst);

/// All lightpaths of the layout (row and column tunnels, both
/// directions).
PathCollection mesh_layout_lightpaths(const MeshLayout& layout);

/// Max lightpaths over any directed physical link.
std::uint32_t mesh_layout_wavelength_congestion(const MeshLayout& layout);

/// Exact worst-case hops over all ordered pairs (O(n²·hops); intended
/// for the moderate sides used in tests and benches).
std::uint32_t mesh_layout_max_hops(const MeshLayout& layout);

/// Ring layout — with chains, meshes, and trees this completes the
/// Gerstel–Zaks family [13,14]. Requires n = baseᵏ so the tunnel ladder
/// wraps consistently: level ℓ keeps the tunnels
/// [j·bˡ, (j+1)·bˡ mod n] in both directions. A message picks the
/// shorter arc and rides aligned tunnels greedily:
///
///   wavelengths per fiber = log_b n    (each fiber carries one
///                                       orientation, one tunnel/level)
///   worst-case hops       ≤ 2(b−1)·log_b n  (align-up then fit, on the
///                                            shorter arc)
struct RingLayout {
  std::shared_ptr<const Graph> graph;  ///< the physical ring 0..n−1
  std::uint32_t nodes = 0;
  std::uint32_t base = 2;
  std::uint32_t levels = 1;
  std::vector<std::uint32_t> spans;
};

/// nodes must be a power of `base` and ≥ base²; base ≥ 2.
RingLayout make_ring_layout(std::uint32_t nodes, std::uint32_t base);

/// The level-ℓ tunnel starting (in +1 direction) at aligned position
/// `start`.
Path ring_lightpath(const RingLayout& layout, std::uint32_t level,
                    std::uint32_t start);

/// Shorter-arc greedy route (ties go clockwise, the +1 direction).
std::vector<Path> ring_layout_route(const RingLayout& layout, NodeId src,
                                    NodeId dst);

PathCollection ring_layout_lightpaths(const RingLayout& layout);
std::uint32_t ring_layout_wavelength_congestion(const RingLayout& layout);
std::uint32_t ring_layout_max_hops(const RingLayout& layout);

}  // namespace opto
