// Valiant's trick: route via a random intermediate node to turn worst-case
// inputs into two random-destination phases. Provided for mesh/torus
// dimension-order routing. The two legs are concatenated; requests whose
// concatenation revisits a node are re-drawn (paths must stay simple).
#pragma once

#include "opto/graph/mesh.hpp"
#include "opto/paths/path.hpp"
#include "opto/rng/rng.hpp"

namespace opto {

/// Dimension-order route source→via→destination with `via` drawn uniformly;
/// re-draws until the concatenated route is a simple path (at most
/// `max_attempts` times, then falls back to the direct route).
Path valiant_mesh_path(const MeshTopology& topo, NodeId source,
                       NodeId destination, Rng& rng,
                       std::uint32_t max_attempts = 32);

}  // namespace opto
