#include "opto/paths/lightpath_layout.hpp"

#include <algorithm>

#include "opto/util/assert.hpp"

namespace opto {
namespace layout_detail {

std::vector<TunnelStep> greedy_steps(std::uint32_t from, std::uint32_t to,
                                     const std::vector<std::uint32_t>& spans) {
  std::vector<TunnelStep> steps;
  std::uint32_t p = from;
  while (p != to) {
    std::uint32_t best = 0;
    for (const std::uint32_t span : spans) {
      if (p % span != 0) continue;
      if (p < to && p + span <= to) best = std::max(best, span);
      if (p > to && p >= to + span) best = std::max(best, span);
    }
    OPTO_ASSERT(best >= 1);
    if (p < to) {
      steps.push_back({p, best, true});
      p += best;
    } else {
      steps.push_back({p - best, best, false});
      p -= best;
    }
  }
  return steps;
}

std::vector<std::uint32_t> span_ladder(std::uint32_t extent,
                                       std::uint32_t base) {
  std::vector<std::uint32_t> spans;
  std::uint64_t span = 1;
  while (span <= extent) {
    spans.push_back(static_cast<std::uint32_t>(span));
    span *= base;
  }
  return spans;
}

}  // namespace layout_detail

using layout_detail::greedy_steps;
using layout_detail::span_ladder;
using layout_detail::TunnelStep;

ChainLayout make_chain_layout(std::uint32_t nodes, std::uint32_t base) {
  OPTO_ASSERT(nodes >= 2);
  OPTO_ASSERT(base >= 2);
  ChainLayout layout;
  auto graph = std::make_shared<Graph>(nodes, "chain-" + std::to_string(nodes));
  for (NodeId u = 0; u + 1 < nodes; ++u) graph->add_edge(u, u + 1);
  layout.graph = std::move(graph);
  layout.nodes = nodes;
  layout.base = base;
  layout.spans = span_ladder(nodes - 1, base);
  layout.levels = static_cast<std::uint32_t>(layout.spans.size());
  return layout;
}

Path layout_lightpath(const ChainLayout& layout, std::uint32_t level,
                      std::uint32_t start) {
  OPTO_ASSERT(level < layout.levels);
  const std::uint32_t span = layout.spans[level];
  OPTO_ASSERT(start % span == 0);
  OPTO_ASSERT(start + span <= layout.nodes - 1);
  std::vector<NodeId> nodes;
  nodes.reserve(span + 1);
  for (std::uint32_t p = start; p <= start + span; ++p) nodes.push_back(p);
  return Path::from_nodes(*layout.graph, nodes);
}

std::vector<Path> layout_route(const ChainLayout& layout, NodeId src,
                               NodeId dst) {
  OPTO_ASSERT(src < layout.nodes && dst < layout.nodes);
  std::vector<Path> route;
  for (const TunnelStep& step : greedy_steps(src, dst, layout.spans)) {
    const auto level = static_cast<std::uint32_t>(
        std::find(layout.spans.begin(), layout.spans.end(), step.span) -
        layout.spans.begin());
    Path tunnel = layout_lightpath(layout, level, step.start);
    route.push_back(step.forward ? std::move(tunnel) : tunnel.reversed());
  }
  return route;
}

PathCollection layout_lightpaths(const ChainLayout& layout) {
  PathCollection collection(layout.graph);
  for (std::uint32_t level = 0; level < layout.levels; ++level) {
    const std::uint32_t span = layout.spans[level];
    for (std::uint32_t start = 0; start + span <= layout.nodes - 1;
         start += span) {
      Path forward = layout_lightpath(layout, level, start);
      collection.add(forward.reversed());
      collection.add(std::move(forward));
    }
  }
  return collection;
}

std::uint32_t layout_wavelength_congestion(const ChainLayout& layout) {
  return layout_lightpaths(layout).edge_congestion();
}

std::uint32_t layout_max_hops(const ChainLayout& layout) {
  std::uint32_t worst = 0;
  for (NodeId src = 0; src < layout.nodes; ++src)
    for (NodeId dst = 0; dst < layout.nodes; ++dst)
      worst = std::max(
          worst,
          static_cast<std::uint32_t>(layout_route(layout, src, dst).size()));
  return worst;
}

double layout_mean_hops(const ChainLayout& layout) {
  double total = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId src = 0; src < layout.nodes; ++src)
    for (NodeId dst = 0; dst < layout.nodes; ++dst) {
      if (src == dst) continue;
      total += static_cast<double>(layout_route(layout, src, dst).size());
      ++pairs;
    }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

MeshLayout make_mesh_layout(std::uint32_t side, std::uint32_t base) {
  OPTO_ASSERT(side >= 2);
  OPTO_ASSERT(base >= 2);
  MeshLayout layout;
  layout.side = side;
  layout.base = base;
  layout.spans = span_ladder(side - 1, base);
  layout.levels = static_cast<std::uint32_t>(layout.spans.size());

  auto graph = std::make_shared<Graph>(
      side * side, "mesh-" + std::to_string(side) + "x" + std::to_string(side));
  for (std::uint32_t x = 0; x < side; ++x)
    for (std::uint32_t y = 0; y < side; ++y) {
      if (x + 1 < side)
        graph->add_edge(layout.node_at(x, y), layout.node_at(x + 1, y));
      if (y + 1 < side)
        graph->add_edge(layout.node_at(x, y), layout.node_at(x, y + 1));
    }
  layout.graph = std::move(graph);
  return layout;
}

namespace {

/// Column tunnel (varying x, fixed y) or row tunnel (fixed x, varying y).
Path mesh_tunnel(const MeshLayout& layout, const TunnelStep& step,
                 std::uint32_t fixed, bool column) {
  std::vector<NodeId> nodes;
  nodes.reserve(step.span + 1);
  for (std::uint32_t p = step.start; p <= step.start + step.span; ++p)
    nodes.push_back(column ? layout.node_at(p, fixed)
                           : layout.node_at(fixed, p));
  Path forward = Path::from_nodes(*layout.graph, nodes);
  return step.forward ? forward : forward.reversed();
}

}  // namespace

std::vector<Path> mesh_layout_route(const MeshLayout& layout, NodeId src,
                                    NodeId dst) {
  OPTO_ASSERT(src < layout.side * layout.side &&
              dst < layout.side * layout.side);
  const std::uint32_t sx = src / layout.side, sy = src % layout.side;
  const std::uint32_t dx = dst / layout.side, dy = dst % layout.side;
  std::vector<Path> route;
  // Dimension order: ride column tunnels in x at the source column sy,
  // then row tunnels in y at the destination row dx.
  for (const TunnelStep& step : greedy_steps(sx, dx, layout.spans))
    route.push_back(mesh_tunnel(layout, step, sy, /*column=*/true));
  for (const TunnelStep& step : greedy_steps(sy, dy, layout.spans))
    route.push_back(mesh_tunnel(layout, step, dx, /*column=*/false));
  return route;
}

PathCollection mesh_layout_lightpaths(const MeshLayout& layout) {
  PathCollection collection(layout.graph);
  for (std::uint32_t level = 0; level < layout.levels; ++level) {
    const std::uint32_t span = layout.spans[level];
    for (std::uint32_t fixed = 0; fixed < layout.side; ++fixed) {
      for (std::uint32_t start = 0; start + span <= layout.side - 1;
           start += span) {
        for (const bool column : {true, false}) {
          Path forward =
              mesh_tunnel(layout, {start, span, true}, fixed, column);
          collection.add(forward.reversed());
          collection.add(std::move(forward));
        }
      }
    }
  }
  return collection;
}

std::uint32_t mesh_layout_wavelength_congestion(const MeshLayout& layout) {
  return mesh_layout_lightpaths(layout).edge_congestion();
}

RingLayout make_ring_layout(std::uint32_t nodes, std::uint32_t base) {
  OPTO_ASSERT(base >= 2);
  OPTO_ASSERT(nodes >= base * base);
  // n must be a power of the base so every tunnel level tiles the ring.
  std::uint64_t power = base;
  while (power < nodes) power *= base;
  OPTO_ASSERT_MSG(power == nodes, "ring layout needs nodes = base^k");

  RingLayout layout;
  auto graph = std::make_shared<Graph>(nodes, "ring-" + std::to_string(nodes));
  for (NodeId u = 0; u + 1 < nodes; ++u) graph->add_edge(u, u + 1);
  graph->add_edge(nodes - 1, 0);
  layout.graph = std::move(graph);
  layout.nodes = nodes;
  layout.base = base;
  // Top span n/b: a span-n tunnel would be a closed loop.
  layout.spans = span_ladder(nodes / base, base);
  layout.levels = static_cast<std::uint32_t>(layout.spans.size());
  return layout;
}

Path ring_lightpath(const RingLayout& layout, std::uint32_t level,
                    std::uint32_t start) {
  OPTO_ASSERT(level < layout.levels);
  const std::uint32_t span = layout.spans[level];
  OPTO_ASSERT(start % span == 0 && start < layout.nodes);
  std::vector<NodeId> nodes;
  nodes.reserve(span + 1);
  for (std::uint32_t i = 0; i <= span; ++i)
    nodes.push_back((start + i) % layout.nodes);
  return Path::from_nodes(*layout.graph, nodes);
}

std::vector<Path> ring_layout_route(const RingLayout& layout, NodeId src,
                                    NodeId dst) {
  OPTO_ASSERT(src < layout.nodes && dst < layout.nodes);
  std::vector<Path> route;
  if (src == dst) return route;
  const std::uint32_t n = layout.nodes;
  const std::uint32_t clockwise = (dst + n - src) % n;
  const bool go_clockwise = clockwise <= n - clockwise;
  std::uint32_t remaining = go_clockwise ? clockwise : n - clockwise;
  std::uint32_t p = src;
  while (remaining > 0) {
    // Largest aligned tunnel that fits the remaining arc. Alignment is
    // preserved mod n because every span divides n.
    std::uint32_t best = 0, best_level = 0;
    for (std::uint32_t level = 0; level < layout.levels; ++level) {
      const std::uint32_t span = layout.spans[level];
      if (span <= remaining && p % span == 0) {
        best = span;
        best_level = level;
      }
    }
    OPTO_ASSERT(best >= 1);
    if (go_clockwise) {
      route.push_back(ring_lightpath(layout, best_level, p));
      p = (p + best) % n;
    } else {
      const std::uint32_t start = (p + n - best) % n;
      route.push_back(ring_lightpath(layout, best_level, start).reversed());
      p = start;
    }
    remaining -= best;
  }
  return route;
}

PathCollection ring_layout_lightpaths(const RingLayout& layout) {
  PathCollection collection(layout.graph);
  for (std::uint32_t level = 0; level < layout.levels; ++level) {
    const std::uint32_t span = layout.spans[level];
    for (std::uint32_t start = 0; start < layout.nodes; start += span) {
      Path forward = ring_lightpath(layout, level, start);
      collection.add(forward.reversed());
      collection.add(std::move(forward));
    }
  }
  return collection;
}

std::uint32_t ring_layout_wavelength_congestion(const RingLayout& layout) {
  return ring_layout_lightpaths(layout).edge_congestion();
}

std::uint32_t ring_layout_max_hops(const RingLayout& layout) {
  std::uint32_t worst = 0;
  for (NodeId src = 0; src < layout.nodes; ++src)
    for (NodeId dst = 0; dst < layout.nodes; ++dst)
      worst = std::max(worst,
                       static_cast<std::uint32_t>(
                           ring_layout_route(layout, src, dst).size()));
  return worst;
}

std::uint32_t mesh_layout_max_hops(const MeshLayout& layout) {
  std::uint32_t worst = 0;
  const NodeId count = layout.side * layout.side;
  for (NodeId src = 0; src < count; ++src)
    for (NodeId dst = 0; dst < count; ++dst)
      worst = std::max(worst, static_cast<std::uint32_t>(
                                  mesh_layout_route(layout, src, dst).size()));
  return worst;
}

}  // namespace opto
