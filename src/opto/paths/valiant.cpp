#include "opto/paths/valiant.hpp"

#include <unordered_set>

#include "opto/paths/dimension_order.hpp"
#include "opto/util/assert.hpp"

namespace opto {

Path valiant_mesh_path(const MeshTopology& topo, NodeId source,
                       NodeId destination, Rng& rng,
                       std::uint32_t max_attempts) {
  const NodeId count = topo.graph.node_count();
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const auto via = static_cast<NodeId>(rng.next_below(count));
    auto first = dimension_order_route(topo, source, via);
    const auto second = dimension_order_route(topo, via, destination);
    // Concatenate, dropping the duplicated via node.
    first.insert(first.end(), second.begin() + 1, second.end());
    std::unordered_set<NodeId> seen(first.begin(), first.end());
    if (seen.size() == first.size())
      return Path::from_nodes(topo.graph, first);
  }
  return dimension_order_path(topo, source, destination);
}

}  // namespace opto
