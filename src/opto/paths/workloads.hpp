// Workload generators (§1.4 terminology).
//
// "Routing a function"  — node i sends one message to f(i), f random.
// "Routing a q-function"— every node is the source of q messages.
// "Permutation"         — f is a random bijection.
//
// The builders here combine a workload with a path selector to produce
// the PathCollection the protocol routes.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/rng/rng.hpp"

namespace opto {

/// f : [n] -> [n] drawn uniformly at random.
std::vector<NodeId> random_function(std::uint32_t n, Rng& rng);

/// Random bijection on [n].
std::vector<NodeId> random_permutation(std::uint32_t n, Rng& rng);

/// (source, destination) request list for a function; self-requests
/// (f(i) == i) are kept — they route a zero-length path.
std::vector<std::pair<NodeId, NodeId>> function_requests(
    const std::vector<NodeId>& f);

/// q requests per source, destinations uniform.
std::vector<std::pair<NodeId, NodeId>> random_q_function_requests(
    std::uint32_t n, std::uint32_t q, Rng& rng);

/// Hotspot traffic: each node sends one message; with probability
/// `hotspot_fraction` the destination is the fixed `hotspot` node,
/// otherwise uniform. The classic stress pattern for congestion terms —
/// C̃ grows like fraction·n regardless of path selection.
std::vector<std::pair<NodeId, NodeId>> hotspot_requests(
    std::uint32_t n, NodeId hotspot, double hotspot_fraction, Rng& rng);

/// Dimension-order collection for a request list on a mesh/torus. The
/// topology must outlive nothing: the collection shares ownership.
PathCollection mesh_collection(std::shared_ptr<const MeshTopology> topo,
                               const std::vector<std::pair<NodeId, NodeId>>& requests);

/// Random-function convenience wrappers.
PathCollection mesh_random_function(std::shared_ptr<const MeshTopology> topo,
                                    Rng& rng);
PathCollection butterfly_random_q_function(
    std::shared_ptr<const ButterflyTopology> topo, std::uint32_t q, Rng& rng);
PathCollection bfs_random_function(std::shared_ptr<const Graph> graph,
                                   Rng& rng);
PathCollection bfs_random_permutation(std::shared_ptr<const Graph> graph,
                                      Rng& rng);

}  // namespace opto
