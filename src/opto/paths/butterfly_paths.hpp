// Butterfly path selection (Theorem 1.7).
//
// In the ordinary d-dimensional butterfly there is a *unique* input→output
// path from input row r to output row s: at level ℓ take the cross edge
// iff bit ℓ of r and s differ. The resulting path system is leveled (the
// butterfly levels are the leveling), which is exactly why Theorem 1.7 can
// invoke Main Theorem 1.1.
#pragma once

#include <memory>
#include <span>
#include <utility>

#include "opto/graph/butterfly.hpp"
#include "opto/paths/path.hpp"
#include "opto/paths/path_collection.hpp"

namespace opto {

/// The unique input(row r) → output(row s) path.
Path butterfly_io_path(const ButterflyTopology& topo, std::uint32_t in_row,
                       std::uint32_t out_row);

/// Collection routing each (input row, output row) request.
PathCollection butterfly_io_collection(
    std::shared_ptr<const ButterflyTopology> topo,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> row_requests);

}  // namespace opto
