#include "opto/paths/butterfly_paths.hpp"

#include <vector>

#include "opto/util/assert.hpp"

namespace opto {

Path butterfly_io_path(const ButterflyTopology& topo, std::uint32_t in_row,
                       std::uint32_t out_row) {
  OPTO_ASSERT(!topo.wrap);
  OPTO_ASSERT(in_row < topo.rows() && out_row < topo.rows());
  std::vector<NodeId> nodes;
  nodes.reserve(topo.dim + 1);
  std::uint32_t row = in_row;
  nodes.push_back(topo.node_at(0, row));
  for (std::uint32_t level = 0; level < topo.dim; ++level) {
    const std::uint32_t bit = 1u << level;
    if ((row & bit) != (out_row & bit)) row ^= bit;  // cross edge
    nodes.push_back(topo.node_at(level + 1, row));
  }
  OPTO_ASSERT(row == out_row);
  return Path::from_nodes(topo.graph, nodes);
}

PathCollection butterfly_io_collection(
    std::shared_ptr<const ButterflyTopology> topo,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> row_requests) {
  // Aliasing constructor: the collection's graph pointer keeps the whole
  // topology alive.
  std::shared_ptr<const Graph> graph(topo, &topo->graph);
  PathCollection collection(std::move(graph));
  collection.reserve(row_requests.size());
  for (const auto& [in_row, out_row] : row_requests)
    collection.add(butterfly_io_path(*topo, in_row, out_row));
  return collection;
}

}  // namespace opto
