#include "opto/paths/path_collection.hpp"

#include <algorithm>
#include <numeric>

#include "opto/rng/rng.hpp"
#include "opto/util/assert.hpp"

namespace opto {

PathCollection& PathCollection::operator=(const PathCollection& other) {
  if (this == &other) return *this;
  graph_ = other.graph_;
  paths_ = other.paths_;
  invalidate_caches();
  return *this;
}

PathCollection& PathCollection::operator=(PathCollection&& other) noexcept {
  if (this == &other) return *this;
  graph_ = std::move(other.graph_);
  paths_ = std::move(other.paths_);
  invalidate_caches();
  return *this;
}

void PathCollection::invalidate_caches() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  flat_cache_.reset();
  component_cache_.reset();
}

void PathCollection::add(Path path) {
  OPTO_ASSERT_MSG(graph_ != nullptr, "collection has no graph");
  for (EdgeId link : path.links())
    OPTO_ASSERT_MSG(link < graph_->link_count(), "link outside graph");
  paths_.push_back(std::move(path));
  invalidate_caches();
}

const FlatPaths& PathCollection::flat_paths() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!flat_cache_) {
    auto flat = std::make_unique<FlatPaths>();
    std::size_t total = 0;
    for (const Path& p : paths_) total += p.length();
    flat->offsets.reserve(paths_.size() + 1);
    flat->links.reserve(total);
    flat->offsets.push_back(0);
    for (const Path& p : paths_) {
      for (EdgeId link : p.links()) flat->links.push_back(link);
      flat->offsets.push_back(static_cast<std::uint32_t>(flat->links.size()));
    }
    flat_cache_ = std::move(flat);
  }
  return *flat_cache_;
}

const ComponentDecomposition& PathCollection::components() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!component_cache_) {
    auto dec = std::make_unique<ComponentDecomposition>();
    const std::uint32_t n = size();
    // Union-find with path halving + union by size. Two paths meet iff
    // they use a common directed link, so unioning every path into the
    // *first* user of each of its links wires up exactly the "shares a
    // link" relation in O(Σ lengths · α) without materializing per-link
    // user lists.
    std::vector<PathId> parent(n);
    std::iota(parent.begin(), parent.end(), PathId{0});
    std::vector<std::uint32_t> tree_size(n, 1);
    const auto find = [&parent](PathId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    const auto unite = [&](PathId a, PathId b) {
      a = find(a);
      b = find(b);
      if (a == b) return;
      if (tree_size[a] < tree_size[b]) std::swap(a, b);
      parent[b] = a;
      tree_size[a] += tree_size[b];
    };
    std::vector<PathId> first_user(graph_ ? graph_->link_count() : 0,
                                   kInvalidPath);
    for (PathId id = 0; id < n; ++id) {
      for (EdgeId link : paths_[id].links()) {
        if (first_user[link] == kInvalidPath)
          first_user[link] = id;
        else
          unite(first_user[link], id);
      }
    }
    // Canonical numbering: component c is the c-th distinct root in
    // path-id order (so a zero-length path is its own singleton).
    dec->component_of.assign(n, 0);
    std::vector<std::uint32_t> label(n, ~0u);
    for (PathId id = 0; id < n; ++id) {
      const PathId root = find(id);
      if (label[root] == ~0u) {
        label[root] = dec->count++;
        dec->sizes.push_back(0);
      }
      dec->component_of[id] = label[root];
      ++dec->sizes[label[root]];
    }
    component_cache_ = std::move(dec);
  }
  return *component_cache_;
}

std::uint32_t PathCollection::dilation() const {
  std::uint32_t best = 0;
  for (const Path& p : paths_) best = std::max(best, p.length());
  return best;
}

std::vector<std::uint32_t> PathCollection::link_loads() const {
  std::vector<std::uint32_t> loads(graph_ ? graph_->link_count() : 0, 0);
  for (const Path& p : paths_)
    for (EdgeId link : p.links()) ++loads[link];
  return loads;
}

std::uint32_t PathCollection::edge_congestion() const {
  const auto loads = link_loads();
  std::uint32_t best = 0;
  for (std::uint32_t load : loads) best = std::max(best, load);
  return best;
}

std::vector<std::uint32_t> PathCollection::path_congestions() const {
  // Invert: per-link list of path ids, then per path mark every sharer once
  // (epoch-stamped marks avoid clearing between paths).
  std::vector<std::vector<PathId>> users(graph_ ? graph_->link_count() : 0);
  for (PathId id = 0; id < size(); ++id)
    for (EdgeId link : paths_[id].links()) users[link].push_back(id);

  std::vector<std::uint32_t> result(size(), 0);
  std::vector<PathId> last_marked(size(), kInvalidPath);
  for (PathId id = 0; id < size(); ++id) {
    std::uint32_t sharers = 0;
    for (EdgeId link : paths_[id].links()) {
      for (PathId other : users[link]) {
        if (other == id || last_marked[other] == id) continue;
        last_marked[other] = id;
        ++sharers;
      }
    }
    result[id] = sharers;
  }
  return result;
}

std::uint32_t PathCollection::path_congestion() const {
  const auto per_path = path_congestions();
  std::uint32_t best = 0;
  for (std::uint32_t value : per_path) best = std::max(best, value);
  return best;
}

std::uint32_t PathCollection::path_congestion_sampled(
    std::uint32_t samples, std::uint64_t seed) const {
  if (empty()) return 0;
  if (samples >= size()) return path_congestion();

  std::vector<std::vector<PathId>> users(graph_ ? graph_->link_count() : 0);
  for (PathId id = 0; id < size(); ++id)
    for (EdgeId link : paths_[id].links()) users[link].push_back(id);

  Rng rng(seed);
  // Marks are stamped with the probe index so repeated probes of one path
  // recount from scratch.
  std::vector<std::uint32_t> stamp(size(), ~0u);
  std::uint32_t best = 0;
  for (std::uint32_t sample = 0; sample < samples; ++sample) {
    const auto id = static_cast<PathId>(rng.next_below(size()));
    std::uint32_t sharers = 0;
    for (EdgeId link : paths_[id].links()) {
      for (PathId other : users[link]) {
        if (other == id || stamp[other] == sample) continue;
        stamp[other] = sample;
        ++sharers;
      }
    }
    best = std::max(best, sharers);
  }
  return best;
}

CollectionStats PathCollection::stats() const {
  CollectionStats s;
  s.size = size();
  s.dilation = dilation();
  s.edge_congestion = edge_congestion();
  s.path_congestion = path_congestion();
  double total = 0.0;
  for (const Path& p : paths_) total += p.length();
  s.avg_length = paths_.empty() ? 0.0 : total / static_cast<double>(size());
  return s;
}

PathCollection collection_from_node_lists(
    std::shared_ptr<const Graph> graph,
    std::span<const std::vector<NodeId>> node_lists) {
  PathCollection collection(graph);
  collection.reserve(node_lists.size());
  for (const auto& nodes : node_lists)
    collection.add(Path::from_nodes(*graph, nodes));
  return collection;
}

}  // namespace opto
