#include "opto/paths/dimension_order.hpp"

#include "opto/util/assert.hpp"

namespace opto {

std::vector<NodeId> dimension_order_route(const MeshTopology& topo,
                                          NodeId source, NodeId destination) {
  auto coords = topo.coords_of(source);
  const auto goal = topo.coords_of(destination);
  std::vector<NodeId> route{source};
  for (std::uint32_t d = 0; d < topo.dimensions(); ++d) {
    const std::uint32_t side = topo.sides[d];
    while (coords[d] != goal[d]) {
      std::int64_t step = +1;
      if (topo.wrap) {
        // Shorter wrap direction; ties resolved toward +1.
        const std::uint32_t forward =
            (goal[d] + side - coords[d]) % side;  // steps going +1
        if (forward > side - forward) step = -1;
      } else {
        step = goal[d] > coords[d] ? +1 : -1;
      }
      coords[d] = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(coords[d]) + step + side) % side);
      route.push_back(topo.node_at(coords));
    }
  }
  OPTO_ASSERT(route.back() == destination);
  return route;
}

Path dimension_order_path(const MeshTopology& topo, NodeId source,
                          NodeId destination) {
  const auto route = dimension_order_route(topo, source, destination);
  return Path::from_nodes(topo.graph, route);
}

}  // namespace opto
