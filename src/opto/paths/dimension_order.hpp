// Dimension-order (e-cube) path selection on meshes and tori — the
// classical strategy behind Theorem 1.6: correct one coordinate at a time,
// dimension 0 first. On tori the shorter wrap direction is taken
// (positive direction on ties).
//
// Dimension-order path systems on meshes are short-cut free: two routes
// that separate in some dimension can only rejoin in a strictly later
// dimension, and both traverse equal-length monotone segments in between.
#pragma once

#include "opto/graph/mesh.hpp"
#include "opto/paths/path.hpp"

namespace opto {

/// Node sequence of the dimension-order route.
std::vector<NodeId> dimension_order_route(const MeshTopology& topo,
                                          NodeId source, NodeId destination);

Path dimension_order_path(const MeshTopology& topo, NodeId source,
                          NodeId destination);

}  // namespace opto
