#include "opto/paths/lowerbound_structures.hpp"

#include <unordered_map>
#include <utility>

#include "opto/util/assert.hpp"

namespace opto {

StructureBuilder::StructureBuilder() : graph_(std::make_unique<Graph>()) {
  graph_->set_name("lower-bound-structures");
}

std::uint32_t StructureBuilder::staircase_step(std::uint32_t worm_length) {
  OPTO_ASSERT(worm_length >= 1);
  return (worm_length - 1) / 2 + 1;
}

std::uint32_t StructureBuilder::triangle_offset(std::uint32_t worm_length) {
  return worm_length / 2;
}

std::uint32_t StructureBuilder::path_count() const {
  return static_cast<std::uint32_t>(node_lists_.size());
}

namespace {

/// Adds the undirected edge if missing; either way the caller traverses it
/// a→b (both sharers traverse shared edges in the same direction by
/// construction).
void ensure_edge(Graph& graph, NodeId a, NodeId b) {
  if (!graph.has_edge(a, b)) graph.add_edge(a, b);
}

}  // namespace

void StructureBuilder::add_staircase(std::uint32_t paths,
                                     std::uint32_t path_length,
                                     std::uint32_t worm_length) {
  OPTO_ASSERT(paths >= 1);
  const std::uint32_t d = staircase_step(worm_length);
  OPTO_ASSERT_MSG(path_length >= d + 1,
                  "staircase needs path_length >= step + 1");

  // Canonical key: (path i, position pos); positions 0 and 1 of path i>0
  // are positions d and d+1 of path i-1 (the shared edge), recursively.
  const auto canon = [d](std::uint32_t i,
                         std::uint32_t pos) -> std::pair<std::uint32_t, std::uint32_t> {
    while (i > 0 && pos <= 1) {
      --i;
      pos += d;
    }
    return {i, pos};
  };

  std::unordered_map<std::uint64_t, NodeId> nodes;
  const std::uint64_t stride = path_length + 2;
  const auto node_of = [&](std::uint32_t i, std::uint32_t pos) {
    const auto [ci, cpos] = canon(i, pos);
    const std::uint64_t key = static_cast<std::uint64_t>(ci) * stride + cpos;
    auto it = nodes.find(key);
    if (it == nodes.end()) it = nodes.emplace(key, graph_->add_node()).first;
    return it->second;
  };

  for (std::uint32_t i = 0; i < paths; ++i) {
    std::vector<NodeId> list;
    list.reserve(path_length + 1);
    for (std::uint32_t pos = 0; pos <= path_length; ++pos)
      list.push_back(node_of(i, pos));
    for (std::uint32_t pos = 0; pos < path_length; ++pos)
      ensure_edge(*graph_, list[pos], list[pos + 1]);
    node_lists_.push_back(std::move(list));
  }
}

void StructureBuilder::add_bundle(std::uint32_t width,
                                  std::uint32_t path_length) {
  OPTO_ASSERT(width >= 1 && path_length >= 1);
  std::vector<NodeId> chain;
  chain.reserve(path_length + 1);
  for (std::uint32_t pos = 0; pos <= path_length; ++pos)
    chain.push_back(graph_->add_node());
  for (std::uint32_t pos = 0; pos < path_length; ++pos)
    graph_->add_edge(chain[pos], chain[pos + 1]);
  for (std::uint32_t copy = 0; copy < width; ++copy)
    node_lists_.push_back(chain);
}

void StructureBuilder::add_triangle(std::uint32_t path_length,
                                    std::uint32_t worm_length) {
  OPTO_ASSERT_MSG(worm_length >= 2, "blocking cycles need L >= 2");
  const std::uint32_t m = triangle_offset(worm_length);
  OPTO_ASSERT_MSG(path_length >= m + 2,
                  "triangle needs path_length >= offset + 2");

  // Canonical key: path j's positions m and m+1 are path (j+1 mod 3)'s
  // positions 0 and 1, recursively (the blocking cycle).
  const auto canon = [m](std::uint32_t j,
                         std::uint32_t pos) -> std::pair<std::uint32_t, std::uint32_t> {
    while (pos == m || pos == m + 1) {
      j = (j + 1) % 3;
      pos -= m;
    }
    return {j, pos};
  };

  std::unordered_map<std::uint64_t, NodeId> nodes;
  const std::uint64_t stride = path_length + 2;
  const auto node_of = [&](std::uint32_t j, std::uint32_t pos) {
    const auto [cj, cpos] = canon(j, pos);
    const std::uint64_t key = static_cast<std::uint64_t>(cj) * stride + cpos;
    auto it = nodes.find(key);
    if (it == nodes.end()) it = nodes.emplace(key, graph_->add_node()).first;
    return it->second;
  };

  for (std::uint32_t j = 0; j < 3; ++j) {
    std::vector<NodeId> list;
    list.reserve(path_length + 1);
    for (std::uint32_t pos = 0; pos <= path_length; ++pos)
      list.push_back(node_of(j, pos));
    for (std::uint32_t pos = 0; pos < path_length; ++pos)
      ensure_edge(*graph_, list[pos], list[pos + 1]);
    node_lists_.push_back(std::move(list));
  }
}

PathCollection StructureBuilder::build() && {
  std::shared_ptr<const Graph> graph(std::move(graph_));
  PathCollection collection(graph);
  collection.reserve(node_lists_.size());
  for (const auto& nodes : node_lists_)
    collection.add(Path::from_nodes(*graph, nodes));
  return collection;
}

PathCollection make_staircase_collection(std::uint32_t structures,
                                         std::uint32_t paths_per_structure,
                                         std::uint32_t path_length,
                                         std::uint32_t worm_length) {
  StructureBuilder builder;
  for (std::uint32_t s = 0; s < structures; ++s)
    builder.add_staircase(paths_per_structure, path_length, worm_length);
  return std::move(builder).build();
}

PathCollection make_bundle_collection(std::uint32_t structures,
                                      std::uint32_t width,
                                      std::uint32_t path_length) {
  StructureBuilder builder;
  for (std::uint32_t s = 0; s < structures; ++s)
    builder.add_bundle(width, path_length);
  return std::move(builder).build();
}

PathCollection make_triangle_collection(std::uint32_t structures,
                                        std::uint32_t path_length,
                                        std::uint32_t worm_length) {
  StructureBuilder builder;
  for (std::uint32_t s = 0; s < structures; ++s)
    builder.add_triangle(path_length, worm_length);
  return std::move(builder).build();
}

}  // namespace opto
