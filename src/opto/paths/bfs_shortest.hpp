// Canonical shortest-path selection for arbitrary (in particular
// node-symmetric) networks — the stand-in for the short-cut free path
// system of [Meyer auf der Heide & Scheideler] cited by Theorem 1.5.
//
// Paths come from parent-pointer BFS with smallest-node-id tie-breaking,
// so the system is deterministic and has optimal dilation (= diameter).
// With the per-source BFS-tree variant, all paths out of one source form a
// tree, so no pair of same-source paths can meet, separate, and meet again.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/paths/path.hpp"
#include "opto/paths/path_collection.hpp"

namespace opto {

/// Canonical shortest path (smallest-id tie-breaks).
Path bfs_shortest_path(const Graph& graph, NodeId source, NodeId destination);

/// Builds a collection routing each (source, destination) request along
/// the canonical shortest path. BFS trees are computed once per distinct
/// source.
PathCollection bfs_collection(
    std::shared_ptr<const Graph> graph,
    std::span<const std::pair<NodeId, NodeId>> requests);

}  // namespace opto
