// Lightpath layouts for trees — the trees entry of the Gerstel–Zaks
// virtual-path-layout family [13,14].
//
// Construction: heavy-path decomposition. Every tree edge is either on a
// heavy path (joining each node to its largest-subtree child) or a light
// edge; descending a light edge at least halves the subtree size, so any
// root-to-node walk crosses ≤ log₂ n light edges. Each heavy path gets
// the base-b chain tunnel ladder; each light edge gets a single 1-link
// tunnel.
//
// Routing src→dst climbs to the LCA (chain tunnels along each heavy path,
// one light tunnel per path switch) and descends symmetrically, giving
//
//   wavelengths per fiber ≤ log_b(longest heavy path) + 1
//   hops ≤ O(log n · (b−1)·log_b n)
//
// — the tree counterpart of the chain/mesh trade-off.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/paths/path.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/rng/rng.hpp"

namespace opto {

struct TreeLayout {
  std::shared_ptr<const Graph> graph;
  NodeId root = 0;
  std::vector<NodeId> parent;        ///< parent[root] == root
  std::vector<std::uint32_t> depth;
  std::uint32_t base = 2;

  /// Heavy-path bookkeeping: head of each node's heavy path, and the
  /// node's position on it (head = position 0, growing downward).
  std::vector<NodeId> path_head;
  std::vector<std::uint32_t> path_position;
  /// Nodes of each heavy path, top-down, indexed by the head node.
  std::vector<std::vector<NodeId>> path_nodes;  ///< indexed by head
  /// Tunnel spans available on a heavy path of the given length.
  std::vector<std::uint32_t> spans_for(std::uint32_t length) const;
};

/// Builds the layout for the tree given by the parent array (parent of
/// the root = itself). The graph is created fresh; base ≥ 2.
TreeLayout make_tree_layout(const std::vector<NodeId>& parent,
                            std::uint32_t base);

/// A uniformly random recursive tree on n nodes (node i's parent drawn
/// from [0, i)); handy test/bench input.
std::vector<NodeId> random_tree_parents(std::uint32_t n, Rng& rng);

/// The tunnel chain src→dst (up to the LCA, then down). Empty iff
/// src == dst.
std::vector<Path> tree_layout_route(const TreeLayout& layout, NodeId src,
                                    NodeId dst);

/// All tunnels (both directions): the chain ladders of every heavy path
/// plus one tunnel per light edge.
PathCollection tree_layout_lightpaths(const TreeLayout& layout);

/// Max tunnels over any directed physical link.
std::uint32_t tree_layout_wavelength_congestion(const TreeLayout& layout);

/// Worst-case hops over all ordered pairs (quadratic; test/bench sizes).
std::uint32_t tree_layout_max_hops(const TreeLayout& layout);

/// The lowest common ancestor of a and b.
NodeId tree_lca(const TreeLayout& layout, NodeId a, NodeId b);

}  // namespace opto
