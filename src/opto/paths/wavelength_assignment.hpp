// Static wavelength assignment (the RWA problem of §1.2's related work):
// color the paths so that no two paths sharing a directed link get the
// same wavelength. With enough wavelengths this makes routing collision-
// free by construction — the single-hop strategy of Barry-Humblet [3],
// Aggarwal et al. [1], Raghavan-Upfal [32] — and serves as the classical
// baseline the trial-and-failure protocol is compared against (the
// protocol needs no global coordination; RWA needs the whole collection
// up front).
//
// Coloring the conflict graph optimally is NP-hard; we provide first-fit
// greedy in two classic orders. For a collection with path congestion C̃,
// first-fit needs at most C̃ + 1 colors (every path conflicts with ≤ C̃
// others).
#pragma once

#include <cstdint>
#include <vector>

#include "opto/paths/path_collection.hpp"

namespace opto {

struct WavelengthAssignment {
  /// Color (wavelength class) per path, parallel to the collection.
  std::vector<std::uint32_t> color;
  std::uint32_t colors_used = 0;
};

enum class ColoringOrder : std::uint8_t {
  ByIndex,        ///< first-fit in path order
  ByDegreeDesc,   ///< largest conflict degree first (Welsh-Powell)
};

/// Greedy first-fit coloring of the path conflict graph (conflict = the
/// two paths share a directed link).
WavelengthAssignment assign_wavelengths(const PathCollection& collection,
                                        ColoringOrder order);

/// Verifies that no two paths with equal color share a directed link.
bool is_valid_assignment(const PathCollection& collection,
                         const WavelengthAssignment& assignment);

}  // namespace opto
