// Leveled path collections (§1.1).
//
// A collection is leveled if the nodes touched by its paths can be
// assigned levels such that every traversed link goes from level i to
// level i+1. Equivalently, the directed graph of traversed links admits a
// consistent unit-increment potential on every weakly connected component.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "opto/paths/path_collection.hpp"

namespace opto {

/// Returns a per-node level assignment (nodes not on any path get level 0),
/// shifted so each component's minimum used level is 0; or nullopt if the
/// collection is not leveled.
std::optional<std::vector<std::uint32_t>> level_assignment(
    const PathCollection& collection);

inline bool is_leveled(const PathCollection& collection) {
  return level_assignment(collection).has_value();
}

}  // namespace opto
