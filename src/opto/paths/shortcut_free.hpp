// Short-cut freeness (§1.1).
//
// A collection is short-cut free if no (directed) subpath of one path is
// shortcut by a subpath of another path: whenever paths p and q both
// visit u before v, the u→v stretches must have equal length. The paper
// notes the sufficient condition "no two paths meet, separate, and meet
// again"; both predicates are provided.
//
// The exact check is quadratic in the collection size (with per-pair work
// linear in common nodes) — intended for validating generators and for
// tests, not for hot loops.
#pragma once

#include <cstdint>
#include <optional>

#include "opto/paths/path_collection.hpp"

namespace opto {

/// Describes one violation, for diagnostics.
struct ShortcutViolation {
  PathId shortcut_path;   ///< path whose subpath is longer (gets shortcut)
  PathId via_path;        ///< path providing the shorter subpath
  NodeId from;
  NodeId to;
  std::uint32_t long_length;
  std::uint32_t short_length;
};

/// First violation found, or nullopt if the collection is short-cut free.
std::optional<ShortcutViolation> find_shortcut(const PathCollection& collection);

inline bool is_shortcut_free(const PathCollection& collection) {
  return !find_shortcut(collection).has_value();
}

/// True iff paths p and q meet, separate, and meet again (visit two
/// disjoint maximal common stretches). The paper's sufficient condition:
/// if no pair does, the collection is short-cut free.
bool meet_separate_meet(const Graph& graph, const Path& p, const Path& q);

}  // namespace opto
