#include "opto/paths/wavelength_assignment.hpp"

#include <algorithm>
#include <numeric>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

/// Adjacency lists of the path conflict graph, deduplicated.
std::vector<std::vector<PathId>> conflict_graph(
    const PathCollection& collection) {
  std::vector<std::vector<PathId>> users(collection.graph().link_count());
  for (PathId id = 0; id < collection.size(); ++id)
    for (EdgeId link : collection.path(id).links()) users[link].push_back(id);

  std::vector<std::vector<PathId>> adjacency(collection.size());
  std::vector<PathId> last_marked(collection.size(), kInvalidPath);
  for (PathId id = 0; id < collection.size(); ++id) {
    for (EdgeId link : collection.path(id).links()) {
      for (PathId other : users[link]) {
        if (other == id || last_marked[other] == id) continue;
        last_marked[other] = id;
        adjacency[id].push_back(other);
      }
    }
  }
  return adjacency;
}

}  // namespace

WavelengthAssignment assign_wavelengths(const PathCollection& collection,
                                        ColoringOrder order) {
  const auto adjacency = conflict_graph(collection);
  std::vector<PathId> coloring_order(collection.size());
  std::iota(coloring_order.begin(), coloring_order.end(), 0u);
  if (order == ColoringOrder::ByDegreeDesc) {
    std::stable_sort(coloring_order.begin(), coloring_order.end(),
                     [&adjacency](PathId a, PathId b) {
                       return adjacency[a].size() > adjacency[b].size();
                     });
  }

  WavelengthAssignment assignment;
  assignment.color.assign(collection.size(), ~0u);
  std::vector<char> used;  // scratch: colors taken by neighbors
  for (const PathId id : coloring_order) {
    used.assign(assignment.colors_used + 1, 0);
    for (const PathId neighbor : adjacency[id]) {
      const std::uint32_t c = assignment.color[neighbor];
      if (c != ~0u && c < used.size()) used[c] = 1;
    }
    std::uint32_t color = 0;
    while (color < used.size() && used[color]) ++color;
    assignment.color[id] = color;
    assignment.colors_used = std::max(assignment.colors_used, color + 1);
  }
  return assignment;
}

bool is_valid_assignment(const PathCollection& collection,
                         const WavelengthAssignment& assignment) {
  OPTO_ASSERT(assignment.color.size() == collection.size());
  std::vector<std::vector<PathId>> users(collection.graph().link_count());
  for (PathId id = 0; id < collection.size(); ++id)
    for (EdgeId link : collection.path(id).links()) users[link].push_back(id);
  for (const auto& list : users)
    for (std::size_t a = 0; a < list.size(); ++a)
      for (std::size_t b = a + 1; b < list.size(); ++b)
        if (assignment.color[list[a]] == assignment.color[list[b]])
          return false;
  return true;
}

}  // namespace opto
