#include "opto/paths/workloads.hpp"

#include "opto/paths/bfs_shortest.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/util/assert.hpp"

namespace opto {

std::vector<NodeId> random_function(std::uint32_t n, Rng& rng) {
  std::vector<NodeId> f(n);
  for (auto& value : f) value = static_cast<NodeId>(rng.next_below(n));
  return f;
}

std::vector<NodeId> random_permutation(std::uint32_t n, Rng& rng) {
  return rng.permutation(n);
}

std::vector<std::pair<NodeId, NodeId>> function_requests(
    const std::vector<NodeId>& f) {
  std::vector<std::pair<NodeId, NodeId>> requests;
  requests.reserve(f.size());
  for (std::uint32_t i = 0; i < f.size(); ++i)
    requests.emplace_back(i, f[i]);
  return requests;
}

std::vector<std::pair<NodeId, NodeId>> random_q_function_requests(
    std::uint32_t n, std::uint32_t q, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> requests;
  requests.reserve(static_cast<std::size_t>(n) * q);
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t copy = 0; copy < q; ++copy)
      requests.emplace_back(i, static_cast<NodeId>(rng.next_below(n)));
  return requests;
}

std::vector<std::pair<NodeId, NodeId>> hotspot_requests(
    std::uint32_t n, NodeId hotspot, double hotspot_fraction, Rng& rng) {
  OPTO_ASSERT(hotspot < n);
  OPTO_ASSERT(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0);
  std::vector<std::pair<NodeId, NodeId>> requests;
  requests.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId destination = rng.next_bernoulli(hotspot_fraction)
                                   ? hotspot
                                   : static_cast<NodeId>(rng.next_below(n));
    requests.emplace_back(i, destination);
  }
  return requests;
}

PathCollection mesh_collection(
    std::shared_ptr<const MeshTopology> topo,
    const std::vector<std::pair<NodeId, NodeId>>& requests) {
  std::shared_ptr<const Graph> graph(topo, &topo->graph);
  PathCollection collection(std::move(graph));
  collection.reserve(requests.size());
  for (const auto& [source, destination] : requests)
    collection.add(dimension_order_path(*topo, source, destination));
  return collection;
}

PathCollection mesh_random_function(std::shared_ptr<const MeshTopology> topo,
                                    Rng& rng) {
  const auto f = random_function(topo->graph.node_count(), rng);
  return mesh_collection(std::move(topo), function_requests(f));
}

PathCollection butterfly_random_q_function(
    std::shared_ptr<const ButterflyTopology> topo, std::uint32_t q, Rng& rng) {
  OPTO_ASSERT(!topo->wrap);
  const std::uint32_t rows = topo->rows();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> row_requests;
  row_requests.reserve(static_cast<std::size_t>(rows) * q);
  for (std::uint32_t row = 0; row < rows; ++row)
    for (std::uint32_t copy = 0; copy < q; ++copy)
      row_requests.emplace_back(
          row, static_cast<std::uint32_t>(rng.next_below(rows)));
  return butterfly_io_collection(std::move(topo), row_requests);
}

PathCollection bfs_random_function(std::shared_ptr<const Graph> graph,
                                   Rng& rng) {
  const auto f = random_function(graph->node_count(), rng);
  const auto requests = function_requests(f);
  return bfs_collection(std::move(graph), requests);
}

PathCollection bfs_random_permutation(std::shared_ptr<const Graph> graph,
                                      Rng& rng) {
  const auto f = random_permutation(graph->node_count(), rng);
  const auto requests = function_requests(f);
  return bfs_collection(std::move(graph), requests);
}

}  // namespace opto
