// The paper's lower-bound constructions, built as concrete graphs + paths.
//
// Type-1 "staircase" (Fig. 5, §2.2): k paths of length D; with
// d = ⌊(L-1)/2⌋ + 1, path i starts at level (i-1)·d and paths i, i+1 share
// the single edge from level i·d to i·d+1 (path i's position d = path
// i+1's position 0). The collection is leveled; Lemma 2.8 shows worm i+1
// can block worm i with probability ≳ (L-1)/(2BΔ), chaining into the
// √(log_α n) round lower bound.
//
// Type-2 "bundle" (§2.2): C̃ identical paths of length D. Residual
// congestion decays doubly exponentially (Lemma 2.10), giving the
// loglog_β n term.
//
// Type-1 "triangle" (Fig. 6, §3.2): 3 paths of length D arranged in a
// blocking cycle: with m = ⌊L/2⌋, path j's edge at position m is path
// (j+1 mod 3)'s edge at position 0. Under the serve-first rule, three
// worms with delays within m of each other on one wavelength eliminate
// each other cyclically — the structure behind the log_α n lower bound.
// Short-cut free but not leveled (the blocking relation is cyclic).
//
// A StructureBuilder hosts any mix of structures in one shared graph so a
// single protocol run exercises all of them (the paper's collections mix
// type-1 and type-2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "opto/paths/path_collection.hpp"

namespace opto {

class StructureBuilder {
 public:
  StructureBuilder();

  /// Fig. 5 staircase: `paths` ≥ 1 paths of length `path_length`, step
  /// derived from `worm_length` (L). Requires path_length ≥ step + 1.
  void add_staircase(std::uint32_t paths, std::uint32_t path_length,
                     std::uint32_t worm_length);

  /// Type-2 bundle: `width` identical paths of length `path_length` ≥ 1.
  void add_bundle(std::uint32_t width, std::uint32_t path_length);

  /// Fig. 6 triangle: 3 cyclically-blocking paths of length `path_length`;
  /// requires worm_length ≥ 2 and path_length ≥ ⌊worm_length/2⌋ + 2.
  void add_triangle(std::uint32_t path_length, std::uint32_t worm_length);

  std::uint32_t path_count() const;

  /// Finalizes the graph and returns the combined collection. The builder
  /// is consumed.
  PathCollection build() &&;

  /// The staircase step d = ⌊(L-1)/2⌋ + 1.
  static std::uint32_t staircase_step(std::uint32_t worm_length);
  /// The triangle offset m = ⌊L/2⌋.
  static std::uint32_t triangle_offset(std::uint32_t worm_length);

 private:
  NodeId get_or_add_node_chainlink(NodeId a, NodeId b);

  std::unique_ptr<Graph> graph_;
  std::vector<std::vector<NodeId>> node_lists_;
};

/// Convenience single-kind collections used by tests and benches.
PathCollection make_staircase_collection(std::uint32_t structures,
                                         std::uint32_t paths_per_structure,
                                         std::uint32_t path_length,
                                         std::uint32_t worm_length);
PathCollection make_bundle_collection(std::uint32_t structures,
                                      std::uint32_t width,
                                      std::uint32_t path_length);
PathCollection make_triangle_collection(std::uint32_t structures,
                                        std::uint32_t path_length,
                                        std::uint32_t worm_length);

}  // namespace opto
