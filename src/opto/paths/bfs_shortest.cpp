#include "opto/paths/bfs_shortest.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "opto/graph/graph_algo.hpp"
#include "opto/util/assert.hpp"

namespace opto {
namespace {

/// Parent array of the canonical BFS tree rooted at `source`.
std::vector<NodeId> bfs_tree(const Graph& graph, NodeId source) {
  std::vector<NodeId> parent(graph.node_count(), kInvalidNode);
  parent[source] = source;
  std::deque<NodeId> queue{source};
  std::vector<NodeId> neighbors;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    neighbors.clear();
    for (EdgeId e : graph.out_links(u)) neighbors.push_back(graph.target(e));
    std::sort(neighbors.begin(), neighbors.end());
    for (NodeId v : neighbors) {
      if (parent[v] != kInvalidNode) continue;
      parent[v] = u;
      queue.push_back(v);
    }
  }
  return parent;
}

Path path_from_tree(const Graph& graph, const std::vector<NodeId>& parent,
                    NodeId source, NodeId destination) {
  OPTO_ASSERT_MSG(parent[destination] != kInvalidNode,
                  "destination unreachable from source");
  std::vector<NodeId> nodes;
  for (NodeId w = destination; w != source; w = parent[w]) nodes.push_back(w);
  nodes.push_back(source);
  std::reverse(nodes.begin(), nodes.end());
  return Path::from_nodes(graph, nodes);
}

}  // namespace

Path bfs_shortest_path(const Graph& graph, NodeId source, NodeId destination) {
  const auto parent = bfs_tree(graph, source);
  return path_from_tree(graph, parent, source, destination);
}

PathCollection bfs_collection(
    std::shared_ptr<const Graph> graph,
    std::span<const std::pair<NodeId, NodeId>> requests) {
  PathCollection collection(graph);
  collection.reserve(requests.size());
  std::unordered_map<NodeId, std::vector<NodeId>> trees;
  for (const auto& [source, destination] : requests) {
    auto it = trees.find(source);
    if (it == trees.end())
      it = trees.emplace(source, bfs_tree(*graph, source)).first;
    collection.add(path_from_tree(*graph, it->second, source, destination));
  }
  return collection;
}

}  // namespace opto
