#include "opto/paths/dot_export.hpp"

#include <sstream>

namespace opto {
namespace {

/// A small qualitative palette, cycled by load.
const char* load_color(std::uint32_t load) {
  static const char* kColors[] = {"#4477aa", "#66ccee", "#228833",
                                  "#ccbb44", "#ee6677", "#aa3377"};
  return kColors[std::min<std::uint32_t>(load, 6) - 1];
}

}  // namespace

void write_dot(std::ostream& os, const Graph& graph) {
  os << "graph \"" << graph.name() << "\" {\n"
     << "  layout=neato;\n  node [shape=circle, fontsize=10];\n";
  for (EdgeId e = 0; e < graph.link_count(); e += 2)
    os << "  " << graph.source(e) << " -- " << graph.target(e) << ";\n";
  os << "}\n";
}

void write_dot(std::ostream& os, const PathCollection& collection) {
  const Graph& graph = collection.graph();
  const auto loads = collection.link_loads();
  os << "digraph \"" << graph.name() << "\" {\n"
     << "  layout=neato;\n  node [shape=circle, fontsize=10];\n";
  // Endpoints of paths get emphasis.
  for (const Path& p : collection.paths()) {
    os << "  " << p.source() << " [style=filled, fillcolor=\"#ddeeff\"];\n";
    os << "  " << p.destination()
       << " [style=filled, fillcolor=\"#ffeedd\"];\n";
  }
  for (EdgeId e = 0; e < graph.link_count(); ++e) {
    const std::uint32_t load = loads[e];
    if (load == 0) {
      // Draw each unused undirected edge once, grey.
      if (e % 2 == 0 && loads[e ^ 1] == 0)
        os << "  " << graph.source(e) << " -> " << graph.target(e)
           << " [dir=none, color=\"#cccccc\"];\n";
      continue;
    }
    os << "  " << graph.source(e) << " -> " << graph.target(e)
       << " [color=\"" << load_color(load) << "\", penwidth="
       << std::min(5u, load) << ", label=\"" << load << "\"];\n";
  }
  os << "}\n";
}

std::string to_dot(const Graph& graph) {
  std::ostringstream os;
  write_dot(os, graph);
  return os.str();
}

std::string to_dot(const PathCollection& collection) {
  std::ostringstream os;
  write_dot(os, collection);
  return os.str();
}

}  // namespace opto
