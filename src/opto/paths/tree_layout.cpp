#include "opto/paths/tree_layout.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "opto/paths/lightpath_layout.hpp"
#include "opto/util/assert.hpp"

namespace opto {

using layout_detail::greedy_steps;
using layout_detail::span_ladder;
using layout_detail::TunnelStep;

std::vector<std::uint32_t> TreeLayout::spans_for(std::uint32_t length) const {
  return length == 0 ? std::vector<std::uint32_t>{}
                     : span_ladder(length, base);
}

std::vector<NodeId> random_tree_parents(std::uint32_t n, Rng& rng) {
  OPTO_ASSERT(n >= 1);
  std::vector<NodeId> parent(n);
  parent[0] = 0;
  for (NodeId v = 1; v < n; ++v)
    parent[v] = static_cast<NodeId>(rng.next_below(v));
  return parent;
}

TreeLayout make_tree_layout(const std::vector<NodeId>& parent,
                            std::uint32_t base) {
  const auto n = static_cast<NodeId>(parent.size());
  OPTO_ASSERT(n >= 2);
  OPTO_ASSERT(base >= 2);

  TreeLayout layout;
  layout.parent = parent;
  layout.base = base;

  // Locate the root and validate the parent array by resolving depths.
  NodeId root = kInvalidNode;
  for (NodeId v = 0; v < n; ++v) {
    OPTO_ASSERT(parent[v] < n);
    if (parent[v] == v) {
      OPTO_ASSERT_MSG(root == kInvalidNode, "two roots in the parent array");
      root = v;
    }
  }
  OPTO_ASSERT_MSG(root != kInvalidNode, "no root (parent[r] == r) found");
  layout.root = root;

  layout.depth.assign(n, 0);
  {
    std::vector<char> resolved(n, 0);
    resolved[root] = 1;
    for (NodeId v = 0; v < n; ++v) {
      // Walk up collecting the unresolved chain, then unwind.
      std::vector<NodeId> chain;
      NodeId w = v;
      while (!resolved[w]) {
        chain.push_back(w);
        w = parent[w];
        OPTO_ASSERT_MSG(chain.size() <= n, "cycle in the parent array");
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        layout.depth[*it] = layout.depth[parent[*it]] + 1;
        resolved[*it] = 1;
      }
    }
  }

  // Build the physical tree.
  auto graph =
      std::make_shared<Graph>(n, "tree-" + std::to_string(n));
  for (NodeId v = 0; v < n; ++v)
    if (v != root) graph->add_edge(parent[v], v);
  layout.graph = std::move(graph);

  // Heavy-path decomposition: each node's heavy child is its
  // largest-subtree child.
  std::vector<std::uint32_t> subtree(n, 1);
  std::vector<NodeId> by_depth(n);
  std::iota(by_depth.begin(), by_depth.end(), 0u);
  std::sort(by_depth.begin(), by_depth.end(), [&](NodeId a, NodeId b) {
    return layout.depth[a] > layout.depth[b];
  });
  for (const NodeId v : by_depth)
    if (v != root) subtree[parent[v]] += subtree[v];

  std::vector<NodeId> heavy_child(n, kInvalidNode);
  for (const NodeId v : by_depth) {
    if (v == root) continue;
    const NodeId p = parent[v];
    if (heavy_child[p] == kInvalidNode ||
        subtree[v] > subtree[heavy_child[p]])
      heavy_child[p] = v;
  }

  layout.path_head.assign(n, kInvalidNode);
  layout.path_position.assign(n, 0);
  layout.path_nodes.assign(n, {});
  // Top-down (ascending depth) so a node's head is known before its
  // children's.
  std::sort(by_depth.begin(), by_depth.end(), [&](NodeId a, NodeId b) {
    return layout.depth[a] < layout.depth[b];
  });
  for (const NodeId v : by_depth) {
    const bool starts_path =
        v == root || heavy_child[parent[v]] != v;
    const NodeId head = starts_path ? v : layout.path_head[parent[v]];
    layout.path_head[v] = head;
    layout.path_position[v] =
        starts_path ? 0 : layout.path_position[parent[v]] + 1;
    layout.path_nodes[head].push_back(v);
  }
  return layout;
}

namespace {

/// Tunnel riding a heavy path between positions [start, start+span],
/// travelling toward the head (upward) or away from it.
Path heavy_tunnel(const TreeLayout& layout, NodeId head,
                  const TunnelStep& step) {
  const auto& nodes = layout.path_nodes[head];
  std::vector<NodeId> slice(nodes.begin() + step.start,
                            nodes.begin() + step.start + step.span + 1);
  Path forward = Path::from_nodes(*layout.graph, slice);
  return step.forward ? forward : forward.reversed();
}

/// The light-edge tunnel child → parent (child heads its heavy path).
Path light_tunnel(const TreeLayout& layout, NodeId child) {
  return Path::from_nodes(
      *layout.graph,
      std::vector<NodeId>{child, layout.parent[child]});
}

/// Tunnels climbing from v to its ancestor `target` (inclusive).
std::vector<Path> climb(const TreeLayout& layout, NodeId v, NodeId target) {
  std::vector<Path> legs;
  while (layout.path_head[v] != layout.path_head[target]) {
    const NodeId head = layout.path_head[v];
    if (v != head) {
      const auto spans = layout.spans_for(static_cast<std::uint32_t>(
          layout.path_nodes[head].size() - 1));
      for (const TunnelStep& step :
           greedy_steps(layout.path_position[v], 0, spans))
        legs.push_back(heavy_tunnel(layout, head, step));
    }
    legs.push_back(light_tunnel(layout, head));
    v = layout.parent[head];
  }
  if (v != target) {
    const NodeId head = layout.path_head[v];
    const auto spans = layout.spans_for(
        static_cast<std::uint32_t>(layout.path_nodes[head].size() - 1));
    for (const TunnelStep& step : greedy_steps(
             layout.path_position[v], layout.path_position[target], spans))
      legs.push_back(heavy_tunnel(layout, head, step));
  }
  return legs;
}

}  // namespace

NodeId tree_lca(const TreeLayout& layout, NodeId a, NodeId b) {
  // Heavy-path LCA: lift the deeper head until both are on one path.
  while (layout.path_head[a] != layout.path_head[b]) {
    const NodeId ha = layout.path_head[a], hb = layout.path_head[b];
    if (layout.depth[ha] >= layout.depth[hb])
      a = layout.parent[ha];
    else
      b = layout.parent[hb];
  }
  return layout.depth[a] <= layout.depth[b] ? a : b;
}

std::vector<Path> tree_layout_route(const TreeLayout& layout, NodeId src,
                                    NodeId dst) {
  OPTO_ASSERT(src < layout.parent.size() && dst < layout.parent.size());
  if (src == dst) return {};
  const NodeId meet = tree_lca(layout, src, dst);
  std::vector<Path> route = climb(layout, src, meet);
  // Downward half: climb dst → LCA, then reverse each tunnel and the
  // order.
  const auto down = climb(layout, dst, meet);
  for (auto it = down.rbegin(); it != down.rend(); ++it)
    route.push_back(it->reversed());
  return route;
}

PathCollection tree_layout_lightpaths(const TreeLayout& layout) {
  PathCollection collection(layout.graph);
  const auto n = static_cast<NodeId>(layout.parent.size());
  for (NodeId head = 0; head < n; ++head) {
    const auto& nodes = layout.path_nodes[head];
    if (nodes.empty() || nodes.front() != head) continue;
    const auto length = static_cast<std::uint32_t>(nodes.size() - 1);
    for (const std::uint32_t span : layout.spans_for(length)) {
      for (std::uint32_t start = 0; start + span <= length; start += span) {
        Path forward = heavy_tunnel(layout, head, {start, span, true});
        collection.add(forward.reversed());
        collection.add(std::move(forward));
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v == layout.root || layout.path_head[v] != v) continue;
    Path up = light_tunnel(layout, v);
    collection.add(up.reversed());
    collection.add(std::move(up));
  }
  return collection;
}

std::uint32_t tree_layout_wavelength_congestion(const TreeLayout& layout) {
  return tree_layout_lightpaths(layout).edge_congestion();
}

std::uint32_t tree_layout_max_hops(const TreeLayout& layout) {
  std::uint32_t worst = 0;
  const auto n = static_cast<NodeId>(layout.parent.size());
  for (NodeId src = 0; src < n; ++src)
    for (NodeId dst = 0; dst < n; ++dst)
      worst = std::max(
          worst, static_cast<std::uint32_t>(
                     tree_layout_route(layout, src, dst).size()));
  return worst;
}

}  // namespace opto
