#include "opto/paths/leveled.hpp"

#include <algorithm>
#include <deque>

#include "opto/util/assert.hpp"

namespace opto {

std::optional<std::vector<std::uint32_t>> level_assignment(
    const PathCollection& collection) {
  const Graph& graph = collection.graph();
  const NodeId node_count = graph.node_count();

  // Collect the traversed directed links (deduplicated via a flag array).
  std::vector<char> link_used(graph.link_count(), 0);
  for (const Path& p : collection.paths())
    for (EdgeId link : p.links()) link_used[link] = 1;

  // Adjacency over used links only, in both directions, with the implied
  // level delta: target = source + 1.
  struct Constraint {
    NodeId to;
    std::int64_t delta;
  };
  std::vector<std::vector<Constraint>> constraints(node_count);
  for (EdgeId link = 0; link < graph.link_count(); ++link) {
    if (!link_used[link]) continue;
    const NodeId u = graph.source(link);
    const NodeId v = graph.target(link);
    constraints[u].push_back({v, +1});
    constraints[v].push_back({u, -1});
  }

  constexpr std::int64_t kUnset = INT64_MIN;
  std::vector<std::int64_t> level(node_count, kUnset);
  std::vector<NodeId> component;  // nodes of the component being labeled

  for (NodeId start = 0; start < node_count; ++start) {
    if (level[start] != kUnset || constraints[start].empty()) continue;
    component.clear();
    level[start] = 0;
    component.push_back(start);
    std::deque<NodeId> queue{start};
    std::int64_t min_level = 0;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const Constraint& c : constraints[u]) {
        const std::int64_t want = level[u] + c.delta;
        if (level[c.to] == kUnset) {
          level[c.to] = want;
          min_level = std::min(min_level, want);
          component.push_back(c.to);
          queue.push_back(c.to);
        } else if (level[c.to] != want) {
          return std::nullopt;  // inconsistent: not leveled
        }
      }
    }
    // Shift the component so its minimum level is 0.
    for (NodeId u : component) level[u] -= min_level;
  }

  std::vector<std::uint32_t> result(node_count, 0);
  for (NodeId u = 0; u < node_count; ++u)
    if (level[u] != kUnset) {
      OPTO_ASSERT(level[u] >= 0);
      result[u] = static_cast<std::uint32_t>(level[u]);
    }
  return result;
}

}  // namespace opto
