// Path collection — the routing problem instance of the paper (§1.1).
//
// A collection is a multiset of paths in one graph, characterized by
//   n  — its size,
//   D  — its dilation (longest path), and
//   C̃  — its *path congestion*: max over paths p of the number of other
//        paths sharing a directed link with p (the quantity the paper's
//        bounds are stated in — NOT the per-edge congestion).
//
// Collisions in the optical model happen on directed links (each
// undirected edge is two independent fibers), so all sharing here is
// directed-link sharing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/paths/path.hpp"

namespace opto {

struct CollectionStats {
  std::uint32_t size = 0;             ///< n
  std::uint32_t dilation = 0;         ///< D
  std::uint32_t edge_congestion = 0;  ///< max paths per directed link
  std::uint32_t path_congestion = 0;  ///< C̃
  double avg_length = 0.0;
};

/// SoA view of the collection: every path's link sequence concatenated
/// into one contiguous array. Path p's links live at
/// [offsets[p], offsets[p+1]); the simulator's hot loop walks a cursor
/// through `links` instead of chasing Path objects per worm per step.
struct FlatPaths {
  std::vector<std::uint32_t> offsets;  ///< size() + 1 entries
  std::vector<EdgeId> links;           ///< all paths' links, concatenated
};

/// Partition of the paths into *contention components*: the connected
/// components of the "shares a directed link" relation. Worms on paths in
/// different components can never interact — not through occupancy,
/// contention, truncation, witnesses, or wavelength conversion — which is
/// the independence the simulator's sharded pass mode exploits (and the
/// same edge-disjointness the paper's witness-tree bounds rest on).
/// Components are numbered by first appearance in path-id order, so the
/// labelling is canonical and reproducible.
struct ComponentDecomposition {
  std::uint32_t count = 0;
  std::vector<std::uint32_t> component_of;  ///< per PathId
  std::vector<std::uint32_t> sizes;         ///< paths per component
};

class PathCollection {
 public:
  PathCollection() = default;
  explicit PathCollection(std::shared_ptr<const Graph> graph)
      : graph_(std::move(graph)) {}

  // Copies and moves transfer the graph and paths but not the derived
  // caches (they rebuild on demand); required because the cache mutex is
  // neither copyable nor movable.
  PathCollection(const PathCollection& other)
      : graph_(other.graph_), paths_(other.paths_) {}
  PathCollection(PathCollection&& other) noexcept
      : graph_(std::move(other.graph_)), paths_(std::move(other.paths_)) {}
  PathCollection& operator=(const PathCollection& other);
  PathCollection& operator=(PathCollection&& other) noexcept;

  const Graph& graph() const { return *graph_; }
  std::shared_ptr<const Graph> graph_ptr() const { return graph_; }

  void add(Path path);
  void reserve(std::size_t n) { paths_.reserve(n); }

  std::uint32_t size() const { return static_cast<std::uint32_t>(paths_.size()); }
  bool empty() const { return paths_.empty(); }
  const Path& path(PathId id) const { return paths_[id]; }
  std::span<const Path> paths() const { return {paths_.data(), paths_.size()}; }

  std::uint32_t dilation() const;

  /// Number of paths using each directed link; indexed by EdgeId.
  std::vector<std::uint32_t> link_loads() const;

  /// Max over links of link load.
  std::uint32_t edge_congestion() const;

  /// Exact path congestion C̃ (counts *other* paths; a path sharing a link
  /// with k identical copies of itself counts those copies).
  /// O(Σ_e load(e)²) worst case — fine at experiment scale; the bundle
  /// structures report their C̃ analytically instead.
  std::uint32_t path_congestion() const;

  /// Per-path congestion values (same definition as above).
  std::vector<std::uint32_t> path_congestions() const;

  /// Estimated C̃ from a uniform sample of `samples` paths: the max of the
  /// sampled paths' exact congestions. A lower bound on the true C̃ that
  /// converges quickly in the workloads here (congestion concentrates);
  /// use when the exact O(Σ load²) computation is too heavy.
  std::uint32_t path_congestion_sampled(std::uint32_t samples,
                                        std::uint64_t seed) const;

  CollectionStats stats() const;

  /// Cached flattened link array; built lazily (thread-safe) and
  /// invalidated by add(). The returned reference — and any spans into it
  /// — stays valid until the next mutation of the collection.
  const FlatPaths& flat_paths() const;

  /// Cached contention-component decomposition (union-find over "first
  /// path seen per directed link", O(Σ lengths · α)); same lifetime and
  /// invalidation rules as flat_paths().
  const ComponentDecomposition& components() const;

 private:
  void invalidate_caches();

  std::shared_ptr<const Graph> graph_;
  std::vector<Path> paths_;

  // Derived-view caches; mutable + mutex-guarded so concurrent readers
  // (parallel trials each constructing a Simulator on one shared
  // collection) build them exactly once.
  mutable std::mutex cache_mutex_;
  mutable std::unique_ptr<FlatPaths> flat_cache_;
  mutable std::unique_ptr<ComponentDecomposition> component_cache_;
};

/// Builds a single-graph collection from explicit node sequences
/// (test/demo helper).
PathCollection collection_from_node_lists(
    std::shared_ptr<const Graph> graph,
    std::span<const std::vector<NodeId>> node_lists);

}  // namespace opto
