#include "opto/paths/shortcut_free.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

/// Common nodes of two paths with their positions on each.
struct CommonNode {
  NodeId node;
  std::uint32_t pos_p;
  std::uint32_t pos_q;
};

std::vector<CommonNode> common_nodes(const Graph& graph, const Path& p,
                                     const Path& q,
                                     std::vector<std::uint32_t>& pos_scratch,
                                     std::vector<PathId>& stamp_scratch,
                                     PathId stamp) {
  const auto p_nodes = p.nodes(graph);
  for (std::uint32_t i = 0; i < p_nodes.size(); ++i) {
    pos_scratch[p_nodes[i]] = i;
    stamp_scratch[p_nodes[i]] = stamp;
  }
  std::vector<CommonNode> common;
  const auto q_nodes = q.nodes(graph);
  for (std::uint32_t j = 0; j < q_nodes.size(); ++j) {
    const NodeId node = q_nodes[j];
    if (stamp_scratch[node] == stamp)
      common.push_back({node, pos_scratch[node], j});
  }
  std::sort(common.begin(), common.end(),
            [](const CommonNode& a, const CommonNode& b) {
              return a.pos_p < b.pos_p;
            });
  return common;
}

}  // namespace

std::optional<ShortcutViolation> find_shortcut(
    const PathCollection& collection) {
  const Graph& graph = collection.graph();
  std::vector<std::uint32_t> pos(graph.node_count(), 0);
  std::vector<PathId> stamp(graph.node_count(), kInvalidPath);
  PathId next_stamp = 0;

  for (PathId pi = 0; pi < collection.size(); ++pi) {
    const Path& p = collection.path(pi);
    for (PathId qi = 0; qi < collection.size(); ++qi) {
      if (pi == qi) continue;
      const Path& q = collection.path(qi);
      const auto common =
          common_nodes(graph, p, q, pos, stamp, next_stamp++);
      // Any two common nodes visited in the same order by both paths must
      // be at equal distance on both; otherwise the longer stretch is
      // shortcut by the shorter one.
      for (std::size_t a = 0; a < common.size(); ++a) {
        for (std::size_t b = a + 1; b < common.size(); ++b) {
          const auto& first = common[a];   // pos_p[a] < pos_p[b] by sort
          const auto& second = common[b];
          if (first.pos_q >= second.pos_q) continue;  // q visits reversed
          const std::uint32_t len_p = second.pos_p - first.pos_p;
          const std::uint32_t len_q = second.pos_q - first.pos_q;
          if (len_p == len_q) continue;
          ShortcutViolation violation;
          violation.from = first.node;
          violation.to = second.node;
          if (len_p > len_q) {
            violation.shortcut_path = pi;
            violation.via_path = qi;
            violation.long_length = len_p;
            violation.short_length = len_q;
          } else {
            violation.shortcut_path = qi;
            violation.via_path = pi;
            violation.long_length = len_q;
            violation.short_length = len_p;
          }
          return violation;
        }
      }
    }
  }
  return std::nullopt;
}

bool meet_separate_meet(const Graph& graph, const Path& p, const Path& q) {
  std::vector<std::uint32_t> pos(graph.node_count(), 0);
  std::vector<PathId> stamp(graph.node_count(), kInvalidPath);
  const auto common = common_nodes(graph, p, q, pos, stamp, 0);
  if (common.size() <= 1) return false;
  // Count maximal stretches that are contiguous on both paths (in either
  // direction on q). Two or more stretches = meet, separate, meet again.
  std::size_t stretches = 1;
  for (std::size_t i = 1; i < common.size(); ++i) {
    const bool contiguous_p = common[i].pos_p == common[i - 1].pos_p + 1;
    const std::int64_t dq = static_cast<std::int64_t>(common[i].pos_q) -
                            static_cast<std::int64_t>(common[i - 1].pos_q);
    const bool contiguous_q = dq == 1 || dq == -1;
    if (!(contiguous_p && contiguous_q)) ++stretches;
  }
  return stretches >= 2;
}

}  // namespace opto
