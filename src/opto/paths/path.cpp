#include "opto/paths/path.hpp"

#include <algorithm>
#include <unordered_set>

#include "opto/util/assert.hpp"

namespace opto {

Path Path::from_nodes(const Graph& graph, std::span<const NodeId> nodes) {
  OPTO_ASSERT_MSG(!nodes.empty(), "path needs at least one node");
  Path path;
  path.source_ = nodes.front();
  path.destination_ = nodes.back();
  path.links_.reserve(nodes.size() - 1);
  std::unordered_set<NodeId> seen;
  seen.insert(nodes.front());
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const EdgeId link = graph.find_link(nodes[i], nodes[i + 1]);
    OPTO_ASSERT_MSG(link != kInvalidEdge, "consecutive nodes not adjacent");
    OPTO_ASSERT_MSG(seen.insert(nodes[i + 1]).second,
                    "path revisits a node (paths must be simple)");
    path.links_.push_back(link);
  }
  return path;
}

Path Path::from_links(const Graph& graph, std::vector<EdgeId> links) {
  OPTO_ASSERT(!links.empty());
  Path path;
  path.source_ = graph.source(links.front());
  path.destination_ = graph.target(links.back());
  std::unordered_set<NodeId> seen;
  seen.insert(path.source_);
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i > 0)
      OPTO_ASSERT_MSG(graph.source(links[i]) == graph.target(links[i - 1]),
                      "links are not consecutive");
    OPTO_ASSERT_MSG(seen.insert(graph.target(links[i])).second,
                    "path revisits a node (paths must be simple)");
  }
  path.links_ = std::move(links);
  return path;
}

std::vector<NodeId> Path::nodes(const Graph& graph) const {
  std::vector<NodeId> out;
  out.reserve(links_.size() + 1);
  out.push_back(source_);
  for (EdgeId link : links_) out.push_back(graph.target(link));
  return out;
}

Path Path::reversed() const {
  Path rev;
  rev.source_ = destination_;
  rev.destination_ = source_;
  rev.links_.reserve(links_.size());
  for (auto it = links_.rbegin(); it != links_.rend(); ++it)
    rev.links_.push_back(Graph::reverse(*it));
  return rev;
}

}  // namespace opto
