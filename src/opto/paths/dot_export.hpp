// Graphviz DOT export of networks and path collections — a debugging and
// documentation aid (render with `dot -Tsvg`).
#pragma once

#include <ostream>
#include <string>

#include "opto/graph/graph.hpp"
#include "opto/paths/path_collection.hpp"

namespace opto {

/// Writes the undirected network.
void write_dot(std::ostream& os, const Graph& graph);

/// Writes the network with the collection's paths highlighted: each
/// directed link used by ≥1 path becomes a colored directed edge labeled
/// with its load; unused edges stay grey and undirected.
void write_dot(std::ostream& os, const PathCollection& collection);

/// Convenience: render to a string.
std::string to_dot(const Graph& graph);
std::string to_dot(const PathCollection& collection);

}  // namespace opto
