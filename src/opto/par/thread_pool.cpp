#include "opto/par/thread_pool.hpp"

#include <cstdlib>

#include "opto/util/assert.hpp"
#include "opto/util/string_util.hpp"

namespace opto {
namespace {

/// Identity of the pool whose worker_loop owns the current thread.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  OPTO_ASSERT(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OPTO_ASSERT_MSG(!shutting_down_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  // Completion is RAII: a throwing task must still decrement the
  // in-flight count, or wait_idle() (and every parallel_for built on the
  // pool) would block forever.
  struct CompletionGuard {
    ThreadPool& pool;
    ~CompletionGuard() {
      std::lock_guard<std::mutex> lock(pool.mutex_);
      --pool.in_flight_;
      if (pool.in_flight_ == 0) pool.all_done_.notify_all();
    }
  };
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    CompletionGuard guard{*this};
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("OPTO_THREADS")) {
      if (auto n = parse_int(env); n && *n > 0)
        return static_cast<std::size_t>(*n);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace opto
