// Portable SIMD policy for the hot-loop kernels (sim/attempt_kernel.cpp).
//
// Three lane levels, selected in two stages (DESIGN.md §9):
//
//  * Compile time — OPTO_SIMD_LEVEL caps what gets *built*:
//      0  portable scalar only (no intrinsics anywhere; the CI
//         portable-scalar leg builds this on every PR)
//      1  SSE2 kernels (baseline x86-64; vector arithmetic, scalar gathers)
//      2  AVX2 kernels (gathers + 4x64/8x32 lanes)
//    Unset, the level is derived from the target: __AVX2__ → 2 (the
//    -march=x86-64-v3 leg), x86-64 → 1 (SSE2 is baseline), else 0. AVX2
//    kernels are still *compiled* at level 1 via GCC/Clang target
//    attributes and selected at runtime when the CPU supports them, so a
//    default build gets full lane width without -march.
//
//  * Run time — the OPTO_SIMD environment variable caps what gets *used*:
//    "0" forces the scalar kernels (the differential escape hatch the
//    simd-diff CI job and the fuzz harness drive), "1" caps at SSE2, "2"
//    (or unset) allows everything built and supported. The cap is read
//    once and cached; per-simulator overrides go through SimConfig::simd
//    instead, which the in-process differ uses since the env is sticky.
//
// Every kernel keeps a scalar implementation that is the semantic
// reference: lane width must never change results, only wall clock. The
// active level is logged into BenchRecord env blocks (obs/bench_record).
#pragma once

#include <algorithm>
#include <cstdlib>

#ifndef OPTO_SIMD_LEVEL
#if defined(__AVX2__)
#define OPTO_SIMD_LEVEL 2
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define OPTO_SIMD_LEVEL 1
#else
#define OPTO_SIMD_LEVEL 0
#endif
#endif

namespace opto::simd {

inline constexpr int kLevelScalar = 0;
inline constexpr int kLevelSse2 = 1;
inline constexpr int kLevelAvx2 = 2;

/// The compile-time cap (what kernels exist in this binary).
inline constexpr int kCompiledLevel = OPTO_SIMD_LEVEL;

inline const char* level_name(int level) {
  switch (level) {
    case kLevelSse2:
      return "sse2";
    case kLevelAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

/// Highest level the executing CPU can run, ignoring caps. Compiled out
/// to scalar at OPTO_SIMD_LEVEL 0 so the portable leg carries no
/// intrinsics or cpuid probes at all.
inline int cpu_level() {
#if OPTO_SIMD_LEVEL >= 1 && (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(_M_X64))
  return __builtin_cpu_supports("avx2") ? kLevelAvx2 : kLevelSse2;
#else
  return kLevelScalar;
#endif
}

/// The OPTO_SIMD runtime cap: "0"/"1"/"2" as documented above, anything
/// else (or unset) = no cap. Read once — the simulator layers its
/// per-instance SimConfig::simd override on top of this.
inline int env_cap() {
  static const int cap = [] {
    const char* env = std::getenv("OPTO_SIMD");
    if (env == nullptr || env[0] == '\0') return kLevelAvx2;
    if (env[0] == '0' && env[1] == '\0') return kLevelScalar;
    if (env[0] == '1' && env[1] == '\0') return kLevelSse2;
    return kLevelAvx2;
  }();
  return cap;
}

/// The lane level kernels actually dispatch to: min(CPU, env) — cpu_level
/// is already scalar in a level-0 build, which contains no vector kernels.
inline int active_level() {
  static const int level = std::min(cpu_level(), env_cap());
  return level;
}

inline bool enabled() { return active_level() > kLevelScalar; }

}  // namespace opto::simd
