// Blocking data-parallel loops over an index range, built on ThreadPool.
//
//   parallel_for(0, trials, [&](std::size_t i) { results[i] = run(i); });
//
// Each index is independent; the caller owns any sharing discipline (the
// usual pattern writes to results[i] only). Indices are distributed in
// contiguous blocks so per-thread accumulators stay cache-friendly.
#pragma once

#include <cstddef>
#include <functional>

#include "opto/par/thread_pool.hpp"

namespace opto {

/// Runs body(i) for i in [begin, end) across the pool; returns when all
/// iterations finished. Runs inline when the range is tiny or the pool has
/// a single thread. If the body throws, every chunk still completes (the
/// latch can never hang) and the first exception is rethrown here.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// Block-parallel variant handing each worker a [lo, hi) chunk; useful when
/// per-call overhead matters or the body wants a per-chunk accumulator.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    ThreadPool* pool = nullptr);

}  // namespace opto
