// Fixed-size thread pool.
//
// The simulator itself is single-threaded per instance; the pool exists so
// the experiment harness can run independent trials (different seeds /
// parameter points) concurrently. Tasks are plain std::function<void()>.
// A task that throws does not take the pool down: completion bookkeeping
// is RAII (the in-flight count always reaches zero, so wait_idle() and
// parallel_for never hang on a throwing body), the first exception is
// captured, and the next wait_idle() rethrows it on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace opto {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last wait_idle(), rethrows the first such exception here
  /// (further exceptions from the same batch are dropped).
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of THIS pool's workers. Nested
  /// data-parallel code uses it to detect that blocking on the pool could
  /// deadlock (every worker waiting on chunks only workers can run) and
  /// falls back to inline execution instead.
  bool on_worker_thread() const;

  /// Process-wide pool, sized by OPTO_THREADS env var when set.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;  ///< first task exception since last wait
  std::vector<std::thread> workers_;
};

}  // namespace opto
