#include "opto/par/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <utility>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

/// Completion latch local to one parallel_for call, so nested or concurrent
/// calls on the shared pool do not interfere. Captures the first exception
/// a chunk throws; wait() rethrows it on the calling thread once every
/// chunk has arrived (arrival is RAII in the task, so a throwing body can
/// never strand the latch).
class Completion {
 public:
  explicit Completion(std::size_t expected) : remaining_(expected) {}

  void arrive() noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    OPTO_ASSERT(remaining_ > 0);
    if (--remaining_ == 0) done_.notify_all();
  }

  void fail(std::exception_ptr error) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::move(error);
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t remaining_;
  std::exception_ptr error_;
};

/// RAII arrival: runs even when the chunk body throws.
struct ArriveGuard {
  Completion& completion;
  ~ArriveGuard() { completion.arrive(); }
};

}  // namespace

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t count = end - begin;
  const std::size_t workers = pool->thread_count();
  // Run inline from a worker of the same pool: blocking in wait() while
  // our chunks sit behind other blocked workers' chunks can deadlock the
  // pool (nested parallel_for, e.g. a sharded simulator pass inside a
  // parallel trial).
  if (workers <= 1 || count == 1 || pool->on_worker_thread()) {
    body(begin, end);
    return;
  }
  // A couple of chunks per worker balances uneven iteration costs without
  // drowning the queue in tiny tasks.
  const std::size_t chunks = std::min(count, workers * 2);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::size_t actual_chunks = 0;
  for (std::size_t lo = begin; lo < end; lo += chunk_size) ++actual_chunks;

  Completion completion(actual_chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(lo + chunk_size, end);
    pool->submit([&body, &completion, lo, hi] {
      ArriveGuard guard{completion};
      try {
        body(lo, hi);
      } catch (...) {
        // Routed to the caller of wait(), not to the pool's wait_idle():
        // the exception belongs to this parallel_for, and the task itself
        // completes normally from the pool's point of view.
        completion.fail(std::current_exception());
      }
    });
  }
  completion.wait();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      pool);
}

}  // namespace opto
