#include "opto/optical/worm.hpp"

namespace opto {

const char* to_string(WormStatus status) {
  switch (status) {
    case WormStatus::Waiting:
      return "waiting";
    case WormStatus::Running:
      return "running";
    case WormStatus::Delivered:
      return "delivered";
    case WormStatus::Killed:
      return "killed";
  }
  return "?";
}

}  // namespace opto
