#include "opto/optical/router.hpp"

#include <map>
#include <set>

#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(SwitchType type) {
  return type == SwitchType::Elementary ? "elementary" : "generalized";
}

RouterCheck check_router_demands(SwitchType type, std::uint32_t bandwidth,
                                 std::span<const RouterDemand> demands) {
  RouterCheck check;
  std::set<std::pair<std::uint32_t, Wavelength>> output_wavelengths;
  std::map<std::uint32_t, std::uint32_t> input_output;  // elementary rule
  std::set<std::pair<std::uint32_t, Wavelength>> input_wavelengths;

  for (const RouterDemand& d : demands) {
    if (d.wavelength >= bandwidth) {
      check.reason = "wavelength exceeds router bandwidth";
      return check;
    }
    if (!input_wavelengths.insert({d.input, d.wavelength}).second) {
      check.reason = "one input fiber carries a wavelength twice";
      return check;
    }
    if (!output_wavelengths.insert({d.output, d.wavelength}).second) {
      check.reason = "two demands collide on one (output, wavelength)";
      return check;
    }
    if (type == SwitchType::Elementary) {
      auto [it, inserted] = input_output.emplace(d.input, d.output);
      if (!inserted && it->second != d.output) {
        check.reason =
            "elementary switch cannot split one input across outputs";
        return check;
      }
    }
  }
  check.ok = true;
  return check;
}

std::optional<std::vector<std::uint32_t>> configure_2x2(
    SwitchType type, std::uint32_t bandwidth,
    std::span<const RouterDemand> demands) {
  for (const RouterDemand& d : demands)
    OPTO_ASSERT_MSG(d.input < 2 && d.output < 2, "2x2 router ports are 0/1");
  const RouterCheck check = check_router_demands(type, bandwidth, demands);
  if (!check.ok) return std::nullopt;
  // Configuration table: entry [input * bandwidth + wavelength] = output.
  // Unused slots default to the straight-through output (== input).
  std::vector<std::uint32_t> config(2 * bandwidth);
  for (std::uint32_t input = 0; input < 2; ++input)
    for (std::uint32_t w = 0; w < bandwidth; ++w)
      config[input * bandwidth + w] = input;
  for (const RouterDemand& d : demands)
    config[d.input * bandwidth + d.wavelength] = d.output;
  if (type == SwitchType::Elementary) {
    // Re-impose the single-output rule on defaults: route the whole input
    // to the output its demands chose.
    for (const RouterDemand& d : demands)
      for (std::uint32_t w = 0; w < bandwidth; ++w)
        config[d.input * bandwidth + w] = d.output;
  }
  return config;
}

}  // namespace opto
