#include "opto/optical/coupler.hpp"

#include <algorithm>

#include "opto/util/assert.hpp"

namespace opto {

const char* to_string(ContentionRule rule) {
  return rule == ContentionRule::ServeFirst ? "serve-first" : "priority";
}

const char* to_string(TiePolicy policy) {
  return policy == TiePolicy::KillAll ? "kill-all" : "first-wins";
}

ContentionOutcome resolve_contention(ContentionRule rule, TiePolicy tie,
                                     std::optional<Contender> occupant,
                                     std::span<const Contender> entrants) {
  OPTO_ASSERT(!entrants.empty());
  ContentionOutcome outcome;

  if (rule == ContentionRule::ServeFirst) {
    if (occupant.has_value()) {
      // Wavelength already in use: every newcomer is eliminated.
      for (const Contender& c : entrants) outcome.eliminated.push_back(c.worm);
      return outcome;
    }
    if (entrants.size() == 1) {
      outcome.admitted = entrants.front().worm;
      return outcome;
    }
    // Dead-heat between newcomers.
    if (tie == TiePolicy::KillAll) {
      for (const Contender& c : entrants) outcome.eliminated.push_back(c.worm);
      return outcome;
    }
    // FirstWins: smallest worm id models a fixed input-port scan order.
    const Contender* winner = &entrants.front();
    for (const Contender& c : entrants)
      if (c.worm < winner->worm) winner = &c;
    outcome.admitted = winner->worm;
    for (const Contender& c : entrants)
      if (c.worm != winner->worm) outcome.eliminated.push_back(c.worm);
    return outcome;
  }

  // Priority rule: strictly highest rank wins among occupant + entrants.
  const Contender* best = nullptr;
  for (const Contender& c : entrants) {
    if (best != nullptr)
      OPTO_ASSERT_MSG(c.priority != best->priority,
                      "two worms with equal priority met (ranks must be "
                      "pairwise distinct per round)");
    if (best == nullptr || c.priority > best->priority) best = &c;
  }
  if (occupant.has_value()) {
    OPTO_ASSERT_MSG(occupant->priority != best->priority,
                    "entrant and occupant share a priority rank");
    if (occupant->priority > best->priority) {
      // Occupant keeps flowing; all entrants die.
      for (const Contender& c : entrants) outcome.eliminated.push_back(c.worm);
      return outcome;
    }
    outcome.occupant_truncated = true;
  }
  outcome.admitted = best->worm;
  for (const Contender& c : entrants)
    if (c.worm != best->worm) outcome.eliminated.push_back(c.worm);
  return outcome;
}

}  // namespace opto
