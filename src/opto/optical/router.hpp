// Router composition model (Figures 1–3).
//
// A router is built from wavelength-selective switches (one per input
// fiber) feeding couplers (one per output fiber). This module captures the
// switch taxonomy of §1.2 and checks whether a desired per-(input fiber,
// wavelength) → output fiber assignment is realizable:
//
//   elementary switch  : all wavelengths arriving on an input must leave
//                        through the same output (wire switching only).
//   generalized switch : different wavelengths from one input may take
//                        different outputs (wavelength switching).
//
// The trial-and-failure protocol needs generalized switches: two worms on
// different wavelengths may enter the same router input and diverge. The
// validator below lets tests demonstrate exactly that.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "opto/optical/worm.hpp"

namespace opto {

enum class SwitchType : std::uint8_t { Elementary, Generalized };

const char* to_string(SwitchType type);

/// One desired pass-through: wavelength w arriving on `input` must leave
/// via `output`. No wavelength conversion: the wavelength is preserved.
struct RouterDemand {
  std::uint32_t input = 0;
  Wavelength wavelength = 0;
  std::uint32_t output = 0;
};

/// Result of a realizability check.
struct RouterCheck {
  bool ok = false;
  std::string reason;  ///< first violated constraint when !ok
};

/// Checks whether a demand set can be configured on a router with the
/// given switch type and `bandwidth` wavelengths per fiber.
///
/// Constraints verified:
///  * wavelengths are < bandwidth;
///  * no output carries the same wavelength twice (that is a collision —
///    the couplers' contention rules exist precisely because demand sets
///    violating this arise at runtime);
///  * elementary switches additionally require all demands of one input to
///    share a single output.
RouterCheck check_router_demands(SwitchType type, std::uint32_t bandwidth,
                                 std::span<const RouterDemand> demands);

/// A 2×2 router convenience (Figure 1): two inputs, two outputs.
/// Returns the configuration per (input, wavelength) — the output each
/// wavelength is switched to — or nullopt if not realizable.
std::optional<std::vector<std::uint32_t>> configure_2x2(
    SwitchType type, std::uint32_t bandwidth,
    std::span<const RouterDemand> demands);

}  // namespace opto
