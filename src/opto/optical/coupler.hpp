// Coupler contention resolution — the heart of the two router types (§1).
//
// A coupler merges the signals heading for one outgoing fiber. When one or
// more worms try to enter a (link, wavelength) that may already carry
// another worm, exactly one of these happens per the configured rule:
//
//   serve-first : an occupied wavelength eliminates every newcomer; on a
//                 dead-heat between newcomers the TiePolicy decides
//                 (kill-all models photonic corruption of both signals;
//                 first-wins models the coupler control latching onto one
//                 input port).
//   priority    : the highest-priority worm wins. A losing occupant is
//                 truncated — flits already through the coupler continue
//                 as a remnant, the rest drain ("the message with higher
//                 priority is forwarded and the other suspended").
//
// This module is pure decision logic; the simulator applies the outcome to
// worm state and the occupancy registry.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "opto/optical/worm.hpp"

namespace opto {

enum class ContentionRule : std::uint8_t { ServeFirst, Priority };
enum class TiePolicy : std::uint8_t { KillAll, FirstWins };

const char* to_string(ContentionRule rule);
const char* to_string(TiePolicy policy);

/// One party in a contention: the worm id and its priority rank.
struct Contender {
  WormId worm = kInvalidWorm;
  std::uint32_t priority = 0;
};

struct ContentionOutcome {
  /// Entrant allowed onto the link; kInvalidWorm if none (all entrants
  /// eliminated, occupant — if any — keeps flowing).
  WormId admitted = kInvalidWorm;
  /// True iff the occupant lost to a higher-priority entrant and must be
  /// truncated at this coupler.
  bool occupant_truncated = false;
  /// Entrants eliminated here.
  std::vector<WormId> eliminated;
};

/// Resolves one (link, wavelength, time-step) contention.
/// `occupant` is the worm currently flowing through the coupler on this
/// wavelength, if any. `entrants` is nonempty. Under the priority rule all
/// involved priorities must be pairwise distinct (the protocol guarantees
/// this with per-round permutation ranks).
ContentionOutcome resolve_contention(ContentionRule rule, TiePolicy tie,
                                     std::optional<Contender> occupant,
                                     std::span<const Contender> entrants);

}  // namespace opto
