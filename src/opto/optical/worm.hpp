// Worm state (§1.1): a message of L flits that moves one link per time
// step and can never be buffered.
//
// Kinematics invariant: a worm injected at start_time enters its path link
// i at time start_time + i — worms never stall, they move forward or get
// eliminated. Consequently a worm's occupancy of link i is the interval
// [start_time + i, start_time + i + ℓ − 1] where ℓ is its flit length when
// crossing that link (priority truncation can shrink ℓ mid-flight).
#pragma once

#include <cstdint>

#include "opto/paths/path.hpp"

namespace opto {

using WormId = std::uint32_t;
inline constexpr WormId kInvalidWorm = ~WormId{0};
/// Sentinel occupant for a pinned (held) wavelength slot — an established
/// connection of the streaming engine holding the channel between passes.
/// Distinct from kInvalidWorm (the stuck-wavelength fault sentinel) so a
/// loss against a held channel is accounted as pinned, not as a fault.
inline constexpr WormId kPinnedWorm = kInvalidWorm - 1;

using Wavelength = std::uint16_t;
using SimTime = std::int64_t;

enum class WormStatus : std::uint8_t {
  Waiting,    ///< not yet injected this round
  Running,    ///< head advancing (possibly as a truncated remnant)
  Delivered,  ///< all original flits reached the destination
  Killed,     ///< eliminated (serve-first) or fully cut (priority)
};

struct Worm {
  PathId path = kInvalidPath;
  Wavelength wavelength = 0;
  std::uint32_t priority = 0;       ///< higher wins under the priority rule
  SimTime start_time = 0;           ///< head enters link 0 at this time
  std::uint32_t original_length = 0;
  std::uint32_t length = 0;         ///< current flit length (≤ original)
  std::uint32_t head_index = 0;     ///< links already entered
  WormStatus status = WormStatus::Waiting;
  bool truncated = false;           ///< lost flits to a priority collision
  bool corrupted = false;           ///< payload corrupted by an injected fault
  bool fault_killed = false;        ///< eliminated by a fault, not contention
  bool pinned_killed = false;       ///< eliminated by a held (pinned) channel
  std::uint32_t blocked_at_link = 0;  ///< path position of the fatal block
  SimTime finish_time = -1;         ///< delivery/kill completion time

  bool active() const {
    return status == WormStatus::Waiting || status == WormStatus::Running;
  }

  /// Entry time of the head into path link `i` (valid for i ≤ head_index).
  SimTime entry_time(std::uint32_t i) const {
    return start_time + static_cast<SimTime>(i);
  }

  /// Whether the delivery counts as a success: a truncated worm reaching
  /// its destination is an incomplete message and must retry (§1.3: worms
  /// may be "only partly discarded" and still fail); a corrupted payload
  /// is rejected by the destination the same way.
  bool delivered_intact() const {
    return status == WormStatus::Delivered && !truncated && !corrupted;
  }
};

const char* to_string(WormStatus status);

}  // namespace opto
