// Network topology representation.
//
// Following the paper's model (§1.1), the network is an undirected graph
// where every node is a router and every undirected edge carries two
// optical links, one per direction. We therefore store *directed* edges:
// add_edge(u, v) creates the link u→v with an even id `e` and its reverse
// v→u with id `e ^ 1`, so reversing a link is a single XOR.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace opto {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;  ///< Directed-edge (optical link) id.

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId node_count, std::string name = {});

  NodeId add_node();

  /// Adds the undirected edge {u, v} as two directed links and returns the
  /// id of the u→v link; the v→u link is `returned_id ^ 1`. Self-loops and
  /// duplicate edges are rejected.
  EdgeId add_edge(NodeId u, NodeId v);

  NodeId node_count() const { return static_cast<NodeId>(out_edges_.size()); }
  /// Number of directed links (= 2 × undirected edges).
  EdgeId link_count() const { return static_cast<EdgeId>(targets_.size()); }
  EdgeId undirected_edge_count() const { return link_count() / 2; }

  NodeId source(EdgeId e) const { return targets_[e ^ 1]; }
  NodeId target(EdgeId e) const { return targets_[e]; }

  static constexpr EdgeId reverse(EdgeId e) { return e ^ 1; }

  /// Directed links leaving u.
  std::span<const EdgeId> out_links(NodeId u) const {
    return {out_edges_[u].data(), out_edges_[u].size()};
  }

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(out_edges_[u].size());
  }
  NodeId max_degree() const;

  /// Directed link u→v, or kInvalidEdge.
  EdgeId find_link(NodeId u, NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const {
    return find_link(u, v) != kInvalidEdge;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  // targets_[e] is the head of directed link e; paired links share targets_
  // slots (even id u→v stores v, odd id v→u stores u), so source(e) is just
  // target(e^1).
  std::vector<NodeId> targets_;
  std::vector<std::vector<EdgeId>> out_edges_;
};

}  // namespace opto
