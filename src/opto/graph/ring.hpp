// Ring (cycle) of n nodes — the simplest node-symmetric network.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

/// n >= 3.
Graph make_ring(std::uint32_t n);

}  // namespace opto
