#include "opto/graph/bcube.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

BCubeTopology make_bcube(std::uint32_t ports, std::uint32_t levels) {
  OPTO_ASSERT(ports >= 2 && levels >= 1);
  std::uint64_t server_count = 1;
  for (std::uint32_t l = 0; l < levels; ++l) {
    server_count *= ports;
    OPTO_ASSERT(server_count <= (std::uint64_t{1} << 31));
  }

  BCubeTopology topo;
  topo.ports = ports;
  topo.levels = levels;
  const std::uint32_t servers = static_cast<std::uint32_t>(server_count);
  const std::uint32_t per_level = servers / ports;
  topo.graph = Graph(servers + levels * per_level,
                     "bcube-" + std::to_string(ports) + "-" +
                         std::to_string(levels));
  topo.servers.reserve(servers);
  for (NodeId s = 0; s < servers; ++s) topo.servers.push_back(s);

  // Server (a_{k} ... a_0) joins, at level l, the switch indexed by its
  // digits with a_l removed: high digits keep their weight divided by n,
  // low digits keep theirs.
  for (NodeId s = 0; s < servers; ++s) {
    std::uint32_t low_weight = 1;
    for (std::uint32_t level = 0; level < levels; ++level) {
      const std::uint32_t low = s % low_weight;
      const std::uint32_t high = s / (low_weight * ports);
      const std::uint32_t index = high * low_weight + low;
      topo.graph.add_edge(s, topo.switch_at(level, index));
      low_weight *= ports;
    }
  }
  return topo;
}

}  // namespace opto
