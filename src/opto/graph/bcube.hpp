// BCube(n, k) server-centric datacenter topology (Guo et al., SIGCOMM
// 2009): n^(k+1) servers, k+1 switch levels of n^k switches each, every
// server attached to exactly one switch per level.
//
// A server is addressed by k+1 base-n digits (a_k ... a_0); at level l
// it connects to the switch whose index is those digits with a_l
// removed. Node ids are deterministic: servers first (address order),
// then switches level by level — so the server ids form one contiguous
// range [0, n^(k+1)).
#pragma once

#include <cstdint>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

struct BCubeTopology {
  std::uint32_t ports = 0;   ///< n, switch port count (>= 2)
  std::uint32_t levels = 0;  ///< k + 1 switch levels (>= 1)
  Graph graph;
  std::vector<NodeId> servers;  ///< contiguous, address order

  std::uint32_t server_count() const {
    return static_cast<std::uint32_t>(servers.size());
  }
  std::uint32_t switches_per_level() const {
    return server_count() / ports;
  }
  NodeId switch_at(std::uint32_t level, std::uint32_t index) const {
    return server_count() + level * switches_per_level() + index;
  }
};

/// Builds BCube(n, k) with `levels` = k + 1 switch levels; ports >= 2,
/// levels >= 1, and ports^levels must fit in 32 bits.
BCubeTopology make_bcube(std::uint32_t ports, std::uint32_t levels);

}  // namespace opto
