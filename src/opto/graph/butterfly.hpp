// Butterfly networks (Theorem 1.7's network).
//
// The d-dimensional butterfly has rows [2^d] and levels 0..d (the ordinary
// butterfly) or levels [d] with wrap-around (the node-symmetric variant).
// Node (level ℓ, row r) connects to (ℓ+1, r) — the "straight" edge — and to
// (ℓ+1, r ^ (1 << ℓ)) — the "cross" edge that can correct bit ℓ of the row.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

struct ButterflyTopology {
  std::uint32_t dim = 0;
  bool wrap = false;
  Graph graph;

  std::uint32_t rows() const { return 1u << dim; }
  std::uint32_t levels() const { return wrap ? dim : dim + 1; }

  NodeId node_at(std::uint32_t level, std::uint32_t row) const;
  std::uint32_t level_of(NodeId node) const;
  std::uint32_t row_of(NodeId node) const;

  /// Inputs are the level-0 nodes, outputs the last-level nodes.
  NodeId input(std::uint32_t row) const { return node_at(0, row); }
  NodeId output(std::uint32_t row) const {
    return node_at(wrap ? 0 : dim, row);
  }
};

/// Ordinary (non-wrapped) butterfly; dim in [1, 16].
ButterflyTopology make_butterfly(std::uint32_t dim);

/// Wrap-around butterfly (node-symmetric); dim in [3, 16]. Levels d-1 and 0
/// are identified modulo d. (dim >= 3 keeps parallel edges away.)
ButterflyTopology make_wrap_butterfly(std::uint32_t dim);

}  // namespace opto
