#include "opto/graph/hypercube.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

Graph make_hypercube(std::uint32_t dim) {
  OPTO_ASSERT(dim >= 1 && dim <= 20);
  const NodeId count = NodeId{1} << dim;
  Graph graph(count, "hypercube-" + std::to_string(dim));
  for (NodeId u = 0; u < count; ++u) {
    for (std::uint32_t bit = 0; bit < dim; ++bit) {
      const NodeId v = hypercube_neighbor(u, bit);
      if (u < v) graph.add_edge(u, v);
    }
  }
  return graph;
}

}  // namespace opto
