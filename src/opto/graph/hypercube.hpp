// Binary hypercube of dimension d (2^d nodes, node u ~ u ^ (1<<bit)).
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

/// dim in [1, 20]. Node ids are the binary labels.
Graph make_hypercube(std::uint32_t dim);

/// Neighbor of `node` across coordinate `bit`.
inline NodeId hypercube_neighbor(NodeId node, std::uint32_t bit) {
  return node ^ (NodeId{1} << bit);
}

}  // namespace opto
