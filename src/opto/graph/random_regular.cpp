#include "opto/graph/random_regular.hpp"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "opto/util/assert.hpp"

namespace opto {

Graph make_random_regular(std::uint32_t n, std::uint32_t degree,
                          std::uint64_t seed) {
  OPTO_ASSERT(n >= 3);
  OPTO_ASSERT(degree >= 2 && degree < n);
  OPTO_ASSERT_MSG((static_cast<std::uint64_t>(n) * degree) % 2 == 0,
                  "n * degree must be even");
  Rng rng(seed);

  // Configuration model: pair up n·degree stubs uniformly; reject and
  // retry on self-loops or parallel edges.
  for (std::uint32_t attempt = 0; attempt < 1000; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * degree);
    for (NodeId u = 0; u < n; ++u)
      for (std::uint32_t s = 0; s < degree; ++s) stubs.push_back(u);
    rng.shuffle(stubs);

    std::set<std::pair<NodeId, NodeId>> edges;
    bool simple = true;
    for (std::size_t i = 0; i < stubs.size() && simple; i += 2) {
      NodeId a = stubs[i], b = stubs[i + 1];
      if (a == b) {
        simple = false;
        break;
      }
      if (a > b) std::swap(a, b);
      simple = edges.emplace(a, b).second;
    }
    if (!simple) continue;

    Graph graph(n, "random-regular-" + std::to_string(n) + "-" +
                       std::to_string(degree));
    for (const auto& [a, b] : edges) graph.add_edge(a, b);
    return graph;
  }
  OPTO_ASSERT_MSG(false, "configuration model failed to produce a simple "
                         "graph (degree too close to n?)");
  return Graph{};
}

}  // namespace opto
