#include "opto/graph/graph_algo.hpp"

#include <algorithm>
#include <deque>

#include "opto/util/assert.hpp"

namespace opto {

std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source) {
  OPTO_ASSERT(source < graph.node_count());
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (EdgeId e : graph.out_links(u)) {
      const NodeId v = graph.target(e);
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> bfs_path(const Graph& graph, NodeId source, NodeId target) {
  OPTO_ASSERT(source < graph.node_count() && target < graph.node_count());
  if (source == target) return {source};
  // Parent-pointer BFS; scanning out-links of the smallest-id frontier node
  // first and never overwriting a parent yields the lexicographically
  // canonical shortest path.
  std::vector<NodeId> parent(graph.node_count(), kInvalidNode);
  std::deque<NodeId> queue;
  parent[source] = source;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    // Visit neighbors in ascending node id for canonical tie-breaking.
    std::vector<NodeId> neighbors;
    neighbors.reserve(graph.out_links(u).size());
    for (EdgeId e : graph.out_links(u)) neighbors.push_back(graph.target(e));
    std::sort(neighbors.begin(), neighbors.end());
    for (NodeId v : neighbors) {
      if (parent[v] != kInvalidNode) continue;
      parent[v] = u;
      if (v == target) {
        std::vector<NodeId> path;
        for (NodeId w = target; w != source; w = parent[w]) path.push_back(w);
        path.push_back(source);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

bool is_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  const auto dist = bfs_distances(graph, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t eccentricity(const Graph& graph, NodeId source) {
  const auto dist = bfs_distances(graph, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    OPTO_ASSERT_MSG(d != kUnreachable, "eccentricity of disconnected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& graph) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u)
    best = std::max(best, eccentricity(graph, u));
  return best;
}

}  // namespace opto
