#include "opto/graph/ring.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

Graph make_ring(std::uint32_t n) {
  OPTO_ASSERT(n >= 3);
  Graph graph(n, "ring-" + std::to_string(n));
  for (NodeId u = 0; u + 1 < n; ++u) graph.add_edge(u, u + 1);
  graph.add_edge(n - 1, 0);
  return graph;
}

}  // namespace opto
