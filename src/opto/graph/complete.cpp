#include "opto/graph/complete.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

Graph make_complete(std::uint32_t n) {
  OPTO_ASSERT(n >= 2 && n <= 2048);
  Graph graph(n, "complete-" + std::to_string(n));
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) graph.add_edge(u, v);
  return graph;
}

}  // namespace opto
