// Explicit expander families (§1.4: "the best expanders that have an
// explicit construction are all node-symmetric").
//
// * Circulant graphs C_n(S): node i adjacent to i ± s for s in S. Cayley
//   graphs of Z_n — node-symmetric by construction; with well-chosen
//   offsets they have good expansion and diameter O(n / max S + |S|).
// * Margulis–Gabber–Galil graph on Z_m × Z_m: the classic explicit
//   expander (degree ≤ 8): (x,y) ~ (x±2y, y), (x±(2y+1), y),
//   (x, y±2x), (x, y±(2x+1)), all mod m. Rendered as a simple graph
//   (duplicate edges and self-loops dropped).
#pragma once

#include <cstdint>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

/// Circulant graph; offsets must be distinct values in [1, n/2].
Graph make_circulant(std::uint32_t n, std::vector<std::uint32_t> offsets);

/// Margulis–Gabber–Galil expander on m×m nodes; m in [2, 1024].
Graph make_margulis_expander(std::uint32_t m);

/// Cheeger-style edge expansion of a node subset sample: minimum over
/// `samples` random subsets S with |S| ≤ n/2 of |∂S| / |S|. A crude lower
/// witness of expansion used by tests and benches (exact expansion is
/// NP-hard).
double sampled_edge_expansion(const Graph& graph, std::uint32_t samples,
                              std::uint64_t seed);

}  // namespace opto
