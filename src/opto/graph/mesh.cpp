#include "opto/graph/mesh.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

MeshTopology make_grid(std::vector<std::uint32_t> sides, bool wrap) {
  OPTO_ASSERT(!sides.empty());
  std::uint64_t total = 1;
  for (std::uint32_t side : sides) {
    OPTO_ASSERT(side >= 1);
    if (wrap) OPTO_ASSERT_MSG(side >= 3, "torus side must be >= 3");
    total *= side;
  }
  OPTO_ASSERT_MSG(total <= (1ull << 31), "mesh too large");

  MeshTopology topo;
  topo.sides = std::move(sides);
  topo.wrap = wrap;
  std::string name = wrap ? "torus" : "mesh";
  for (std::uint32_t side : topo.sides) name += "-" + std::to_string(side);
  topo.graph = Graph(static_cast<NodeId>(total), name);

  const std::uint32_t dims = topo.dimensions();
  std::vector<std::uint32_t> coords(dims, 0);
  for (NodeId node = 0; node < total; ++node) {
    // Connect each node to its +1 neighbor in every dimension (the -1
    // neighbor is covered by the neighbor's own +1 edge).
    for (std::uint32_t d = 0; d < dims; ++d) {
      const std::uint32_t side = topo.sides[d];
      if (side == 1) continue;
      if (coords[d] + 1 < side) {
        std::vector<std::uint32_t> next(coords.begin(), coords.end());
        ++next[d];
        topo.graph.add_edge(node, topo.node_at(next));
      } else if (wrap) {
        std::vector<std::uint32_t> next(coords.begin(), coords.end());
        next[d] = 0;
        topo.graph.add_edge(node, topo.node_at(next));
      }
    }
    // Advance row-major coordinates (last dimension fastest).
    for (std::uint32_t d = dims; d-- > 0;) {
      if (++coords[d] < topo.sides[d]) break;
      coords[d] = 0;
    }
  }
  return topo;
}

}  // namespace

NodeId MeshTopology::node_at(std::span<const std::uint32_t> coords) const {
  OPTO_ASSERT(coords.size() == sides.size());
  std::uint64_t index = 0;
  for (std::size_t d = 0; d < sides.size(); ++d) {
    OPTO_ASSERT(coords[d] < sides[d]);
    index = index * sides[d] + coords[d];
  }
  return static_cast<NodeId>(index);
}

std::vector<std::uint32_t> MeshTopology::coords_of(NodeId node) const {
  std::vector<std::uint32_t> coords(sides.size(), 0);
  std::uint64_t rest = node;
  for (std::size_t d = sides.size(); d-- > 0;) {
    coords[d] = static_cast<std::uint32_t>(rest % sides[d]);
    rest /= sides[d];
  }
  OPTO_ASSERT(rest == 0);
  return coords;
}

MeshTopology make_mesh(std::vector<std::uint32_t> sides) {
  return make_grid(std::move(sides), /*wrap=*/false);
}

MeshTopology make_torus(std::vector<std::uint32_t> sides) {
  return make_grid(std::move(sides), /*wrap=*/true);
}

}  // namespace opto
