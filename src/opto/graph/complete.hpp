// Complete graph K_n; useful as a degenerate test topology.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

/// n in [2, 2048] (quadratic edge count).
Graph make_complete(std::uint32_t n);

}  // namespace opto
