#include "opto/graph/fattree.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

FatTreeTopology make_fat_tree(std::uint32_t radix) {
  OPTO_ASSERT(radix >= 2 && radix % 2 == 0);
  FatTreeTopology topo;
  topo.radix = radix;

  const std::uint32_t half = radix / 2;
  const std::uint32_t cores = half * half;
  const std::uint32_t switches = cores + radix * radix;  // + k pods * k
  const std::uint32_t host_count = radix * half * half;  // k^3 / 4
  topo.graph =
      Graph(switches + host_count, "fattree-" + std::to_string(radix));

  // Core <-> aggregation: aggregation switch i of every pod owns the
  // core group [i*half, (i+1)*half).
  for (std::uint32_t pod = 0; pod < radix; ++pod)
    for (std::uint32_t agg = 0; agg < half; ++agg)
      for (std::uint32_t c = 0; c < half; ++c)
        topo.graph.add_edge(topo.aggregation(pod, agg),
                            topo.core(agg * half + c));

  // Aggregation <-> edge: complete bipartite within each pod.
  for (std::uint32_t pod = 0; pod < radix; ++pod)
    for (std::uint32_t agg = 0; agg < half; ++agg)
      for (std::uint32_t e = 0; e < half; ++e)
        topo.graph.add_edge(topo.aggregation(pod, agg), topo.edge(pod, e));

  // Edge <-> hosts: hosts take the tail id range, edge-switch order.
  NodeId next_host = switches;
  for (std::uint32_t pod = 0; pod < radix; ++pod)
    for (std::uint32_t e = 0; e < half; ++e)
      for (std::uint32_t h = 0; h < half; ++h) {
        topo.graph.add_edge(topo.edge(pod, e), next_host);
        topo.hosts.push_back(next_host);
        ++next_host;
      }
  return topo;
}

}  // namespace opto
