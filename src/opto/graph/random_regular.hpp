// Random d-regular graphs via the configuration model (pairing model with
// rejection): useful as "typical" bounded-degree networks for robustness
// tests and as near-expanders (random regular graphs are expanders
// w.h.p.). Deterministic in the seed.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"
#include "opto/rng/rng.hpp"

namespace opto {

/// n·degree must be even; degree in [2, n-1]. Retries the pairing until
/// it is simple (no loops/multi-edges); for degree ≪ n only a handful of
/// retries are ever needed.
Graph make_random_regular(std::uint32_t n, std::uint32_t degree,
                          std::uint64_t seed);

}  // namespace opto
