#include "opto/graph/debruijn.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

Graph make_debruijn(std::uint32_t dim) {
  OPTO_ASSERT(dim >= 2 && dim <= 20);
  const NodeId count = NodeId{1} << dim;
  Graph graph(count, "debruijn-" + std::to_string(dim));
  const NodeId mask = count - 1;
  for (NodeId u = 0; u < count; ++u) {
    for (NodeId b = 0; b <= 1; ++b) {
      const NodeId v = ((u << 1) | b) & mask;
      if (v == u) continue;  // 00..0 and 11..1 shift onto themselves
      if (!graph.has_edge(u, v)) graph.add_edge(u, v);
    }
  }
  return graph;
}

}  // namespace opto
