// k-ary fat-tree topology (3-tier folded Clos, the canonical datacenter
// fabric the oblivious-routing literature measures against).
//
// For even radix k: (k/2)^2 core switches, k pods of k/2 aggregation and
// k/2 edge switches each, and k/2 hosts per edge switch (k^3/4 hosts).
// Node ids are assigned deterministically: cores first, then pod by pod
// (aggregation before edge), hosts last — so two builds of the same
// radix are byte-identical and host ids form one contiguous range.
#pragma once

#include <cstdint>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

struct FatTreeTopology {
  std::uint32_t radix = 0;  ///< k (even, >= 2)
  Graph graph;
  std::vector<NodeId> hosts;  ///< contiguous, edge-switch order

  std::uint32_t core_count() const { return (radix / 2) * (radix / 2); }
  std::uint32_t pod_count() const { return radix; }
  std::uint32_t hosts_per_edge() const { return radix / 2; }

  NodeId core(std::uint32_t index) const { return index; }
  NodeId aggregation(std::uint32_t pod, std::uint32_t index) const {
    return core_count() + pod * radix + index;
  }
  NodeId edge(std::uint32_t pod, std::uint32_t index) const {
    return core_count() + pod * radix + radix / 2 + index;
  }
};

/// Builds the k-ary fat-tree; k must be even and >= 2. Aggregation
/// switch i of every pod uplinks to cores [i*k/2, (i+1)*k/2); every
/// (aggregation, edge) pair within a pod is connected; each edge switch
/// serves k/2 hosts.
FatTreeTopology make_fat_tree(std::uint32_t radix);

}  // namespace opto
