#include "opto/graph/expander.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "opto/rng/rng.hpp"
#include "opto/util/assert.hpp"

namespace opto {

Graph make_circulant(std::uint32_t n, std::vector<std::uint32_t> offsets) {
  OPTO_ASSERT(n >= 3);
  std::sort(offsets.begin(), offsets.end());
  OPTO_ASSERT_MSG(
      std::adjacent_find(offsets.begin(), offsets.end()) == offsets.end(),
      "duplicate circulant offsets");
  std::string name = "circulant-" + std::to_string(n);
  for (const std::uint32_t s : offsets) name += "-" + std::to_string(s);
  Graph graph(n, name);
  for (const std::uint32_t s : offsets) {
    OPTO_ASSERT(s >= 1 && s <= n / 2);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId v = (u + s) % n;
      if (!graph.has_edge(u, v)) graph.add_edge(u, v);
    }
  }
  return graph;
}

Graph make_margulis_expander(std::uint32_t m) {
  OPTO_ASSERT(m >= 2 && m <= 1024);
  const NodeId count = m * m;
  Graph graph(count, "margulis-" + std::to_string(m));
  const auto node = [m](std::uint32_t x, std::uint32_t y) {
    return static_cast<NodeId>(x * m + y);
  };
  const auto mod = [m](std::int64_t v) {
    return static_cast<std::uint32_t>(((v % m) + m) % m);
  };
  for (std::uint32_t x = 0; x < m; ++x) {
    for (std::uint32_t y = 0; y < m; ++y) {
      const NodeId u = node(x, y);
      const std::uint32_t neighbors[][2] = {
          {mod(static_cast<std::int64_t>(x) + 2 * y), y},
          {mod(static_cast<std::int64_t>(x) - 2 * y), y},
          {mod(static_cast<std::int64_t>(x) + 2 * y + 1), y},
          {mod(static_cast<std::int64_t>(x) - 2 * y - 1), y},
          {x, mod(static_cast<std::int64_t>(y) + 2 * x)},
          {x, mod(static_cast<std::int64_t>(y) - 2 * x)},
          {x, mod(static_cast<std::int64_t>(y) + 2 * x + 1)},
          {x, mod(static_cast<std::int64_t>(y) - 2 * x - 1)},
      };
      for (const auto& nb : neighbors) {
        const NodeId v = node(nb[0], nb[1]);
        if (v != u && !graph.has_edge(u, v)) graph.add_edge(u, v);
      }
    }
  }
  return graph;
}

double sampled_edge_expansion(const Graph& graph, std::uint32_t samples,
                              std::uint64_t seed) {
  OPTO_ASSERT(graph.node_count() >= 2);
  Rng rng(seed);
  double worst = static_cast<double>(graph.max_degree());
  std::vector<char> in_set(graph.node_count(), 0);
  for (std::uint32_t sample = 0; sample < samples; ++sample) {
    // Random subset of size in [1, n/2]: take a prefix of a permutation
    // (connected-ish subsets would witness smaller cuts, but uniform
    // subsets suffice for a comparative metric).
    const auto size = static_cast<std::uint32_t>(
        1 + rng.next_below(std::max(1u, graph.node_count() / 2)));
    const auto perm = rng.permutation(graph.node_count());
    std::fill(in_set.begin(), in_set.end(), 0);
    for (std::uint32_t i = 0; i < size; ++i) in_set[perm[i]] = 1;
    std::uint64_t boundary = 0;
    for (std::uint32_t i = 0; i < size; ++i)
      for (const EdgeId e : graph.out_links(perm[i]))
        if (!in_set[graph.target(e)]) ++boundary;
    worst = std::min(
        worst, static_cast<double>(boundary) / static_cast<double>(size));
  }
  return worst;
}

}  // namespace opto
