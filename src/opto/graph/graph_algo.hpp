// Basic graph algorithms used by path selection and topology validation.
#pragma once

#include <cstdint>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// BFS hop distances from `source` (kUnreachable for disconnected nodes).
std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source);

/// BFS shortest path source→target as a node sequence (empty if
/// unreachable). Ties are broken toward the smallest next node id, which
/// makes the path system canonical — the property the node-symmetric
/// experiments rely on for reproducibility.
std::vector<NodeId> bfs_path(const Graph& graph, NodeId source, NodeId target);

bool is_connected(const Graph& graph);

/// Exact diameter via all-sources BFS. Intended for the moderate graph
/// sizes used in experiments (≤ ~100k nodes · edges product).
std::uint32_t diameter(const Graph& graph);

/// Eccentricity of one node (max BFS distance).
std::uint32_t eccentricity(const Graph& graph, NodeId source);

}  // namespace opto
