#include "opto/graph/butterfly.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {
namespace {

ButterflyTopology make_bfly(std::uint32_t dim, bool wrap) {
  OPTO_ASSERT(dim >= 1 && dim <= 16);
  if (wrap) OPTO_ASSERT_MSG(dim >= 3, "wrap-around butterfly needs dim >= 3");

  ButterflyTopology topo;
  topo.dim = dim;
  topo.wrap = wrap;
  const std::uint64_t rows = topo.rows();
  const std::uint64_t node_count = static_cast<std::uint64_t>(topo.levels()) * rows;
  topo.graph = Graph(static_cast<NodeId>(node_count),
                     (wrap ? "wrap-butterfly-" : "butterfly-") +
                         std::to_string(dim));

  // Source levels are 0..dim-1 in both variants; each undirected edge has a
  // unique source level (for wrap this needs dim >= 3), so no duplicates.
  for (std::uint32_t level = 0; level < dim; ++level) {
    const std::uint32_t next = wrap ? (level + 1) % dim : level + 1;
    for (std::uint32_t row = 0; row < rows; ++row) {
      const NodeId from = topo.node_at(level, row);
      topo.graph.add_edge(from, topo.node_at(next, row));
      topo.graph.add_edge(from, topo.node_at(next, row ^ (1u << level)));
    }
  }
  return topo;
}

}  // namespace

NodeId ButterflyTopology::node_at(std::uint32_t level, std::uint32_t row) const {
  OPTO_ASSERT(level < levels());
  OPTO_ASSERT(row < rows());
  return static_cast<NodeId>(static_cast<std::uint64_t>(level) * rows() + row);
}

std::uint32_t ButterflyTopology::level_of(NodeId node) const {
  return static_cast<std::uint32_t>(node / rows());
}

std::uint32_t ButterflyTopology::row_of(NodeId node) const {
  return static_cast<std::uint32_t>(node % rows());
}

ButterflyTopology make_butterfly(std::uint32_t dim) {
  return make_bfly(dim, /*wrap=*/false);
}

ButterflyTopology make_wrap_butterfly(std::uint32_t dim) {
  return make_bfly(dim, /*wrap=*/true);
}

}  // namespace opto
