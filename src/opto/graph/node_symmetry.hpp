// Node-symmetry (vertex-transitivity) checking — Definition 1.4.
//
// A graph is node-symmetric iff for every pair (u, v) some automorphism
// maps u to v; by transitivity it suffices to map node 0 to every v. The
// checker runs a backtracking isomorphism search pruned by degree and
// BFS-distance-multiset invariants. Exponential in the worst case — meant
// for validating topology builders on the small instances used in tests,
// not for production-size graphs (guarded by a node budget).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

/// Finds an automorphism with automorphism[from] == to, or nullopt.
/// `max_nodes` guards against accidental use on big graphs.
std::optional<std::vector<NodeId>> find_automorphism(const Graph& graph,
                                                     NodeId from, NodeId to,
                                                     NodeId max_nodes = 4096);

/// True iff automorphisms map node 0 onto every node (vertex-transitive).
bool is_node_symmetric(const Graph& graph, NodeId max_nodes = 512);

}  // namespace opto
