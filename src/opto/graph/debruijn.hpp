// Binary de Bruijn graph of dimension d, taken as an undirected network:
// node u is adjacent to (2u + b) mod 2^d for b in {0,1}. Self-loops and
// parallel edges of the directed de Bruijn graph are dropped.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

/// dim in [2, 20].
Graph make_debruijn(std::uint32_t dim);

}  // namespace opto
