#include "opto/graph/shuffle_exchange.hpp"

#include <string>

#include "opto/util/assert.hpp"

namespace opto {

Graph make_shuffle_exchange(std::uint32_t dim) {
  OPTO_ASSERT(dim >= 2 && dim <= 20);
  const NodeId count = NodeId{1} << dim;
  Graph graph(count, "shuffle-exchange-" + std::to_string(dim));
  for (NodeId u = 0; u < count; ++u) {
    const NodeId exchanged = u ^ 1;
    if (u < exchanged) graph.add_edge(u, exchanged);
    const NodeId shuffled = rotate_left(u, dim);
    if (shuffled != u && !graph.has_edge(u, shuffled))
      graph.add_edge(u, shuffled);
  }
  return graph;
}

}  // namespace opto
