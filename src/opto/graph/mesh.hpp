// d-dimensional mesh and torus topologies (Theorem 1.6's networks).
//
// Nodes are indexed in row-major order over the coordinate vector; the
// topology object keeps the coordinate mapping so path selectors
// (dimension-order routing) can work in coordinate space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto {

struct MeshTopology {
  std::vector<std::uint32_t> sides;  ///< side length per dimension
  bool wrap = false;                 ///< torus when true
  Graph graph;

  std::uint32_t dimensions() const {
    return static_cast<std::uint32_t>(sides.size());
  }

  NodeId node_at(std::span<const std::uint32_t> coords) const;
  std::vector<std::uint32_t> coords_of(NodeId node) const;
};

/// d-dimensional mesh; sides[i] ≥ 1, at least one dimension.
MeshTopology make_mesh(std::vector<std::uint32_t> sides);

/// d-dimensional torus (wrap-around mesh); each side ≥ 3 so that the
/// wrap edge is distinct from the mesh edge.
MeshTopology make_torus(std::vector<std::uint32_t> sides);

}  // namespace opto
