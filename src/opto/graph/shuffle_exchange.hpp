// Shuffle-exchange network of dimension d: node u has an "exchange" edge to
// u ^ 1 and a "shuffle" edge to rotl_d(u) (cyclic left rotation of the
// d-bit label). Fixed points of the shuffle are dropped.
#pragma once

#include <cstdint>

#include "opto/graph/graph.hpp"

namespace opto {

/// dim in [2, 20].
Graph make_shuffle_exchange(std::uint32_t dim);

/// d-bit cyclic left rotation.
inline NodeId rotate_left(NodeId value, std::uint32_t dim) {
  const NodeId mask = (NodeId{1} << dim) - 1;
  return ((value << 1) | (value >> (dim - 1))) & mask;
}

}  // namespace opto
