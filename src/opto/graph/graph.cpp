#include "opto/graph/graph.hpp"

#include <algorithm>

#include "opto/util/assert.hpp"

namespace opto {

Graph::Graph(NodeId node_count, std::string name)
    : name_(std::move(name)), out_edges_(node_count) {}

NodeId Graph::add_node() {
  out_edges_.emplace_back();
  return static_cast<NodeId>(out_edges_.size() - 1);
}

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  OPTO_ASSERT(u < node_count() && v < node_count());
  OPTO_ASSERT_MSG(u != v, "self-loops are not valid optical links");
  OPTO_ASSERT_MSG(!has_edge(u, v), "duplicate undirected edge");
  const auto forward = static_cast<EdgeId>(targets_.size());
  targets_.push_back(v);  // forward (even id): u -> v
  targets_.push_back(u);  // reverse (odd id):  v -> u
  out_edges_[u].push_back(forward);
  out_edges_[v].push_back(forward ^ 1);
  return forward;
}

NodeId Graph::max_degree() const {
  NodeId best = 0;
  for (const auto& adj : out_edges_)
    best = std::max(best, static_cast<NodeId>(adj.size()));
  return best;
}

EdgeId Graph::find_link(NodeId u, NodeId v) const {
  OPTO_ASSERT(u < node_count() && v < node_count());
  for (EdgeId e : out_edges_[u])
    if (target(e) == v) return e;
  return kInvalidEdge;
}

}  // namespace opto
