#include "opto/graph/node_symmetry.hpp"

#include <algorithm>

#include "opto/graph/graph_algo.hpp"
#include "opto/util/assert.hpp"

namespace opto {
namespace {

/// Per-node invariant: (degree, sorted multiset of neighbor degrees,
/// sorted BFS distance histogram). Automorphisms preserve it, so mapped
/// nodes must share it.
struct NodeInvariant {
  NodeId degree;
  std::vector<NodeId> neighbor_degrees;
  std::vector<std::uint32_t> distance_histogram;

  bool operator==(const NodeInvariant&) const = default;
};

NodeInvariant invariant_of(const Graph& graph, NodeId node) {
  NodeInvariant inv;
  inv.degree = graph.degree(node);
  for (EdgeId e : graph.out_links(node))
    inv.neighbor_degrees.push_back(graph.degree(graph.target(e)));
  std::sort(inv.neighbor_degrees.begin(), inv.neighbor_degrees.end());
  const auto dist = bfs_distances(graph, node);
  std::uint32_t max_dist = 0;
  for (std::uint32_t d : dist)
    if (d != kUnreachable) max_dist = std::max(max_dist, d);
  inv.distance_histogram.assign(max_dist + 1, 0);
  for (std::uint32_t d : dist)
    if (d != kUnreachable) ++inv.distance_histogram[d];
  return inv;
}

class AutomorphismSearch {
 public:
  AutomorphismSearch(const Graph& graph,
                     const std::vector<NodeInvariant>& invariants)
      : graph_(graph),
        invariants_(invariants),
        mapping_(graph.node_count(), kInvalidNode),
        used_(graph.node_count(), false) {}

  std::optional<std::vector<NodeId>> run(NodeId from, NodeId to) {
    if (!(invariants_[from] == invariants_[to])) return std::nullopt;
    mapping_[from] = to;
    used_[to] = true;
    order_.push_back(from);
    if (extend(0)) return mapping_;
    return std::nullopt;
  }

 private:
  /// Picks the next unmapped node adjacent to an already-mapped one (keeps
  /// the search connected so adjacency constraints prune immediately).
  NodeId pick_next() const {
    for (NodeId u : order_)
      for (EdgeId e : graph_.out_links(u)) {
        const NodeId v = graph_.target(e);
        if (mapping_[v] == kInvalidNode) return v;
      }
    for (NodeId v = 0; v < graph_.node_count(); ++v)
      if (mapping_[v] == kInvalidNode) return v;
    return kInvalidNode;
  }

  bool consistent(NodeId node, NodeId image) const {
    if (!(invariants_[node] == invariants_[image])) return false;
    // Every mapped neighbor must map to a neighbor of the image, and every
    // mapped non-neighbor to a non-neighbor.
    for (NodeId u : order_) {
      const bool adjacent = graph_.has_edge(node, u);
      const bool image_adjacent = graph_.has_edge(image, mapping_[u]);
      if (adjacent != image_adjacent) return false;
    }
    return true;
  }

  bool extend(std::size_t /*depth*/) {
    const NodeId node = pick_next();
    if (node == kInvalidNode) return true;  // everything mapped
    for (NodeId image = 0; image < graph_.node_count(); ++image) {
      if (used_[image] || !consistent(node, image)) continue;
      mapping_[node] = image;
      used_[image] = true;
      order_.push_back(node);
      if (extend(order_.size())) return true;
      order_.pop_back();
      used_[image] = false;
      mapping_[node] = kInvalidNode;
    }
    return false;
  }

  const Graph& graph_;
  const std::vector<NodeInvariant>& invariants_;
  std::vector<NodeId> mapping_;
  std::vector<bool> used_;
  std::vector<NodeId> order_;
};

}  // namespace

std::optional<std::vector<NodeId>> find_automorphism(const Graph& graph,
                                                     NodeId from, NodeId to,
                                                     NodeId max_nodes) {
  OPTO_ASSERT(from < graph.node_count() && to < graph.node_count());
  OPTO_ASSERT_MSG(graph.node_count() <= max_nodes,
                  "graph too large for automorphism search");
  std::vector<NodeInvariant> invariants;
  invariants.reserve(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u)
    invariants.push_back(invariant_of(graph, u));
  AutomorphismSearch search(graph, invariants);
  return search.run(from, to);
}

bool is_node_symmetric(const Graph& graph, NodeId max_nodes) {
  if (graph.node_count() <= 1) return true;
  OPTO_ASSERT_MSG(graph.node_count() <= max_nodes,
                  "graph too large for node-symmetry check");
  std::vector<NodeInvariant> invariants;
  invariants.reserve(graph.node_count());
  for (NodeId u = 0; u < graph.node_count(); ++u)
    invariants.push_back(invariant_of(graph, u));
  for (NodeId v = 1; v < graph.node_count(); ++v) {
    AutomorphismSearch search(graph, invariants);
    if (!search.run(0, v)) return false;
  }
  return true;
}

}  // namespace opto
