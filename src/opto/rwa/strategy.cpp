#include "opto/rwa/strategy.hpp"

#include <algorithm>

#include "opto/rng/philox.hpp"
#include "opto/rwa/ksp.hpp"
#include "opto/util/assert.hpp"

namespace opto::rwa {

namespace {

// Philox draw slots for the RWA layer. The protocol layer owns slots
// 0–3 (rng/philox.hpp); staying clear of them keeps the keying surface
// auditable even though the seeds already differ.
constexpr std::uint32_t kSlotRwaWavelength = 8;
constexpr std::uint32_t kSlotRwaWaypoint = 9;  ///< + attempt, < 32 attempts

constexpr std::uint32_t kValiantAttempts = 32;

}  // namespace

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::FirstFit: return "first_fit";
    case StrategyKind::LeastUsed: return "least_used";
    case StrategyKind::RandomFit: return "random_fit";
    case StrategyKind::Multipath: return "multipath";
    case StrategyKind::Valiant: return "valiant";
  }
  return "unknown";
}

std::optional<StrategyKind> parse_strategy_kind(const std::string& name) {
  if (name == "first_fit") return StrategyKind::FirstFit;
  if (name == "least_used") return StrategyKind::LeastUsed;
  if (name == "random_fit") return StrategyKind::RandomFit;
  if (name == "multipath") return StrategyKind::Multipath;
  if (name == "valiant") return StrategyKind::Valiant;
  return std::nullopt;
}

std::vector<StrategyKind> all_strategy_kinds() {
  return {StrategyKind::FirstFit, StrategyKind::LeastUsed,
          StrategyKind::RandomFit, StrategyKind::Multipath,
          StrategyKind::Valiant};
}

void Strategy::begin(const Graph& graph, const RwaConfig& config,
                     std::uint32_t round) {
  OPTO_ASSERT(config.bandwidth >= 1 && config.candidates >= 1 &&
              config.split_ways >= 1);
  // The cache is only trustworthy while the bound graph provably hasn't
  // changed. Pointer identity alone is not enough across runs: a freed
  // graph's address can be reused by a different topology (the strategy
  // does not own the graph), so every new run (round 1) starts cold and
  // the cache stays warm only across the rounds of one schedule run.
  if (round <= 1 || graph_ != &graph) route_cache_.clear();
  graph_ = &graph;
  config_ = config;
  round_ = round;
  occupancy_.assign(static_cast<std::size_t>(graph.link_count()) *
                        config.bandwidth,
                    0);
  usage_.assign(config.bandwidth, 0);
}

const std::vector<std::vector<NodeId>>& Strategy::candidates(
    NodeId source, NodeId destination) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(source) << 32) | destination;
  auto it = route_cache_.find(key);
  if (it == route_cache_.end())
    it = route_cache_
             .emplace(key, k_shortest_routes(*graph_, source, destination,
                                             config_.candidates))
             .first;
  return it->second;
}

bool Strategy::channel_free(const Path& route, Wavelength lambda) const {
  for (EdgeId link : route.links())
    if (occupancy_[static_cast<std::size_t>(link) * config_.bandwidth +
                   lambda])
      return false;
  return true;
}

void Strategy::claim(const Path& route, Wavelength lambda) {
  for (EdgeId link : route.links()) {
    occupancy_[static_cast<std::size_t>(link) * config_.bandwidth + lambda] =
        1;
    ++usage_[lambda];
  }
}

std::optional<Wavelength> Strategy::first_fit(const Path& route) const {
  for (Wavelength lambda = 0; lambda < config_.bandwidth; ++lambda)
    if (channel_free(route, lambda)) return lambda;
  return std::nullopt;
}

RwaDecision Strategy::accept(const Graph& graph,
                             const std::vector<NodeId>& route,
                             Wavelength lambda) {
  RwaDecision decision;
  decision.accepted = true;
  decision.routes.push_back(Path::from_nodes(graph, route));
  decision.lambdas.push_back(lambda);
  claim(decision.routes.back(), lambda);
  return decision;
}

namespace {

/// Shared candidate-major skeleton of the single-route strategies: the
/// first candidate route (canonical KSP order) with any free wavelength
/// wins, and the wavelength policy picks within that route's free set.
class SingleRouteStrategy : public Strategy {
 public:
  RwaDecision assign(const RwaRequest& request, std::uint32_t uid) override {
    for (const auto& route_nodes :
         candidates(request.source, request.destination)) {
      if (route_nodes.size() == 1)  // source == destination: free ride
        return accept(*graph_, route_nodes, 0);
      const Path route = Path::from_nodes(*graph_, route_nodes);
      const auto lambda = pick(route, uid);
      if (!lambda) continue;
      RwaDecision decision;
      decision.accepted = true;
      decision.routes.push_back(route);
      decision.lambdas.push_back(*lambda);
      claim(decision.routes.back(), *lambda);
      return decision;
    }
    return {};
  }

 protected:
  virtual std::optional<Wavelength> pick(const Path& route,
                                         std::uint32_t uid) = 0;
};

class FirstFitStrategy final : public SingleRouteStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::FirstFit; }

 protected:
  std::optional<Wavelength> pick(const Path& route, std::uint32_t) override {
    return first_fit(route);
  }
};

class LeastUsedStrategy final : public SingleRouteStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::LeastUsed; }

 protected:
  /// Spread over wavelengths already in service: among free wavelengths
  /// with non-zero usage pick the least-used (ties → lowest index); a
  /// fresh wavelength is opened only when no in-service one is free on
  /// the route, so Least-Used opens the band exactly as reluctantly as
  /// First-Fit does.
  std::optional<Wavelength> pick(const Path& route, std::uint32_t) override {
    std::optional<Wavelength> best;
    for (Wavelength lambda = 0; lambda < config_.bandwidth; ++lambda) {
      if (usage_[lambda] == 0 || !channel_free(route, lambda)) continue;
      if (!best || usage_[lambda] < usage_[*best]) best = lambda;
    }
    if (best) return best;
    return first_fit(route);  // lowest unused index (or band full)
  }
};

class RandomFitStrategy final : public SingleRouteStrategy {
 public:
  StrategyKind kind() const override { return StrategyKind::RandomFit; }

 protected:
  /// Uniform keyed draw over the free set: the rank comes from
  /// Philox(seed, round) addressed by (uid, slot), so the value is
  /// independent of assignment order, thread count, and batch shape.
  std::optional<Wavelength> pick(const Path& route,
                                 std::uint32_t uid) override {
    std::vector<Wavelength> free;
    for (Wavelength lambda = 0; lambda < config_.bandwidth; ++lambda)
      if (channel_free(route, lambda)) free.push_back(lambda);
    if (free.empty()) return std::nullopt;
    const CounterRng rng(config_.seed, round_);
    return free[rng.below(free.size(), uid, kSlotRwaWavelength)];
  }
};

class MultipathStrategy final : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::Multipath; }

  /// Stripes the request over up to split_ways link-disjoint candidate
  /// routes (greedy scan in canonical order), each on its own first-fit
  /// wavelength; the request is served when at least one stripe lands
  /// (arXiv:1405.0822's multi-path RWA, worm-model rendition).
  RwaDecision assign(const RwaRequest& request, std::uint32_t) override {
    const auto& routes = candidates(request.source, request.destination);
    if (!routes.empty() && routes.front().size() == 1)
      return accept(*graph_, routes.front(), 0);

    RwaDecision decision;
    std::vector<char> used(graph_->link_count(), 0);
    for (const auto& route_nodes : routes) {
      if (decision.routes.size() >= config_.split_ways) break;
      const Path route = Path::from_nodes(*graph_, route_nodes);
      const bool disjoint =
          std::none_of(route.links().begin(), route.links().end(),
                       [&](EdgeId link) { return used[link]; });
      if (!disjoint) continue;
      const auto lambda = first_fit(route);
      if (!lambda) continue;
      claim(route, *lambda);
      for (EdgeId link : route.links()) used[link] = 1;
      decision.routes.push_back(route);
      decision.lambdas.push_back(*lambda);
    }
    decision.accepted = !decision.routes.empty();
    return decision;
  }
};

class ValiantStrategy final : public Strategy {
 public:
  StrategyKind kind() const override { return StrategyKind::Valiant; }

  /// Valiant load balancing: route via a keyed random waypoint — two
  /// shortest legs — then first-fit the wavelength. Paths must stay
  /// simple, so waypoints whose legs intersect are redrawn (successive
  /// slots, bounded attempts); the direct shortest route is the
  /// fallback. Waypoint choice never depends on occupancy: the route is
  /// oblivious, only the wavelength reacts to load.
  RwaDecision assign(const RwaRequest& request, std::uint32_t uid) override {
    const auto& direct = candidates(request.source, request.destination);
    if (direct.empty()) return {};
    if (direct.front().size() == 1) return accept(*graph_, direct.front(), 0);

    const CounterRng rng(config_.seed, round_);
    std::vector<NodeId> route_nodes;
    for (std::uint32_t attempt = 0; attempt < kValiantAttempts; ++attempt) {
      const NodeId mid = static_cast<NodeId>(rng.below(
          graph_->node_count(), uid, kSlotRwaWaypoint + attempt));
      if (mid == request.source || mid == request.destination) continue;
      // unordered_map references are rehash-stable, so holding both
      // cache entries across the second lookup is safe.
      const auto& leg1 = candidates(request.source, mid);
      const auto& leg2 = candidates(mid, request.destination);
      if (leg1.empty() || leg2.empty()) continue;
      if (!disjoint_legs(leg1.front(), leg2.front())) continue;
      route_nodes = leg1.front();
      route_nodes.insert(route_nodes.end(), leg2.front().begin() + 1,
                         leg2.front().end());
      break;
    }
    if (route_nodes.empty()) route_nodes = direct.front();

    const Path route = Path::from_nodes(*graph_, route_nodes);
    const auto lambda = first_fit(route);
    if (!lambda) return {};
    RwaDecision decision;
    decision.accepted = true;
    decision.routes.push_back(route);
    decision.lambdas.push_back(*lambda);
    claim(decision.routes.back(), *lambda);
    return decision;
  }

 private:
  /// The two legs may share only the waypoint (leg1's last node).
  static bool disjoint_legs(const std::vector<NodeId>& leg1,
                            const std::vector<NodeId>& leg2) {
    for (std::size_t i = 0; i + 1 < leg1.size(); ++i)
      for (std::size_t j = 1; j < leg2.size(); ++j)
        if (leg1[i] == leg2[j]) return false;
    return true;
  }
};

}  // namespace

std::unique_ptr<Strategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::FirstFit: return std::make_unique<FirstFitStrategy>();
    case StrategyKind::LeastUsed:
      return std::make_unique<LeastUsedStrategy>();
    case StrategyKind::RandomFit:
      return std::make_unique<RandomFitStrategy>();
    case StrategyKind::Multipath:
      return std::make_unique<MultipathStrategy>();
    case StrategyKind::Valiant: return std::make_unique<ValiantStrategy>();
  }
  OPTO_ASSERT(false);
  return nullptr;
}

}  // namespace opto::rwa
