// Round driver for RWA strategies — the Trial-and-Failure analogue for
// the static side of the comparison (E19).
//
// Each round the strategy sees a fresh wavelength band [0, B) and the
// still-unserved requests in uid order; accepted requests are simulated
// as one collision-free pass (worm model, same Simulator the protocol
// uses — the pass both measures the round's makespan and *proves* the
// assignment valid: any (link, λ) double-claim would surface as a
// contention loss and trip the driver's assert). Blocked requests retry
// next round. Blocking percentage is the classic first-offer metric:
// the fraction of requests the strategy could not place in round 1.
//
// Determinism: the driver is sequential over rounds and requests; all
// randomness inside a strategy is counter-based (strategy.hpp), and the
// simulated passes are byte-identical across OPTO_THREADS by the
// DESIGN.md §7 sharding contract — so every result field is a pure
// function of (graph, requests, config).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "opto/rwa/strategy.hpp"
#include "opto/sim/simulator.hpp"
#include "opto/util/stats.hpp"

namespace opto::rwa {

struct StrategyScheduleConfig {
  RwaConfig rwa;
  std::uint32_t worm_length = 1;  ///< L, flits per worm
  std::uint32_t max_rounds = 64;
};

struct StrategyRunResult {
  bool success = false;      ///< all requests served within max_rounds
  std::uint32_t rounds = 0;  ///< rounds consumed (success) or max_rounds
  std::uint64_t requests = 0;
  std::uint64_t blocked_first_round = 0;
  double blocking = 0.0;  ///< blocked_first_round / requests (0 if none)
  std::uint32_t colors = 0;   ///< distinct wavelength indices used, any round
  SimTime makespan = 0;       ///< Σ per-round simulated makespans
  std::uint64_t worm_steps = 0;
};

/// Runs `strategy` over `requests` to completion (or max_rounds).
/// Request uid = index into `requests`; admission order is uid order
/// within every round.
StrategyRunResult run_strategy_schedule(std::shared_ptr<const Graph> graph,
                                        std::span<const RwaRequest> requests,
                                        Strategy& strategy,
                                        const StrategyScheduleConfig& config);

/// Builds one trial's instance: the graph and its request list.
/// Deterministic in the seed (experiment-harness contract).
using InstanceFactory =
    std::function<std::pair<std::shared_ptr<const Graph>,
                            std::vector<RwaRequest>>(std::uint64_t seed)>;

/// Cross-trial aggregate, mirroring benchsupport's TrialAggregate: the
/// per-trial seeds derive exactly like run_trials' and trials run in
/// parallel with a sequential fold, so tables are byte-stable across
/// OPTO_THREADS.
struct StrategyAggregate {
  SampleSet blocking;
  SampleSet rounds;
  SampleSet makespan;
  SampleSet colors;
  std::uint32_t failures = 0;  ///< trials hitting max_rounds
  std::size_t trials = 0;

  double success_rate() const {
    return trials == 0 ? 0.0
                       : 1.0 - static_cast<double>(failures) /
                                   static_cast<double>(trials);
  }
};

StrategyAggregate run_strategy_trials(const InstanceFactory& factory,
                                      StrategyKind kind,
                                      const StrategyScheduleConfig& config,
                                      std::size_t trials,
                                      std::uint64_t base_seed);

}  // namespace opto::rwa
