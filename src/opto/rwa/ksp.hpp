// Yen-style k-shortest loopless routes over the directed-link graph.
//
// Routes are enumerated in the canonical total order
//   (length, lexicographic node sequence)
// exactly: the shortest-path subroutine returns the lexicographically
// smallest shortest path under the active node/link bans, which makes
// Yen's candidate heap a faithful enumeration of that order (the
// brute-force oracle in tests/test_rwa_oracle.cpp checks this
// sequence-for-sequence). Determinism is load-bearing — every RWA
// strategy derives its candidate routes from this enumeration, so two
// runs of a strategy see identical candidates on any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "opto/graph/graph.hpp"

namespace opto::rwa {

/// Up to `k` shortest loopless routes from `source` to `destination` as
/// node sequences, in (length, lexicographic) order. Fewer are returned
/// when fewer exist; an unreachable destination yields none. A
/// source == destination request yields the single zero-length route.
std::vector<std::vector<NodeId>> k_shortest_routes(const Graph& graph,
                                                   NodeId source,
                                                   NodeId destination,
                                                   std::uint32_t k);

}  // namespace opto::rwa
