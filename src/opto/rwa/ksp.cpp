#include "opto/rwa/ksp.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "opto/graph/graph_algo.hpp"
#include "opto/util/assert.hpp"

namespace opto::rwa {

namespace {

/// Orders candidate routes by (length, lexicographic node sequence) —
/// the canonical enumeration order of the module.
struct RouteLess {
  bool operator()(const std::vector<NodeId>& a,
                  const std::vector<NodeId>& b) const {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  }
};

/// Lexicographically smallest shortest path source → destination that
/// avoids banned nodes and banned directed links; empty when none
/// exists. Two phases: a reverse BFS from the destination computes
/// hops-to-go under the bans, then a greedy forward walk picks the
/// smallest next node that still lies on some shortest path.
std::vector<NodeId> lex_min_shortest(const Graph& graph, NodeId source,
                                     NodeId destination,
                                     const std::vector<char>& banned_node,
                                     const std::vector<char>& banned_link) {
  if (banned_node[source] || banned_node[destination]) return {};
  if (source == destination) return {source};

  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  dist[destination] = 0;
  std::deque<NodeId> queue{destination};
  while (!queue.empty()) {
    const NodeId x = queue.front();
    queue.pop_front();
    // The incoming link y → x is the reverse of the outgoing x → y.
    for (EdgeId e : graph.out_links(x)) {
      const NodeId y = graph.target(e);
      if (banned_node[y] || banned_link[Graph::reverse(e)]) continue;
      if (dist[y] != kUnreachable) continue;
      dist[y] = dist[x] + 1;
      queue.push_back(y);
    }
  }
  if (dist[source] == kUnreachable) return {};

  std::vector<NodeId> route{source};
  NodeId u = source;
  while (u != destination) {
    NodeId best = kInvalidNode;
    for (EdgeId e : graph.out_links(u)) {
      const NodeId v = graph.target(e);
      if (banned_node[v] || banned_link[e]) continue;
      if (dist[v] != dist[u] - 1) continue;
      if (best == kInvalidNode || v < best) best = v;
    }
    OPTO_ASSERT(best != kInvalidNode);
    route.push_back(best);
    u = best;
  }
  return route;
}

}  // namespace

std::vector<std::vector<NodeId>> k_shortest_routes(const Graph& graph,
                                                   NodeId source,
                                                   NodeId destination,
                                                   std::uint32_t k) {
  OPTO_ASSERT(source < graph.node_count() &&
              destination < graph.node_count());
  std::vector<std::vector<NodeId>> accepted;
  if (k == 0) return accepted;
  if (source == destination) {
    accepted.push_back({source});
    return accepted;
  }

  std::vector<char> banned_node(graph.node_count(), 0);
  std::vector<char> banned_link(graph.link_count(), 0);
  auto first = lex_min_shortest(graph, source, destination, banned_node,
                                banned_link);
  if (first.empty()) return accepted;
  accepted.push_back(std::move(first));

  std::set<std::vector<NodeId>, RouteLess> candidates;
  while (accepted.size() < k) {
    const std::vector<NodeId> prev = accepted.back();
    for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
      // Deviate at spur node prev[i]: keep the root prev[0..i], ban the
      // next-links of every accepted route sharing that root, and ban
      // the root's interior nodes so the spur path stays loopless.
      for (const auto& route : accepted) {
        if (route.size() <= i + 1) continue;
        if (!std::equal(route.begin(), route.begin() + i + 1, prev.begin()))
          continue;
        const EdgeId e = graph.find_link(route[i], route[i + 1]);
        OPTO_ASSERT(e != kInvalidEdge);
        banned_link[e] = 1;
      }
      for (std::size_t j = 0; j < i; ++j) banned_node[prev[j]] = 1;

      const auto spur = lex_min_shortest(graph, prev[i], destination,
                                         banned_node, banned_link);
      if (!spur.empty()) {
        std::vector<NodeId> total(prev.begin(), prev.begin() + i);
        total.insert(total.end(), spur.begin(), spur.end());
        candidates.insert(std::move(total));
      }

      for (std::size_t j = 0; j < i; ++j) banned_node[prev[j]] = 0;
      std::fill(banned_link.begin(), banned_link.end(), 0);
    }
    if (candidates.empty()) break;
    accepted.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return accepted;
}

}  // namespace opto::rwa
