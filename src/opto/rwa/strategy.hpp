// Pluggable static RWA strategies — the paper's §1.2/§4 comparator
// family, measured head-to-head against Trial-and-Failure (E19).
//
// A Strategy is re-entrant the way ProtocolSession is: begin() binds it
// to a graph and clears all per-round wavelength occupancy (candidate
// routes are cached across rounds — they depend only on the graph), and
// assign() serves one request at a time in admission (uid) order. Every
// decision is a pure function of (graph, config, round, uid, previously
// accepted set): the only randomness is drawn from the counter-based
// Philox RNG keyed by (seed, round, uid, slot), so Random-Fit and
// Valiant draws are order-, thread-, and batch-shape-independent
// (DESIGN.md §11 determinism contract).
//
// Wavelengths live in the hard band [0, bandwidth): a request that has
// no feasible (candidate route, free wavelength) pair is blocked for
// the round and retried by the round driver (schedule.hpp) on a fresh
// band — the analogue of a Trial-and-Failure round.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/optical/worm.hpp"
#include "opto/paths/path.hpp"

namespace opto::rwa {

enum class StrategyKind : std::uint8_t {
  FirstFit,   ///< first candidate route with a free wavelength, lowest λ
  LeastUsed,  ///< same route rule; spread over already-used wavelengths
  RandomFit,  ///< same route rule; keyed Philox draw over the free set
  Multipath,  ///< stripe across link-disjoint candidates, first-fit λ
  Valiant,    ///< oblivious two-leg route via a keyed random waypoint
};

const char* to_string(StrategyKind kind);
std::optional<StrategyKind> parse_strategy_kind(const std::string& name);

/// All strategy kinds in canonical (enum) order — the zoo.
std::vector<StrategyKind> all_strategy_kinds();

struct RwaRequest {
  NodeId source = 0;
  NodeId destination = 0;
};

struct RwaConfig {
  std::uint16_t bandwidth = 1;   ///< wavelengths per round (B >= 1)
  std::uint32_t candidates = 3;  ///< k candidate routes per request (>= 1)
  std::uint32_t split_ways = 2;  ///< multipath stripe width (>= 1)
  std::uint64_t seed = 1;        ///< Philox key (RandomFit, Valiant)
};

/// One accepted request: the chosen route(s) and their wavelengths.
/// Exactly one route except for the multipath splitter, which may
/// stripe a request over several link-disjoint routes. A zero-length
/// route (source == destination) carries wavelength 0 and occupies
/// nothing.
struct RwaDecision {
  bool accepted = false;
  std::vector<Path> routes;
  std::vector<Wavelength> lambdas;  ///< parallel to routes
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual StrategyKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Re-binds the strategy to `graph` for one assignment round and
  /// clears all wavelength occupancy. The graph must outlive the round.
  /// Candidate-route caches survive across the rounds of one schedule
  /// run (begin() calls with round > 1 on the same graph) and reset at
  /// round 1 — the strategy does not own the graph, so a reused heap
  /// address must never revive routes cached for a previous topology.
  virtual void begin(const Graph& graph, const RwaConfig& config,
                     std::uint32_t round);

  /// Serves one request; uid is its stable identity across rounds (the
  /// Philox counter and the launch priority). Accepted decisions claim
  /// their (link, λ) channels immediately.
  virtual RwaDecision assign(const RwaRequest& request, std::uint32_t uid) = 0;

 protected:
  /// Candidate routes for (source, destination), cached per graph.
  const std::vector<std::vector<NodeId>>& candidates(NodeId source,
                                                     NodeId destination);

  bool channel_free(const Path& route, Wavelength lambda) const;
  void claim(const Path& route, Wavelength lambda);

  /// Lowest free wavelength on `route`, or nullopt if the band is full.
  std::optional<Wavelength> first_fit(const Path& route) const;

  /// Builds the canonical single-route decision and claims its channels.
  RwaDecision accept(const Graph& graph, const std::vector<NodeId>& route,
                     Wavelength lambda);

  const Graph* graph_ = nullptr;
  RwaConfig config_;
  std::uint32_t round_ = 0;
  /// occupancy_[link * bandwidth + λ]: channel claimed this round.
  std::vector<char> occupancy_;
  /// usage_[λ]: links claimed on wavelength λ this round (LeastUsed).
  std::vector<std::uint32_t> usage_;

 private:
  std::unordered_map<std::uint64_t, std::vector<std::vector<NodeId>>>
      route_cache_;
};

std::unique_ptr<Strategy> make_strategy(StrategyKind kind);

}  // namespace opto::rwa
