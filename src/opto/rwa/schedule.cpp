#include "opto/rwa/schedule.hpp"

#include <numeric>

#include "opto/par/parallel_for.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/rng/splitmix64.hpp"
#include "opto/util/assert.hpp"

namespace opto::rwa {

StrategyRunResult run_strategy_schedule(std::shared_ptr<const Graph> graph,
                                        std::span<const RwaRequest> requests,
                                        Strategy& strategy,
                                        const StrategyScheduleConfig& config) {
  OPTO_ASSERT(graph != nullptr && config.worm_length >= 1 &&
              config.max_rounds >= 1);
  StrategyRunResult result;
  result.requests = requests.size();

  std::vector<std::uint32_t> pending(requests.size());
  std::iota(pending.begin(), pending.end(), 0);
  std::vector<char> color_used(config.rwa.bandwidth, 0);

  for (std::uint32_t round = 1;
       round <= config.max_rounds && !pending.empty(); ++round) {
    strategy.begin(*graph, config.rwa, round);

    PathCollection collection(graph);
    std::vector<LaunchSpec> specs;
    std::vector<std::uint32_t> still_pending;
    for (const std::uint32_t uid : pending) {
      RwaDecision decision = strategy.assign(requests[uid], uid);
      if (!decision.accepted) {
        still_pending.push_back(uid);
        continue;
      }
      OPTO_ASSERT(decision.routes.size() == decision.lambdas.size() &&
                  !decision.routes.empty());
      for (std::size_t i = 0; i < decision.routes.size(); ++i) {
        LaunchSpec spec;
        spec.path = collection.size();
        collection.add(std::move(decision.routes[i]));
        spec.start_time = 0;
        spec.wavelength = decision.lambdas[i];
        spec.priority = uid;
        spec.length = config.worm_length;
        specs.push_back(spec);
        color_used[decision.lambdas[i]] = 1;
      }
    }

    result.rounds = round;
    if (round == 1) {
      result.blocked_first_round = still_pending.size();
      result.blocking = requests.empty()
                            ? 0.0
                            : static_cast<double>(still_pending.size()) /
                                  static_cast<double>(requests.size());
    }

    if (!specs.empty()) {
      SimConfig sim_config;
      sim_config.bandwidth = config.rwa.bandwidth;
      Simulator sim(collection, sim_config);
      const PassResult pass = sim.run(specs);
      // A valid assignment is collision-free by construction; a lost
      // worm here means the strategy double-claimed a channel.
      OPTO_ASSERT_MSG(pass.metrics.delivered == specs.size(),
                      "RWA strategy produced a colliding assignment");
      result.makespan += pass.metrics.makespan + 1;
      result.worm_steps += pass.metrics.worm_steps;
    }
    pending = std::move(still_pending);
  }

  result.success = pending.empty();
  for (const char used : color_used)
    result.colors += static_cast<std::uint32_t>(used);
  return result;
}

StrategyAggregate run_strategy_trials(const InstanceFactory& factory,
                                      StrategyKind kind,
                                      const StrategyScheduleConfig& config,
                                      std::size_t trials,
                                      std::uint64_t base_seed) {
  struct Outcome {
    bool success = false;
    double blocking = 0.0;
    double rounds = 0.0;
    double makespan = 0.0;
    double colors = 0.0;
  };
  std::vector<Outcome> outcomes(trials);

  parallel_for_chunked(0, trials, [&](std::size_t lo, std::size_t hi) {
    // One strategy per worker chunk: begin() re-binds it each round, so
    // reuse across trials exercises the re-entrancy contract (the KSP
    // cache restarts cold at each trial's round 1 — trial graphs are
    // independently allocated, so address reuse must not alias them).
    const std::unique_ptr<Strategy> strategy = make_strategy(kind);
    for (std::size_t trial = lo; trial < hi; ++trial) {
      // Same per-trial seed derivation as benchsupport run_trials, so a
      // strategy trial t sees the same instance seed as a protocol
      // trial t (the head-to-head compares like with like).
      const std::uint64_t seed =
          splitmix64_once(base_seed + 0x9e3779b97f4a7c15ull * (trial + 1));
      auto [graph, requests] = factory(seed);
      StrategyScheduleConfig trial_config = config;
      trial_config.rwa.seed = seed ^ 0xabcdef;  // mirrors protocol.run(seed^…)
      const StrategyRunResult run = run_strategy_schedule(
          std::move(graph), requests, *strategy, trial_config);
      Outcome& outcome = outcomes[trial];
      outcome.success = run.success;
      outcome.blocking = run.blocking;
      if (!run.success) continue;
      outcome.rounds = static_cast<double>(run.rounds);
      outcome.makespan = static_cast<double>(run.makespan);
      outcome.colors = static_cast<double>(run.colors);
    }
  });

  // Sequential fold in trial order (byte-stable across OPTO_THREADS).
  StrategyAggregate aggregate;
  for (const Outcome& outcome : outcomes) {
    aggregate.blocking.add(outcome.blocking);
    if (!outcome.success) {
      ++aggregate.failures;
      continue;
    }
    aggregate.rounds.add(outcome.rounds);
    aggregate.makespan.add(outcome.makespan);
    aggregate.colors.add(outcome.colors);
  }
  aggregate.trials = trials;
  return aggregate;
}

}  // namespace opto::rwa
