// BenchRecord — the versioned, machine-readable perf artifact every
// bench/experiment binary emits. One record is a snapshot of the obs
// registry (counters, phase timings, annotations) plus run environment
// (git sha, threads, scale) and derived metrics (worm-steps/s, registry
// hit rate, loss splits, allocations per pass).
//
// Schema v1, top-level keys:
//   schema          "opto.bench_record"
//   schema_version  1
//   label           slug naming the bench
//   env             { git_sha, threads, obs, repro_scale }
//   annotations     { free-form string notes, e.g. base_seed }
//   counters        { name: integer } — deterministic totals
//   phases          { name: { calls, wall_ns, cpu_ns } }
//   metrics         { name: number } — what bench_compare diffs
//
// The suite roll-up written by scripts/run_perf_suite.sh wraps records:
//   { schema: "opto.bench_suite", schema_version: 1, label, scale,
//     records: [ BenchRecord... ] }
#pragma once

#include <ostream>
#include <string>

namespace opto::obs {

inline constexpr int kBenchRecordSchemaVersion = 1;
inline constexpr const char* kBenchRecordSchema = "opto.bench_record";
inline constexpr const char* kBenchSuiteSchema = "opto.bench_suite";

/// Serializes the current obs snapshot as one BenchRecord document.
void write_bench_record(std::ostream& os, const std::string& label);

/// Writes <OPTO_RESULTS_DIR>/benchrecord_<label>.json. No-ops (returning
/// false) when the env var is unset or observation is disabled, so
/// OPTO_OBS=0 runs leave no perf artifacts to diverge on.
bool write_bench_record_file(const std::string& label);

/// Registers an atexit hook that calls write_bench_record_file(label) —
/// experiment banners use this so every bench binary emits its record on
/// clean exit without per-bench code. Later labels override earlier ones.
void install_bench_record_at_exit(const std::string& label);

}  // namespace opto::obs
